#include "src/itermine/bitmap_projection.h"

#include <algorithm>

namespace specmine {

namespace {

// Collects the distinct pattern events into *alphabet (cleared first).
// Patterns are short, so the quadratic dedup beats any table.
void DistinctAlphabet(const Pattern& pattern, size_t num_events,
                      std::vector<EventId>* alphabet) {
  alphabet->clear();
  for (EventId ev : pattern) {
    if (ev >= num_events) continue;  // Defensive; ids come from dict.
    if (std::find(alphabet->begin(), alphabet->end(), ev) ==
        alphabet->end()) {
      alphabet->push_back(ev);
    }
  }
}

// ORs the alphabet rows into scratch->union_words over the word range
// covering global bits [base, limit). Only that range is written; queries
// must mask to it (shared boundary words carry neighbor-sequence bits).
void BuildUnionForRange(const BitmapIndex& index,
                        const std::vector<EventId>& alphabet, size_t base,
                        size_t limit, std::vector<uint64_t>* union_words) {
  if (union_words->size() < index.words_per_row()) {
    union_words->resize(index.words_per_row(), 0);
  }
  if (base >= limit) return;
  const size_t wb = base >> 6;
  const size_t we = ((limit - 1) >> 6) + 1;
  uint64_t* out = union_words->data();
  for (size_t w = wb; w < we; ++w) {
    uint64_t u = 0;
    for (EventId a : alphabet) u |= index.row(a)[w];
    out[w] = u;
  }
}

// True iff `ev` occurs strictly inside the instance span (a gap) — the
// word-wise twin of projection.cc's OccursInGaps. `base` is the global
// bit offset of the instance's sequence.
bool OccursInGapsBitmap(const BitmapIndex& index, EventId ev, size_t base,
                        const IterInstance& inst) {
  if (inst.end <= inst.start + 1) return false;
  return BitmapIndex::AnyInRange(index.row(ev), base + inst.start + 1,
                                 base + inst.end);
}

}  // namespace

InstanceList SingleEventInstancesBitmap(const BitmapIndex& index,
                                        EventId ev) {
  InstanceList out;
  if (ev >= index.num_events()) return out;
  out.reserve(index.TotalCount(ev));
  const uint64_t* row = index.row(ev);
  const SequenceDatabase& db = index.db();
  const uint64_t* offsets = db.offsets();
  for (SeqId s = 0; s < db.size(); ++s) {
    const size_t base = offsets[s];
    const size_t limit = offsets[s + 1];
    for (size_t g = BitmapIndex::FirstSetAtOrAfter(row, base, limit);
         g != kNoBit; g = BitmapIndex::FirstSetAtOrAfter(row, g + 1, limit)) {
      const Pos p = static_cast<Pos>(g - base);
      out.push_back(IterInstance{s, p, p});
    }
  }
  return out;
}

void ForwardExtensionsBitmap(const BitmapIndex& index, const Pattern& pattern,
                             const InstanceList& instances,
                             ProjectionWorkspace* ws,
                             ForwardExtensionMap* out) {
  BitmapProjectionScratch& sc = ws->bitmap;
  const size_t num_events = index.num_events();
  const SequenceDatabase& db = index.db();
  const EventId* arena = db.arena();
  const uint64_t* offsets = db.offsets();
  DistinctAlphabet(pattern, num_events, &sc.alphabet);
  sc.forward.clear();
  sc.slots.Reset(num_events);
  ws->seen.EnsureSize(num_events);

  SeqId prepared = ~SeqId{0};
  size_t base = 0, limit = 0;
  for (const IterInstance& inst : instances) {
    if (inst.seq != prepared) {
      prepared = inst.seq;
      base = offsets[inst.seq];
      limit = offsets[inst.seq + 1];
      BuildUnionForRange(index, sc.alphabet, base, limit, &sc.union_words);
    }
    const size_t from = base + inst.end + 1;
    // First alphabet(P) event after the instance: bounds the candidate
    // window — everything before it is out-of-alphabet by construction —
    // and is itself the unique alphabet extension endpoint.
    const size_t stop =
        BitmapIndex::FirstSetAtOrAfter(sc.union_words.data(), from, limit);
    const size_t window_end = stop == kNoBit ? limit : stop;
    ws->seen.Clear();
    for (size_t g = from; g < window_end; ++g) {
      const EventId ev = arena[g];
      if (ev >= num_events) continue;  // Defensive; ids come from dict.
      if (!ws->seen.TestAndSet(ev)) continue;  // First occurrence only.
      if (OccursInGapsBitmap(index, ev, base, inst)) continue;
      ++sc.slots.Slot(ev);
      sc.forward.push_back(BitmapProjectionScratch::ForwardCandidate{
          ev, IterInstance{inst.seq, inst.start, static_cast<Pos>(g - base)}});
    }
    if (stop != kNoBit) {
      ++sc.slots.Slot(arena[stop]);
      sc.forward.push_back(BitmapProjectionScratch::ForwardCandidate{
          arena[stop],
          IterInstance{inst.seq, inst.start, static_cast<Pos>(stop - base)}});
    }
  }

  // Count-and-scatter drain: the touched-event list gives exact bucket
  // sizes, so each bucket is reserved once (no realloc churn — the CSR
  // cold path's dominant cost) and the flat buffer is scattered in
  // discovery order, which within an event IS the CSR bucket order. Only
  // the distinct-event list (small) is ever sorted, never the K
  // candidates.
  std::vector<EventId>& touched = sc.slots.touched();
  std::sort(touched.begin(), touched.end());
  out->clear();
  out->entries().reserve(touched.size());
  for (size_t i = 0; i < touched.size(); ++i) {
    const EventId ev = touched[i];
    InstanceList bucket = ws->forward.AcquireBucket();
    bucket.reserve(sc.slots.At(ev));
    out->emplace_back(ev, std::move(bucket));
    // Repurpose the slot as the event's entry index for the scatter.
    sc.slots.Slot(ev) = static_cast<uint32_t>(i);
  }
  auto& entries = out->entries();
  for (const BitmapProjectionScratch::ForwardCandidate& cand : sc.forward) {
    entries[sc.slots.At(cand.ev)].second.push_back(cand.inst);
  }
}

const BackwardExtensionMap& BackwardExtensionsBitmap(
    const BitmapIndex& index, const Pattern& pattern,
    const InstanceList& instances, ProjectionWorkspace* ws) {
  BitmapProjectionScratch& sc = ws->bitmap;
  const size_t num_events = index.num_events();
  const SequenceDatabase& db = index.db();
  const EventId* arena = db.arena();
  const uint64_t* offsets = db.offsets();
  DistinctAlphabet(pattern, num_events, &sc.alphabet);
  ws->back.Reset(num_events);
  ws->seen.EnsureSize(num_events);

  SeqId prepared = ~SeqId{0};
  size_t base = 0, limit = 0;
  for (const IterInstance& inst : instances) {
    if (inst.seq != prepared) {
      prepared = inst.seq;
      base = offsets[inst.seq];
      limit = offsets[inst.seq + 1];
      BuildUnionForRange(index, sc.alphabet, base, limit, &sc.union_words);
    }
    const size_t gstart = base + inst.start;
    // Last alphabet(P) event before the instance start bounds the window;
    // it is itself the unique alphabet backward extension.
    const size_t stop =
        BitmapIndex::LastSetBefore(sc.union_words.data(), base, gstart);
    const size_t window_begin = stop == kNoBit ? base : stop + 1;
    ws->seen.Clear();
    for (size_t g = gstart; g-- > window_begin;) {
      const EventId ev = arena[g];
      if (ev >= num_events) continue;  // Defensive; ids come from dict.
      if (!ws->seen.TestAndSet(ev)) continue;  // Nearest-to-start only.
      if (OccursInGapsBitmap(index, ev, base, inst)) continue;
      BackwardExtension& ext = ws->back.Slot(ev);
      ++ext.support;
      ext.all_adjacent = ext.all_adjacent && (g + 1 == gstart);
    }
    if (stop != kNoBit) {
      BackwardExtension& ext = ws->back.Slot(arena[stop]);
      ++ext.support;
      ext.all_adjacent = ext.all_adjacent && (stop + 1 == gstart);
    }
  }

  std::vector<EventId>& touched = ws->back.touched();
  std::sort(touched.begin(), touched.end());
  ws->back_result.clear();
  for (EventId ev : touched) {
    ws->back_result.emplace_back(ev, ws->back.At(ev));
  }
  return ws->back_result;
}

uint64_t CountInstancesBitmap(const BitmapIndex& index, const Pattern& pattern,
                              QreRecountScratch* scratch) {
  if (pattern.empty()) return 0;
  QreRecountScratch local;
  if (scratch == nullptr) scratch = &local;
  const size_t num_events = index.num_events();
  if (pattern[0] >= num_events) return 0;  // First event never occurs.
  DistinctAlphabet(pattern, num_events, &scratch->alphabet);
  const SequenceDatabase& db = index.db();
  const EventId* arena = db.arena();
  const uint64_t* offsets = db.offsets();
  const uint64_t* head_row = index.row(pattern[0]);
  uint64_t count = 0;
  for (SeqId s = 0; s < db.size(); ++s) {
    const size_t base = offsets[s];
    const size_t limit = offsets[s + 1];
    size_t g = BitmapIndex::FirstSetAtOrAfter(head_row, base, limit);
    if (g == kNoBit) continue;
    BuildUnionForRange(index, scratch->alphabet, base, limit,
                       &scratch->union_words);
    const uint64_t* union_row = scratch->union_words.data();
    for (; g != kNoBit;
         g = BitmapIndex::FirstSetAtOrAfter(head_row, g + 1, limit)) {
      // Deterministic chain (Definition 4.1): each next pattern event must
      // be the first alphabet event after the previous one.
      size_t cur = g;
      bool ok = true;
      for (size_t k = 1; k < pattern.size(); ++k) {
        const size_t a =
            BitmapIndex::FirstSetAtOrAfter(union_row, cur + 1, limit);
        if (a == kNoBit || arena[a] != pattern[k]) {
          ok = false;
          break;
        }
        cur = a;
      }
      if (ok) ++count;
    }
  }
  return count;
}

size_t CountOccurrencesBitmap(const BitmapIndex& index,
                              const Pattern& pattern) {
  if (pattern.empty()) return 0;
  const size_t num_events = index.num_events();
  const SequenceDatabase& db = index.db();
  const uint64_t* offsets = db.offsets();
  const EventId last = pattern.last();
  if (last >= num_events) return 0;
  const uint64_t* last_row = index.row(last);
  size_t count = 0;
  for (SeqId s = 0; s < db.size(); ++s) {
    const size_t base = offsets[s];
    const size_t limit = offsets[s + 1];
    // Greedy earliest embedding of the prefix, one first-set-bit per
    // event; the remaining occurrences of the last event are the temporal
    // points (Definition 5.1).
    size_t from = base;
    bool embedded = true;
    for (size_t k = 0; k + 1 < pattern.size(); ++k) {
      if (pattern[k] >= num_events) {
        embedded = false;
        break;
      }
      const size_t g =
          BitmapIndex::FirstSetAtOrAfter(index.row(pattern[k]), from, limit);
      if (g == kNoBit) {
        embedded = false;
        break;
      }
      from = g + 1;
    }
    if (!embedded) continue;
    count += BitmapIndex::CountInRange(last_row, from, limit);
  }
  return count;
}

}  // namespace specmine
