// The bitmap (dense-row) instantiations of the vertical projection
// template. The bodies — shared with the hybrid sparse/dense format —
// live in vertical_projection_impl.h; the word primitives they bottom out
// in go through the runtime-dispatched kernel table (simd_kernels.h), so
// these arms run AVX2 when the host supports it and the always-built
// scalar fallback otherwise, with byte-identical results either way.

#include "src/itermine/bitmap_projection.h"

#include <algorithm>

#include "src/itermine/hybrid_index.h"
#include "src/itermine/vertical_projection_impl.h"

namespace specmine {

InstanceList SingleEventInstancesBitmap(const BitmapIndex& index,
                                        EventId ev) {
  return internal::SingleEventInstancesVertical(index, ev);
}

InstanceList SingleEventInstancesHybrid(const HybridIndex& index, EventId ev) {
  if (ev >= index.num_events() || index.is_dense(ev)) {
    return internal::SingleEventInstancesVertical(index, ev);
  }
  InstanceList out;
  const uint32_t* it = index.sparse_begin(ev);
  const uint32_t* end = index.sparse_end(ev);
  out.reserve(static_cast<size_t>(end - it));
  const SequenceDatabase& db = index.db();
  const uint64_t* offsets = db.offsets();
  const size_t num_seqs = db.size();
  SeqId s = 0;
  for (; it != end; ++it) {
    // Positions ascend, so each sequence lookup resumes past the last hit.
    s = static_cast<SeqId>(
        std::upper_bound(offsets + s + 1, offsets + num_seqs + 1,
                         static_cast<uint64_t>(*it)) -
        offsets - 1);
    const Pos p = static_cast<Pos>(*it - offsets[s]);
    out.push_back(IterInstance{s, p, p});
  }
  return out;
}

void ForwardExtensionsBitmap(const BitmapIndex& index, const Pattern& pattern,
                             const InstanceList& instances,
                             ProjectionWorkspace* ws,
                             ForwardExtensionMap* out) {
  internal::ForwardExtensionsVertical(index, pattern, instances, ws, out);
}

const BackwardExtensionMap& BackwardExtensionsBitmap(
    const BitmapIndex& index, const Pattern& pattern,
    const InstanceList& instances, ProjectionWorkspace* ws) {
  return internal::BackwardExtensionsVertical(index, pattern, instances, ws);
}

uint64_t CountInstancesBitmap(const BitmapIndex& index, const Pattern& pattern,
                              QreRecountScratch* scratch) {
  return internal::CountInstancesVertical(index, pattern, scratch);
}

size_t CountOccurrencesBitmap(const BitmapIndex& index,
                              const Pattern& pattern) {
  return internal::CountOccurrencesVertical(index, pattern);
}

}  // namespace specmine
