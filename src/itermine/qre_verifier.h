// Independent implementation of the QRE instance semantics (Definition
// 4.1), used as a test oracle against the projection engine and by the
// brute-force miners.

#ifndef SPECMINE_ITERMINE_QRE_VERIFIER_H_
#define SPECMINE_ITERMINE_QRE_VERIFIER_H_

#include "src/itermine/instance.h"
#include "src/patterns/pattern.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief True iff seq[start..end] matches the QRE
/// p1;[-alphabet]*;p2;...;[-alphabet]*;pn of \p pattern, checked by direct
/// substring walk.
bool IsQreInstance(const Pattern& pattern, EventSpan seq, Pos start,
                   Pos end);

/// \brief All instances of \p pattern in \p seq, found by attempting the
/// deterministic first-alphabet-event chain from every occurrence of the
/// pattern's first event.
InstanceList FindInstances(const Pattern& pattern, EventSpan seq,
                           SeqId seq_id);

/// \brief All instances across the database, sorted by (seq, start).
InstanceList FindAllInstances(const Pattern& pattern,
                              const SequenceDatabase& db);

/// \brief Instance count across the database (the paper's support).
uint64_t CountInstances(const Pattern& pattern, const SequenceDatabase& db);

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_QRE_VERIFIER_H_
