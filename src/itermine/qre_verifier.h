// Independent implementation of the QRE instance semantics (Definition
// 4.1), used as a test oracle against the projection engine and by the
// brute-force miners.

#ifndef SPECMINE_ITERMINE_QRE_VERIFIER_H_
#define SPECMINE_ITERMINE_QRE_VERIFIER_H_

#include "src/itermine/counting_backend.h"
#include "src/itermine/instance.h"
#include "src/patterns/pattern.h"
#include "src/trace/sequence_database.h"

namespace specmine {

struct QreRecountScratch;

/// \brief True iff seq[start..end] matches the QRE
/// p1;[-alphabet]*;p2;...;[-alphabet]*;pn of \p pattern, checked by direct
/// substring walk.
bool IsQreInstance(const Pattern& pattern, EventSpan seq, Pos start,
                   Pos end);

/// \brief All instances of \p pattern in \p seq, found by attempting the
/// deterministic first-alphabet-event chain from every occurrence of the
/// pattern's first event.
InstanceList FindInstances(const Pattern& pattern, EventSpan seq,
                           SeqId seq_id);

/// \brief All instances across the database, sorted by (seq, start).
InstanceList FindAllInstances(const Pattern& pattern,
                              const SequenceDatabase& db);

/// \brief Instance count across the database (the paper's support).
uint64_t CountInstances(const Pattern& pattern, const SequenceDatabase& db);

/// \brief Backend-accelerated instance recount: identical to
/// CountInstances(pattern, backend.db()). The CSR arm IS that oracle scan;
/// the bitmap arm chain-walks first-set bits (bitmap_projection.h).
/// \p scratch, when non-null, keeps recount loops allocation-free.
uint64_t CountInstances(const CountingBackend& backend, const Pattern& pattern,
                        QreRecountScratch* scratch = nullptr);

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_QRE_VERIFIER_H_
