#include "src/itermine/simd_kernels.h"

#include <atomic>
#include <cstdlib>

#include "src/itermine/bitmap_index.h"

namespace specmine {

namespace {

// The scalar kernels delegate to the BitmapIndex static primitives — the
// one canonical scalar implementation, shared with direct callers.

size_t FirstSetScalar(const uint64_t* row, size_t from, size_t limit) {
  return BitmapIndex::FirstSetAtOrAfter(row, from, limit);
}

size_t LastSetScalar(const uint64_t* row, size_t lo, size_t before) {
  return BitmapIndex::LastSetBefore(row, lo, before);
}

bool AnyRangeScalar(const uint64_t* row, size_t from, size_t limit) {
  return BitmapIndex::FirstSetAtOrAfter(row, from, limit) != kNoBit;
}

size_t CountRangeScalar(const uint64_t* row, size_t from, size_t limit) {
  return BitmapIndex::CountInRange(row, from, limit);
}

void UnionRowsScalar(const uint64_t* const* rows, size_t n, size_t wb,
                     size_t we, uint64_t* out) {
  for (size_t w = wb; w < we; ++w) {
    uint64_t u = 0;
    for (size_t i = 0; i < n; ++i) u |= rows[i][w];
    out[w] = u;
  }
}

constexpr SimdKernels kScalarKernels = {
    "scalar",        FirstSetScalar,  LastSetScalar,
    AnyRangeScalar,  CountRangeScalar, UnionRowsScalar,
};

bool ForceScalarFromEnv() {
  const char* env = std::getenv("SPECMINE_FORCE_SCALAR");
  if (env == nullptr || env[0] == '\0') return false;
  return !(env[0] == '0' && env[1] == '\0');
}

const SimdKernels* ResolveOnce() {
  if (ForceScalarFromEnv()) return &kScalarKernels;
  const SimdKernels* avx2 = Avx2KernelsOrNull();
  return avx2 != nullptr ? avx2 : &kScalarKernels;
}

}  // namespace

namespace internal {
// Constant-initialized to the scalar table so any query issued during
// another TU's static initialization is already safe (just unoptimized);
// the dynamic initializer below upgrades it to the resolved table before
// main(). Kernels() is then a plain load — it sits under every word-wise
// query, so it must cost nothing beyond the indirect call itself.
const SimdKernels* g_active_kernels = &kScalarKernels;
}  // namespace internal

namespace {
const bool g_kernels_resolved = [] {
  internal::g_active_kernels = ResolveOnce();
  return true;
}();
}  // namespace

const SimdKernels& ScalarKernels() { return kScalarKernels; }

const char* SimdDispatchLevel() { return Kernels().level; }

void SetKernelsForTest(const SimdKernels* kernels) {
  internal::g_active_kernels = kernels != nullptr ? kernels : ResolveOnce();
}

}  // namespace specmine
