#include "src/itermine/generators.h"

#include "src/itermine/qre_verifier.h"
#include "src/support/stopwatch.h"

namespace specmine {

bool IsIterativeGenerator(const SequenceDatabase& db, const Pattern& pattern,
                          uint64_t support) {
  for (size_t k = 0; k < pattern.size(); ++k) {
    Pattern deleted = pattern.Erase(k);
    if (deleted.empty()) continue;  // Length-1 patterns are generators.
    if (CountInstances(deleted, db) == support) return false;
  }
  return true;
}

PatternSet MineIterativeGenerators(const PositionIndex& index,
                                   const IterGeneratorMinerOptions& options,
                                   IterMinerStats* stats, ThreadPool* pool) {
  const SequenceDatabase& db = index.db();
  PatternSet out;
  IterMinerOptions scan;
  scan.min_support = options.min_support;
  scan.max_length = options.max_length;
  scan.num_threads = options.num_threads;
  ScanFrequentIterative(
      index, scan,
      [&](const Pattern& p, uint64_t support) {
        if (IsIterativeGenerator(db, p, support)) out.Add(p, support);
        // Unlike the sequential case, support equality with a deletion
        // does not propagate structurally to extensions under QRE
        // semantics, so subtrees are always grown.
        return true;
      },
      stats, pool);
  return out;
}

PatternSet MineIterativeGenerators(const SequenceDatabase& db,
                                   const IterGeneratorMinerOptions& options,
                                   IterMinerStats* stats) {
  IterMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Stopwatch sw;
  PositionIndex index(db);
  const double index_build_seconds = sw.ElapsedSeconds();
  PatternSet out = MineIterativeGenerators(index, options, stats, nullptr);
  stats->index_build_seconds = index_build_seconds;
  return out;
}

}  // namespace specmine
