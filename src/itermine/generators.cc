#include "src/itermine/generators.h"

#include "src/itermine/bitmap_projection.h"
#include "src/itermine/qre_verifier.h"
#include "src/support/stopwatch.h"

namespace specmine {

namespace {

bool IsGeneratorImpl(const CountingBackend& backend, const Pattern& pattern,
                     uint64_t support, QreRecountScratch* scratch) {
  for (size_t k = 0; k < pattern.size(); ++k) {
    Pattern deleted = pattern.Erase(k);
    if (deleted.empty()) continue;  // Length-1 patterns are generators.
    if (CountInstances(backend, deleted, scratch) == support) return false;
  }
  return true;
}

}  // namespace

bool IsIterativeGenerator(const SequenceDatabase& db, const Pattern& pattern,
                          uint64_t support) {
  for (size_t k = 0; k < pattern.size(); ++k) {
    Pattern deleted = pattern.Erase(k);
    if (deleted.empty()) continue;  // Length-1 patterns are generators.
    if (CountInstances(deleted, db) == support) return false;
  }
  return true;
}

bool IsIterativeGenerator(const CountingBackend& backend,
                          const Pattern& pattern, uint64_t support) {
  return IsGeneratorImpl(backend, pattern, support, nullptr);
}

PatternSet MineIterativeGenerators(const CountingBackend& backend,
                                   const IterGeneratorMinerOptions& options,
                                   IterMinerStats* stats, ThreadPool* pool) {
  PatternSet out;
  IterMinerOptions scan;
  scan.min_support = options.min_support;
  scan.max_length = options.max_length;
  scan.num_threads = options.num_threads;
  scan.cancel = options.cancel;
  // The sink runs on the calling thread even under the parallel scan, so
  // one recount scratch serves the whole run.
  QreRecountScratch scratch;
  ScanFrequentIterative(
      backend, scan,
      [&](const Pattern& p, uint64_t support) {
        if (IsGeneratorImpl(backend, p, support, &scratch)) {
          out.Add(p, support);
        }
        // Unlike the sequential case, support equality with a deletion
        // does not propagate structurally to extensions under QRE
        // semantics, so subtrees are always grown.
        return true;
      },
      stats, pool);
  return out;
}

PatternSet MineIterativeGenerators(const PositionIndex& index,
                                   const IterGeneratorMinerOptions& options,
                                   IterMinerStats* stats, ThreadPool* pool) {
  return MineIterativeGenerators(CountingBackend(index), options, stats,
                                 pool);
}

PatternSet MineIterativeGenerators(const SequenceDatabase& db,
                                   const IterGeneratorMinerOptions& options,
                                   IterMinerStats* stats) {
  IterMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  const BackendKind kind = ResolveBackendKindClamped(options.backend, db);
  Stopwatch sw;
  if (kind == BackendKind::kBitmap) {
    BitmapIndex index(db);
    const double index_build_seconds = sw.ElapsedSeconds();
    PatternSet out = MineIterativeGenerators(CountingBackend(index), options,
                                             stats, nullptr);
    stats->index_build_seconds = index_build_seconds;
    return out;
  }
  if (kind == BackendKind::kHybrid) {
    HybridIndex index(db);
    const double index_build_seconds = sw.ElapsedSeconds();
    PatternSet out = MineIterativeGenerators(CountingBackend(index), options,
                                             stats, nullptr);
    stats->index_build_seconds = index_build_seconds;
    return out;
  }
  PositionIndex index(db);
  const double index_build_seconds = sw.ElapsedSeconds();
  PatternSet out = MineIterativeGenerators(CountingBackend(index), options,
                                           stats, nullptr);
  stats->index_build_seconds = index_build_seconds;
  return out;
}

}  // namespace specmine
