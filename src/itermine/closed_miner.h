// Closed iterative pattern mining (the "Closed" series of Figure 1;
// algorithmic details in Lo, Khoo & Liu, KDD 2007).
//
// A frequent pattern P is reported iff it is closed (Definition 4.2): no
// super-sequence Q has equal support together with a one-to-one
// correspondence between instances. Closedness is decided by three checks
// (see projection.h and DESIGN.md §1.1 for the proofs and the documented
// caveat about exotic multi-event absorbers):
//
//   1. forward absorption  — some P++<e> has sup == sup(P);
//   2. backward absorption — some <e>++P has sup == sup(P);
//   3. infix absorption    — some out-of-alphabet event has a uniform
//      non-zero per-gap count profile across all instances.
//
// Search-space pruning (the source of the paper's Figure-1 runtime gap):
//
//   P1 (sound)    : some e IN alphabet(P) sits immediately before the start
//                   of every instance. Every descendant P' then admits the
//                   backward absorber <e>++P' (e is in every descendant's
//                   alphabet, so gaps already exclude it, and adjacency
//                   leaves no room for interference) — the subtree contains
//                   no closed pattern.
//   P2 (heuristic): the same with e OUTSIDE alphabet(P) (and e absent from
//                   all instance gaps). Sound for P itself; a descendant
//                   could in principle re-introduce e inside a *new* gap and
//                   become closed. Emitted patterns are always verified, so
//                   P2 can only cause closed patterns to be missed; the
//                   property suite quantifies this against the filter-only
//                   miner (no divergence observed on randomized runs).

#ifndef SPECMINE_ITERMINE_CLOSED_MINER_H_
#define SPECMINE_ITERMINE_CLOSED_MINER_H_

#include "src/itermine/full_miner.h"

namespace specmine {

/// \brief Options for the closed iterative pattern miner.
struct ClosedIterMinerOptions {
  /// Minimum number of instances (absolute).
  uint64_t min_support = 1;
  /// Physical counting representation (see IterMinerOptions::backend).
  BackendChoice backend = BackendChoice::kAuto;
  /// Maximum pattern length; 0 means unbounded.
  size_t max_length = 0;
  /// Enable the sound P1 subtree prune.
  bool prefix_prune = true;
  /// Enable the heuristic P2 subtree prune (see header comment).
  bool aggressive_prefix_prune = true;
  /// Enable the infix (uniform-gap-profile) closedness check. Disabling it
  /// makes the miner report a superset of the closed patterns (useful for
  /// ablation benchmarks).
  bool infix_check = true;
  /// P3 (heuristic): prune the whole subtree when a uniform-profile infix
  /// absorber exists. Suffix-extending by the absorber event itself is
  /// impossible (it would sit inside an old gap and break the instance
  /// chain), and any other suffix extension keeps the old-gap profile
  /// uniform, so the absorber survives unless the extension re-introduces
  /// the event *after* the pattern with non-uniform counts — the same
  /// caveat class as P2. This prune is what collapses the search space on
  /// deterministic protocol traces (the JBoss case study shape): every
  /// "skip one call of the protocol" subtree is entirely non-closed.
  bool infix_prune = true;
  /// Worker threads for first-level subtree parallelism; 0 = hardware
  /// concurrency, 1 = sequential. Output and stats are identical at every
  /// setting (per-worker results merge deterministically in root order).
  size_t num_threads = 0;
  /// Optional cooperative stop signal, polled at subtree granularity; a
  /// stopped run returns whatever was mined so far and reports the reason
  /// in IterMinerStats::stopped. Not owned; may be null.
  const CancelToken* cancel = nullptr;
};

/// \brief Mines the closed frequent iterative patterns of \p db.
///
/// Deprecated entry point: builds a fresh PositionIndex per call. New code
/// should go through specmine::Engine (src/engine/engine.h).
PatternSet MineClosedIterative(const SequenceDatabase& db,
                               const ClosedIterMinerOptions& options,
                               IterMinerStats* stats = nullptr);

/// \brief Index-reusing variant: mines over a prebuilt \p index (its
/// database). stats->index_build_seconds is left at 0; \p pool, when
/// non-null and matching the resolved thread count, runs the fan-out.
PatternSet MineClosedIterative(const PositionIndex& index,
                               const ClosedIterMinerOptions& options,
                               IterMinerStats* stats = nullptr,
                               ThreadPool* pool = nullptr);

/// \brief Backend-reusing variant: mines over either physical counting
/// representation (the PositionIndex overload wraps the CSR one).
PatternSet MineClosedIterative(const CountingBackend& backend,
                               const ClosedIterMinerOptions& options,
                               IterMinerStats* stats = nullptr,
                               ThreadPool* pool = nullptr);

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_CLOSED_MINER_H_
