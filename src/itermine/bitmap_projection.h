// The vertical implementations of the projection queries: the same
// contracts as projection.h, computed word-wise over BitmapIndex rows
// instead of per-position scans over CSR position lists.
//
// These are the kBitmap arms of the CountingBackend dispatch in
// projection.cc / qre_verifier.cc / occurrence_engine.cc; callers outside
// tests and benchmarks should go through the dispatching overloads. Every
// function here is observationally identical to its CSR/scalar sibling —
// same entries, same supports, same emission order — which is what the
// backend-equivalence property suite pins down.
//
// Cold-path note: unlike the CSR engine, whose workspace carries several
// O(alphabet)-sized epoch tables, the bitmap engine's scratch is one
// word row (ceil(total events / 64) words) plus flat candidate buffers
// that scale with the result size. A cold call (fresh workspace) therefore
// allocates almost nothing — the rebuild of extension enumeration that
// closes the cold/warm gap the benchmark trajectory shows for CSR.

#ifndef SPECMINE_ITERMINE_BITMAP_PROJECTION_H_
#define SPECMINE_ITERMINE_BITMAP_PROJECTION_H_

#include <cstdint>
#include <vector>

#include "src/itermine/bitmap_index.h"
#include "src/itermine/projection.h"

namespace specmine {

class HybridIndex;

/// \brief Bitmap arm of SingleEventInstances: every occurrence of \p ev,
/// enumerated word-wise in (sequence, position) order.
InstanceList SingleEventInstancesBitmap(const BitmapIndex& index, EventId ev);

/// \brief Hybrid arm of SingleEventInstances. Dense events enumerate their
/// bitmap row like the bitmap arm; sparse events walk their sorted ID-list
/// directly — O(occurrences x log sequences) instead of the per-sequence
/// scan both pure formats pay, which is what makes low-support root
/// expansion cheap on huge-alphabet corpora.
InstanceList SingleEventInstancesHybrid(const HybridIndex& index, EventId ev);

/// \brief Bitmap arm of ForwardExtensions. Same output contract: \p out
/// holds the instances of every P++<e>, ascending by event, each bucket in
/// instance-scan order.
void ForwardExtensionsBitmap(const BitmapIndex& index, const Pattern& pattern,
                             const InstanceList& instances,
                             ProjectionWorkspace* ws,
                             ForwardExtensionMap* out);

/// \brief Bitmap arm of BackwardExtensions; the returned reference lives
/// in \p ws like the CSR arm's.
const BackwardExtensionMap& BackwardExtensionsBitmap(
    const BitmapIndex& index, const Pattern& pattern,
    const InstanceList& instances, ProjectionWorkspace* ws);

/// \brief Reusable scratch for the word-wise QRE recount (the alphabet
/// union row). Optional: callers in loops (the generator check, shard
/// recounts) keep one alive to stay allocation-free.
struct QreRecountScratch {
  std::vector<uint64_t> union_words;
  std::vector<EventId> alphabet;
};

/// \brief Bitmap arm of the QRE recount: CountInstances(pattern, db) by
/// first-set-bit chain walking instead of the per-position oracle scan.
uint64_t CountInstancesBitmap(const BitmapIndex& index, const Pattern& pattern,
                              QreRecountScratch* scratch = nullptr);

/// \brief Bitmap arm of CountOccurrences (plain-subsequence temporal
/// points): greedy prefix chain per sequence, then a popcount of the last
/// event's remaining occurrences.
size_t CountOccurrencesBitmap(const BitmapIndex& index,
                              const Pattern& pattern);

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_BITMAP_PROJECTION_H_
