// MergedCountingIndex: the lazy merged backend — a CountingBackend
// implementation that answers merged-view queries directly over the
// per-shard indexes, so Engine::FromShardSet sessions never materialize
// ShardedDatabase::Merge() (the largest RAM cliff on big corpora; this is
// the future-work slot engine.h used to name).
//
// Why per-shard delegation is exact: the merged database is the
// concatenation of the healthy shards in manifest order, every sequence
// lives wholly inside one shard, and every projection/counting query of
// the mining engine is sequence-local. A merged query therefore
// decomposes into runs of shard-local queries:
//
//   * merged SeqId  = shard sequence base + local SeqId (seq_base),
//   * merged EventId <-> shard-local EventId through the manifest remap
//     tables (to_local is the inverted remap; an event absent from a
//     shard's alphabet simply contributes nothing there),
//   * per-event totals are sums of per-shard totals (precomputed once),
//   * instance lists translate by offsetting SeqIds — scan order within a
//     shard is merged scan order, and shard order is merged order.
//
// Every result is byte-identical to the same query over the eagerly
// merged database — pinned by the lazy-merged arm of
// tests/backend_equivalence_test.cc, including quarantined-shard sets
// (where "merged" means the healthy subset, exactly like Merge()).
//
// The index borrows the ShardedDatabase and the per-shard backends (the
// Engine's cached shard indexes); both must outlive it. Memory cost is
// the remap inversions plus merged count tables — O(shards x alphabet),
// independent of the arena size that Merge() would copy.

#ifndef SPECMINE_ITERMINE_MERGED_INDEX_H_
#define SPECMINE_ITERMINE_MERGED_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/itermine/bitmap_projection.h"
#include "src/itermine/counting_backend.h"
#include "src/itermine/projection.h"
#include "src/trace/shard_set.h"

namespace specmine {

/// \brief Merged-view counting index over per-shard backends.
class MergedCountingIndex {
 public:
  /// \brief Wraps \p set with one counting backend per (healthy) shard,
  /// in shard order. Precomputes the remap inversions and the merged
  /// per-event count tables in O(shards x merged alphabet).
  MergedCountingIndex(const ShardedDatabase& set,
                      std::vector<CountingBackend> shard_backends);

  /// \brief The underlying shard set.
  const ShardedDatabase& shard_set() const { return *set_; }

  /// \brief Number of wrapped shards.
  size_t num_shards() const { return shards_.size(); }

  /// \brief Shard \p i's counting backend (shard-local event ids).
  const CountingBackend& shard_backend(size_t i) const { return shards_[i]; }

  /// \brief First merged SeqId of shard \p i (i == num_shards() gives the
  /// total sequence count).
  SeqId seq_base(size_t i) const { return seq_base_[i]; }

  /// \brief The shard containing merged sequence \p seq.
  size_t ShardOfSequence(SeqId seq) const {
    size_t lo = 0, hi = seq_base_.size() - 1;
    while (lo + 1 < hi) {
      const size_t mid = (lo + hi) / 2;
      if (seq_base_[mid] <= seq) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// \brief Shard \p shard's local id for merged event \p ev, or
  /// kInvalidEvent when the event is outside that shard's alphabet.
  EventId ToLocal(size_t shard, EventId ev) const {
    return ev < to_local_[shard].size() ? to_local_[shard][ev]
                                        : kInvalidEvent;
  }

  /// \brief Size of the merged dictionary.
  size_t num_events() const { return num_events_; }

  /// \brief Total occurrences of merged event \p ev across all shards.
  uint64_t TotalCount(EventId ev) const {
    return ev < total_counts_.size() ? total_counts_[ev] : 0;
  }

  /// \brief Sequences containing merged event \p ev, across all shards.
  size_t SequenceCount(EventId ev) const {
    return ev < sequence_counts_.size() ? sequence_counts_[ev] : 0;
  }

  /// \brief True iff \p ev occurs in merged sequence \p seq within
  /// [lo, hi] inclusive (delegates into the owning shard).
  bool AnyInRange(EventId ev, SeqId seq, Pos lo, Pos hi) const;

  /// \brief Bytes held by the merged-view tables (remap inversions +
  /// count tables) — what the lazy backend costs instead of Merge().
  size_t table_bytes() const;

 private:
  const ShardedDatabase* set_;
  std::vector<CountingBackend> shards_;
  std::vector<SeqId> seq_base_;               // num_shards + 1.
  std::vector<std::vector<EventId>> to_local_;  // Per shard: merged->local.
  size_t num_events_ = 0;
  std::vector<uint64_t> total_counts_;
  std::vector<size_t> sequence_counts_;
};

// ---------------------------------------------------------------------------
// The kMerged arms of the CountingBackend dispatch (projection.cc,
// qre_verifier.cc, occurrence_engine.cc). Contracts and output order are
// identical to the other backends'.

/// \brief Merged arm of SingleEventInstances.
InstanceList SingleEventInstancesMerged(const MergedCountingIndex& index,
                                        EventId ev);

/// \brief Merged arm of ForwardExtensions.
void ForwardExtensionsMerged(const MergedCountingIndex& index,
                             const Pattern& pattern,
                             const InstanceList& instances,
                             ProjectionWorkspace* ws,
                             ForwardExtensionMap* out);

/// \brief Merged arm of BackwardExtensions; the returned reference lives
/// in \p ws like the other arms'.
const BackwardExtensionMap& BackwardExtensionsMerged(
    const MergedCountingIndex& index, const Pattern& pattern,
    const InstanceList& instances, ProjectionWorkspace* ws);

/// \brief Merged arm of the QRE recount: per-shard exact counts, summed.
uint64_t CountInstancesMerged(const MergedCountingIndex& index,
                              const Pattern& pattern,
                              QreRecountScratch* scratch);

/// \brief Merged arm of CountOccurrences (temporal points), summed.
size_t CountOccurrencesMerged(const MergedCountingIndex& index,
                              const Pattern& pattern);

/// \brief Merged arm of HasUniformInfixAbsorber: the per-gap profile
/// intersection over shard-local arenas, keyed by merged event ids.
bool HasUniformInfixAbsorberMerged(const MergedCountingIndex& index,
                                   const Pattern& pattern,
                                   const InstanceList& instances,
                                   ProjectionWorkspace* ws);

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_MERGED_INDEX_H_
