#include "src/itermine/instance.h"

#include <sstream>

namespace specmine {

std::string IterInstance::ToString() const {
  std::ostringstream os;
  os << '(' << seq << ", " << start << ", " << end << ')';
  return os.str();
}

}  // namespace specmine
