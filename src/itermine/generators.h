// Iterative pattern *generator* mining — the first extension sketched in
// the paper's future work (Section 8): "The set of frequent patterns can
// be grouped into equivalence classes. Simply put, each class contains
// patterns having the same support. Generators are minimal members of
// equivalence classes of frequent patterns."
//
// Operational definition used here (mirroring the closed miner's
// single-event checks): a frequent pattern P is a generator iff no
// one-event deletion of P is itself a pattern with the same support whose
// instances each contain a distinct instance of P... inverted: iff no
// one-event deletion D of P has sup(D) == sup(P) with every instance of D
// corresponding to an instance of P — i.e. P adds no information over D.
// As with closedness, QRE support is not monotone along arbitrary
// super-sequence chains, so the one-event check is the tractable
// single-step reading of the equivalence-class definition; the property
// suite compares it against a brute-force variant on random databases.

#ifndef SPECMINE_ITERMINE_GENERATORS_H_
#define SPECMINE_ITERMINE_GENERATORS_H_

#include "src/itermine/full_miner.h"

namespace specmine {

/// \brief Options for the iterative generator miner.
struct IterGeneratorMinerOptions {
  /// Minimum number of instances (absolute).
  uint64_t min_support = 1;
  /// Physical counting representation (see IterMinerOptions::backend).
  /// The deletion recounts run on the same backend as the scan.
  BackendChoice backend = BackendChoice::kAuto;
  /// Maximum pattern length; 0 means unbounded.
  size_t max_length = 0;
  /// Worker threads for the underlying scan (0 = hardware concurrency,
  /// 1 = sequential); output is identical at every setting.
  size_t num_threads = 0;
  /// Optional cooperative stop signal, forwarded to the underlying scan
  /// (see IterMinerOptions::cancel). Not owned; may be null.
  const CancelToken* cancel = nullptr;
};

/// \brief Mines the frequent iterative generators of \p db.
///
/// Deprecated entry point: builds a fresh PositionIndex per call. New code
/// should go through specmine::Engine (src/engine/engine.h).
PatternSet MineIterativeGenerators(const SequenceDatabase& db,
                                   const IterGeneratorMinerOptions& options,
                                   IterMinerStats* stats = nullptr);

/// \brief Index-reusing variant: mines over a prebuilt \p index (its
/// database). stats->index_build_seconds is left at 0; \p pool, when
/// non-null and matching the resolved thread count, runs the fan-out.
PatternSet MineIterativeGenerators(const PositionIndex& index,
                                   const IterGeneratorMinerOptions& options,
                                   IterMinerStats* stats = nullptr,
                                   ThreadPool* pool = nullptr);

/// \brief Backend-reusing variant: mines over either physical counting
/// representation (the PositionIndex overload wraps the CSR one).
PatternSet MineIterativeGenerators(const CountingBackend& backend,
                                   const IterGeneratorMinerOptions& options,
                                   IterMinerStats* stats = nullptr,
                                   ThreadPool* pool = nullptr);

/// \brief True iff the one-event deletion check declares \p pattern a
/// generator (exposed for tests and the ranking module).
bool IsIterativeGenerator(const SequenceDatabase& db, const Pattern& pattern,
                          uint64_t support);

/// \brief Backend-accelerated deletion check: identical verdicts, with
/// the recounts on \p backend (word-wise under kBitmap).
bool IsIterativeGenerator(const CountingBackend& backend,
                          const Pattern& pattern, uint64_t support);

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_GENERATORS_H_
