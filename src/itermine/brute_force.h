// Brute-force reference miners used as test oracles. These share no code
// with the production miners: support counting goes through the independent
// QRE verifier and enumeration is breadth-first over the apriori lattice.
// Intended for small databases only.

#ifndef SPECMINE_ITERMINE_BRUTE_FORCE_H_
#define SPECMINE_ITERMINE_BRUTE_FORCE_H_

#include "src/patterns/pattern_set.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Enumerates every frequent iterative pattern by breadth-first
/// candidate extension, counting instances with the QRE verifier.
/// \p max_length of 0 means unbounded.
PatternSet BruteForceFrequentIterative(const SequenceDatabase& db,
                                       uint64_t min_support,
                                       size_t max_length = 0);

/// \brief Computes the closed set at the level of Definition 4.2: a
/// frequent pattern is dropped iff some frequent proper super-sequence has
/// equal support and a total one-to-one instance correspondence.
///
/// Enumerates the full frequent set unbounded in length (any absorber has
/// support equal to an above-threshold pattern, hence is itself frequent
/// and enumerated).
PatternSet BruteForceClosedIterative(const SequenceDatabase& db,
                                     uint64_t min_support);

/// \brief True iff every instance of \p sub corresponds to a distinct
/// instance of \p super (containment in the same sequence), i.e. the
/// correspondence half of Definition 4.2. Exposed for tests.
bool HasTotalInstanceCorrespondence(const SequenceDatabase& db,
                                    const Pattern& sub, const Pattern& super);

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_BRUTE_FORCE_H_
