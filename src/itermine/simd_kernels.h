// Runtime-dispatched word kernels for the vertical counting backends.
//
// Every vertical projection query bottoms out in four word-array shapes:
// find-first-set in a bit range, find-last-set, popcount over a range,
// and OR-ing several rows into a union row. This header exposes them as a
// function-pointer table (SimdKernels) resolved ONCE per process: if the
// binary was built with SPECMINE_ENABLE_AVX2 (the default on x86-64) and
// the CPU reports AVX2+BMI2+POPCNT, the AVX2 table is selected; otherwise
// the scalar table — which delegates to the BitmapIndex static primitives,
// the always-built fallback and the equivalence oracle of the kernel
// property tests.
//
// Overrides, in precedence order:
//   1. SetKernelsForTest(table) — tests and benchmarks pin a table.
//   2. SPECMINE_FORCE_SCALAR env var (set and not "0") — forces the
//      scalar table; the CI sanitize job runs the whole suite under it so
//      the fallback stays exercised on AVX2 machines.
//   3. cpuid detection.
//
// Bit-range conventions match bitmap_index.h exactly: ranges are
// half-open [from, limit) over global bit positions, and "no bit" is
// ~size_t{0} (kNoBit). Both tables are observationally identical —
// property-tested in tests/backend_equivalence_test.cc over random words
// and the 63/64/65-bit boundary cases.

#ifndef SPECMINE_ITERMINE_SIMD_KERNELS_H_
#define SPECMINE_ITERMINE_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace specmine {

/// \brief One resolved set of word kernels. POD; instances are static.
struct SimdKernels {
  /// Dispatch level name for reports/metrics: "avx2" or "scalar".
  const char* level;

  /// First set bit in [from, limit), or ~size_t{0}.
  size_t (*first_set)(const uint64_t* row, size_t from, size_t limit);

  /// Last set bit in [lo, before), or ~size_t{0}.
  size_t (*last_set)(const uint64_t* row, size_t lo, size_t before);

  /// True iff any bit of [from, limit) is set (no position computed —
  /// the gap-freedom test wants the early-out, not the index).
  bool (*any_range)(const uint64_t* row, size_t from, size_t limit);

  /// Number of set bits in [from, limit).
  size_t (*count_range)(const uint64_t* row, size_t from, size_t limit);

  /// OR of \p n rows over the word range [wb, we), written (overwriting)
  /// into out[wb..we). n == 0 writes zeros.
  void (*union_rows)(const uint64_t* const* rows, size_t n, size_t wb,
                     size_t we, uint64_t* out);
};

namespace internal {
/// The active table. Constant-initialized to the scalar table, upgraded
/// to the resolved one (SPECMINE_FORCE_SCALAR + cpuid) by a dynamic
/// initializer in simd_kernels.cc, overwritten by SetKernelsForTest.
extern const SimdKernels* g_active_kernels;
}  // namespace internal

/// \brief The process-wide kernel table: test override if set, else the
/// table resolved once from SPECMINE_FORCE_SCALAR + cpuid. A plain
/// pointer load — this sits under every word-wise counting query.
inline const SimdKernels& Kernels() { return *internal::g_active_kernels; }

/// \brief The scalar table (always available; the dispatch fallback and
/// the property-test oracle).
const SimdKernels& ScalarKernels();

/// \brief The AVX2 table, or nullptr when the build disabled it
/// (SPECMINE_ENABLE_AVX2=OFF / non-x86) or the CPU lacks AVX2/BMI2/POPCNT.
const SimdKernels* Avx2KernelsOrNull();

/// \brief Kernels().level — the resolved dispatch level for `specmine
/// stats`, the --verbose timing line, and the server's simd_dispatch
/// info-gauge.
const char* SimdDispatchLevel();

/// \brief Test/bench hook: pin the table returned by Kernels() (nullptr
/// restores normal resolution). Not thread-safe against in-flight
/// queries; call between runs only.
void SetKernelsForTest(const SimdKernels* kernels);

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_SIMD_KERNELS_H_
