// HybridIndex: the sparse/dense physical counting representation — the
// third backend behind the CountingBackend seam.
//
// Motivation (BENCH_core.json, sparse corpus): the full bitmap table is
// alphabet x ceil(arena/64) words, so on a 20k-event corpus every
// rare-event row is a multi-KB, almost-empty strip and each gap-freedom
// probe is a cold cache line; CSR wins there, but still pays per-position
// binary searches. The hybrid format splits the alphabet by occurrence
// count at a tuned cutoff:
//
//   * dense events (count >= cutoff) get word-packed bitmap rows exactly
//     like BitmapIndex — the events whose rows the union build and the
//     popcount tails actually profit from;
//   * rare events keep sorted global-position ID lists (uint32, valid by
//     the CheckIndexable contract), compact enough that the whole sparse
//     side stays cache-resident; point queries gallop via binary search
//     and union rows get their bits scattered individually.
//
// Either way the query interface speaks global bit positions, so the
// shared vertical projection template (vertical_projection_impl.h) runs
// unchanged and byte-identical on top. Memory is bounded by the corpus
// (32 bytes per occurrence worst case), never alphabet x arena, so no
// table cap applies.

#ifndef SPECMINE_ITERMINE_HYBRID_INDEX_H_
#define SPECMINE_ITERMINE_HYBRID_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/itermine/bitmap_index.h"
#include "src/itermine/simd_kernels.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Sparse/dense per-event occurrence index over the event arena.
///
/// Built once per database in O(total events); immutable afterwards. The
/// database must outlive the index.
class HybridIndex {
 public:
  /// \brief Builds the index; \p dense_cutoff of 0 uses AutoDenseCutoff.
  explicit HybridIndex(const SequenceDatabase& db, uint64_t dense_cutoff = 0);

  /// \brief The tuned default cutoff: an event keeps its sorted ID list
  /// while the list (4 bytes/occurrence) is under 1/8 of a bitmap row's
  /// footprint, with a floor of 16 so short-arena corpora still split.
  static uint64_t AutoDenseCutoff(const SequenceDatabase& db) {
    const uint64_t words = (db.TotalEvents() + 63) / 64;
    return words / 4 > 16 ? words / 4 : 16;
  }

  /// \brief The indexed database.
  const SequenceDatabase& db() const { return *db_; }

  /// \brief Number of distinct events the index knows about.
  size_t num_events() const { return num_events_; }

  /// \brief Words per dense row: ceil(TotalEvents / 64).
  size_t words_per_row() const { return words_; }

  /// \brief The cutoff in force (resolved AutoDenseCutoff when built
  /// with 0).
  uint64_t dense_cutoff() const { return dense_cutoff_; }

  /// \brief True iff \p ev is stored as a bitmap row.
  bool is_dense(EventId ev) const { return row_index_[ev] != kNoRow; }

  /// \brief Number of events stored as bitmap rows.
  size_t num_dense_events() const { return num_dense_; }

  /// \brief Total occurrences of \p ev across the database.
  uint64_t TotalCount(EventId ev) const {
    return ev < total_counts_.size() ? total_counts_[ev] : 0;
  }

  /// \brief Number of sequences containing \p ev at least once.
  size_t SequenceCount(EventId ev) const {
    return ev < sequence_counts_.size() ? sequence_counts_[ev] : 0;
  }

  /// \brief Bytes held by the dense rows plus the sparse position lists.
  size_t table_bytes() const {
    return bits_.size() * sizeof(uint64_t) +
           positions_.size() * sizeof(uint32_t);
  }

  // -------------------------------------------------------------------------
  // The vertical projection template's query interface (see
  // vertical_projection_impl.h); same global-bit contracts as the
  // BitmapIndex members, dispatched on the event's representation.

  /// \brief First occurrence of \p ev in global bits [from, limit), or
  /// kNoBit; ev must be < num_events().
  size_t FirstOfEventAtOrAfter(EventId ev, size_t from, size_t limit) const {
    const uint32_t r = row_index_[ev];
    if (r != kNoRow) return Kernels().first_set(dense_row(r), from, limit);
    if (from >= limit) return kNoBit;
    const uint32_t* begin = positions_.data() + sparse_offsets_[ev];
    const uint32_t* end = positions_.data() + sparse_offsets_[ev + 1];
    const uint32_t* it =
        std::lower_bound(begin, end, static_cast<uint32_t>(from));
    return it != end && *it < limit ? *it : kNoBit;
  }

  /// \brief True iff \p ev occurs in global bits [from, limit).
  bool AnyOfEventInRange(EventId ev, size_t from, size_t limit) const {
    const uint32_t r = row_index_[ev];
    if (r != kNoRow) return Kernels().any_range(dense_row(r), from, limit);
    if (from >= limit) return false;
    const uint32_t* begin = positions_.data() + sparse_offsets_[ev];
    const uint32_t* end = positions_.data() + sparse_offsets_[ev + 1];
    const uint32_t* it =
        std::lower_bound(begin, end, static_cast<uint32_t>(from));
    return it != end && *it < limit;
  }

  /// \brief Occurrences of \p ev in global bits [from, limit).
  size_t CountOfEventInRange(EventId ev, size_t from, size_t limit) const {
    const uint32_t r = row_index_[ev];
    if (r != kNoRow) return Kernels().count_range(dense_row(r), from, limit);
    if (from >= limit) return 0;
    const uint32_t* begin = positions_.data() + sparse_offsets_[ev];
    const uint32_t* end = positions_.data() + sparse_offsets_[ev + 1];
    return static_cast<size_t>(
        std::lower_bound(begin, end, static_cast<uint32_t>(limit)) -
        std::lower_bound(begin, end, static_cast<uint32_t>(from)));
  }

  /// \brief Sorted global positions of a sparse event (empty range for
  /// dense events — their occurrences live in the bitmap row instead).
  const uint32_t* sparse_begin(EventId ev) const {
    return positions_.data() + sparse_offsets_[ev];
  }
  const uint32_t* sparse_end(EventId ev) const {
    return positions_.data() + sparse_offsets_[ev + 1];
  }

  /// \brief Union row over [base, limit): dense alphabet rows are OR-ed
  /// word-wise (SIMD when dispatched), rare alphabet events scatter their
  /// few in-range positions as individual bits. Same contract as the
  /// BitmapIndex member: only the covering word range is written.
  void BuildUnionForRange(const std::vector<EventId>& alphabet, size_t base,
                          size_t limit,
                          std::vector<uint64_t>* union_words) const;

 private:
  static constexpr uint32_t kNoRow = ~uint32_t{0};

  const uint64_t* dense_row(uint32_t row) const {
    return bits_.data() + static_cast<size_t>(row) * words_;
  }

  const SequenceDatabase* db_;
  size_t num_events_ = 0;
  size_t words_ = 0;
  uint64_t dense_cutoff_ = 0;
  size_t num_dense_ = 0;
  std::vector<uint32_t> row_index_;      // Per event: dense row or kNoRow.
  std::vector<uint64_t> bits_;           // num_dense_ x words_, row-major.
  std::vector<size_t> sparse_offsets_;   // num_events_+1; dense rows empty.
  std::vector<uint32_t> positions_;      // Sparse events' global positions.
  std::vector<uint64_t> total_counts_;
  std::vector<size_t> sequence_counts_;
};

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_HYBRID_INDEX_H_
