#include "src/itermine/projection.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

namespace specmine {

InstanceList SingleEventInstances(const PositionIndex& index, EventId ev) {
  InstanceList out;
  const SequenceDatabase& db = index.db();
  for (SeqId s = 0; s < db.size(); ++s) {
    for (Pos p : index.Positions(ev, s)) {
      out.push_back(IterInstance{s, p, p});
    }
  }
  return out;
}

namespace {

// True iff `ev` (not in the pattern alphabet) occurs strictly inside the
// instance span — necessarily inside a gap, which would invalidate any
// extension whose alphabet includes `ev`.
bool OccursInGaps(const PositionIndex& index, EventId ev,
                  const IterInstance& inst) {
  if (inst.end <= inst.start + 1) return false;
  return index.CountInRange(ev, inst.seq, inst.start + 1, inst.end - 1) > 0;
}

}  // namespace

std::map<EventId, InstanceList> ForwardExtensions(
    const PositionIndex& index, const Pattern& pattern,
    const InstanceList& instances) {
  std::map<EventId, InstanceList> out;
  const SequenceDatabase& db = index.db();
  const auto alphabet = pattern.Alphabet();
  std::unordered_set<EventId> seen;
  for (const IterInstance& inst : instances) {
    const Sequence& seq = db[inst.seq];
    seen.clear();
    for (Pos p = inst.end + 1; p < seq.size(); ++p) {
      EventId ev = seq[p];
      if (alphabet.count(ev) != 0) {
        // First alphabet event after the instance: `ev` itself is a valid
        // extension (its exclusion set is exactly the alphabet and the
        // scanned segment contains none of it); nothing beyond it can be.
        out[ev].push_back(IterInstance{inst.seq, inst.start, p});
        break;
      }
      if (!seen.insert(ev).second) continue;  // Only the first occurrence.
      if (OccursInGaps(index, ev, inst)) continue;
      out[ev].push_back(IterInstance{inst.seq, inst.start, p});
    }
  }
  return out;
}

std::map<EventId, BackwardExtension> BackwardExtensions(
    const PositionIndex& index, const Pattern& pattern,
    const InstanceList& instances) {
  std::map<EventId, BackwardExtension> out;
  const SequenceDatabase& db = index.db();
  const auto alphabet = pattern.Alphabet();
  std::unordered_set<EventId> seen;
  for (const IterInstance& inst : instances) {
    const Sequence& seq = db[inst.seq];
    seen.clear();
    for (Pos p = inst.start; p-- > 0;) {
      EventId ev = seq[p];
      bool adjacent = (p + 1 == inst.start);
      if (alphabet.count(ev) != 0) {
        BackwardExtension& ext = out[ev];
        ++ext.support;
        ext.all_adjacent = ext.all_adjacent && adjacent;
        break;
      }
      if (!seen.insert(ev).second) continue;
      if (OccursInGaps(index, ev, inst)) continue;
      BackwardExtension& ext = out[ev];
      ++ext.support;
      ext.all_adjacent = ext.all_adjacent && adjacent;
    }
  }
  return out;
}

bool HasUniformInfixAbsorber(const SequenceDatabase& db,
                             const Pattern& pattern,
                             const InstanceList& instances) {
  assert(pattern.size() >= 2);
  if (instances.empty()) return false;
  const auto alphabet = pattern.Alphabet();
  const size_t num_gaps = pattern.size() - 1;

  // Profile of the first instance; then intersect with each later one.
  // profile[ev] = per-gap occurrence counts of ev inside the instance.
  std::unordered_map<EventId, std::vector<uint32_t>> common;
  std::unordered_map<EventId, std::vector<uint32_t>> current;

  for (size_t i = 0; i < instances.size(); ++i) {
    const IterInstance& inst = instances[i];
    const Sequence& seq = db[inst.seq];
    current.clear();
    size_t gap = 0;  // Index of the gap we are currently inside.
    size_t matched = 1;  // pattern[0] is at inst.start.
    for (Pos p = inst.start + 1; p <= inst.end; ++p) {
      EventId ev = seq[p];
      if (alphabet.count(ev) != 0) {
        // By the QRE this must be the next pattern event.
        ++matched;
        ++gap;
        continue;
      }
      auto [it, inserted] = current.try_emplace(ev);
      if (inserted) it->second.assign(num_gaps, 0);
      ++it->second[gap];
    }
    (void)matched;
    if (i == 0) {
      common = std::move(current);
      current = {};
    } else {
      // Keep only events whose profile matches exactly.
      for (auto it = common.begin(); it != common.end();) {
        auto found = current.find(it->first);
        if (found == current.end() || found->second != it->second) {
          it = common.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (common.empty()) return false;
  }
  return !common.empty();
}

}  // namespace specmine
