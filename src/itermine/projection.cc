#include "src/itermine/projection.h"

#include <algorithm>
#include <cassert>

#include "src/itermine/bitmap_projection.h"
#include "src/itermine/merged_index.h"
#include "src/itermine/vertical_projection_impl.h"

namespace specmine {

InstanceList SingleEventInstances(const PositionIndex& index, EventId ev) {
  InstanceList out;
  out.reserve(index.TotalCount(ev));
  const SequenceDatabase& db = index.db();
  for (SeqId s = 0; s < db.size(); ++s) {
    for (Pos p : index.Positions(ev, s)) {
      out.push_back(IterInstance{s, p, p});
    }
  }
  return out;
}

std::vector<EventId> FrequentRoots(const PositionIndex& index,
                                   uint64_t min_support) {
  std::vector<EventId> roots;
  for (EventId ev = 0; ev < index.num_events(); ++ev) {
    if (index.TotalCount(ev) >= min_support) roots.push_back(ev);
  }
  return roots;
}

namespace {

// True iff `ev` (not in the pattern alphabet) occurs strictly inside the
// instance span — necessarily inside a gap, which would invalidate any
// extension whose alphabet includes `ev`.
bool OccursInGaps(const PositionIndex& index, EventId ev,
                  const IterInstance& inst) {
  if (inst.end <= inst.start + 1) return false;
  return index.CountInRange(ev, inst.seq, inst.start + 1, inst.end - 1) > 0;
}

// Stamps the pattern's alphabet into ws->alphabet and sizes the mark sets.
void PrepareAlphabet(const Pattern& pattern, size_t num_events,
                     ProjectionWorkspace* ws) {
  ws->alphabet.EnsureSize(num_events);
  ws->seen.EnsureSize(num_events);
  ws->alphabet.Clear();
  for (EventId ev : pattern) ws->alphabet.Set(ev);
}

}  // namespace

void ForwardExtensions(const PositionIndex& index, const Pattern& pattern,
                       const InstanceList& instances,
                       ProjectionWorkspace* ws, ForwardExtensionMap* out) {
  const SequenceDatabase& db = index.db();
  const size_t num_events = index.num_events();
  PrepareAlphabet(pattern, num_events, ws);
  ws->forward.Reset(num_events);
  for (const IterInstance& inst : instances) {
    const EventSpan seq = db[inst.seq];
    ws->seen.Clear();
    for (Pos p = inst.end + 1; p < seq.size(); ++p) {
      EventId ev = seq[p];
      if (ev >= num_events) continue;  // Defensive; ids come from dict.
      if (ws->alphabet.Test(ev)) {
        // First alphabet event after the instance: `ev` itself is a valid
        // extension (its exclusion set is exactly the alphabet and the
        // scanned segment contains none of it); nothing beyond it can be.
        ws->forward.Bucket(ev).push_back(IterInstance{inst.seq, inst.start, p});
        break;
      }
      if (!ws->seen.TestAndSet(ev)) continue;  // Only the first occurrence.
      if (OccursInGaps(index, ev, inst)) continue;
      ws->forward.Bucket(ev).push_back(IterInstance{inst.seq, inst.start, p});
    }
  }
  ws->forward.Drain(out);
}

const BackwardExtensionMap& BackwardExtensions(const PositionIndex& index,
                                               const Pattern& pattern,
                                               const InstanceList& instances,
                                               ProjectionWorkspace* ws) {
  const SequenceDatabase& db = index.db();
  const size_t num_events = index.num_events();
  PrepareAlphabet(pattern, num_events, ws);
  ws->back.Reset(num_events);
  for (const IterInstance& inst : instances) {
    const EventSpan seq = db[inst.seq];
    ws->seen.Clear();
    for (Pos p = inst.start; p-- > 0;) {
      EventId ev = seq[p];
      if (ev >= num_events) continue;  // Defensive; ids come from dict.
      bool adjacent = (p + 1 == inst.start);
      if (ws->alphabet.Test(ev)) {
        BackwardExtension& ext = ws->back.Slot(ev);
        ++ext.support;
        ext.all_adjacent = ext.all_adjacent && adjacent;
        break;
      }
      if (!ws->seen.TestAndSet(ev)) continue;
      if (OccursInGaps(index, ev, inst)) continue;
      BackwardExtension& ext = ws->back.Slot(ev);
      ++ext.support;
      ext.all_adjacent = ext.all_adjacent && adjacent;
    }
  }
  std::vector<EventId>& touched = ws->back.touched();
  std::sort(touched.begin(), touched.end());
  ws->back_result.clear();
  for (EventId ev : touched) {
    ws->back_result.emplace_back(ev, ws->back.At(ev));
  }
  return ws->back_result;
}

bool HasUniformInfixAbsorber(const SequenceDatabase& db,
                             const Pattern& pattern,
                             const InstanceList& instances,
                             ProjectionWorkspace* ws) {
  assert(pattern.size() >= 2);
  if (instances.empty()) return false;
  const size_t num_events = db.dictionary().size();
  PrepareAlphabet(pattern, num_events, ws);
  const size_t num_gaps = pattern.size() - 1;

  // Profile of the first instance; then intersect with each later one.
  // A profile is the per-gap occurrence count vector of one out-of-alphabet
  // event inside the instance span.
  auto& common = ws->common;
  bool result = false;
  for (size_t i = 0; i < instances.size(); ++i) {
    const IterInstance& inst = instances[i];
    const EventSpan seq = db[inst.seq];
    ws->profiles.Reset(num_events);
    size_t gap = 0;  // Index of the gap we are currently inside.
    for (Pos p = inst.start + 1; p <= inst.end; ++p) {
      EventId ev = seq[p];
      if (ev >= num_events) continue;  // Defensive; ids come from dict.
      if (ws->alphabet.Test(ev)) {
        // By the QRE this must be the next pattern event.
        ++gap;
        continue;
      }
      auto& profile = ws->profiles.Bucket(ev);
      if (profile.empty()) profile.assign(num_gaps, 0);
      ++profile[gap];
    }
    if (i == 0) {
      ws->profiles.Drain(&common);
    } else {
      // Keep only events whose profile matches exactly.
      auto& entries = common.entries();
      size_t kept = 0;
      for (auto& entry : entries) {
        const auto* current = ws->profiles.FindTouched(entry.first);
        if (current != nullptr && *current == entry.second) {
          if (kept != static_cast<size_t>(&entry - entries.data())) {
            entries[kept] = std::move(entry);
          }
          ++kept;
        } else {
          ws->profiles.Recycle(std::move(entry.second));
        }
      }
      entries.resize(kept);
    }
    if (common.empty()) break;
  }
  result = !common.empty();
  ws->profiles.Recycle(std::move(common));
  return result;
}

// ---------------------------------------------------------------------------
// Backend dispatch: one branch per query, never per position.

InstanceList SingleEventInstances(const CountingBackend& backend,
                                  EventId ev) {
  switch (backend.kind()) {
    case BackendKind::kBitmap:
      return SingleEventInstancesBitmap(backend.bitmap(), ev);
    case BackendKind::kHybrid:
      return SingleEventInstancesHybrid(backend.hybrid(), ev);
    case BackendKind::kMerged:
      return SingleEventInstancesMerged(backend.merged(), ev);
    default:
      return SingleEventInstances(backend.csr(), ev);
  }
}

std::vector<EventId> FrequentRoots(const CountingBackend& backend,
                                   uint64_t min_support) {
  std::vector<EventId> roots;
  for (EventId ev = 0; ev < backend.num_events(); ++ev) {
    if (backend.TotalCount(ev) >= min_support) roots.push_back(ev);
  }
  return roots;
}

void ForwardExtensions(const CountingBackend& backend, const Pattern& pattern,
                       const InstanceList& instances,
                       ProjectionWorkspace* ws, ForwardExtensionMap* out) {
  switch (backend.kind()) {
    case BackendKind::kBitmap:
      ForwardExtensionsBitmap(backend.bitmap(), pattern, instances, ws, out);
      return;
    case BackendKind::kHybrid:
      internal::ForwardExtensionsVertical(backend.hybrid(), pattern,
                                          instances, ws, out);
      return;
    case BackendKind::kMerged:
      ForwardExtensionsMerged(backend.merged(), pattern, instances, ws, out);
      return;
    default:
      ForwardExtensions(backend.csr(), pattern, instances, ws, out);
      return;
  }
}

const BackwardExtensionMap& BackwardExtensions(const CountingBackend& backend,
                                               const Pattern& pattern,
                                               const InstanceList& instances,
                                               ProjectionWorkspace* ws) {
  switch (backend.kind()) {
    case BackendKind::kBitmap:
      return BackwardExtensionsBitmap(backend.bitmap(), pattern, instances,
                                      ws);
    case BackendKind::kHybrid:
      return internal::BackwardExtensionsVertical(backend.hybrid(), pattern,
                                                  instances, ws);
    case BackendKind::kMerged:
      return BackwardExtensionsMerged(backend.merged(), pattern, instances,
                                      ws);
    default:
      return BackwardExtensions(backend.csr(), pattern, instances, ws);
  }
}

bool HasUniformInfixAbsorber(const CountingBackend& backend,
                             const Pattern& pattern,
                             const InstanceList& instances,
                             ProjectionWorkspace* ws) {
  if (backend.kind() == BackendKind::kMerged) {
    return HasUniformInfixAbsorberMerged(backend.merged(), pattern, instances,
                                         ws);
  }
  return HasUniformInfixAbsorber(backend.db(), pattern, instances, ws);
}

ForwardExtensionMap ForwardExtensions(const PositionIndex& index,
                                      const Pattern& pattern,
                                      const InstanceList& instances) {
  ProjectionWorkspace ws;
  ForwardExtensionMap out;
  ForwardExtensions(index, pattern, instances, &ws, &out);
  return out;
}

BackwardExtensionMap BackwardExtensions(const PositionIndex& index,
                                        const Pattern& pattern,
                                        const InstanceList& instances) {
  ProjectionWorkspace ws;
  return BackwardExtensions(index, pattern, instances, &ws);
}

bool HasUniformInfixAbsorber(const SequenceDatabase& db,
                             const Pattern& pattern,
                             const InstanceList& instances) {
  ProjectionWorkspace ws;
  return HasUniformInfixAbsorber(db, pattern, instances, &ws);
}

}  // namespace specmine
