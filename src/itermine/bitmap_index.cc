#include "src/itermine/bitmap_index.h"

#include <string>

namespace specmine {

namespace {

// Auto-chooser thresholds (documented in docs/architecture.md, "Counting
// backends"). kMinMeanOccurrences is the density gate: below it most row
// words are empty and word-wise scans lose to the CSR position lists —
// unless the arena is big enough (kMinHybridArenaEvents) that the hybrid
// format's cache-resident rare-event lists beat both, which is where the
// full bitmap table thrashes and CSR pays its per-position overhead.
constexpr double kMinMeanOccurrences = 8.0;
constexpr size_t kMinHybridArenaEvents = 4096;
constexpr size_t kMaxAutoTableBytes = size_t{256} << 20;  // 256 MB.
constexpr size_t kMaxTableBytes = size_t{1} << 30;        // 1 GB, hard cap.

size_t TableBytes(const SequenceDatabase& db) {
  const size_t words = (db.TotalEvents() + 63) / 64;
  return db.dictionary().size() * words * sizeof(uint64_t);
}

}  // namespace

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kBitmap:
      return "bitmap";
    case BackendKind::kHybrid:
      return "hybrid";
    case BackendKind::kMerged:
      return "lazy-merged";
    case BackendKind::kCsr:
      break;
  }
  return "csr";
}

BackendKind ChooseBackendKind(const SequenceDatabase& db) {
  const size_t num_events = db.dictionary().size();
  const size_t total = db.TotalEvents();
  if (num_events == 0 || total == 0) return BackendKind::kCsr;
  const double mean_occurrences =
      static_cast<double>(total) / static_cast<double>(num_events);
  if (mean_occurrences >= kMinMeanOccurrences &&
      TableBytes(db) <= kMaxAutoTableBytes) {
    return BackendKind::kBitmap;
  }
  // Sparse regime: rows too empty (or the dense table too large) for the
  // full bitmap. Large arenas go hybrid — its footprint is bounded by the
  // corpus, so no table cap applies; tiny corpora keep CSR, whose
  // constant factors win when everything fits in cache anyway.
  return total >= kMinHybridArenaEvents ? BackendKind::kHybrid
                                        : BackendKind::kCsr;
}

Status CheckBitmapIndexable(const SequenceDatabase& db) {
  const size_t bytes = TableBytes(db);
  if (bytes > kMaxTableBytes) {
    return Status::OutOfRange(
        "bitmap backend table would need " + std::to_string(bytes) +
        " bytes (" + std::to_string(db.dictionary().size()) + " events x " +
        std::to_string(db.TotalEvents()) +
        " positions); use the csr backend for this database");
  }
  return Status::OK();
}

BitmapIndex::BitmapIndex(const SequenceDatabase& db)
    : db_(&db),
      num_events_(db.dictionary().size()),
      words_((db.TotalEvents() + 63) / 64) {
  bits_.assign(num_events_ * words_, 0);
  total_counts_.assign(num_events_, 0);
  sequence_counts_.assign(num_events_, 0);
  const EventId* arena = db.arena();
  const size_t total = db.TotalEvents();
  for (size_t g = 0; g < total; ++g) {
    const EventId ev = arena[g];
    if (ev >= num_events_) continue;  // Defensive; ids come from dict.
    bits_[static_cast<size_t>(ev) * words_ + (g >> 6)] |= uint64_t{1}
                                                          << (g & 63);
    ++total_counts_[ev];
  }
  // Sequence counts: one pass per sequence over its bit range per touched
  // event is overkill; a scalar sweep with a last-seen stamp is O(total).
  std::vector<SeqId> last_seen(num_events_, ~SeqId{0});
  const uint64_t* offsets = db.offsets();
  for (SeqId s = 0; s < db.size(); ++s) {
    for (size_t g = offsets[s]; g < offsets[s + 1]; ++g) {
      const EventId ev = arena[g];
      if (ev >= num_events_ || last_seen[ev] == s) continue;
      last_seen[ev] = s;
      ++sequence_counts_[ev];
    }
  }
}

}  // namespace specmine
