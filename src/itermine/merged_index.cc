#include "src/itermine/merged_index.h"

#include <algorithm>
#include <cassert>

#include "src/itermine/qre_verifier.h"
#include "src/seqmine/occurrence_engine.h"

namespace specmine {

MergedCountingIndex::MergedCountingIndex(
    const ShardedDatabase& set, std::vector<CountingBackend> shard_backends)
    : set_(&set),
      shards_(std::move(shard_backends)),
      num_events_(set.dictionary().size()) {
  assert(shards_.size() == set.num_shards());
  const size_t n = shards_.size();
  seq_base_.resize(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    seq_base_[i + 1] = seq_base_[i] + set.shard(i).size();
  }
  to_local_.resize(n);
  total_counts_.assign(num_events_, 0);
  sequence_counts_.assign(num_events_, 0);
  for (size_t i = 0; i < n; ++i) {
    to_local_[i].assign(num_events_, kInvalidEvent);
    const std::vector<EventId>& remap = set.remap(i);
    for (size_t local_ev = 0; local_ev < remap.size(); ++local_ev) {
      const EventId merged_ev = remap[local_ev];
      to_local_[i][merged_ev] = static_cast<EventId>(local_ev);
      total_counts_[merged_ev] +=
          shards_[i].TotalCount(static_cast<EventId>(local_ev));
      sequence_counts_[merged_ev] +=
          shards_[i].SequenceCount(static_cast<EventId>(local_ev));
    }
  }
}

bool MergedCountingIndex::AnyInRange(EventId ev, SeqId seq, Pos lo,
                                     Pos hi) const {
  const size_t shard = ShardOfSequence(seq);
  const EventId local = ToLocal(shard, ev);
  if (local == kInvalidEvent) return false;
  return shards_[shard].AnyInRange(local, seq - seq_base_[shard], lo, hi);
}

size_t MergedCountingIndex::table_bytes() const {
  size_t bytes = total_counts_.size() * sizeof(uint64_t) +
                 sequence_counts_.size() * sizeof(size_t) +
                 seq_base_.size() * sizeof(SeqId);
  for (const std::vector<EventId>& table : to_local_) {
    bytes += table.size() * sizeof(EventId);
  }
  return bytes;
}

// The out-of-line CountingBackend accessors (declared in
// counting_backend.h, where the full type is unavailable).

uint64_t MergedIndexTotalCount(const MergedCountingIndex& merged,
                               EventId ev) {
  return merged.TotalCount(ev);
}

size_t MergedIndexSequenceCount(const MergedCountingIndex& merged,
                                EventId ev) {
  return merged.SequenceCount(ev);
}

size_t MergedIndexNumEvents(const MergedCountingIndex& merged) {
  return merged.num_events();
}

bool MergedIndexAnyInRange(const MergedCountingIndex& merged, EventId ev,
                           SeqId seq, Pos lo, Pos hi) {
  return merged.AnyInRange(ev, seq, lo, hi);
}

namespace {

// Translates the merged pattern into \p shard's local ids. Returns false
// when some event is outside the shard's alphabet — in which case the
// shard cannot contain any instance of the pattern.
bool TranslatePattern(const MergedCountingIndex& index, size_t shard,
                      const Pattern& pattern, std::vector<EventId>* local) {
  local->clear();
  local->reserve(pattern.size());
  for (EventId ev : pattern) {
    const EventId lev = index.ToLocal(shard, ev);
    if (lev == kInvalidEvent) return false;
    local->push_back(lev);
  }
  return true;
}

}  // namespace

InstanceList SingleEventInstancesMerged(const MergedCountingIndex& index,
                                        EventId ev) {
  InstanceList out;
  out.reserve(index.TotalCount(ev));
  for (size_t i = 0; i < index.num_shards(); ++i) {
    const EventId local = index.ToLocal(i, ev);
    if (local == kInvalidEvent) continue;
    const SeqId base = index.seq_base(i);
    InstanceList shard_out =
        SingleEventInstances(index.shard_backend(i), local);
    for (const IterInstance& inst : shard_out) {
      out.push_back(IterInstance{inst.seq + base, inst.start, inst.end});
    }
  }
  return out;
}

void ForwardExtensionsMerged(const MergedCountingIndex& index,
                             const Pattern& pattern,
                             const InstanceList& instances,
                             ProjectionWorkspace* ws,
                             ForwardExtensionMap* out) {
  const size_t num_events = index.num_events();
  ws->forward.Reset(num_events);
  ProjectionWorkspace& cws = ws->ShardWorkspace();
  std::vector<EventId> local_pat;
  // Instances arrive sorted by merged sequence, so each shard's instances
  // form one contiguous run; every run is delegated as a single
  // shard-local query, keeping per-event emission order equal to the
  // merged scan order (shard order = sequence order).
  size_t i = 0;
  while (i < instances.size()) {
    const size_t shard = index.ShardOfSequence(instances[i].seq);
    const SeqId base = index.seq_base(shard);
    const SeqId next_base = index.seq_base(shard + 1);
    size_t j = i;
    while (j < instances.size() && instances[j].seq < next_base) ++j;
    if (TranslatePattern(index, shard, pattern, &local_pat)) {
      InstanceList& local = ws->shard_instances;
      local.clear();
      local.reserve(j - i);
      for (size_t t = i; t < j; ++t) {
        local.push_back(IterInstance{instances[t].seq - base,
                                     instances[t].start, instances[t].end});
      }
      ForwardExtensionMap shard_map = cws.AcquireMap();
      ForwardExtensions(index.shard_backend(shard), Pattern(local_pat),
                        local, &cws, &shard_map);
      const std::vector<EventId>& remap = index.shard_set().remap(shard);
      for (auto& [local_ev, shard_insts] : shard_map) {
        InstanceList& bucket = ws->forward.Bucket(remap[local_ev]);
        for (const IterInstance& inst : shard_insts) {
          bucket.push_back(
              IterInstance{inst.seq + base, inst.start, inst.end});
        }
      }
      cws.ReleaseMap(std::move(shard_map));
    }
    i = j;
  }
  ws->forward.Drain(out);
}

const BackwardExtensionMap& BackwardExtensionsMerged(
    const MergedCountingIndex& index, const Pattern& pattern,
    const InstanceList& instances, ProjectionWorkspace* ws) {
  const size_t num_events = index.num_events();
  ws->back.Reset(num_events);
  ProjectionWorkspace& cws = ws->ShardWorkspace();
  std::vector<EventId> local_pat;
  size_t i = 0;
  while (i < instances.size()) {
    const size_t shard = index.ShardOfSequence(instances[i].seq);
    const SeqId base = index.seq_base(shard);
    const SeqId next_base = index.seq_base(shard + 1);
    size_t j = i;
    while (j < instances.size() && instances[j].seq < next_base) ++j;
    if (TranslatePattern(index, shard, pattern, &local_pat)) {
      InstanceList& local = ws->shard_instances;
      local.clear();
      local.reserve(j - i);
      for (size_t t = i; t < j; ++t) {
        local.push_back(IterInstance{instances[t].seq - base,
                                     instances[t].start, instances[t].end});
      }
      const BackwardExtensionMap& shard_map = BackwardExtensions(
          index.shard_backend(shard), Pattern(local_pat), local, &cws);
      const std::vector<EventId>& remap = index.shard_set().remap(shard);
      // Supports add across shards; adjacency is an AND over all
      // instances, so it ANDs across shards too.
      for (const auto& [local_ev, ext] : shard_map) {
        BackwardExtension& slot = ws->back.Slot(remap[local_ev]);
        slot.support += ext.support;
        slot.all_adjacent = slot.all_adjacent && ext.all_adjacent;
      }
    }
    i = j;
  }
  std::vector<EventId>& touched = ws->back.touched();
  std::sort(touched.begin(), touched.end());
  ws->back_result.clear();
  for (EventId ev : touched) {
    ws->back_result.emplace_back(ev, ws->back.At(ev));
  }
  return ws->back_result;
}

uint64_t CountInstancesMerged(const MergedCountingIndex& index,
                              const Pattern& pattern,
                              QreRecountScratch* scratch) {
  uint64_t count = 0;
  std::vector<EventId> local_pat;
  for (size_t i = 0; i < index.num_shards(); ++i) {
    if (!TranslatePattern(index, i, pattern, &local_pat)) continue;
    count +=
        CountInstances(index.shard_backend(i), Pattern(local_pat), scratch);
  }
  return count;
}

size_t CountOccurrencesMerged(const MergedCountingIndex& index,
                              const Pattern& pattern) {
  size_t count = 0;
  std::vector<EventId> local_pat;
  for (size_t i = 0; i < index.num_shards(); ++i) {
    if (!TranslatePattern(index, i, pattern, &local_pat)) continue;
    count += CountOccurrences(index.shard_backend(i), Pattern(local_pat));
  }
  return count;
}

bool HasUniformInfixAbsorberMerged(const MergedCountingIndex& index,
                                   const Pattern& pattern,
                                   const InstanceList& instances,
                                   ProjectionWorkspace* ws) {
  assert(pattern.size() >= 2);
  if (instances.empty()) return false;
  // Same profile-intersection algorithm as the db-level
  // HasUniformInfixAbsorber (projection.cc), with each instance's span
  // read from its shard's local arena and every event translated to
  // merged ids on the fly — profiles and the alphabet marks live in
  // merged event space, so the cross-shard intersection is exact.
  const size_t num_events = index.num_events();
  ws->alphabet.EnsureSize(num_events);
  ws->alphabet.Clear();
  for (EventId ev : pattern) ws->alphabet.Set(ev);
  const size_t num_gaps = pattern.size() - 1;

  auto& common = ws->common;
  bool result = false;
  for (size_t i = 0; i < instances.size(); ++i) {
    const IterInstance& inst = instances[i];
    const size_t shard = index.ShardOfSequence(inst.seq);
    const SequenceDatabase& sdb = index.shard_backend(shard).db();
    const std::vector<EventId>& remap = index.shard_set().remap(shard);
    const EventSpan seq = sdb[inst.seq - index.seq_base(shard)];
    ws->profiles.Reset(num_events);
    size_t gap = 0;  // Index of the gap we are currently inside.
    for (Pos p = inst.start + 1; p <= inst.end; ++p) {
      const EventId local_ev = seq[p];
      if (local_ev >= remap.size()) continue;  // Defensive.
      const EventId ev = remap[local_ev];
      if (ev >= num_events) continue;  // Defensive.
      if (ws->alphabet.Test(ev)) {
        // By the QRE this must be the next pattern event.
        ++gap;
        continue;
      }
      auto& profile = ws->profiles.Bucket(ev);
      if (profile.empty()) profile.assign(num_gaps, 0);
      ++profile[gap];
    }
    if (i == 0) {
      ws->profiles.Drain(&common);
    } else {
      // Keep only events whose profile matches exactly.
      auto& entries = common.entries();
      size_t kept = 0;
      for (auto& entry : entries) {
        const auto* current = ws->profiles.FindTouched(entry.first);
        if (current != nullptr && *current == entry.second) {
          if (kept != static_cast<size_t>(&entry - entries.data())) {
            entries[kept] = std::move(entry);
          }
          ++kept;
        } else {
          ws->profiles.Recycle(std::move(entry.second));
        }
      }
      entries.resize(kept);
    }
    if (common.empty()) break;
  }
  result = !common.empty();
  ws->profiles.Recycle(std::move(common));
  return result;
}

}  // namespace specmine
