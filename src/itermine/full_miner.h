// Full-set frequent iterative pattern mining (the "Full" series of Figure 1
// in the paper): depth-first pattern growth over the instance projection,
// pruned only by the apriori property (Theorem 1).

#ifndef SPECMINE_ITERMINE_FULL_MINER_H_
#define SPECMINE_ITERMINE_FULL_MINER_H_

#include <cstdint>
#include <functional>

#include "src/itermine/counting_backend.h"
#include "src/patterns/pattern_set.h"
#include "src/support/status.h"
#include "src/trace/position_index.h"
#include "src/trace/sequence_database.h"

namespace specmine {

class CancelToken;
class ThreadPool;

/// \brief Options shared by the iterative pattern miners.
struct IterMinerOptions {
  /// Minimum number of instances (absolute).
  uint64_t min_support = 1;
  /// Physical counting representation: kAuto picks per database via
  /// ChooseBackendKind (density x alphabet heuristic); kCsr / kBitmap
  /// force one. Honored by the database-level entry points and the
  /// Engine; the index-reusing overloads mine whatever index they are
  /// handed. Output is byte-identical across backends.
  BackendChoice backend = BackendChoice::kAuto;
  /// Maximum pattern length; 0 means unbounded.
  size_t max_length = 0;
  /// Safety valve for the full miner at very low thresholds: stop after
  /// emitting this many patterns (0 = unbounded). The benchmark harness
  /// sets a generous cap and reports when it is hit.
  size_t max_patterns = 0;
  /// Worker threads for first-level subtree parallelism; 0 = hardware
  /// concurrency, 1 = today's exact sequential behavior. Emitted pattern
  /// sets are identical at every setting (sinks run on the calling
  /// thread, in sequential order); only nodes_visited can differ when a
  /// sink prunes or max_patterns truncates, because workers may have
  /// expanded nodes the sequential run never reached. One caveat: with
  /// num_threads > 1, a sink that *prunes* (returns false) combined with
  /// max_patterns may truncate earlier than the sequential run, because
  /// each worker buffers at most max_patterns emissions per subtree
  /// before replay-side skips are known (no in-tree caller combines the
  /// two; set num_threads = 1 if you must).
  size_t num_threads = 0;
  /// Optional cooperative stop signal, polled at subtree granularity. A
  /// stopped run's sink output is a prefix of the uncancelled run's
  /// deterministic emission order (at every thread count); the reason is
  /// reported in IterMinerStats::stopped. Not owned; may be null.
  const CancelToken* cancel = nullptr;
};

/// \brief Statistics describing one miner run.
struct IterMinerStats {
  size_t nodes_visited = 0;     ///< DFS nodes expanded.
  size_t patterns_emitted = 0;  ///< Patterns written to the output.
  size_t subtrees_pruned = 0;   ///< Closed miner: P1/P2 subtree prunes.
  bool truncated = false;       ///< True iff max_patterns stopped the run.
  double index_build_seconds = 0.0;  ///< PositionIndex construction time.
  double mine_seconds = 0.0;         ///< Pattern-growth time.
  /// kCancelled / kDeadlineExceeded when the run's CancelToken stopped it
  /// early; kOk otherwise.
  StatusCode stopped = StatusCode::kOk;
  /// First internal failure of a parallel fan-out (an exception escaping
  /// a worker task, converted by the ThreadPool); OK otherwise.
  Status error = Status::OK();
};

/// \brief Mines every frequent iterative pattern of \p db.
///
/// Support of P = number of QRE instances, counted within and across
/// sequences. Patterns of length >= 1 are emitted.
///
/// Deprecated entry point: builds a fresh PositionIndex per call. New code
/// should go through specmine::Engine (src/engine/engine.h), which caches
/// the index and a thread pool across tasks and reports errors as values.
PatternSet MineFrequentIterative(const SequenceDatabase& db,
                                 const IterMinerOptions& options,
                                 IterMinerStats* stats = nullptr);

/// \brief Index-reusing variant: mines over a prebuilt \p index (its
/// database). stats->index_build_seconds is left at 0 — no build happened
/// here. \p pool, when non-null and matching the resolved thread count, is
/// used for the first-level fan-out instead of spawning a fresh pool.
PatternSet MineFrequentIterative(const PositionIndex& index,
                                 const IterMinerOptions& options,
                                 IterMinerStats* stats = nullptr,
                                 ThreadPool* pool = nullptr);

/// \brief Backend-reusing variant: mines over either physical counting
/// representation (the PositionIndex overloads wrap the CSR one).
PatternSet MineFrequentIterative(const CountingBackend& backend,
                                 const IterMinerOptions& options,
                                 IterMinerStats* stats = nullptr,
                                 ThreadPool* pool = nullptr);

/// \brief Callback variant: \p sink receives (pattern, support); return
/// false to skip growing that pattern's subtree.
///
/// Deprecated entry point: builds a fresh PositionIndex per call (see
/// MineFrequentIterative above).
void ScanFrequentIterative(
    const SequenceDatabase& db, const IterMinerOptions& options,
    const std::function<bool(const Pattern&, uint64_t)>& sink,
    IterMinerStats* stats = nullptr);

/// \brief Index-reusing callback variant.
void ScanFrequentIterative(
    const PositionIndex& index, const IterMinerOptions& options,
    const std::function<bool(const Pattern&, uint64_t)>& sink,
    IterMinerStats* stats = nullptr, ThreadPool* pool = nullptr);

/// \brief Backend-reusing callback variant (the Engine's workhorse).
void ScanFrequentIterative(
    const CountingBackend& backend, const IterMinerOptions& options,
    const std::function<bool(const Pattern&, uint64_t)>& sink,
    IterMinerStats* stats = nullptr, ThreadPool* pool = nullptr);

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_FULL_MINER_H_
