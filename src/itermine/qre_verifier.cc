#include "src/itermine/qre_verifier.h"

#include <unordered_set>

#include "src/itermine/bitmap_projection.h"
#include "src/itermine/merged_index.h"
#include "src/itermine/vertical_projection_impl.h"

namespace specmine {

bool IsQreInstance(const Pattern& pattern, EventSpan seq, Pos start,
                   Pos end) {
  if (pattern.empty()) return false;
  if (end >= seq.size() || start > end) return false;
  const auto alphabet = pattern.Alphabet();
  size_t k = 0;
  for (Pos p = start; p <= end; ++p) {
    EventId ev = seq[p];
    if (alphabet.count(ev) != 0) {
      // Every alphabet event inside the substring must be the next pattern
      // event, in order.
      if (k >= pattern.size() || ev != pattern[k]) return false;
      ++k;
    }
  }
  // All pattern events consumed, and the substring must start with p1 and
  // end with pn (positions, not just order).
  return k == pattern.size() && seq[start] == pattern[0] &&
         seq[end] == pattern[pattern.size() - 1];
}

InstanceList FindInstances(const Pattern& pattern, EventSpan seq,
                           SeqId seq_id) {
  InstanceList out;
  if (pattern.empty()) return out;
  const auto alphabet = pattern.Alphabet();
  for (Pos start = 0; start < seq.size(); ++start) {
    if (seq[start] != pattern[0]) continue;
    // Deterministic chain: each subsequent pattern event must be the first
    // alphabet event after the previous one; any other alphabet event
    // breaks the chain.
    size_t k = 1;
    Pos last = start;
    bool broken = false;
    for (Pos p = start + 1; p < seq.size() && k < pattern.size(); ++p) {
      EventId ev = seq[p];
      if (alphabet.count(ev) == 0) continue;
      if (ev != pattern[k]) {
        broken = true;
        break;
      }
      ++k;
      last = p;
    }
    if (!broken && k == pattern.size()) {
      out.push_back(IterInstance{seq_id, start, last});
    }
  }
  return out;
}

InstanceList FindAllInstances(const Pattern& pattern,
                              const SequenceDatabase& db) {
  InstanceList out;
  for (SeqId s = 0; s < db.size(); ++s) {
    InstanceList one = FindInstances(pattern, db[s], s);
    out.insert(out.end(), one.begin(), one.end());
  }
  return out;
}

uint64_t CountInstances(const Pattern& pattern, const SequenceDatabase& db) {
  return FindAllInstances(pattern, db).size();
}

uint64_t CountInstances(const CountingBackend& backend, const Pattern& pattern,
                        QreRecountScratch* scratch) {
  if (pattern.size() == 1) {
    // Every occurrence of a single event is an instance — the indexes
    // already hold the count (the generators' deletion recounts hit this
    // constantly).
    return backend.TotalCount(pattern[0]);
  }
  switch (backend.kind()) {
    case BackendKind::kBitmap:
      return CountInstancesBitmap(backend.bitmap(), pattern, scratch);
    case BackendKind::kHybrid:
      return internal::CountInstancesVertical(backend.hybrid(), pattern,
                                              scratch);
    case BackendKind::kMerged:
      return CountInstancesMerged(backend.merged(), pattern, scratch);
    default:
      return CountInstances(pattern, backend.db());
  }
}

}  // namespace specmine
