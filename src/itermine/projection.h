// The projection engine for iterative pattern growth: given the instances
// of a pattern P, compute the instances of every one-event extension, the
// supports of every one-event backward extension, and the closure
// information used by the closed miner.
//
// Correctness notes (referenced from DESIGN.md):
//
//  * Forward growth. An instance of Q = P++<e> spans [start, q] where
//    [start, end] is an instance of P, q is the first occurrence of e after
//    `end` with no alphabet(P) event in between, and additionally e does not
//    occur inside any gap of the P-instance when e is not in alphabet(P)
//    (the exclusion alphabet of Q contains e, so the old gaps must be free
//    of it). Scanning forward from end+1 and stopping at the first
//    alphabet(P) event enumerates every candidate e in one pass; gap
//    freedom is a position-index range count.
//
//  * Backward growth mirrors this on [0, start-1].
//
//  * Every instance of Q restricts to the P-instance with the same start
//    (forward) or to the canonical P-instance beginning at its second
//    pattern event (backward); both maps are injective, so
//    sup(Q) == sup(P) implies a total one-to-one correspondence — the
//    absorption condition of Definition 4.2.
//
// Hot-path design (README.md, "Index layout & threading"): every query
// runs over dense epoch-stamped mark sets and per-event buckets held in a
// reusable ProjectionWorkspace — no hashing, no std::map nodes, and in
// steady state no heap allocation. The workspace-free overloads exist for
// tests and one-off callers; the miners thread one workspace per worker.

#ifndef SPECMINE_ITERMINE_PROJECTION_H_
#define SPECMINE_ITERMINE_PROJECTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/itermine/counting_backend.h"
#include "src/itermine/instance.h"
#include "src/patterns/pattern.h"
#include "src/support/event_marks.h"
#include "src/support/extension_accumulator.h"
#include "src/support/flat_event_map.h"

namespace specmine {

/// \brief Instances of every one-event forward extension, sorted by event.
using ForwardExtensionMap = EventMap<InstanceList>;

/// \brief Summary of a one-event backward extension <e>++P.
struct BackwardExtension {
  /// Number of instances of <e>++P.
  uint64_t support = 0;
  /// True iff in every extension the new event sits immediately before the
  /// original instance start (no gap). Drives the P1/P2 subtree prunes.
  bool all_adjacent = true;
};

/// \brief Supports of every one-event backward extension, sorted by event.
using BackwardExtensionMap = EventMap<BackwardExtension>;

/// \brief Scratch for the vertical (bitmap) projection arm: one alphabet
/// union row over the event arena, a flat candidate buffer, and the
/// per-event counting slots the scatter drain sizes buckets from. The
/// buffers grow once and are reused; every reset is an O(1) epoch bump.
struct BitmapProjectionScratch {
  /// OR of the pattern events' rows, valid for the word range of the
  /// sequence most recently prepared (the queries mask to that range).
  std::vector<uint64_t> union_words;
  /// Distinct pattern events (the rows joined into union_words).
  std::vector<EventId> alphabet;

  /// Forward-extension candidates in discovery order — the flat buffer
  /// the drain scatters into exact-sized per-event buckets (discovery
  /// order within an event IS the CSR bucket order, so no K-element sort
  /// is ever needed).
  struct ForwardCandidate {
    EventId ev;
    IterInstance inst;
  };
  std::vector<ForwardCandidate> forward;

  /// Per-event candidate counts during the scan, then the event's entry
  /// index in the output map during the scatter.
  EpochSlots<uint32_t> slots;

  /// Events occurring strictly inside the current instance's gap, marked
  /// once per instance by one sequential arena walk — the gap-freedom
  /// test is then an O(1) membership lookup per candidate instead of a
  /// per-candidate row probe.
  EventMarkSet gap_events;
};

/// \brief Reusable scratch space for the projection queries: dense mark
/// sets, extension buckets and result buffers. One per mining thread;
/// never shared concurrently.
struct ProjectionWorkspace {
  EventMarkSet alphabet;
  EventMarkSet seen;
  ExtensionAccumulator<IterInstance> forward;

  // Scratch for the bitmap backend's word-wise queries (unused by CSR).
  BitmapProjectionScratch bitmap;

  // Backward extensions: dense per-event slots, epoch-stamped, plus the
  // reused result buffer (consumed before the next call by construction).
  EpochSlots<BackwardExtension> back;
  BackwardExtensionMap back_result;

  // Infix-absorber profiles: per-event per-gap occurrence counts.
  ExtensionAccumulator<uint32_t> profiles;
  ExtensionAccumulator<uint32_t>::Map common;

  // Free pool for ForwardExtensionMap shells (the entry vectors).
  std::vector<ForwardExtensionMap> map_pool;

  // Child workspace for the merged backend's per-shard delegation: shard
  // queries run in shard-local event space, so they need their own mark
  // sets and buckets. Lazily created; unused by the other backends.
  std::unique_ptr<ProjectionWorkspace> shard_ws;
  // Reused shard-local instance buffer for the same delegation.
  InstanceList shard_instances;

  /// \brief The lazily-created child workspace for shard-local queries.
  ProjectionWorkspace& ShardWorkspace() {
    if (shard_ws == nullptr) shard_ws = std::make_unique<ProjectionWorkspace>();
    return *shard_ws;
  }

  /// \brief Takes a cleared ForwardExtensionMap, reusing pooled capacity.
  ForwardExtensionMap AcquireMap() {
    if (map_pool.empty()) return ForwardExtensionMap();
    ForwardExtensionMap m = std::move(map_pool.back());
    map_pool.pop_back();
    return m;
  }

  /// \brief Recycles a consumed extension map (buckets and shell).
  void ReleaseMap(ForwardExtensionMap&& m) {
    forward.Recycle(std::move(m));
    map_pool.push_back(std::move(m));
  }
};

/// \brief Instances of the single-event pattern <ev>: every occurrence.
InstanceList SingleEventInstances(const PositionIndex& index, EventId ev);

/// \brief The events frequent enough to root a pattern subtree, ascending
/// — the job list of the miners' first-level parallelism.
std::vector<EventId> FrequentRoots(const PositionIndex& index,
                                   uint64_t min_support);

/// \brief Instances of every one-event forward extension P++<e>, written
/// into \p out (cleared first). Events with no valid extension are absent;
/// iteration order is ascending event id, so it is deterministic.
void ForwardExtensions(const PositionIndex& index, const Pattern& pattern,
                       const InstanceList& instances,
                       ProjectionWorkspace* ws, ForwardExtensionMap* out);

/// \brief Supports (and adjacency) of every one-event backward extension.
/// The returned reference lives in \p ws and is valid until the next
/// BackwardExtensions call on the same workspace.
const BackwardExtensionMap& BackwardExtensions(const PositionIndex& index,
                                               const Pattern& pattern,
                                               const InstanceList& instances,
                                               ProjectionWorkspace* ws);

/// \brief True iff some event e outside alphabet(pattern) occurs with an
/// identical, somewhere-non-zero per-gap count profile in every instance —
/// in which case inserting e with those multiplicities yields a
/// super-sequence with equal support and total instance correspondence
/// (pattern is not closed). Requires pattern.size() >= 2.
bool HasUniformInfixAbsorber(const SequenceDatabase& db,
                             const Pattern& pattern,
                             const InstanceList& instances,
                             ProjectionWorkspace* ws);

/// \brief Workspace-free conveniences for tests and one-off callers.
ForwardExtensionMap ForwardExtensions(const PositionIndex& index,
                                      const Pattern& pattern,
                                      const InstanceList& instances);
BackwardExtensionMap BackwardExtensions(const PositionIndex& index,
                                        const Pattern& pattern,
                                        const InstanceList& instances);
bool HasUniformInfixAbsorber(const SequenceDatabase& db,
                             const Pattern& pattern,
                             const InstanceList& instances);

// ---------------------------------------------------------------------------
// Backend-dispatching overloads: the seam the miners run through. Each
// branches once on backend.kind() — kCsr lands in the functions above
// unchanged, kBitmap in the word-wise arm (bitmap_projection.h). Outputs
// are observationally identical across backends (entries, supports,
// order), property-tested in tests/backend_equivalence_test.cc.

/// \brief Instances of the single-event pattern <ev> on either backend.
InstanceList SingleEventInstances(const CountingBackend& backend, EventId ev);

/// \brief Frequent subtree roots on either backend (identical lists).
std::vector<EventId> FrequentRoots(const CountingBackend& backend,
                                   uint64_t min_support);

/// \brief ForwardExtensions on either backend.
void ForwardExtensions(const CountingBackend& backend, const Pattern& pattern,
                       const InstanceList& instances,
                       ProjectionWorkspace* ws, ForwardExtensionMap* out);

/// \brief BackwardExtensions on either backend; the returned reference
/// lives in \p ws either way.
const BackwardExtensionMap& BackwardExtensions(const CountingBackend& backend,
                                               const Pattern& pattern,
                                               const InstanceList& instances,
                                               ProjectionWorkspace* ws);

/// \brief HasUniformInfixAbsorber on any backend. The materialized
/// backends run the db-level check above on backend.db(); the merged
/// backend walks the shard-local arenas through the remap tables instead,
/// so the closed miner needs no merged database either.
bool HasUniformInfixAbsorber(const CountingBackend& backend,
                             const Pattern& pattern,
                             const InstanceList& instances,
                             ProjectionWorkspace* ws);

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_PROJECTION_H_
