// The projection engine for iterative pattern growth: given the instances
// of a pattern P, compute the instances of every one-event extension, the
// supports of every one-event backward extension, and the closure
// information used by the closed miner.
//
// Correctness notes (referenced from DESIGN.md):
//
//  * Forward growth. An instance of Q = P++<e> spans [start, q] where
//    [start, end] is an instance of P, q is the first occurrence of e after
//    `end` with no alphabet(P) event in between, and additionally e does not
//    occur inside any gap of the P-instance when e is not in alphabet(P)
//    (the exclusion alphabet of Q contains e, so the old gaps must be free
//    of it). Scanning forward from end+1 and stopping at the first
//    alphabet(P) event enumerates every candidate e in one pass; gap
//    freedom is a position-index range count.
//
//  * Backward growth mirrors this on [0, start-1].
//
//  * Every instance of Q restricts to the P-instance with the same start
//    (forward) or to the canonical P-instance beginning at its second
//    pattern event (backward); both maps are injective, so
//    sup(Q) == sup(P) implies a total one-to-one correspondence — the
//    absorption condition of Definition 4.2.

#ifndef SPECMINE_ITERMINE_PROJECTION_H_
#define SPECMINE_ITERMINE_PROJECTION_H_

#include <cstdint>
#include <map>

#include "src/itermine/instance.h"
#include "src/patterns/pattern.h"

namespace specmine {

/// \brief Instances of the single-event pattern <ev>: every occurrence.
InstanceList SingleEventInstances(const PositionIndex& index, EventId ev);

/// \brief Instances of every one-event forward extension P++<e>.
///
/// Returns a map from extension event to the (sorted) instances of the
/// extended pattern. Events with no valid extension are absent. The map is
/// ordered so iteration is deterministic.
std::map<EventId, InstanceList> ForwardExtensions(
    const PositionIndex& index, const Pattern& pattern,
    const InstanceList& instances);

/// \brief Summary of a one-event backward extension <e>++P.
struct BackwardExtension {
  /// Number of instances of <e>++P.
  uint64_t support = 0;
  /// True iff in every extension the new event sits immediately before the
  /// original instance start (no gap). Drives the P1/P2 subtree prunes.
  bool all_adjacent = true;
};

/// \brief Supports (and adjacency) of every one-event backward extension.
std::map<EventId, BackwardExtension> BackwardExtensions(
    const PositionIndex& index, const Pattern& pattern,
    const InstanceList& instances);

/// \brief True iff some event e outside alphabet(pattern) occurs with an
/// identical, somewhere-non-zero per-gap count profile in every instance —
/// in which case inserting e with those multiplicities yields a
/// super-sequence with equal support and total instance correspondence
/// (pattern is not closed). Requires pattern.size() >= 2.
bool HasUniformInfixAbsorber(const SequenceDatabase& db,
                             const Pattern& pattern,
                             const InstanceList& instances);

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_PROJECTION_H_
