// Iterative pattern instances (Definition 4.1 of the paper).
//
// An instance of pattern P = <p1 ... pn> is a *substring* of a database
// sequence matching the quantified regular expression
//
//     p1 ; [-p1,...,pn]* ; p2 ; ... ; [-p1,...,pn]* ; pn
//
// i.e. it starts with p1, ends with pn, and between consecutive pattern
// events contains no event of the pattern's alphabet. Two facts shape the
// whole module (proofs in the doc comments of projection.h):
//
//  * From a fixed start position the instance, if it exists, is unique:
//    each next pattern event must be the *first* alphabet event after the
//    previous one. Instances are therefore keyed by (sequence, start).
//  * Instances of an extension P++evs / evs++P restrict to instances of P
//    injectively, giving the apriori property (Theorem 1).

#ifndef SPECMINE_ITERMINE_INSTANCE_H_
#define SPECMINE_ITERMINE_INSTANCE_H_

#include <string>
#include <vector>

#include "src/trace/position_index.h"

namespace specmine {

/// \brief One instance of an iterative pattern: the substring
/// seq[start..end] (inclusive bounds).
struct IterInstance {
  SeqId seq = 0;
  Pos start = 0;
  Pos end = 0;

  bool operator==(const IterInstance& other) const = default;
  /// \brief Order by (seq, start, end) — canonical listing order.
  bool operator<(const IterInstance& other) const {
    if (seq != other.seq) return seq < other.seq;
    if (start != other.start) return start < other.start;
    return end < other.end;
  }

  /// \brief "(seq, start, end)" rendering for diagnostics.
  std::string ToString() const;
};

/// \brief All instances of a pattern, sorted by (seq, start).
using InstanceList = std::vector<IterInstance>;

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_INSTANCE_H_
