// Internal: the templated bodies of the vertical projection queries.
//
// The algorithms here are the word-wise arms documented in
// bitmap_projection.h, templated over the physical row format so that
// BitmapIndex (dense rows) and HybridIndex (dense rows + sorted
// rare-event ID lists) share one implementation. The Index parameter must
// provide:
//
//   const SequenceDatabase& db() const;
//   size_t num_events() const;
//   uint64_t TotalCount(EventId ev) const;
//   size_t FirstOfEventAtOrAfter(EventId ev, size_t from, size_t limit);
//   bool AnyOfEventInRange(EventId ev, size_t from, size_t limit);
//   size_t CountOfEventInRange(EventId ev, size_t from, size_t limit);
//   void BuildUnionForRange(const std::vector<EventId>& alphabet,
//                           size_t base, size_t limit,
//                           std::vector<uint64_t>* union_words);
//
// with the global-bit conventions of bitmap_index.h (bit g = arena
// position g, ranges half-open, kNoBit = none). Union rows are always
// word-packed — rare hybrid events are scattered into the union as bits —
// so the union-row scans go through the runtime-dispatched kernel table
// (simd_kernels.h) directly.
//
// Callers outside bitmap_projection.cc / hybrid_index.cc should use the
// CountingBackend dispatch layer, not this header.

#ifndef SPECMINE_ITERMINE_VERTICAL_PROJECTION_IMPL_H_
#define SPECMINE_ITERMINE_VERTICAL_PROJECTION_IMPL_H_

#include <algorithm>
#include <vector>

#include "src/itermine/bitmap_projection.h"
#include "src/itermine/projection.h"
#include "src/itermine/simd_kernels.h"

namespace specmine {
namespace internal {

// Whether an instance list spanning `distinct_seqs` sequences should build
// the alphabet union row once over the whole arena instead of once per
// sequence. Per-sequence builds are dominated by call-and-mask overhead on
// short ranges (~16 word-ops each), while the single long build is exactly
// the row shape the union kernel vectorizes; union_rows overwrites its
// range, so both strategies leave identical bits in every probed range.
inline bool UseWholeRowUnion(size_t distinct_seqs, size_t total_words) {
  return distinct_seqs * 16 >= total_words;
}

// Number of distinct sequences in an instance list (instances arrive
// grouped by sequence, so transitions count them exactly).
inline size_t DistinctSequences(const InstanceList& instances) {
  size_t distinct = 0;
  SeqId prev = ~SeqId{0};
  for (const IterInstance& inst : instances) {
    if (inst.seq != prev) {
      prev = inst.seq;
      ++distinct;
    }
  }
  return distinct;
}

// Collects the distinct pattern events into *alphabet (cleared first).
// Patterns are short, so the quadratic dedup beats any table.
inline void DistinctAlphabet(const Pattern& pattern, size_t num_events,
                             std::vector<EventId>* alphabet) {
  alphabet->clear();
  for (EventId ev : pattern) {
    if (ev >= num_events) continue;  // Defensive; ids come from dict.
    if (std::find(alphabet->begin(), alphabet->end(), ev) ==
        alphabet->end()) {
      alphabet->push_back(ev);
    }
  }
}

// Marks every event occurring strictly inside the instance span (the
// gaps) into *gap_events (cleared first) with one sequential arena walk.
// Gap-freedom per candidate then costs one O(1) membership test instead
// of a per-candidate row probe — the probes were ~5 single-word kernel
// calls per instance, pure call-and-mask overhead. `base` is the global
// bit offset of the instance's sequence.
inline void MarkGapEvents(const EventId* arena, size_t num_events,
                          size_t base, const IterInstance& inst,
                          EventMarkSet* gap_events) {
  gap_events->Clear();
  const size_t gap_end = base + inst.end;
  for (size_t g = base + inst.start + 1; g < gap_end; ++g) {
    if (arena[g] < num_events) gap_events->Set(arena[g]);
  }
}

template <typename Index>
InstanceList SingleEventInstancesVertical(const Index& index, EventId ev) {
  InstanceList out;
  if (ev >= index.num_events()) return out;
  out.reserve(index.TotalCount(ev));
  const SequenceDatabase& db = index.db();
  const uint64_t* offsets = db.offsets();
  for (SeqId s = 0; s < db.size(); ++s) {
    const size_t base = offsets[s];
    const size_t limit = offsets[s + 1];
    for (size_t g = index.FirstOfEventAtOrAfter(ev, base, limit);
         g != kNoBit; g = index.FirstOfEventAtOrAfter(ev, g + 1, limit)) {
      const Pos p = static_cast<Pos>(g - base);
      out.push_back(IterInstance{s, p, p});
    }
  }
  return out;
}

template <typename Index>
void ForwardExtensionsVertical(const Index& index, const Pattern& pattern,
                               const InstanceList& instances,
                               ProjectionWorkspace* ws,
                               ForwardExtensionMap* out) {
  BitmapProjectionScratch& sc = ws->bitmap;
  const SimdKernels& kern = Kernels();
  const size_t num_events = index.num_events();
  const SequenceDatabase& db = index.db();
  const EventId* arena = db.arena();
  const uint64_t* offsets = db.offsets();
  DistinctAlphabet(pattern, num_events, &sc.alphabet);
  sc.forward.clear();
  sc.slots.Reset(num_events);
  ws->seen.EnsureSize(num_events);
  // One-event patterns have no gaps, so the gap set stays untouched.
  const bool has_gaps = pattern.size() > 1;
  if (has_gaps) sc.gap_events.EnsureSize(num_events);

  const size_t total_bits = offsets[db.size()];
  const bool whole_row =
      UseWholeRowUnion(DistinctSequences(instances), (total_bits + 63) >> 6);
  if (whole_row) {
    index.BuildUnionForRange(sc.alphabet, 0, total_bits, &sc.union_words);
  }
  SeqId prepared = ~SeqId{0};
  size_t base = 0, limit = 0;
  for (const IterInstance& inst : instances) {
    if (inst.seq != prepared) {
      prepared = inst.seq;
      base = offsets[inst.seq];
      limit = offsets[inst.seq + 1];
      if (!whole_row) {
        index.BuildUnionForRange(sc.alphabet, base, limit, &sc.union_words);
      }
    }
    if (has_gaps) {
      MarkGapEvents(arena, num_events, base, inst, &sc.gap_events);
    }
    const size_t from = base + inst.end + 1;
    // First alphabet(P) event after the instance: bounds the candidate
    // window — everything before it is out-of-alphabet by construction —
    // and is itself the unique alphabet extension endpoint.
    const size_t stop = kern.first_set(sc.union_words.data(), from, limit);
    const size_t window_end = stop == kNoBit ? limit : stop;
    ws->seen.Clear();
    for (size_t g = from; g < window_end; ++g) {
      const EventId ev = arena[g];
      if (ev >= num_events) continue;  // Defensive; ids come from dict.
      if (!ws->seen.TestAndSet(ev)) continue;  // First occurrence only.
      if (has_gaps && sc.gap_events.Test(ev)) continue;
      ++sc.slots.Slot(ev);
      sc.forward.push_back(BitmapProjectionScratch::ForwardCandidate{
          ev, IterInstance{inst.seq, inst.start, static_cast<Pos>(g - base)}});
    }
    if (stop != kNoBit) {
      ++sc.slots.Slot(arena[stop]);
      sc.forward.push_back(BitmapProjectionScratch::ForwardCandidate{
          arena[stop],
          IterInstance{inst.seq, inst.start, static_cast<Pos>(stop - base)}});
    }
  }

  // Count-and-scatter drain: the touched-event list gives exact bucket
  // sizes, so each bucket is reserved once (no realloc churn — the CSR
  // cold path's dominant cost) and the flat buffer is scattered in
  // discovery order, which within an event IS the CSR bucket order. Only
  // the distinct-event list (small) is ever sorted, never the K
  // candidates.
  std::vector<EventId>& touched = sc.slots.touched();
  std::sort(touched.begin(), touched.end());
  out->clear();
  out->entries().reserve(touched.size());
  for (size_t i = 0; i < touched.size(); ++i) {
    const EventId ev = touched[i];
    InstanceList bucket = ws->forward.AcquireBucket();
    bucket.reserve(sc.slots.At(ev));
    out->emplace_back(ev, std::move(bucket));
    // Repurpose the slot as the event's entry index for the scatter.
    sc.slots.Slot(ev) = static_cast<uint32_t>(i);
  }
  auto& entries = out->entries();
  for (const BitmapProjectionScratch::ForwardCandidate& cand : sc.forward) {
    entries[sc.slots.At(cand.ev)].second.push_back(cand.inst);
  }
}

template <typename Index>
const BackwardExtensionMap& BackwardExtensionsVertical(
    const Index& index, const Pattern& pattern, const InstanceList& instances,
    ProjectionWorkspace* ws) {
  BitmapProjectionScratch& sc = ws->bitmap;
  const SimdKernels& kern = Kernels();
  const size_t num_events = index.num_events();
  const SequenceDatabase& db = index.db();
  const EventId* arena = db.arena();
  const uint64_t* offsets = db.offsets();
  DistinctAlphabet(pattern, num_events, &sc.alphabet);
  ws->back.Reset(num_events);
  ws->seen.EnsureSize(num_events);
  const bool has_gaps = pattern.size() > 1;
  if (has_gaps) sc.gap_events.EnsureSize(num_events);

  const size_t total_bits = offsets[db.size()];
  const bool whole_row =
      UseWholeRowUnion(DistinctSequences(instances), (total_bits + 63) >> 6);
  if (whole_row) {
    index.BuildUnionForRange(sc.alphabet, 0, total_bits, &sc.union_words);
  }
  SeqId prepared = ~SeqId{0};
  size_t base = 0, limit = 0;
  for (const IterInstance& inst : instances) {
    if (inst.seq != prepared) {
      prepared = inst.seq;
      base = offsets[inst.seq];
      limit = offsets[inst.seq + 1];
      if (!whole_row) {
        index.BuildUnionForRange(sc.alphabet, base, limit, &sc.union_words);
      }
    }
    if (has_gaps) {
      MarkGapEvents(arena, num_events, base, inst, &sc.gap_events);
    }
    const size_t gstart = base + inst.start;
    // Last alphabet(P) event before the instance start bounds the window;
    // it is itself the unique alphabet backward extension.
    const size_t stop = kern.last_set(sc.union_words.data(), base, gstart);
    const size_t window_begin = stop == kNoBit ? base : stop + 1;
    ws->seen.Clear();
    for (size_t g = gstart; g-- > window_begin;) {
      const EventId ev = arena[g];
      if (ev >= num_events) continue;  // Defensive; ids come from dict.
      if (!ws->seen.TestAndSet(ev)) continue;  // Nearest-to-start only.
      if (has_gaps && sc.gap_events.Test(ev)) continue;
      BackwardExtension& ext = ws->back.Slot(ev);
      ++ext.support;
      ext.all_adjacent = ext.all_adjacent && (g + 1 == gstart);
    }
    if (stop != kNoBit) {
      BackwardExtension& ext = ws->back.Slot(arena[stop]);
      ++ext.support;
      ext.all_adjacent = ext.all_adjacent && (stop + 1 == gstart);
    }
  }

  std::vector<EventId>& touched = ws->back.touched();
  std::sort(touched.begin(), touched.end());
  ws->back_result.clear();
  for (EventId ev : touched) {
    ws->back_result.emplace_back(ev, ws->back.At(ev));
  }
  return ws->back_result;
}

template <typename Index>
uint64_t CountInstancesVertical(const Index& index, const Pattern& pattern,
                                QreRecountScratch* scratch) {
  if (pattern.empty()) return 0;
  QreRecountScratch local;
  if (scratch == nullptr) scratch = &local;
  const SimdKernels& kern = Kernels();
  const size_t num_events = index.num_events();
  if (pattern[0] >= num_events) return 0;  // First event never occurs.
  DistinctAlphabet(pattern, num_events, &scratch->alphabet);
  const SequenceDatabase& db = index.db();
  const EventId* arena = db.arena();
  const uint64_t* offsets = db.offsets();
  const EventId head = pattern[0];
  uint64_t count = 0;
  for (SeqId s = 0; s < db.size(); ++s) {
    const size_t base = offsets[s];
    const size_t limit = offsets[s + 1];
    size_t g = index.FirstOfEventAtOrAfter(head, base, limit);
    if (g == kNoBit) continue;
    index.BuildUnionForRange(scratch->alphabet, base, limit,
                             &scratch->union_words);
    const uint64_t* union_row = scratch->union_words.data();
    for (; g != kNoBit; g = index.FirstOfEventAtOrAfter(head, g + 1, limit)) {
      // Deterministic chain (Definition 4.1): each next pattern event must
      // be the first alphabet event after the previous one.
      size_t cur = g;
      bool ok = true;
      for (size_t k = 1; k < pattern.size(); ++k) {
        const size_t a = kern.first_set(union_row, cur + 1, limit);
        if (a == kNoBit || arena[a] != pattern[k]) {
          ok = false;
          break;
        }
        cur = a;
      }
      if (ok) ++count;
    }
  }
  return count;
}

template <typename Index>
size_t CountOccurrencesVertical(const Index& index, const Pattern& pattern) {
  if (pattern.empty()) return 0;
  const size_t num_events = index.num_events();
  const SequenceDatabase& db = index.db();
  const uint64_t* offsets = db.offsets();
  const EventId last = pattern.last();
  if (last >= num_events) return 0;
  size_t count = 0;
  for (SeqId s = 0; s < db.size(); ++s) {
    const size_t base = offsets[s];
    const size_t limit = offsets[s + 1];
    // Greedy earliest embedding of the prefix, one first-set-bit per
    // event; the remaining occurrences of the last event are the temporal
    // points (Definition 5.1).
    size_t from = base;
    bool embedded = true;
    for (size_t k = 0; k + 1 < pattern.size(); ++k) {
      if (pattern[k] >= num_events) {
        embedded = false;
        break;
      }
      const size_t g = index.FirstOfEventAtOrAfter(pattern[k], from, limit);
      if (g == kNoBit) {
        embedded = false;
        break;
      }
      from = g + 1;
    }
    if (!embedded) continue;
    count += index.CountOfEventInRange(last, from, limit);
  }
  return count;
}

}  // namespace internal
}  // namespace specmine

#endif  // SPECMINE_ITERMINE_VERTICAL_PROJECTION_IMPL_H_
