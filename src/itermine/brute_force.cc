#include "src/itermine/brute_force.h"

#include <vector>

#include "src/itermine/qre_verifier.h"

namespace specmine {

PatternSet BruteForceFrequentIterative(const SequenceDatabase& db,
                                       uint64_t min_support,
                                       size_t max_length) {
  PatternSet out;
  const size_t num_events = db.dictionary().size();
  std::vector<Pattern> frontier;
  for (EventId ev = 0; ev < num_events; ++ev) {
    Pattern p{ev};
    uint64_t sup = CountInstances(p, db);
    if (sup >= min_support) {
      out.Add(p, sup);
      frontier.push_back(p);
    }
  }
  while (!frontier.empty() &&
         (max_length == 0 || frontier.front().size() < max_length)) {
    std::vector<Pattern> next;
    for (const Pattern& p : frontier) {
      for (EventId ev = 0; ev < num_events; ++ev) {
        Pattern q = p.Extend(ev);
        uint64_t sup = CountInstances(q, db);
        if (sup >= min_support) {
          out.Add(q, sup);
          next.push_back(q);
        }
      }
    }
    frontier = std::move(next);
  }
  return out;
}

bool HasTotalInstanceCorrespondence(const SequenceDatabase& db,
                                    const Pattern& sub, const Pattern& super) {
  InstanceList sub_instances = FindAllInstances(sub, db);
  InstanceList super_instances = FindAllInstances(super, db);
  // Both lists are sorted by (seq, start) and instances of one pattern
  // never nest, so ends are sorted too; greedy first-fit matching is exact.
  std::vector<bool> used(super_instances.size(), false);
  for (const IterInstance& si : sub_instances) {
    bool matched = false;
    for (size_t j = 0; j < super_instances.size(); ++j) {
      const IterInstance& qj = super_instances[j];
      if (used[j]) continue;
      if (qj.seq != si.seq) continue;
      if (qj.start <= si.start && qj.end >= si.end) {
        used[j] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

PatternSet BruteForceClosedIterative(const SequenceDatabase& db,
                                     uint64_t min_support) {
  PatternSet full = BruteForceFrequentIterative(db, min_support, 0);
  PatternSet out;
  for (const MinedPattern& cand : full.items()) {
    bool closed = true;
    for (const MinedPattern& other : full.items()) {
      if (other.pattern.size() <= cand.pattern.size()) continue;
      if (other.support != cand.support) continue;
      if (!cand.pattern.IsSubsequenceOf(other.pattern)) continue;
      if (HasTotalInstanceCorrespondence(db, cand.pattern, other.pattern)) {
        closed = false;
        break;
      }
    }
    if (closed) out.Add(cand.pattern, cand.support);
  }
  return out;
}

}  // namespace specmine
