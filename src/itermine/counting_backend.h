// CountingBackend: the physical-representation seam between the miners
// and their counting structure. One handle wraps either the horizontal
// CSR PositionIndex or the vertical BitmapIndex; the projection engine,
// the QRE recount, and the occurrence counters dispatch on kind() once
// per query (never per position), so the CSR paths compile to exactly the
// pre-seam code and stay byte-identical.
//
// A CountingBackend is a tagged pointer pair — copy it by value. The
// wrapped index (and its database) must outlive every copy.

#ifndef SPECMINE_ITERMINE_COUNTING_BACKEND_H_
#define SPECMINE_ITERMINE_COUNTING_BACKEND_H_

#include <cassert>
#include <cstdint>

#include "src/itermine/bitmap_index.h"
#include "src/trace/position_index.h"

namespace specmine {

/// \brief A borrowed handle to one physical counting representation.
class CountingBackend {
 public:
  /// \brief Wraps the CSR position index (the default representation).
  explicit CountingBackend(const PositionIndex& csr) : csr_(&csr) {}

  /// \brief Wraps the vertical bitmap index.
  explicit CountingBackend(const BitmapIndex& bitmap) : bitmap_(&bitmap) {}

  /// \brief Which representation this handle wraps.
  BackendKind kind() const {
    return bitmap_ != nullptr ? BackendKind::kBitmap : BackendKind::kCsr;
  }

  /// \brief Short name for reports ("csr" / "bitmap").
  const char* name() const { return BackendKindName(kind()); }

  /// \brief The wrapped CSR index; kind() must be kCsr.
  const PositionIndex& csr() const {
    assert(csr_ != nullptr);
    return *csr_;
  }

  /// \brief The wrapped bitmap index; kind() must be kBitmap.
  const BitmapIndex& bitmap() const {
    assert(bitmap_ != nullptr);
    return *bitmap_;
  }

  /// \brief The indexed database.
  const SequenceDatabase& db() const {
    return bitmap_ != nullptr ? bitmap_->db() : csr_->db();
  }

  /// \brief Number of distinct events the backend knows about.
  size_t num_events() const {
    return bitmap_ != nullptr ? bitmap_->num_events() : csr_->num_events();
  }

  /// \brief Total occurrences of \p ev across the database.
  uint64_t TotalCount(EventId ev) const {
    return bitmap_ != nullptr ? bitmap_->TotalCount(ev)
                              : csr_->TotalCount(ev);
  }

  /// \brief Number of sequences containing \p ev at least once.
  size_t SequenceCount(EventId ev) const {
    return bitmap_ != nullptr ? bitmap_->SequenceCount(ev)
                              : csr_->SequenceCount(ev);
  }

  /// \brief True iff \p ev occurs in sequence \p seq within [lo, hi]
  /// inclusive — the gap-freedom / insertion-window test. Returns false
  /// when lo > hi.
  bool AnyInRange(EventId ev, SeqId seq, Pos lo, Pos hi) const {
    if (lo > hi) return false;
    if (bitmap_ != nullptr) {
      if (ev >= bitmap_->num_events()) return false;
      const uint64_t* offsets = bitmap_->db().offsets();
      const size_t base = offsets[seq];
      size_t limit = base + hi + 1;
      if (limit > offsets[seq + 1]) limit = offsets[seq + 1];
      return BitmapIndex::AnyInRange(bitmap_->row(ev), base + lo, limit);
    }
    return csr_->CountInRange(ev, seq, lo, hi) > 0;
  }

 private:
  const PositionIndex* csr_ = nullptr;
  const BitmapIndex* bitmap_ = nullptr;
};

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_COUNTING_BACKEND_H_
