// CountingBackend: the physical-representation seam between the miners
// and their counting structure. One handle wraps the horizontal CSR
// PositionIndex, the vertical BitmapIndex, the sparse/dense HybridIndex,
// or the lazy MergedCountingIndex over per-shard indexes; the projection
// engine, the QRE recount, and the occurrence counters dispatch on kind()
// once per query (never per position), so the CSR paths compile to
// exactly the pre-seam code and stay byte-identical.
//
// A CountingBackend is a tagged pointer — copy it by value. The wrapped
// index (and its database) must outlive every copy.
//
// The merged backend answers every counting and projection query without
// a materialized merged database, so db() is the one member it does NOT
// support (asserted); the only db() consumers are the CSR oracle
// fallbacks and the absorber check, which dispatch away from kMerged
// first (see HasUniformInfixAbsorber(backend, ...) in projection.h).

#ifndef SPECMINE_ITERMINE_COUNTING_BACKEND_H_
#define SPECMINE_ITERMINE_COUNTING_BACKEND_H_

#include <cassert>
#include <cstdint>

#include "src/itermine/bitmap_index.h"
#include "src/itermine/hybrid_index.h"
#include "src/trace/position_index.h"

namespace specmine {

class MergedCountingIndex;

// Out-of-line accessors for the merged backend (defined in
// merged_index.cc; merged_index.h needs CountingBackend for its per-shard
// handles, so the full type cannot be included here).
uint64_t MergedIndexTotalCount(const MergedCountingIndex& merged, EventId ev);
size_t MergedIndexSequenceCount(const MergedCountingIndex& merged,
                                EventId ev);
size_t MergedIndexNumEvents(const MergedCountingIndex& merged);
bool MergedIndexAnyInRange(const MergedCountingIndex& merged, EventId ev,
                           SeqId seq, Pos lo, Pos hi);

/// \brief A borrowed handle to one physical counting representation.
class CountingBackend {
 public:
  /// \brief Wraps the CSR position index (the default representation).
  explicit CountingBackend(const PositionIndex& csr)
      : kind_(BackendKind::kCsr), csr_(&csr) {}

  /// \brief Wraps the vertical bitmap index.
  explicit CountingBackend(const BitmapIndex& bitmap)
      : kind_(BackendKind::kBitmap), bitmap_(&bitmap) {}

  /// \brief Wraps the sparse/dense hybrid index.
  explicit CountingBackend(const HybridIndex& hybrid)
      : kind_(BackendKind::kHybrid), hybrid_(&hybrid) {}

  /// \brief Wraps the lazy merged view over per-shard indexes.
  explicit CountingBackend(const MergedCountingIndex& merged)
      : kind_(BackendKind::kMerged), merged_(&merged) {}

  /// \brief Which representation this handle wraps.
  BackendKind kind() const { return kind_; }

  /// \brief Short name for reports ("csr" / "bitmap" / "hybrid" /
  /// "lazy-merged").
  const char* name() const { return BackendKindName(kind_); }

  /// \brief The wrapped CSR index; kind() must be kCsr.
  const PositionIndex& csr() const {
    assert(csr_ != nullptr);
    return *csr_;
  }

  /// \brief The wrapped bitmap index; kind() must be kBitmap.
  const BitmapIndex& bitmap() const {
    assert(bitmap_ != nullptr);
    return *bitmap_;
  }

  /// \brief The wrapped hybrid index; kind() must be kHybrid.
  const HybridIndex& hybrid() const {
    assert(hybrid_ != nullptr);
    return *hybrid_;
  }

  /// \brief The wrapped merged index; kind() must be kMerged.
  const MergedCountingIndex& merged() const {
    assert(merged_ != nullptr);
    return *merged_;
  }

  /// \brief The indexed database. Not supported by the merged backend —
  /// its whole point is that no merged database exists.
  const SequenceDatabase& db() const {
    assert(kind_ != BackendKind::kMerged);
    switch (kind_) {
      case BackendKind::kBitmap:
        return bitmap_->db();
      case BackendKind::kHybrid:
        return hybrid_->db();
      default:
        return csr_->db();
    }
  }

  /// \brief Number of distinct events the backend knows about.
  size_t num_events() const {
    switch (kind_) {
      case BackendKind::kBitmap:
        return bitmap_->num_events();
      case BackendKind::kHybrid:
        return hybrid_->num_events();
      case BackendKind::kMerged:
        return MergedIndexNumEvents(*merged_);
      default:
        return csr_->num_events();
    }
  }

  /// \brief Total occurrences of \p ev across the database.
  uint64_t TotalCount(EventId ev) const {
    switch (kind_) {
      case BackendKind::kBitmap:
        return bitmap_->TotalCount(ev);
      case BackendKind::kHybrid:
        return hybrid_->TotalCount(ev);
      case BackendKind::kMerged:
        return MergedIndexTotalCount(*merged_, ev);
      default:
        return csr_->TotalCount(ev);
    }
  }

  /// \brief Number of sequences containing \p ev at least once.
  size_t SequenceCount(EventId ev) const {
    switch (kind_) {
      case BackendKind::kBitmap:
        return bitmap_->SequenceCount(ev);
      case BackendKind::kHybrid:
        return hybrid_->SequenceCount(ev);
      case BackendKind::kMerged:
        return MergedIndexSequenceCount(*merged_, ev);
      default:
        return csr_->SequenceCount(ev);
    }
  }

  /// \brief True iff \p ev occurs in sequence \p seq within [lo, hi]
  /// inclusive — the gap-freedom / insertion-window test. Returns false
  /// when lo > hi.
  bool AnyInRange(EventId ev, SeqId seq, Pos lo, Pos hi) const {
    if (lo > hi) return false;
    switch (kind_) {
      case BackendKind::kBitmap: {
        if (ev >= bitmap_->num_events()) return false;
        const uint64_t* offsets = bitmap_->db().offsets();
        const size_t base = offsets[seq];
        size_t limit = base + hi + 1;
        if (limit > offsets[seq + 1]) limit = offsets[seq + 1];
        return bitmap_->AnyOfEventInRange(ev, base + lo, limit);
      }
      case BackendKind::kHybrid: {
        if (ev >= hybrid_->num_events()) return false;
        const uint64_t* offsets = hybrid_->db().offsets();
        const size_t base = offsets[seq];
        size_t limit = base + hi + 1;
        if (limit > offsets[seq + 1]) limit = offsets[seq + 1];
        return hybrid_->AnyOfEventInRange(ev, base + lo, limit);
      }
      case BackendKind::kMerged:
        return MergedIndexAnyInRange(*merged_, ev, seq, lo, hi);
      default:
        return csr_->CountInRange(ev, seq, lo, hi) > 0;
    }
  }

 private:
  BackendKind kind_;
  const PositionIndex* csr_ = nullptr;
  const BitmapIndex* bitmap_ = nullptr;
  const HybridIndex* hybrid_ = nullptr;
  const MergedCountingIndex* merged_ = nullptr;
};

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_COUNTING_BACKEND_H_
