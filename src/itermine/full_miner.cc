#include "src/itermine/full_miner.h"

#include <memory>

#include "src/itermine/projection.h"
#include "src/support/cancel.h"
#include "src/support/stopwatch.h"
#include "src/support/thread_pool.h"

namespace specmine {

namespace {

struct Ctx {
  const CountingBackend* backend;
  const IterMinerOptions* options;
  const std::function<bool(const Pattern&, uint64_t)>* sink;
  IterMinerStats* stats;
  ProjectionWorkspace* ws;
  bool stop = false;
};

void Grow(Ctx* ctx, const Pattern& pattern, const InstanceList& instances) {
  if (ctx->stop) return;
  const CancelToken* cancel = ctx->options->cancel;
  if (cancel != nullptr && cancel->ShouldStop()) {
    ctx->stats->stopped = cancel->stop_code();
    ctx->stop = true;
    return;
  }
  ++ctx->stats->nodes_visited;
  ++ctx->stats->patterns_emitted;
  bool grow_subtree = (*ctx->sink)(pattern, instances.size());
  if (ctx->options->max_patterns != 0 &&
      ctx->stats->patterns_emitted >= ctx->options->max_patterns) {
    ctx->stats->truncated = true;
    ctx->stop = true;
    return;
  }
  if (!grow_subtree) return;
  if (ctx->options->max_length != 0 &&
      pattern.size() >= ctx->options->max_length) {
    return;
  }
  ForwardExtensionMap extensions = ctx->ws->AcquireMap();
  ForwardExtensions(*ctx->backend, pattern, instances, ctx->ws, &extensions);
  for (auto& [ev, ext_instances] : extensions) {
    if (ctx->stop) break;
    if (ext_instances.size() < ctx->options->min_support) continue;
    Grow(ctx, pattern.Extend(ev), ext_instances);
  }
  ctx->ws->ReleaseMap(std::move(extensions));
}

// --------------------------------------------------------------------------
// Parallel path: one job per frequent root event. Workers mine whole
// subtrees into private buffers; the sink then replays the buffers on the
// calling thread in root order, reproducing the sequential emission
// sequence exactly (including sink-driven subtree skips and max_patterns
// truncation), so user callbacks need no synchronization and the output
// is identical at every thread count.

struct Emission {
  Pattern pattern;
  uint64_t support;
};

struct SubtreeJob {
  const CountingBackend* backend;
  const IterMinerOptions* options;
  ProjectionWorkspace ws;
  std::vector<Emission> emitted;  // DFS preorder.
  size_t nodes_visited = 0;
  bool cancelled = false;  // Buffer is a prefix of this subtree's preorder.

  void Grow(const Pattern& pattern, const InstanceList& instances) {
    if (cancelled) return;
    if (options->cancel != nullptr && options->cancel->ShouldStop()) {
      // The buffered emissions so far are a prefix of this subtree's DFS
      // preorder; the replay loop stops the global sequence here, keeping
      // the whole delivered output a prefix of the deterministic order.
      cancelled = true;
      return;
    }
    // No single job can contribute more emissions than the global cap, so
    // stop buffering there — this bounds memory exactly like sequential
    // truncation does for the non-pruning sinks that use max_patterns.
    if (options->max_patterns != 0 &&
        emitted.size() >= options->max_patterns) {
      return;
    }
    ++nodes_visited;
    emitted.push_back(Emission{pattern, instances.size()});
    if (options->max_length != 0 && pattern.size() >= options->max_length) {
      return;
    }
    ForwardExtensionMap extensions = ws.AcquireMap();
    ForwardExtensions(*backend, pattern, instances, &ws, &extensions);
    for (auto& [ev, ext_instances] : extensions) {
      if (cancelled) break;
      if (ext_instances.size() < options->min_support) continue;
      Grow(pattern.Extend(ev), ext_instances);
    }
    ws.ReleaseMap(std::move(extensions));
  }
};

void ScanParallel(const CountingBackend& backend,
                  const IterMinerOptions& options, size_t num_threads,
                  ThreadPool* pool,
                  const std::function<bool(const Pattern&, uint64_t)>& sink,
                  IterMinerStats* stats) {
  const std::vector<EventId> roots =
      FrequentRoots(backend, options.min_support);
  std::vector<std::unique_ptr<SubtreeJob>> jobs(roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    jobs[i] = std::make_unique<SubtreeJob>();
    jobs[i]->backend = &backend;
    jobs[i]->options = &options;
  }
  stats->error = ThreadPool::ParallelForShared(
      pool, num_threads, roots.size(), [&](size_t i) {
        jobs[i]->Grow(Pattern{roots[i]},
                      SingleEventInstances(backend, roots[i]));
      });
  if (!stats->error.ok()) return;  // A worker task threw: deliver nothing.
  // Replay: a sink returning false skips every deeper emission that
  // follows (its subtree — preorder depth equals pattern length). Each
  // job's buffer is freed as soon as it is replayed, so peak memory is
  // the not-yet-replayed buffers, not the whole run's emissions.
  size_t skip_below = 0;  // 0 = not skipping.
  for (auto& job : jobs) {
    stats->nodes_visited += job->nodes_visited;
    for (const Emission& e : job->emitted) {
      // A fired token ends the delivered sequence here — everything
      // already replayed (complete earlier jobs + this job's prefix) is a
      // prefix of the deterministic global order.
      if (options.cancel != nullptr && options.cancel->ShouldStop()) {
        stats->stopped = options.cancel->stop_code();
        return;
      }
      if (skip_below != 0) {
        if (e.pattern.size() > skip_below) continue;
        skip_below = 0;
      }
      ++stats->patterns_emitted;
      bool grow_subtree = sink(e.pattern, e.support);
      if (options.max_patterns != 0 &&
          stats->patterns_emitted >= options.max_patterns) {
        stats->truncated = true;
        return;
      }
      if (!grow_subtree) skip_below = e.pattern.size();
    }
    const bool job_cancelled = job->cancelled;
    job.reset();
    if (job_cancelled) {
      stats->stopped = options.cancel != nullptr
                           ? options.cancel->stop_code()
                           : StatusCode::kCancelled;
      return;
    }
  }
}

}  // namespace

void ScanFrequentIterative(
    const CountingBackend& backend, const IterMinerOptions& options,
    const std::function<bool(const Pattern&, uint64_t)>& sink,
    IterMinerStats* stats, ThreadPool* pool) {
  IterMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = IterMinerStats{};
  Stopwatch sw;
  const size_t num_threads = ThreadPool::ResolveThreads(options.num_threads);
  if (num_threads > 1) {
    ScanParallel(backend, options, num_threads, pool, sink, stats);
    stats->mine_seconds = sw.ElapsedSeconds();
    return;
  }
  ProjectionWorkspace ws;
  Ctx ctx{&backend, &options, &sink, stats, &ws};
  for (EventId ev = 0; ev < backend.num_events(); ++ev) {
    if (ctx.stop) break;
    if (backend.TotalCount(ev) < options.min_support) continue;
    Pattern p{ev};
    Grow(&ctx, p, SingleEventInstances(backend, ev));
  }
  stats->mine_seconds = sw.ElapsedSeconds();
}

void ScanFrequentIterative(
    const PositionIndex& index, const IterMinerOptions& options,
    const std::function<bool(const Pattern&, uint64_t)>& sink,
    IterMinerStats* stats, ThreadPool* pool) {
  ScanFrequentIterative(CountingBackend(index), options, sink, stats, pool);
}

void ScanFrequentIterative(
    const SequenceDatabase& db, const IterMinerOptions& options,
    const std::function<bool(const Pattern&, uint64_t)>& sink,
    IterMinerStats* stats) {
  IterMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  const BackendKind kind = ResolveBackendKindClamped(options.backend, db);
  Stopwatch sw;
  if (kind == BackendKind::kBitmap) {
    BitmapIndex index(db);
    const double index_build_seconds = sw.ElapsedSeconds();
    ScanFrequentIterative(CountingBackend(index), options, sink, stats,
                          nullptr);
    stats->index_build_seconds = index_build_seconds;
    return;
  }
  if (kind == BackendKind::kHybrid) {
    HybridIndex index(db);
    const double index_build_seconds = sw.ElapsedSeconds();
    ScanFrequentIterative(CountingBackend(index), options, sink, stats,
                          nullptr);
    stats->index_build_seconds = index_build_seconds;
    return;
  }
  PositionIndex index(db);
  const double index_build_seconds = sw.ElapsedSeconds();
  ScanFrequentIterative(CountingBackend(index), options, sink, stats,
                        nullptr);
  stats->index_build_seconds = index_build_seconds;
}

PatternSet MineFrequentIterative(const CountingBackend& backend,
                                 const IterMinerOptions& options,
                                 IterMinerStats* stats, ThreadPool* pool) {
  PatternSet out;
  ScanFrequentIterative(
      backend, options,
      [&out](const Pattern& p, uint64_t support) {
        out.Add(p, support);
        return true;
      },
      stats, pool);
  return out;
}

PatternSet MineFrequentIterative(const PositionIndex& index,
                                 const IterMinerOptions& options,
                                 IterMinerStats* stats, ThreadPool* pool) {
  return MineFrequentIterative(CountingBackend(index), options, stats, pool);
}

PatternSet MineFrequentIterative(const SequenceDatabase& db,
                                 const IterMinerOptions& options,
                                 IterMinerStats* stats) {
  PatternSet out;
  ScanFrequentIterative(
      db, options,
      [&out](const Pattern& p, uint64_t support) {
        out.Add(p, support);
        return true;
      },
      stats);
  return out;
}

}  // namespace specmine
