#include "src/itermine/full_miner.h"

#include "src/itermine/projection.h"

namespace specmine {

namespace {

struct Ctx {
  const PositionIndex* index;
  const IterMinerOptions* options;
  const std::function<bool(const Pattern&, uint64_t)>* sink;
  IterMinerStats* stats;
  bool stop = false;
};

void Grow(Ctx* ctx, const Pattern& pattern, const InstanceList& instances) {
  if (ctx->stop) return;
  ++ctx->stats->nodes_visited;
  ++ctx->stats->patterns_emitted;
  bool grow_subtree = (*ctx->sink)(pattern, instances.size());
  if (ctx->options->max_patterns != 0 &&
      ctx->stats->patterns_emitted >= ctx->options->max_patterns) {
    ctx->stats->truncated = true;
    ctx->stop = true;
    return;
  }
  if (!grow_subtree) return;
  if (ctx->options->max_length != 0 &&
      pattern.size() >= ctx->options->max_length) {
    return;
  }
  auto extensions = ForwardExtensions(*ctx->index, pattern, instances);
  for (auto& [ev, ext_instances] : extensions) {
    if (ctx->stop) return;
    if (ext_instances.size() < ctx->options->min_support) continue;
    Grow(ctx, pattern.Extend(ev), ext_instances);
  }
}

}  // namespace

void ScanFrequentIterative(
    const SequenceDatabase& db, const IterMinerOptions& options,
    const std::function<bool(const Pattern&, uint64_t)>& sink,
    IterMinerStats* stats) {
  IterMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = IterMinerStats{};
  PositionIndex index(db);
  Ctx ctx{&index, &options, &sink, stats};
  for (EventId ev = 0; ev < db.dictionary().size(); ++ev) {
    if (ctx.stop) break;
    if (index.TotalCount(ev) < options.min_support) continue;
    Pattern p{ev};
    Grow(&ctx, p, SingleEventInstances(index, ev));
  }
}

PatternSet MineFrequentIterative(const SequenceDatabase& db,
                                 const IterMinerOptions& options,
                                 IterMinerStats* stats) {
  PatternSet out;
  ScanFrequentIterative(
      db, options,
      [&out](const Pattern& p, uint64_t support) {
        out.Add(p, support);
        return true;
      },
      stats);
  return out;
}

}  // namespace specmine
