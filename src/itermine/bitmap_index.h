// BitmapIndex: the vertical (SPAM-style) physical counting representation
// behind the iterative-pattern miners — per event, a word-packed occurrence
// bitmap over the flat event arena.
//
// Layout: bit g of event e's row is set iff arena[g] == e. Bit positions
// ARE arena positions, so the CSR sequence boundaries of SequenceDatabase
// (offsets[s]..offsets[s+1]) delimit sequence s's bits directly — no
// per-sequence padding, shared boundary words are handled by the range
// masks of the query primitives below. The projection queries become
// word-wise ops: "first alphabet(P) event after position p" is a
// find-first-set over an OR of alphabet rows, gap-freedom is an AND
// against a range mask, and occurrence counts are popcounts.
//
// Memory: num_events x ceil(total_events / 64) words. The table is dense
// in the alphabet (every event gets a full-width row), which is exactly
// the regime the adaptive chooser (ChooseBackendKind) gates on: small
// alphabets with frequent events — where the dense per-corpus offset
// table of PositionIndex wastes events x sequences cells — pay off;
// sparse huge-alphabet corpora stay on the CSR index.

#ifndef SPECMINE_ITERMINE_BITMAP_INDEX_H_
#define SPECMINE_ITERMINE_BITMAP_INDEX_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "src/itermine/simd_kernels.h"
#include "src/support/status.h"
#include "src/trace/position_index.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Sentinel for "no bit" returned by the scan primitives.
inline constexpr size_t kNoBit = ~size_t{0};

/// \brief Which physical counting representation backs a miner run.
/// kMerged is the lazy merged view over per-shard indexes (never chosen
/// directly; the Engine selects it for sharded sessions — see
/// merged_index.h).
enum class BackendKind { kCsr, kBitmap, kHybrid, kMerged };

/// \brief Backend selection in miner options: an explicit representation
/// or the adaptive per-database chooser. (kMerged has no explicit choice:
/// it is an Engine-internal representation of the same logical corpus.)
enum class BackendChoice { kAuto, kCsr, kBitmap, kHybrid };

/// \brief Short lowercase name ("csr" / "bitmap" / "hybrid" /
/// "lazy-merged") for reports and flags.
const char* BackendKindName(BackendKind kind);

/// \brief The adaptive chooser: picks the physical representation for
/// \p db from its shape, measured at index-build time.
///
/// Bitmap wins when rows are dense enough that one 64-bit word carries
/// several occurrences worth of scan work: the heuristic is
/// mean occurrences per event (TotalEvents / alphabet size) >= 8, with the
/// alphabet size entering a second time through the table-size cap
/// (alphabet x TotalEvents / 8 bytes <= 256 MB). Sparse corpora with a
/// large enough arena (>= 4096 events) go to the hybrid sparse/dense row
/// format, whose footprint is bounded by the corpus (not alphabet x
/// arena) and whose rare-event lists stay cache-resident where full
/// bitmap rows thrash. Everything else — tiny corpora, near-empty rows —
/// stays on the CSR position index.
BackendKind ChooseBackendKind(const SequenceDatabase& db);

/// \brief Resolves a BackendChoice against \p db: explicit choices pass
/// through, kAuto consults ChooseBackendKind.
inline BackendKind ResolveBackendKind(BackendChoice choice,
                                      const SequenceDatabase& db) {
  if (choice == BackendChoice::kCsr) return BackendKind::kCsr;
  if (choice == BackendChoice::kBitmap) return BackendKind::kBitmap;
  if (choice == BackendChoice::kHybrid) return BackendKind::kHybrid;
  return ChooseBackendKind(db);
}

/// \brief Verifies the bitmap table for \p db stays within the explicit
/// memory ceiling (1 GB); OutOfRange naming the size otherwise. The auto
/// chooser never exceeds it; this guards the explicit kBitmap override.
Status CheckBitmapIndexable(const SequenceDatabase& db);

/// \brief ResolveBackendKind with the table cap applied: an explicit
/// bitmap request beyond CheckBitmapIndexable is downgraded to CSR
/// (identical output). The policy of the Status-less db-level miner entry
/// points — the Engine path reports the same condition as OutOfRange
/// instead.
inline BackendKind ResolveBackendKindClamped(BackendChoice choice,
                                             const SequenceDatabase& db) {
  const BackendKind kind = ResolveBackendKind(choice, db);
  if (kind == BackendKind::kBitmap && !CheckBitmapIndexable(db).ok()) {
    return BackendKind::kCsr;
  }
  return kind;
}

/// \brief Per-event occurrence bitmaps over the event arena.
///
/// Built once per database in O(total events + events x words); immutable
/// afterwards. The database must outlive the index.
class BitmapIndex {
 public:
  explicit BitmapIndex(const SequenceDatabase& db);

  /// \brief The indexed database.
  const SequenceDatabase& db() const { return *db_; }

  /// \brief Number of distinct events the index knows about.
  size_t num_events() const { return num_events_; }

  /// \brief Words per event row: ceil(TotalEvents / 64).
  size_t words_per_row() const { return words_; }

  /// \brief Event \p ev's occurrence row (words_per_row() words); ev must
  /// be < num_events().
  const uint64_t* row(EventId ev) const {
    return bits_.data() + static_cast<size_t>(ev) * words_;
  }

  /// \brief Total occurrences of \p ev across the database.
  uint64_t TotalCount(EventId ev) const {
    return ev < total_counts_.size() ? total_counts_[ev] : 0;
  }

  /// \brief Number of sequences containing \p ev at least once.
  size_t SequenceCount(EventId ev) const {
    return ev < sequence_counts_.size() ? sequence_counts_[ev] : 0;
  }

  /// \brief Bytes held by the bitmap table.
  size_t table_bytes() const { return bits_.size() * sizeof(uint64_t); }

  // -------------------------------------------------------------------------
  // Word-wise scan primitives over one row (or any word array using the
  // same bit = arena-position convention). All ranges are half-open
  // [from, limit) in global bit positions; the masks below are what makes
  // unpadded sequence boundaries (and the 63/64/65-length edge cases the
  // tests pin down) safe.

  /// \brief First set bit in [from, limit), or kNoBit.
  static size_t FirstSetAtOrAfter(const uint64_t* row, size_t from,
                                  size_t limit) {
    if (from >= limit) return kNoBit;
    size_t w = from >> 6;
    const size_t last = (limit - 1) >> 6;
    uint64_t word = row[w] & (~uint64_t{0} << (from & 63));
    while (true) {
      if (word != 0) {
        const size_t bit = (w << 6) + static_cast<size_t>(std::countr_zero(word));
        return bit < limit ? bit : kNoBit;
      }
      if (w == last) return kNoBit;
      word = row[++w];
    }
  }

  /// \brief Last set bit in [lo, before), or kNoBit.
  static size_t LastSetBefore(const uint64_t* row, size_t lo, size_t before) {
    if (lo >= before) return kNoBit;
    size_t w = (before - 1) >> 6;
    const size_t first = lo >> 6;
    const unsigned top = (before - 1) & 63;
    uint64_t word = row[w] &
                    (top == 63 ? ~uint64_t{0} : (uint64_t{1} << (top + 1)) - 1);
    while (true) {
      if (word != 0) {
        const size_t bit =
            (w << 6) + 63 - static_cast<size_t>(std::countl_zero(word));
        return bit >= lo ? bit : kNoBit;
      }
      if (w == first) return kNoBit;
      word = row[--w];
    }
  }

  /// \brief True iff any bit of [from, limit) is set.
  static bool AnyInRange(const uint64_t* row, size_t from, size_t limit) {
    return FirstSetAtOrAfter(row, from, limit) != kNoBit;
  }

  /// \brief Number of set bits in [from, limit).
  static size_t CountInRange(const uint64_t* row, size_t from, size_t limit) {
    if (from >= limit) return 0;
    size_t w = from >> 6;
    const size_t last = (limit - 1) >> 6;
    uint64_t word = row[w] & (~uint64_t{0} << (from & 63));
    size_t count = 0;
    while (w < last) {
      count += static_cast<size_t>(std::popcount(word));
      word = row[++w];
    }
    const unsigned top = (limit - 1) & 63;
    word &= (top == 63 ? ~uint64_t{0} : (uint64_t{1} << (top + 1)) - 1);
    return count + static_cast<size_t>(std::popcount(word));
  }

  // -------------------------------------------------------------------------
  // The per-event query interface of the vertical projection template
  // (vertical_projection_impl.h): same contracts as the statics above,
  // routed through the runtime-dispatched kernel table, with the event id
  // resolved to this index's physical row. HybridIndex implements the
  // same five members over its sparse/dense split.

  /// \brief First occurrence of \p ev in global bits [from, limit), or
  /// kNoBit; ev must be < num_events().
  size_t FirstOfEventAtOrAfter(EventId ev, size_t from, size_t limit) const {
    return Kernels().first_set(row(ev), from, limit);
  }

  /// \brief True iff \p ev occurs in global bits [from, limit).
  bool AnyOfEventInRange(EventId ev, size_t from, size_t limit) const {
    return Kernels().any_range(row(ev), from, limit);
  }

  /// \brief Occurrences of \p ev in global bits [from, limit).
  size_t CountOfEventInRange(EventId ev, size_t from, size_t limit) const {
    return Kernels().count_range(row(ev), from, limit);
  }

  /// \brief ORs the \p alphabet events' occurrence rows into *union_words
  /// (resized to words_per_row() on growth) over the word range covering
  /// global bits [base, limit). Only that word range is written; queries
  /// must mask to it (shared boundary words carry neighbor-sequence bits).
  void BuildUnionForRange(const std::vector<EventId>& alphabet, size_t base,
                          size_t limit,
                          std::vector<uint64_t>* union_words) const {
    if (union_words->size() < words_) union_words->resize(words_, 0);
    if (base >= limit) return;
    const size_t wb = base >> 6;
    const size_t we = ((limit - 1) >> 6) + 1;
    uint64_t* out = union_words->data();
    // The kernel takes a row-pointer array; patterns are short, so a
    // fixed stack chunk covers every real alphabet, with a scalar
    // OR-accumulate tail for pathological ones.
    constexpr size_t kChunk = 16;
    const uint64_t* rows[kChunk];
    const size_t n = alphabet.size() < kChunk ? alphabet.size() : kChunk;
    for (size_t i = 0; i < n; ++i) rows[i] = row(alphabet[i]);
    Kernels().union_rows(rows, n, wb, we, out);
    for (size_t i = kChunk; i < alphabet.size(); ++i) {
      const uint64_t* r = row(alphabet[i]);
      for (size_t w = wb; w < we; ++w) out[w] |= r[w];
    }
  }

 private:
  const SequenceDatabase* db_;
  size_t num_events_ = 0;
  size_t words_ = 0;
  std::vector<uint64_t> bits_;  // num_events_ x words_, row-major.
  std::vector<uint64_t> total_counts_;
  std::vector<size_t> sequence_counts_;
};

}  // namespace specmine

#endif  // SPECMINE_ITERMINE_BITMAP_INDEX_H_
