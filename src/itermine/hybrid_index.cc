#include "src/itermine/hybrid_index.h"

namespace specmine {

HybridIndex::HybridIndex(const SequenceDatabase& db, uint64_t dense_cutoff)
    : db_(&db),
      num_events_(db.dictionary().size()),
      words_((db.TotalEvents() + 63) / 64),
      dense_cutoff_(dense_cutoff != 0 ? dense_cutoff : AutoDenseCutoff(db)) {
  total_counts_.assign(num_events_, 0);
  sequence_counts_.assign(num_events_, 0);
  const EventId* arena = db.arena();
  const size_t total = db.TotalEvents();
  for (size_t g = 0; g < total; ++g) {
    const EventId ev = arena[g];
    if (ev >= num_events_) continue;  // Defensive; ids come from dict.
    ++total_counts_[ev];
  }

  // Split the alphabet at the cutoff and lay out both sides: dense events
  // get compacted row ids, sparse events a CSR over one shared position
  // array (dense events keep an empty range so the offsets stay dense).
  row_index_.assign(num_events_, kNoRow);
  sparse_offsets_.assign(num_events_ + 1, 0);
  for (EventId ev = 0; ev < num_events_; ++ev) {
    if (total_counts_[ev] >= dense_cutoff_) {
      row_index_[ev] = static_cast<uint32_t>(num_dense_++);
    } else {
      sparse_offsets_[ev + 1] = total_counts_[ev];
    }
  }
  for (EventId ev = 0; ev < num_events_; ++ev) {
    sparse_offsets_[ev + 1] += sparse_offsets_[ev];
  }
  bits_.assign(num_dense_ * words_, 0);
  positions_.resize(sparse_offsets_[num_events_]);

  // Fill pass: arena order IS sorted global-position order per event, so
  // the sparse lists come out sorted with a plain write cursor.
  std::vector<size_t> cursor(sparse_offsets_.begin(),
                             sparse_offsets_.end() - 1);
  for (size_t g = 0; g < total; ++g) {
    const EventId ev = arena[g];
    if (ev >= num_events_) continue;
    const uint32_t r = row_index_[ev];
    if (r != kNoRow) {
      bits_[static_cast<size_t>(r) * words_ + (g >> 6)] |= uint64_t{1}
                                                           << (g & 63);
    } else {
      positions_[cursor[ev]++] = static_cast<uint32_t>(g);
    }
  }

  // Sequence counts: scalar sweep with a last-seen stamp, O(total).
  std::vector<SeqId> last_seen(num_events_, ~SeqId{0});
  const uint64_t* offsets = db.offsets();
  for (SeqId s = 0; s < db.size(); ++s) {
    for (size_t g = offsets[s]; g < offsets[s + 1]; ++g) {
      const EventId ev = arena[g];
      if (ev >= num_events_ || last_seen[ev] == s) continue;
      last_seen[ev] = s;
      ++sequence_counts_[ev];
    }
  }
}

void HybridIndex::BuildUnionForRange(const std::vector<EventId>& alphabet,
                                     size_t base, size_t limit,
                                     std::vector<uint64_t>* union_words) const {
  if (union_words->size() < words_) union_words->resize(words_, 0);
  if (base >= limit) return;
  const size_t wb = base >> 6;
  const size_t we = ((limit - 1) >> 6) + 1;
  uint64_t* out = union_words->data();
  // Dense alphabet rows through the union kernel (overwrites the range —
  // n == 0 zeroes it, which is what the sparse scatter below needs).
  constexpr size_t kChunk = 16;
  const uint64_t* rows[kChunk];
  size_t n = 0;
  for (EventId ev : alphabet) {
    const uint32_t r = row_index_[ev];
    if (r == kNoRow) continue;
    if (n < kChunk) {
      rows[n++] = dense_row(r);
    }
  }
  Kernels().union_rows(rows, n, wb, we, out);
  if (n == kChunk) {
    // Pathological alphabets beyond the stack chunk: scalar OR tail.
    size_t seen = 0;
    for (EventId ev : alphabet) {
      const uint32_t r = row_index_[ev];
      if (r == kNoRow) continue;
      if (seen++ < kChunk) continue;
      const uint64_t* row = dense_row(r);
      for (size_t w = wb; w < we; ++w) out[w] |= row[w];
    }
  }
  // Rare alphabet events: scatter their in-range positions as bits.
  for (EventId ev : alphabet) {
    if (row_index_[ev] != kNoRow) continue;
    const uint32_t* it = positions_.data() + sparse_offsets_[ev];
    const uint32_t* end = positions_.data() + sparse_offsets_[ev + 1];
    it = std::lower_bound(it, end, static_cast<uint32_t>(base));
    for (; it != end && *it < limit; ++it) {
      out[*it >> 6] |= uint64_t{1} << (*it & 63);
    }
  }
}

}  // namespace specmine
