// The AVX2/BMI2/POPCNT kernel table. This is the only translation unit
// built with -mavx2 -mbmi2 -mpopcnt (see SPECMINE_ENABLE_AVX2 in
// CMakeLists.txt); nothing here runs unless Avx2KernelsOrNull() confirmed
// the CPU support at dispatch time, so the rest of the binary stays
// baseline-x86-64 clean. When the option is off (non-x86 targets), the
// fallback definition at the bottom keeps the symbol present and the
// dispatch resolves to scalar.

#include "src/itermine/simd_kernels.h"

#if defined(SPECMINE_HAVE_AVX2)

#include <immintrin.h>

namespace specmine {

namespace {

constexpr size_t kNone = ~size_t{0};

inline uint64_t LowMask(size_t from) { return ~uint64_t{0} << (from & 63); }

inline uint64_t HighMask(size_t last_bit) {
  const unsigned top = last_bit & 63;
  return top == 63 ? ~uint64_t{0} : (uint64_t{1} << (top + 1)) - 1;
}

size_t FirstSetAvx2(const uint64_t* row, size_t from, size_t limit) {
  if (from >= limit) return kNone;
  size_t w = from >> 6;
  const size_t last = (limit - 1) >> 6;
  const uint64_t head = row[w] & LowMask(from);
  if (head != 0) {
    const size_t bit = (w << 6) + static_cast<size_t>(_tzcnt_u64(head));
    return bit < limit ? bit : kNone;
  }
  ++w;
  // The projection queries mostly find the next occurrence within a word
  // or two, so probe a few words scalar before paying the 256-bit setup;
  // long zero runs then skip four words at a time below.
  const size_t probe_end = last + 1 < w + 3 ? last + 1 : w + 3;
  for (; w < probe_end; ++w) {
    if (row[w] != 0) {
      const size_t bit = (w << 6) + static_cast<size_t>(_tzcnt_u64(row[w]));
      return bit < limit ? bit : kNone;
    }
  }
  while (w + 4 <= last + 1) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w));
    if (!_mm256_testz_si256(v, v)) break;
    w += 4;
  }
  for (; w <= last; ++w) {
    if (row[w] != 0) {
      const size_t bit = (w << 6) + static_cast<size_t>(_tzcnt_u64(row[w]));
      return bit < limit ? bit : kNone;
    }
  }
  return kNone;
}

size_t LastSetAvx2(const uint64_t* row, size_t lo, size_t before) {
  if (lo >= before) return kNone;
  size_t w = (before - 1) >> 6;
  const size_t first = lo >> 6;
  const uint64_t head = row[w] & HighMask(before - 1);
  if (head != 0) {
    const size_t bit = (w << 6) + 63 - static_cast<size_t>(_lzcnt_u64(head));
    return bit >= lo ? bit : kNone;
  }
  // Skip zero word blocks downwards; a nonzero block falls through to the
  // scalar tail.
  while (w >= first + 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w - 4));
    if (!_mm256_testz_si256(v, v)) break;
    w -= 4;
  }
  while (w != first) {
    --w;
    if (row[w] != 0) {
      const size_t bit =
          (w << 6) + 63 - static_cast<size_t>(_lzcnt_u64(row[w]));
      return bit >= lo ? bit : kNone;
    }
  }
  return kNone;
}

bool AnyRangeAvx2(const uint64_t* row, size_t from, size_t limit) {
  if (from >= limit) return false;
  size_t w = from >> 6;
  const size_t last = (limit - 1) >> 6;
  if (w == last) {
    return (row[w] & LowMask(from) & HighMask(limit - 1)) != 0;
  }
  if ((row[w] & LowMask(from)) != 0) return true;
  ++w;
  while (w + 4 <= last) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w));
    if (!_mm256_testz_si256(v, v)) return true;
    w += 4;
  }
  for (; w < last; ++w) {
    if (row[w] != 0) return true;
  }
  return (row[last] & HighMask(limit - 1)) != 0;
}

size_t CountRangeAvx2(const uint64_t* row, size_t from, size_t limit) {
  if (from >= limit) return 0;
  size_t w = from >> 6;
  const size_t last = (limit - 1) >> 6;
  if (w == last) {
    return static_cast<size_t>(
        _mm_popcnt_u64(row[w] & LowMask(from) & HighMask(limit - 1)));
  }
  size_t count = static_cast<size_t>(_mm_popcnt_u64(row[w] & LowMask(from)));
  ++w;
  // Full middle words: 4-way unrolled hardware popcount (this TU carries
  // -mpopcnt, so these are single popcnt instructions, not libcalls).
  while (w + 4 <= last) {
    count += static_cast<size_t>(_mm_popcnt_u64(row[w])) +
             static_cast<size_t>(_mm_popcnt_u64(row[w + 1])) +
             static_cast<size_t>(_mm_popcnt_u64(row[w + 2])) +
             static_cast<size_t>(_mm_popcnt_u64(row[w + 3]));
    w += 4;
  }
  for (; w < last; ++w) {
    count += static_cast<size_t>(_mm_popcnt_u64(row[w]));
  }
  return count +
         static_cast<size_t>(_mm_popcnt_u64(row[last] & HighMask(limit - 1)));
}

void UnionRowsAvx2(const uint64_t* const* rows, size_t n, size_t wb,
                   size_t we, uint64_t* out) {
  size_t w = wb;
  for (; w + 4 <= we; w += 4) {
    __m256i acc = _mm256_setzero_si256();
    for (size_t i = 0; i < n; ++i) {
      acc = _mm256_or_si256(
          acc, _mm256_loadu_si256(
                   reinterpret_cast<const __m256i*>(rows[i] + w)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), acc);
  }
  for (; w < we; ++w) {
    uint64_t u = 0;
    for (size_t i = 0; i < n; ++i) u |= rows[i][w];
    out[w] = u;
  }
}

constexpr SimdKernels kAvx2Kernels = {
    "avx2",        FirstSetAvx2,  LastSetAvx2,
    AnyRangeAvx2,  CountRangeAvx2, UnionRowsAvx2,
};

}  // namespace

const SimdKernels* Avx2KernelsOrNull() {
  static const bool supported = __builtin_cpu_supports("avx2") &&
                                __builtin_cpu_supports("bmi2") &&
                                __builtin_cpu_supports("popcnt");
  return supported ? &kAvx2Kernels : nullptr;
}

}  // namespace specmine

#else  // !SPECMINE_HAVE_AVX2

namespace specmine {

const SimdKernels* Avx2KernelsOrNull() { return nullptr; }

}  // namespace specmine

#endif  // SPECMINE_HAVE_AVX2
