#include "src/itermine/closed_miner.h"

#include "src/itermine/projection.h"

namespace specmine {

namespace {

struct Ctx {
  const SequenceDatabase* db;
  const PositionIndex* index;
  const ClosedIterMinerOptions* options;
  PatternSet* out;
  IterMinerStats* stats;
};

void Grow(Ctx* ctx, const Pattern& pattern, const InstanceList& instances) {
  ++ctx->stats->nodes_visited;
  const uint64_t support = instances.size();

  // Backward extensions first: they both decide backward absorption and
  // drive the subtree prunes, letting us skip the (costlier) forward
  // projection for pruned subtrees.
  auto backward = BackwardExtensions(*ctx->index, pattern, instances);
  bool backward_absorbed = false;
  for (const auto& [ev, ext] : backward) {
    if (ext.support != support) continue;
    backward_absorbed = true;
    if (!ext.all_adjacent) continue;
    const bool in_alphabet = pattern.Contains(ev);
    if ((in_alphabet && ctx->options->prefix_prune) ||
        (!in_alphabet && ctx->options->aggressive_prefix_prune)) {
      ++ctx->stats->subtrees_pruned;
      return;  // No closed pattern anywhere in this subtree.
    }
  }

  auto forward = ForwardExtensions(*ctx->index, pattern, instances);
  bool forward_absorbed = false;
  for (const auto& [ev, ext_instances] : forward) {
    if (ext_instances.size() == support) {
      forward_absorbed = true;
      break;
    }
  }

  bool infix_absorbed = false;
  if (pattern.size() >= 2 &&
      (ctx->options->infix_prune ||
       (ctx->options->infix_check && !backward_absorbed &&
        !forward_absorbed))) {
    infix_absorbed = HasUniformInfixAbsorber(*ctx->db, pattern, instances);
    if (infix_absorbed && ctx->options->infix_prune) {
      ++ctx->stats->subtrees_pruned;
      return;  // P3: the subtree contains no closed pattern.
    }
    if (!ctx->options->infix_check) infix_absorbed = false;
  }

  if (!backward_absorbed && !forward_absorbed && !infix_absorbed) {
    ctx->out->Add(pattern, support);
    ++ctx->stats->patterns_emitted;
  }

  if (ctx->options->max_length != 0 &&
      pattern.size() >= ctx->options->max_length) {
    return;
  }
  for (auto& [ev, ext_instances] : forward) {
    if (ext_instances.size() < ctx->options->min_support) continue;
    Grow(ctx, pattern.Extend(ev), ext_instances);
  }
}

}  // namespace

PatternSet MineClosedIterative(const SequenceDatabase& db,
                               const ClosedIterMinerOptions& options,
                               IterMinerStats* stats) {
  IterMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = IterMinerStats{};
  PatternSet out;
  PositionIndex index(db);
  Ctx ctx{&db, &index, &options, &out, stats};
  for (EventId ev = 0; ev < db.dictionary().size(); ++ev) {
    if (index.TotalCount(ev) < options.min_support) continue;
    Pattern p{ev};
    Grow(&ctx, p, SingleEventInstances(index, ev));
  }
  return out;
}

}  // namespace specmine
