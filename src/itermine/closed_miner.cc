#include "src/itermine/closed_miner.h"

#include <memory>

#include "src/itermine/projection.h"
#include "src/support/cancel.h"
#include "src/support/stopwatch.h"
#include "src/support/thread_pool.h"

namespace specmine {

namespace {

struct Ctx {
  const CountingBackend* backend;
  const ClosedIterMinerOptions* options;
  PatternSet* out;
  IterMinerStats* stats;
  ProjectionWorkspace* ws;
  bool stop = false;
};

void Grow(Ctx* ctx, const Pattern& pattern, const InstanceList& instances) {
  if (ctx->stop) return;
  const CancelToken* cancel = ctx->options->cancel;
  if (cancel != nullptr && cancel->ShouldStop()) {
    ctx->stats->stopped = cancel->stop_code();
    ctx->stop = true;
    return;
  }
  ++ctx->stats->nodes_visited;
  const uint64_t support = instances.size();

  // Backward extensions first: they both decide backward absorption and
  // drive the subtree prunes, letting us skip the (costlier) forward
  // projection for pruned subtrees. The result buffer lives in the
  // workspace and is fully consumed before any recursive call.
  const BackwardExtensionMap& backward =
      BackwardExtensions(*ctx->backend, pattern, instances, ctx->ws);
  bool backward_absorbed = false;
  for (const auto& [ev, ext] : backward) {
    if (ext.support != support) continue;
    backward_absorbed = true;
    if (!ext.all_adjacent) continue;
    const bool in_alphabet = pattern.Contains(ev);
    if ((in_alphabet && ctx->options->prefix_prune) ||
        (!in_alphabet && ctx->options->aggressive_prefix_prune)) {
      ++ctx->stats->subtrees_pruned;
      return;  // No closed pattern anywhere in this subtree.
    }
  }

  ForwardExtensionMap forward = ctx->ws->AcquireMap();
  ForwardExtensions(*ctx->backend, pattern, instances, ctx->ws, &forward);
  bool forward_absorbed = false;
  for (const auto& [ev, ext_instances] : forward) {
    if (ext_instances.size() == support) {
      forward_absorbed = true;
      break;
    }
  }

  bool infix_absorbed = false;
  if (pattern.size() >= 2 &&
      (ctx->options->infix_prune ||
       (ctx->options->infix_check && !backward_absorbed &&
        !forward_absorbed))) {
    infix_absorbed =
        HasUniformInfixAbsorber(*ctx->backend, pattern, instances, ctx->ws);
    if (infix_absorbed && ctx->options->infix_prune) {
      ++ctx->stats->subtrees_pruned;
      ctx->ws->ReleaseMap(std::move(forward));
      return;  // P3: the subtree contains no closed pattern.
    }
    if (!ctx->options->infix_check) infix_absorbed = false;
  }

  if (!backward_absorbed && !forward_absorbed && !infix_absorbed) {
    ctx->out->Add(pattern, support);
    ++ctx->stats->patterns_emitted;
  }

  if (ctx->options->max_length == 0 ||
      pattern.size() < ctx->options->max_length) {
    for (auto& [ev, ext_instances] : forward) {
      if (ctx->stop) break;
      if (ext_instances.size() < ctx->options->min_support) continue;
      Grow(ctx, pattern.Extend(ev), ext_instances);
    }
  }
  ctx->ws->ReleaseMap(std::move(forward));
}

}  // namespace

PatternSet MineClosedIterative(const CountingBackend& backend,
                               const ClosedIterMinerOptions& options,
                               IterMinerStats* stats, ThreadPool* pool) {
  IterMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = IterMinerStats{};
  PatternSet out;
  Stopwatch sw;
  const size_t num_threads = ThreadPool::ResolveThreads(options.num_threads);
  if (num_threads > 1) {
    // One job per frequent root; each worker owns a PatternSet, stats and
    // workspace. Merging in root order reproduces the sequential DFS
    // emission order (and stats) exactly — the closed miner has no
    // truncation or external pruning callback.
    const std::vector<EventId> roots =
        FrequentRoots(backend, options.min_support);
    struct Job {
      PatternSet out;
      IterMinerStats stats;
      ProjectionWorkspace ws;
    };
    std::vector<std::unique_ptr<Job>> jobs(roots.size());
    for (size_t i = 0; i < roots.size(); ++i) {
      jobs[i] = std::make_unique<Job>();
    }
    stats->error = ThreadPool::ParallelForShared(
        pool, num_threads, roots.size(), [&](size_t i) {
          Job& job = *jobs[i];
          Ctx ctx{&backend, &options, &job.out, &job.stats, &job.ws};
          Pattern p{roots[i]};
          Grow(&ctx, p, SingleEventInstances(backend, roots[i]));
        });
    for (const auto& job : jobs) {
      stats->nodes_visited += job->stats.nodes_visited;
      stats->patterns_emitted += job->stats.patterns_emitted;
      stats->subtrees_pruned += job->stats.subtrees_pruned;
      if (job->stats.stopped != StatusCode::kOk) {
        stats->stopped = job->stats.stopped;
      }
      for (const MinedPattern& item : job->out.items()) {
        out.Add(item.pattern, item.support);
      }
    }
    stats->mine_seconds = sw.ElapsedSeconds();
    return out;
  }
  ProjectionWorkspace ws;
  Ctx ctx{&backend, &options, &out, stats, &ws};
  for (EventId ev = 0; ev < backend.num_events(); ++ev) {
    if (ctx.stop) break;
    if (backend.TotalCount(ev) < options.min_support) continue;
    Pattern p{ev};
    Grow(&ctx, p, SingleEventInstances(backend, ev));
  }
  stats->mine_seconds = sw.ElapsedSeconds();
  return out;
}

PatternSet MineClosedIterative(const PositionIndex& index,
                               const ClosedIterMinerOptions& options,
                               IterMinerStats* stats, ThreadPool* pool) {
  return MineClosedIterative(CountingBackend(index), options, stats, pool);
}

PatternSet MineClosedIterative(const SequenceDatabase& db,
                               const ClosedIterMinerOptions& options,
                               IterMinerStats* stats) {
  IterMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  const BackendKind kind = ResolveBackendKindClamped(options.backend, db);
  Stopwatch sw;
  if (kind == BackendKind::kBitmap) {
    BitmapIndex index(db);
    const double index_build_seconds = sw.ElapsedSeconds();
    PatternSet out =
        MineClosedIterative(CountingBackend(index), options, stats, nullptr);
    stats->index_build_seconds = index_build_seconds;
    return out;
  }
  if (kind == BackendKind::kHybrid) {
    HybridIndex index(db);
    const double index_build_seconds = sw.ElapsedSeconds();
    PatternSet out =
        MineClosedIterative(CountingBackend(index), options, stats, nullptr);
    stats->index_build_seconds = index_build_seconds;
    return out;
  }
  PositionIndex index(db);
  const double index_build_seconds = sw.ElapsedSeconds();
  PatternSet out =
      MineClosedIterative(CountingBackend(index), options, stats, nullptr);
  stats->index_build_seconds = index_build_seconds;
  return out;
}

}  // namespace specmine
