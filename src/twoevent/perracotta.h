// Perracotta-style two-event temporal rule mining (Yang et al., ICSE 2006)
// — the related-work baseline the paper generalizes (Section 2): rules are
// limited to two events, enumerated pairwise and checked per template.
//
// For an ordered event pair (a, b) a trace is projected onto {a, b} and
// matched against a template language. The eight templates of the original
// hierarchy are supported; Alternation is the strictest, Response the most
// permissive:
//
//   Response    b*(a+b+)*   MultiEffect (ab+)*    MultiCause (a+b)*
//   Alternation (ab)*       EffectFirst b*(ab)*   CauseFirst (a+b+)*
//   OneCause    b*(ab+)*    OneEffect   b*(a+b)*
//
// The satisfaction score of (a, b, template) is the fraction of traces
// containing a or b whose projection matches the template. This module
// exists to demonstrate what the recurrent-rule miner adds: multi-event
// premises/consequents and instance-based statistics.

#ifndef SPECMINE_TWOEVENT_PERRACOTTA_H_
#define SPECMINE_TWOEVENT_PERRACOTTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/sequence_database.h"

namespace specmine {

class CancelToken;

/// \brief The Perracotta template hierarchy.
enum class PairTemplate {
  kResponse,
  kAlternation,
  kMultiEffect,
  kMultiCause,
  kEffectFirst,
  kCauseFirst,
  kOneCause,
  kOneEffect,
};

/// \brief Human-readable template name ("Alternation", ...).
const char* PairTemplateName(PairTemplate t);

/// \brief True iff the projection of \p seq onto {a, b} matches \p t.
bool MatchesTemplate(EventSpan seq, EventId a, EventId b,
                     PairTemplate t);

/// \brief A mined two-event rule.
struct TwoEventRule {
  EventId cause = 0;
  EventId effect = 0;
  PairTemplate strongest = PairTemplate::kResponse;
  /// Traces containing cause or effect.
  uint64_t relevant_traces = 0;
  /// Relevant traces whose projection matches `strongest`.
  uint64_t satisfying_traces = 0;

  double satisfaction() const {
    return relevant_traces == 0
               ? 0.0
               : static_cast<double>(satisfying_traces) /
                     static_cast<double>(relevant_traces);
  }

  /// \brief "a -> b [Template] (sat=..)" rendering.
  std::string ToString(const EventDictionary& dict) const;
};

/// \brief Options for the pairwise miner.
struct PerracottaOptions {
  /// Minimum satisfaction score in [0, 1].
  double min_satisfaction = 1.0;
  /// Minimum number of relevant traces.
  uint64_t min_relevant_traces = 1;
  /// Template to check; the miner reports the strictest satisfied template
  /// at or above this one in permissiveness.
  PairTemplate base_template = PairTemplate::kResponse;
  /// Optional cooperative stop signal, polled per event pair. Not owned;
  /// may be null.
  const CancelToken* cancel = nullptr;
};

/// \brief Enumerates all ordered pairs of events and reports those whose
/// satisfaction meets the threshold, labelled with the strictest satisfied
/// template. O(|alphabet|^2 x total events): the scalability wall the
/// paper's Section 2 ascribes to two-event approaches.
std::vector<TwoEventRule> MinePerracotta(const SequenceDatabase& db,
                                         const PerracottaOptions& options);

}  // namespace specmine

#endif  // SPECMINE_TWOEVENT_PERRACOTTA_H_
