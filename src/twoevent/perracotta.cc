#include "src/twoevent/perracotta.h"

#include <sstream>

#include "src/support/cancel.h"

namespace specmine {

const char* PairTemplateName(PairTemplate t) {
  switch (t) {
    case PairTemplate::kResponse:
      return "Response";
    case PairTemplate::kAlternation:
      return "Alternation";
    case PairTemplate::kMultiEffect:
      return "MultiEffect";
    case PairTemplate::kMultiCause:
      return "MultiCause";
    case PairTemplate::kEffectFirst:
      return "EffectFirst";
    case PairTemplate::kCauseFirst:
      return "CauseFirst";
    case PairTemplate::kOneCause:
      return "OneCause";
    case PairTemplate::kOneEffect:
      return "OneEffect";
  }
  return "Unknown";
}

namespace {

// The projection of a sequence onto {a, b} as a string of 'a'/'b' chars.
std::string Project(EventSpan seq, EventId a, EventId b) {
  std::string s;
  for (EventId ev : seq) {
    if (ev == a) s.push_back('a');
    if (ev == b) s.push_back('b');
  }
  return s;
}

bool NoSubstring(const std::string& s, const char* sub) {
  return s.find(sub) == std::string::npos;
}

// Matchers for the template regular languages over the projected string.
bool MatchProjected(const std::string& s, PairTemplate t) {
  if (s.empty()) return true;  // Every template accepts the empty string.
  switch (t) {
    case PairTemplate::kResponse:
      // b*(a+b+)* : every a-run is eventually closed by a b.
      return s.back() == 'b';
    case PairTemplate::kAlternation: {
      // (ab)* : strict alternation starting with a, ending with b.
      if (s.size() % 2 != 0) return false;
      for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] != (i % 2 == 0 ? 'a' : 'b')) return false;
      }
      return true;
    }
    case PairTemplate::kMultiEffect:
      // (ab+)* : starts with a, ends with b, no "aa".
      return s.front() == 'a' && s.back() == 'b' && NoSubstring(s, "aa");
    case PairTemplate::kMultiCause:
      // (a+b)* : starts with a, ends with b, no "bb".
      return s.front() == 'a' && s.back() == 'b' && NoSubstring(s, "bb");
    case PairTemplate::kEffectFirst: {
      // b*(ab)* : optional b prefix, then strict alternation.
      size_t i = 0;
      while (i < s.size() && s[i] == 'b') ++i;
      std::string rest = s.substr(i);
      return rest.empty() || MatchProjected(rest, PairTemplate::kAlternation);
    }
    case PairTemplate::kCauseFirst:
      // (a+b+)* : starts with a, ends with b.
      return s.front() == 'a' && s.back() == 'b';
    case PairTemplate::kOneCause: {
      // b*(ab+)* : after the b prefix, no "aa" and ends with b.
      size_t i = 0;
      while (i < s.size() && s[i] == 'b') ++i;
      std::string rest = s.substr(i);
      return rest.empty() ||
             MatchProjected(rest, PairTemplate::kMultiEffect);
    }
    case PairTemplate::kOneEffect: {
      // b*(a+b)* : after the b prefix, no "bb" and ends with b.
      size_t i = 0;
      while (i < s.size() && s[i] == 'b') ++i;
      std::string rest = s.substr(i);
      return rest.empty() || MatchProjected(rest, PairTemplate::kMultiCause);
    }
  }
  return false;
}

// Strictness order used to report the strongest satisfied template:
// Alternation first, Response last.
constexpr PairTemplate kByStrictness[] = {
    PairTemplate::kAlternation, PairTemplate::kMultiEffect,
    PairTemplate::kMultiCause,  PairTemplate::kEffectFirst,
    PairTemplate::kOneCause,    PairTemplate::kOneEffect,
    PairTemplate::kCauseFirst,  PairTemplate::kResponse,
};

}  // namespace

bool MatchesTemplate(EventSpan seq, EventId a, EventId b,
                     PairTemplate t) {
  return MatchProjected(Project(seq, a, b), t);
}

std::string TwoEventRule::ToString(const EventDictionary& dict) const {
  std::ostringstream os;
  os << dict.NameOrPlaceholder(cause) << " -> "
     << dict.NameOrPlaceholder(effect) << " [" << PairTemplateName(strongest)
     << "] (sat=" << satisfaction() << ", traces=" << relevant_traces << ')';
  return os.str();
}

std::vector<TwoEventRule> MinePerracotta(const SequenceDatabase& db,
                                         const PerracottaOptions& options) {
  std::vector<TwoEventRule> out;
  const size_t num_events = db.dictionary().size();
  for (EventId a = 0; a < num_events; ++a) {
    if (options.cancel != nullptr && options.cancel->ShouldStopExact()) break;
    for (EventId b = 0; b < num_events; ++b) {
      if (a == b) continue;
      if (options.cancel != nullptr && options.cancel->ShouldStop()) break;
      uint64_t relevant = 0;
      uint64_t base_satisfying = 0;
      std::vector<std::string> projections;
      for (EventSpan seq : db) {
        std::string proj = Project(seq, a, b);
        if (proj.empty()) continue;
        ++relevant;
        if (MatchProjected(proj, options.base_template)) ++base_satisfying;
        projections.push_back(std::move(proj));
      }
      if (relevant < options.min_relevant_traces) continue;
      double sat = relevant == 0 ? 0.0
                                 : static_cast<double>(base_satisfying) /
                                       static_cast<double>(relevant);
      if (sat < options.min_satisfaction) continue;
      // Find the strictest template satisfied at the same threshold.
      TwoEventRule rule;
      rule.cause = a;
      rule.effect = b;
      rule.relevant_traces = relevant;
      rule.strongest = options.base_template;
      rule.satisfying_traces = base_satisfying;
      for (PairTemplate t : kByStrictness) {
        uint64_t satisfying = 0;
        for (const std::string& proj : projections) {
          if (MatchProjected(proj, t)) ++satisfying;
        }
        double score = static_cast<double>(satisfying) /
                       static_cast<double>(relevant);
        if (score >= options.min_satisfaction) {
          rule.strongest = t;
          rule.satisfying_traces = satisfying;
          break;
        }
      }
      out.push_back(rule);
    }
  }
  return out;
}

}  // namespace specmine
