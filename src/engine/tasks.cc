#include "src/engine/tasks.h"

#include <cmath>
#include <string>

namespace specmine {

namespace {

Status RequirePositive(uint64_t value, const char* field) {
  if (value == 0) {
    return Status::InvalidArgument(std::string(field) +
                                   " must be >= 1 (got 0)");
  }
  return Status::OK();
}

Status RequireUnitInterval(double value, const char* field) {
  if (std::isnan(value) || value < 0.0 || value > 1.0) {
    return Status::InvalidArgument(std::string(field) +
                                   " must be in [0, 1] (got " +
                                   std::to_string(value) + ")");
  }
  return Status::OK();
}

}  // namespace

Status Validate(const IterMinerOptions& options) {
  return RequirePositive(options.min_support, "min_support");
}

Status Validate(const ClosedIterMinerOptions& options) {
  return RequirePositive(options.min_support, "min_support");
}

Status Validate(const IterGeneratorMinerOptions& options) {
  return RequirePositive(options.min_support, "min_support");
}

Status Validate(const RuleMinerOptions& options) {
  SPECMINE_RETURN_NOT_OK(RequirePositive(options.min_s_support,
                                         "min_s_support"));
  // min_i_support == 0 is well-defined (the Step-4 post-filter trivially
  // passes), so it is deliberately not rejected here.
  return RequireUnitInterval(options.min_confidence, "min_confidence");
}

Status Validate(const SeqMinerOptions& options) {
  return RequirePositive(options.min_support, "min_support");
}

Status Validate(const ClosedSeqMinerOptions& options) {
  return RequirePositive(options.min_support, "min_support");
}

Status Validate(const GeneratorMinerOptions& options) {
  return RequirePositive(options.min_support, "min_support");
}

Status Validate(const WinepiOptions& options) {
  SPECMINE_RETURN_NOT_OK(RequirePositive(options.window_width,
                                         "window_width"));
  return RequirePositive(options.min_window_count, "min_window_count");
}

Status Validate(const MinepiOptions& options) {
  SPECMINE_RETURN_NOT_OK(RequirePositive(options.max_window, "max_window"));
  return RequirePositive(options.min_support, "min_support");
}

Status Validate(const PerracottaOptions& options) {
  SPECMINE_RETURN_NOT_OK(RequireUnitInterval(options.min_satisfaction,
                                             "min_satisfaction"));
  return RequirePositive(options.min_relevant_traces, "min_relevant_traces");
}

Status Validate(const FullPatternsTask& task) {
  return Validate(task.options);
}
Status Validate(const ClosedTask& task) { return Validate(task.options); }
Status Validate(const GeneratorsTask& task) { return Validate(task.options); }
Status Validate(const RulesTask& task) { return Validate(task.options); }
Status Validate(const SequentialTask& task) { return Validate(task.options); }
Status Validate(const ClosedSequentialTask& task) {
  return Validate(task.options);
}
Status Validate(const SequentialGeneratorsTask& task) {
  return Validate(task.options);
}
Status Validate(const EpisodeTask& task) {
  return task.algorithm == EpisodeTask::Algorithm::kWinepi
             ? Validate(task.winepi)
             : Validate(task.minepi);
}
Status Validate(const TwoEventTask& task) { return Validate(task.options); }

}  // namespace specmine
