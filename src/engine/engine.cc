#include "src/engine/engine.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/engine/phase1_cache.h"
#include "src/engine/shard_exec.h"
#include "src/rulemine/backward_rules.h"
#include "src/support/cancel.h"
#include "src/support/fault_injection.h"
#include "src/support/stopwatch.h"
#include "src/trace/trace_io.h"

namespace specmine {

namespace {

// Replays a materialized pattern set into a sink, honoring the sink's stop
// request. Returns the number delivered; *stopped reports an early stop.
size_t DeliverPatterns(const PatternSet& set, PatternSink& sink,
                       bool* stopped) {
  size_t delivered = 0;
  for (const MinedPattern& item : set.items()) {
    ++delivered;
    if (!sink.Consume(item.pattern, item.support)) {
      *stopped = true;
      return delivered;
    }
  }
  return delivered;
}

size_t DeliverRules(const RuleSet& set, RuleSink& sink, bool* stopped) {
  size_t delivered = 0;
  for (const Rule& rule : set.rules()) {
    ++delivered;
    if (!sink.Consume(rule)) {
      *stopped = true;
      return delivered;
    }
  }
  return delivered;
}

RunReport FromIterStats(const char* task, const IterMinerStats& stats,
                        double index_build_seconds) {
  RunReport report;
  report.task = task;
  report.nodes_visited = stats.nodes_visited;
  report.patterns_emitted = stats.patterns_emitted;
  report.subtrees_pruned = stats.subtrees_pruned;
  report.truncated = stats.truncated;
  report.index_build_seconds = index_build_seconds;
  report.mine_seconds = stats.mine_seconds;
  return report;
}

RunReport FromSeqStats(const char* task, const SeqMinerStats& stats,
                       double mine_seconds) {
  RunReport report;
  report.task = task;
  report.nodes_visited = stats.nodes_visited;
  report.patterns_emitted = stats.patterns_emitted;
  report.truncated = stats.truncated;
  report.mine_seconds = mine_seconds;
  return report;
}

// Converts a pool-worker error or a fired cancel token into the task's
// failure Status; OK when the run completed normally. Checked after
// mining (and for streaming tasks after the sink saw its prefix), so a
// cancelled run still returns kCancelled / kDeadlineExceeded through the
// Result<RunReport> plumbing.
Status FinishRun(const Status& worker_error, const CancelToken* cancel) {
  if (!worker_error.ok()) return worker_error;
  if (cancel != nullptr && cancel->fired()) return cancel->StopStatus();
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction.

Result<Engine> Engine::Create(SequenceDatabase db) {
  SPECMINE_RETURN_NOT_OK(CheckIndexable(db));
  return Engine(std::move(db));
}

Result<Engine> Engine::FromTextTraceFile(const std::string& path) {
  Result<SequenceDatabase> db = ReadTextTraceFile(path);
  if (!db.ok()) return db.status();
  return Create(db.TakeValueOrDie());
}

Result<Engine> Engine::FromCsvTraceFile(const std::string& path,
                                        const CsvTraceOptions& options) {
  Result<SequenceDatabase> db = ReadCsvTraceFile(path, options);
  if (!db.ok()) return db.status();
  return Create(db.TakeValueOrDie());
}

Result<Engine> Engine::FromBinaryFile(const std::string& path) {
  return FromBinaryFile(path, SmdbOpenOptions{});
}

Result<Engine> Engine::FromBinaryFile(const std::string& path,
                                      const SmdbOpenOptions& options) {
  Result<MappedDatabase> mapped = MappedDatabase::Open(path, options);
  if (!mapped.ok()) return mapped.status();
  SPECMINE_RETURN_NOT_OK(CheckIndexable(mapped->db()));
  // Copying a view database shares the mapped storage, so the session's
  // db_ points straight into the mapping kept alive alongside it.
  Engine engine(mapped->db());
  engine.mapping_ =
      std::make_unique<MappedDatabase>(mapped.TakeValueOrDie());
  return engine;
}

Result<Engine> Engine::FromShardSet(const std::string& path) {
  return FromShardSet(path, SetOpenOptions{});
}

Result<Engine> Engine::FromShardSet(const std::string& path,
                                    const SetOpenOptions& options) {
  Result<ShardedDatabase> set = ShardedDatabase::Open(path, options);
  if (!set.ok()) return set.status();
  // Every shard must be indexable on its own (MineSharded, and the lazy
  // merged backend delegates into per-shard indexes) and so must the
  // concatenation; both are rejected up front so the cached-index
  // accessors cannot fail later. The concatenation bound needs no merged
  // arena: total events come from the manifest, and per-sequence lengths
  // are unchanged by merging (each shard's own check covers them).
  for (size_t i = 0; i < set->num_shards(); ++i) {
    SPECMINE_RETURN_NOT_OK(CheckIndexable(set->shard(i)));
  }
  if (set->TotalEvents() >= kNoPos) {
    return Status::OutOfRange(
        "shard set has " + std::to_string(set->TotalEvents()) +
        " events merged, beyond the 2^32-2 the index's uint32 offsets can "
        "address");
  }
  // The merged arena itself stays unmaterialized: regular tasks under the
  // auto backend run on the lazy merged backend, and MaterializeLocked()
  // builds the arena on first use by the tasks that genuinely need it.
  Engine engine;
  engine.shard_set_ =
      std::make_unique<ShardedDatabase>(set.TakeValueOrDie());
  return engine;
}

uint64_t Engine::AbsoluteSupport(double fraction) const {
  // num_sequences() reads manifest metadata on sharded sessions, so the
  // threshold never forces a merge (and never races materialization).
  double raw = fraction * static_cast<double>(num_sequences());
  uint64_t abs = static_cast<uint64_t>(std::ceil(raw - 1e-9));
  return abs > 1 ? abs : 1;
}

// ---------------------------------------------------------------------------
// Cached infrastructure.

void Engine::MaterializeLocked() const {
  if (db_ != nullptr) return;
  db_ = std::make_unique<SequenceDatabase>(shard_set_->Merge());
}

const SequenceDatabase& Engine::database() const {
  {
    std::lock_guard<std::mutex> lock(sync_->cache_mu);
    MaterializeLocked();
  }
  // Published caches are immutable and never reset, so the reference
  // stays valid after the lock drops.
  return *db_;
}

Result<const PositionIndex*> Engine::EnsureIndex(double* build_seconds) const {
  *build_seconds = 0.0;
  // Concurrent cold callers serialize here; exactly one pays the build
  // and the rest observe the published cache (a zero build_seconds — the
  // cache-hit signal the server's metrics count).
  std::lock_guard<std::mutex> lock(sync_->cache_mu);
  MaterializeLocked();
  if (index_ == nullptr) {
    SPECMINE_RETURN_NOT_OK(CheckIndexable(*db_));
    Stopwatch sw;
    index_ = std::make_unique<PositionIndex>(*db_);
    *build_seconds = sw.ElapsedSeconds();
    sync_->index_builds.fetch_add(1, std::memory_order_acq_rel);
  }
  return index_.get();
}

const PositionIndex& Engine::index() const {
  double unused = 0.0;
  Result<const PositionIndex*> idx = EnsureIndex(&unused);
  if (!idx.ok()) {
    std::fprintf(stderr, "Engine::index(): %s\n",
                 idx.status().ToString().c_str());
    std::abort();  // The checked factories make this unreachable.
  }
  return **idx;
}

Result<CountingBackend> Engine::EnsureBackend(BackendChoice choice,
                                              double* build_seconds) const {
  *build_seconds = 0.0;
  // Lazy merged path: a sharded session under the default/auto choice
  // answers every regular task through the per-shard indexes — the merged
  // arena is never materialized. Explicit csr/bitmap/hybrid choices fall
  // through to the materialized arms below (the documented escape hatch).
  if (shard_set_ != nullptr && choice == BackendChoice::kAuto) {
    std::vector<CountingBackend> backends;
    SPECMINE_RETURN_NOT_OK(EnsureShardBackends(
        BackendChoice::kAuto, &backends, build_seconds, nullptr, 1));
    std::lock_guard<std::mutex> lock(sync_->cache_mu);
    if (merged_index_ == nullptr) {
      Stopwatch sw;
      merged_index_ = std::make_unique<MergedCountingIndex>(
          *shard_set_, std::move(backends));
      *build_seconds += sw.ElapsedSeconds();
    }
    return CountingBackend(*merged_index_);
  }
  {
    std::lock_guard<std::mutex> lock(sync_->cache_mu);
    MaterializeLocked();
  }
  const BackendKind kind = ResolveBackendKind(choice, *db_);
  if (kind == BackendKind::kCsr) {
    Result<const PositionIndex*> index = EnsureIndex(build_seconds);
    if (!index.ok()) return index.status();
    return CountingBackend(**index);
  }
  std::lock_guard<std::mutex> lock(sync_->cache_mu);
  if (kind == BackendKind::kHybrid) {
    if (hybrid_index_ == nullptr) {
      SPECMINE_RETURN_NOT_OK(CheckIndexable(*db_));
      Stopwatch sw;
      hybrid_index_ = std::make_unique<HybridIndex>(*db_);
      *build_seconds = sw.ElapsedSeconds();
      sync_->index_builds.fetch_add(1, std::memory_order_acq_rel);
    }
    return CountingBackend(*hybrid_index_);
  }
  if (bitmap_index_ == nullptr) {
    SPECMINE_RETURN_NOT_OK(CheckIndexable(*db_));
    SPECMINE_RETURN_NOT_OK(CheckBitmapIndexable(*db_));
    Stopwatch sw;
    bitmap_index_ = std::make_unique<BitmapIndex>(*db_);
    *build_seconds = sw.ElapsedSeconds();
    sync_->index_builds.fetch_add(1, std::memory_order_acq_rel);
  }
  return CountingBackend(*bitmap_index_);
}

CountingBackend Engine::backend(BackendChoice choice) const {
  double unused = 0.0;
  Result<CountingBackend> backend = EnsureBackend(choice, &unused);
  if (!backend.ok()) {
    std::fprintf(stderr, "Engine::backend(): %s\n",
                 backend.status().ToString().c_str());
    std::abort();  // The checked factories make auto/csr unreachable;
                   // explicit kBitmap can exceed the table cap — use
                   // Mine (Status) for untrusted sizes.
  }
  return *backend;
}

const UnitDatabase& Engine::Units() const {
  std::lock_guard<std::mutex> lock(sync_->cache_mu);
  MaterializeLocked();  // The unit view needs the merged arena.
  if (units_ == nullptr) {
    units_ = std::make_unique<UnitDatabase>(
        UnitDatabase::WholeSequences(*db_));
  }
  return *units_;
}

Engine::PoolLease Engine::LeasePool(size_t requested_threads) const {
  const size_t resolved = ThreadPool::ResolveThreads(requested_threads);
  if (resolved <= 1) return PoolLease(this, nullptr);
  {
    std::lock_guard<std::mutex> lock(sync_->pool_mu);
    for (auto it = idle_pools_.begin(); it != idle_pools_.end(); ++it) {
      if ((*it)->num_threads() == resolved) {
        std::unique_ptr<ThreadPool> pool = std::move(*it);
        idle_pools_.erase(it);
        return PoolLease(this, std::move(pool));
      }
    }
  }
  // No matching idle pool: spawn outside the lock (thread creation is the
  // expensive part and must not serialize other leases).
  return PoolLease(this, std::make_unique<ThreadPool>(resolved));
}

void Engine::ReturnPool(std::unique_ptr<ThreadPool> pool) const {
  // Bound the idle cache: a burst of concurrent mines must not leave a
  // pile of sleeping worker threads behind for the session's lifetime.
  constexpr size_t kMaxIdlePools = 4;
  std::lock_guard<std::mutex> lock(sync_->pool_mu);
  if (idle_pools_.size() < kMaxIdlePools) {
    idle_pools_.push_back(std::move(pool));
  }
  // Else: the pool is destroyed here (workers join) as `pool` goes out of
  // scope.
}

Engine::PoolLease::~PoolLease() {
  if (pool_ != nullptr) session_->ReturnPool(std::move(pool_));
}

template <typename Task>
Status Engine::Begin(const Task& task) const {
  SPECMINE_RETURN_NOT_OK(Validate(task));
  // num_sequences() reads manifest metadata on sharded sessions — the
  // preamble must not force a merge.
  if (num_sequences() == 0) {
    return Status::InvalidArgument("database is empty; nothing to mine");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Iterative pattern tasks (index-backed).

Result<RunReport> Engine::Mine(const FullPatternsTask& task,
                               PatternSink& sink) const {
  SPECMINE_RETURN_NOT_OK(Begin(task));
  double build_seconds = 0.0;
  Result<CountingBackend> backend =
      EnsureBackend(task.options.backend, &build_seconds);
  if (!backend.ok()) return backend.status();
  IterMinerStats stats;
  PoolLease lease = LeasePool(task.options.num_threads);
  ScanFrequentIterative(
      *backend, task.options,
      [&sink](const Pattern& pattern, uint64_t support) {
        return sink.Consume(pattern, support);
      },
      &stats, lease.pool());
  // The sink has already seen its prefix of the deterministic emission
  // order; a stopped run reports that as a Status.
  SPECMINE_RETURN_NOT_OK(FinishRun(stats.error, task.options.cancel));
  RunReport report = FromIterStats("full-patterns", stats, build_seconds);
  report.backend = backend->name();
  return report;
}

Result<RunReport> Engine::Mine(const ClosedTask& task,
                               PatternSink& sink) const {
  SPECMINE_RETURN_NOT_OK(Begin(task));
  double build_seconds = 0.0;
  Result<CountingBackend> backend =
      EnsureBackend(task.options.backend, &build_seconds);
  if (!backend.ok()) return backend.status();
  IterMinerStats stats;
  PoolLease lease = LeasePool(task.options.num_threads);
  PatternSet mined =
      MineClosedIterative(*backend, task.options, &stats, lease.pool());
  SPECMINE_RETURN_NOT_OK(FinishRun(stats.error, task.options.cancel));
  RunReport report = FromIterStats("closed-patterns", stats, build_seconds);
  report.backend = backend->name();
  bool stopped = false;
  report.patterns_emitted = DeliverPatterns(mined, sink, &stopped);
  report.truncated = report.truncated || stopped;
  return report;
}

Result<RunReport> Engine::Mine(const GeneratorsTask& task,
                               PatternSink& sink) const {
  SPECMINE_RETURN_NOT_OK(Begin(task));
  double build_seconds = 0.0;
  Result<CountingBackend> backend =
      EnsureBackend(task.options.backend, &build_seconds);
  if (!backend.ok()) return backend.status();
  IterMinerStats stats;
  PoolLease lease = LeasePool(task.options.num_threads);
  PatternSet mined =
      MineIterativeGenerators(*backend, task.options, &stats, lease.pool());
  SPECMINE_RETURN_NOT_OK(FinishRun(stats.error, task.options.cancel));
  RunReport report = FromIterStats("generators", stats, build_seconds);
  report.backend = backend->name();
  bool stopped = false;
  report.patterns_emitted = DeliverPatterns(mined, sink, &stopped);
  report.truncated = report.truncated || stopped;
  return report;
}

// ---------------------------------------------------------------------------
// The sharded execution path.

Status Engine::EnsureShardBackends(BackendChoice choice,
                                   std::vector<CountingBackend>* backends,
                                   double* build_seconds, ThreadPool* pool,
                                   size_t num_threads) const {
  *build_seconds = 0.0;
  backends->clear();
  // Serializes concurrent sharded tasks racing into cold shards: one
  // caller builds the missing per-shard indexes (in parallel on its own
  // pool — the workers never touch cache_mu), the rest reuse them.
  std::lock_guard<std::mutex> lock(sync_->cache_mu);
  const size_t num_shards = shard_set_->num_shards();
  if (num_shards == 0) return Status::OK();
  // Resolve the representation per shard — the chooser runs on each
  // shard's own density, so a corpus mixing dense protocol modules with
  // sparse ones gets the right physical layout for each.
  std::vector<BackendKind> kinds(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    kinds[i] = ResolveBackendKind(choice, shard_set_->shard(i));
    if (kinds[i] == BackendKind::kBitmap) {
      SPECMINE_RETURN_NOT_OK(CheckBitmapIndexable(shard_set_->shard(i)));
    }
  }
  if (shard_indexes_.empty()) shard_indexes_.resize(num_shards);
  if (shard_bitmap_indexes_.empty()) {
    shard_bitmap_indexes_.resize(num_shards);
  }
  if (shard_hybrid_indexes_.empty()) {
    shard_hybrid_indexes_.resize(num_shards);
  }
  // Build whatever is missing, one job per shard on the session pool.
  // Slots are distinct, so the fan-out needs no locking.
  const auto slot_empty = [&](size_t i) {
    switch (kinds[i]) {
      case BackendKind::kBitmap:
        return shard_bitmap_indexes_[i] == nullptr;
      case BackendKind::kHybrid:
        return shard_hybrid_indexes_[i] == nullptr;
      default:
        return shard_indexes_[i] == nullptr;
    }
  };
  std::vector<size_t> missing;
  for (size_t i = 0; i < num_shards; ++i) {
    if (slot_empty(i)) missing.push_back(i);
  }
  if (!missing.empty()) {
    Stopwatch sw;
    auto build_one = [&](size_t m) {
      const size_t i = missing[m];
      switch (kinds[i]) {
        case BackendKind::kBitmap:
          shard_bitmap_indexes_[i] =
              std::make_unique<BitmapIndex>(shard_set_->shard(i));
          break;
        case BackendKind::kHybrid:
          shard_hybrid_indexes_[i] =
              std::make_unique<HybridIndex>(shard_set_->shard(i));
          break;
        default:
          shard_indexes_[i] =
              std::make_unique<PositionIndex>(shard_set_->shard(i));
          break;
      }
    };
    if (num_threads > 1 && missing.size() > 1) {
      ThreadPool::ParallelForShared(pool, num_threads, missing.size(),
                                    build_one);
    } else {
      for (size_t m = 0; m < missing.size(); ++m) build_one(m);
    }
    *build_seconds = sw.ElapsedSeconds();
  }
  backends->reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    switch (kinds[i]) {
      case BackendKind::kBitmap:
        backends->push_back(CountingBackend(*shard_bitmap_indexes_[i]));
        break;
      case BackendKind::kHybrid:
        backends->push_back(CountingBackend(*shard_hybrid_indexes_[i]));
        break;
      default:
        backends->push_back(CountingBackend(*shard_indexes_[i]));
        break;
    }
  }
  return Status::OK();
}

const std::vector<uint64_t>& Engine::ShardDigests() const {
  std::lock_guard<std::mutex> lock(sync_->cache_mu);
  if (shard_digests_.size() != shard_set_->num_shards()) {
    shard_digests_.resize(shard_set_->num_shards());
    for (size_t i = 0; i < shard_digests_.size(); ++i) {
      shard_digests_[i] = shard_set_->ComputeShardDigest(i);
    }
  }
  return shard_digests_;
}

Result<RunReport> Engine::MineSharded(const FullPatternsTask& task,
                                      PatternSink& sink) const {
  if (shard_set_ == nullptr) {
    return Status::InvalidArgument(
        "MineSharded requires a session opened with Engine::FromShardSet");
  }
  SPECMINE_RETURN_NOT_OK(Begin(task));
  SPECMINE_RETURN_NOT_OK(CheckFault("engine.mine_sharded"));
  PoolLease lease = LeasePool(task.options.num_threads);
  ThreadPool* pool = lease.pool();
  const size_t num_threads =
      ThreadPool::ResolveThreads(task.options.num_threads);
  double build_seconds = 0.0;
  std::vector<CountingBackend> backends;
  SPECMINE_RETURN_NOT_OK(EnsureShardBackends(
      task.options.backend, &backends, &build_seconds, pool, num_threads));
  // The phase-1 candidate cache lives beside the manifest. Loading
  // tolerates anything (missing, torn, foreign — all mean "empty"): the
  // cache only accelerates, it never decides output.
  const bool use_cache =
      task.phase1_cache && !shard_set_->manifest_path().empty();
  const std::string cache_path =
      use_cache ? Phase1CachePath(shard_set_->manifest_path()) : std::string();
  Phase1Cache cache_loaded;
  Phase1Cache cache_updated;
  ShardCacheIO cache_io;
  if (use_cache) {
    Result<Phase1Cache> from_disk = LoadPhase1Cache(cache_path);
    if (from_disk.ok()) cache_loaded = std::move(*from_disk);
    cache_io.loaded = &cache_loaded;
    cache_io.updated = &cache_updated;
    cache_io.shard_digests = ShardDigests();
  }
  ShardExecStats stats;
  PatternSet mined =
      MineShardedFull(*shard_set_, backends, task.options, &stats, pool,
                      use_cache ? &cache_io : nullptr);
  if (!stats.error.ok()) return stats.error;
  if (use_cache && !cache_updated.entries.empty()) {
    // Carry over loaded entries for shards that still exist but were
    // mined under a different fingerprint (another threshold's cache
    // stays warm); entries for shards no longer in the set are dropped —
    // that rewrite is the cache's garbage collection.
    for (Phase1CacheEntry& old : cache_loaded.entries) {
      bool current_shard = false;
      for (size_t i = 0; i < cache_io.shard_digests.size(); ++i) {
        if (cache_io.shard_digests[i] == old.shard_digest) {
          current_shard = true;
          break;
        }
      }
      if (current_shard &&
          cache_updated.Find(old.shard_digest, old.remap_digest,
                             old.options_fingerprint) == nullptr) {
        cache_updated.entries.push_back(std::move(old));
      }
    }
    // A failed save (disk full, injected fault) costs the next run a
    // re-scan, nothing more — never fail the mine for it.
    std::lock_guard<std::mutex> lock(sync_->cache_mu);
    Status saved = SavePhase1Cache(cache_path, cache_updated);
    (void)saved;
  }
  RunReport report;
  report.task = "full-patterns-sharded";
  report.shards_total = shard_set_->open_report().shards_total;
  report.shards_quarantined = shard_set_->open_report().quarantined.size();
  for (const QuarantinedShard& q : shard_set_->open_report().quarantined) {
    report.shard_errors.push_back("shard " + std::to_string(q.index) + " (" +
                                  q.path + "): " + q.error);
  }
  if (!backends.empty()) {
    report.backend = backends.front().name();
    for (const CountingBackend& b : backends) {
      if (b.kind() != backends.front().kind()) {
        report.backend = "mixed";
        break;
      }
    }
  }
  report.nodes_visited = stats.nodes_visited;
  report.shards_scanned = stats.shards_scanned;
  report.shards_cached = stats.shards_cached;
  report.shard_phase1_nodes.reserve(stats.shard_scans.size());
  for (const ShardScanStat& scan : stats.shard_scans) {
    report.shard_phase1_nodes.push_back(scan.nodes_visited);
  }
  report.index_build_seconds = build_seconds;
  report.mine_seconds = stats.mine_seconds;
  // Delivery mirrors the single-pass emission stream: same order, same
  // max_patterns cut point; a sink's false return stops delivery. A run
  // the cancel token stopped delivers its prefix (empty when the token
  // fired before phase 3) and then reports the stop as a Status.
  for (const MinedPattern& item : mined.items()) {
    if (task.options.cancel != nullptr && task.options.cancel->ShouldStop()) {
      break;
    }
    ++report.patterns_emitted;
    if (!sink.Consume(item.pattern, item.support)) {
      report.truncated = true;
      break;
    }
    if (task.options.max_patterns != 0 &&
        report.patterns_emitted >= task.options.max_patterns) {
      report.truncated = true;
      break;
    }
  }
  SPECMINE_RETURN_NOT_OK(FinishRun(Status::OK(), task.options.cancel));
  return report;
}

// ---------------------------------------------------------------------------
// Rule tasks.

Result<RunReport> Engine::Mine(const RulesTask& task, RuleSink& sink) const {
  SPECMINE_RETURN_NOT_OK(Begin(task));
  // The rule miners scan the arena directly (and the backward miner needs
  // the reversed view), so a lazy sharded session materializes here.
  const SequenceDatabase& db = database();
  double build_seconds = 0.0;
  RunReport report;
  RuleMinerStats stats;
  Stopwatch sw;
  RuleSet mined;
  PoolLease lease = LeasePool(task.options.num_threads);
  if (task.backward) {
    // Backward rules mine the *reversed* database, which the session's
    // forward indexes do not cover — the scalar path stands.
    mined = MineBackwardRules(db, task.options, &stats);
  } else if (ResolveBackendKind(task.options.backend, db) ==
                 BackendKind::kCsr &&
             !task.options.non_redundant) {
    // With maximality pruning off the CSR arms all reduce to the scalar
    // scans — don't pay for an index this run would never consult.
    mined = MineRecurrentRules(db, task.options, &stats, lease.pool());
    report.backend = BackendKindName(BackendKind::kCsr);
  } else {
    Result<CountingBackend> backend =
        EnsureBackend(task.options.backend, &build_seconds);
    if (!backend.ok()) return backend.status();
    sw.Restart();  // Report the build separately from the mining time.
    mined = MineRecurrentRules(db, task.options, &stats, lease.pool(),
                               &*backend);
    report.backend = backend->name();
  }
  SPECMINE_RETURN_NOT_OK(FinishRun(stats.error, task.options.cancel));
  report.task = task.backward ? "backward-rules" : "rules";
  report.index_build_seconds = build_seconds;
  report.premises_enumerated = stats.premises_enumerated;
  report.candidate_rules = stats.candidate_rules;
  report.truncated = stats.truncated;
  report.mine_seconds = sw.ElapsedSeconds();
  bool stopped = false;
  report.rules_emitted = DeliverRules(mined, sink, &stopped);
  report.truncated = report.truncated || stopped;
  return report;
}

Result<RuleSet> Engine::CollectRules(const RulesTask& task,
                                     RunReport* report) const {
  CollectingRuleSink sink;
  Result<RunReport> run = Mine(task, sink);
  if (!run.ok()) return run.status();
  if (report != nullptr) *report = *run;
  return sink.TakeSet();
}

// ---------------------------------------------------------------------------
// Sequential tasks (plain subsequence semantics over whole sequences).

Result<RunReport> Engine::Mine(const SequentialTask& task,
                               PatternSink& sink) const {
  SPECMINE_RETURN_NOT_OK(Begin(task));
  Stopwatch sw;
  SeqMinerStats stats;
  ScanFrequentSequential(
      Units(), task.options,
      [&sink](const Pattern& pattern, uint64_t support,
              const std::vector<uint32_t>&) {
        return sink.Consume(pattern, support);
      },
      &stats);
  SPECMINE_RETURN_NOT_OK(FinishRun(Status::OK(), task.options.cancel));
  return FromSeqStats("sequential", stats, sw.ElapsedSeconds());
}

Result<RunReport> Engine::Mine(const ClosedSequentialTask& task,
                               PatternSink& sink) const {
  SPECMINE_RETURN_NOT_OK(Begin(task));
  Stopwatch sw;
  SeqMinerStats stats;
  PatternSet mined = MineClosedSequential(Units(), task.options, &stats);
  SPECMINE_RETURN_NOT_OK(FinishRun(Status::OK(), task.options.cancel));
  RunReport report =
      FromSeqStats("closed-sequential", stats, sw.ElapsedSeconds());
  bool stopped = false;
  report.patterns_emitted = DeliverPatterns(mined, sink, &stopped);
  report.truncated = report.truncated || stopped;
  return report;
}

Result<RunReport> Engine::Mine(const SequentialGeneratorsTask& task,
                               PatternSink& sink) const {
  SPECMINE_RETURN_NOT_OK(Begin(task));
  Stopwatch sw;
  SeqMinerStats stats;
  PatternSet mined = MineSequentialGenerators(Units(), task.options, &stats);
  SPECMINE_RETURN_NOT_OK(FinishRun(Status::OK(), task.options.cancel));
  RunReport report =
      FromSeqStats("sequential-generators", stats, sw.ElapsedSeconds());
  bool stopped = false;
  report.patterns_emitted = DeliverPatterns(mined, sink, &stopped);
  report.truncated = report.truncated || stopped;
  return report;
}

// ---------------------------------------------------------------------------
// Related-work baselines.

Result<RunReport> Engine::Mine(const EpisodeTask& task,
                               PatternSink& sink) const {
  SPECMINE_RETURN_NOT_OK(Begin(task));
  const SequenceDatabase& db = database();  // Episode miners scan the arena.
  Stopwatch sw;
  const bool winepi = task.algorithm == EpisodeTask::Algorithm::kWinepi;
  PatternSet mined =
      winepi ? MineWinepi(db, task.winepi) : MineMinepi(db, task.minepi);
  SPECMINE_RETURN_NOT_OK(FinishRun(
      Status::OK(), winepi ? task.winepi.cancel : task.minepi.cancel));
  RunReport report;
  report.task = winepi ? "episodes-winepi" : "episodes-minepi";
  report.mine_seconds = sw.ElapsedSeconds();
  bool stopped = false;
  report.patterns_emitted = DeliverPatterns(mined, sink, &stopped);
  report.truncated = stopped;
  return report;
}

Result<RunReport> Engine::Mine(const TwoEventTask& task,
                               TwoEventSink& sink) const {
  SPECMINE_RETURN_NOT_OK(Begin(task));
  const SequenceDatabase& db = database();  // Scans the arena directly.
  Stopwatch sw;
  std::vector<TwoEventRule> mined = MinePerracotta(db, task.options);
  SPECMINE_RETURN_NOT_OK(FinishRun(Status::OK(), task.options.cancel));
  RunReport report;
  report.task = "two-event";
  report.mine_seconds = sw.ElapsedSeconds();
  for (const TwoEventRule& rule : mined) {
    ++report.rules_emitted;
    if (!sink.Consume(rule)) {
      report.truncated = true;
      break;
    }
  }
  return report;
}

}  // namespace specmine
