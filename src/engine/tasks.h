// Engine task descriptors: one small struct per miner, each wrapping that
// miner's existing option struct, plus the up-front Status validation the
// legacy free functions never did. A task names *what* to mine; the Engine
// supplies the database, the cached PositionIndex, and the shared pool.

#ifndef SPECMINE_ENGINE_TASKS_H_
#define SPECMINE_ENGINE_TASKS_H_

#include "src/episode/minepi.h"
#include "src/episode/winepi.h"
#include "src/itermine/closed_miner.h"
#include "src/itermine/full_miner.h"
#include "src/itermine/generators.h"
#include "src/rulemine/rule_miner.h"
#include "src/seqmine/closed_sequential_miner.h"
#include "src/seqmine/generator_miner.h"
#include "src/seqmine/prefixspan.h"
#include "src/support/status.h"
#include "src/twoevent/perracotta.h"

namespace specmine {

/// \brief Mine every frequent iterative pattern (QRE instance support).
/// This task streams: the sink sees each pattern as the DFS emits it and
/// may prune subtrees. It is also the task Engine::MineSharded
/// parallelizes per shard on .smdbset sessions.
struct FullPatternsTask {
  /// Threshold, length/emission caps, and thread count.
  IterMinerOptions options;
  /// Engine::MineSharded only: consult and refresh the on-disk phase-1
  /// candidate cache (`<manifest>.p1c`, see phase1_cache.h), so re-mining
  /// after an append scans only the new shards. Output is byte-identical
  /// either way; set false to force full scans (e.g. for benchmarking the
  /// cold path). Ignored by the non-sharded Mine.
  bool phase1_cache = true;
};

/// \brief Mine the closed frequent iterative patterns.
struct ClosedTask {
  /// Threshold plus the P1/P2/P3 prune and infix-check toggles.
  ClosedIterMinerOptions options;
};

/// \brief Mine the frequent iterative generators.
struct GeneratorsTask {
  /// Threshold, length cap, and thread count.
  IterGeneratorMinerOptions options;
};

/// \brief Mine recurrent rules (forward), or past-time rules when
/// \p backward is set (MineBackwardRules semantics).
struct RulesTask {
  /// Supports, confidence, length caps, NR-pipeline and thread options.
  RuleMinerOptions options;
  /// False: forward rules "pre -> eventually post". True: past-time
  /// rules "post -> previously pre" (Section 7 of the paper).
  bool backward = false;
};

/// \brief Mine the full set of frequent sequential patterns (classic
/// sequence-count support over whole sequences).
struct SequentialTask {
  /// Threshold and length cap.
  SeqMinerOptions options;
};

/// \brief Mine the closed frequent sequential patterns (BIDE-style).
struct ClosedSequentialTask {
  /// Threshold and length cap.
  ClosedSeqMinerOptions options;
};

/// \brief Mine the frequent sequential generators.
struct SequentialGeneratorsTask {
  /// Threshold and length cap.
  GeneratorMinerOptions options;
};

/// \brief Mine serial episodes, WINEPI (window counts) or MINEPI (minimal
/// occurrences).
struct EpisodeTask {
  /// Which episode semantics to run.
  enum class Algorithm { kWinepi, kMinepi };
  Algorithm algorithm = Algorithm::kWinepi;
  /// Options for Algorithm::kWinepi (ignored under kMinepi).
  WinepiOptions winepi;
  /// Options for Algorithm::kMinepi (ignored under kWinepi).
  MinepiOptions minepi;
};

/// \brief Mine Perracotta-style two-event temporal rules.
struct TwoEventTask {
  /// Satisfaction-rate threshold and relevance floor.
  PerracottaOptions options;
};

// ---------------------------------------------------------------------------
// Option validation. Each returns OK or InvalidArgument naming the bad
// field — the Engine rejects a task before touching the database, so a
// zero support threshold or an out-of-range confidence is an error value
// instead of undefined mining behavior.

Status Validate(const IterMinerOptions& options);
Status Validate(const ClosedIterMinerOptions& options);
Status Validate(const IterGeneratorMinerOptions& options);
Status Validate(const RuleMinerOptions& options);
Status Validate(const SeqMinerOptions& options);
Status Validate(const ClosedSeqMinerOptions& options);
Status Validate(const GeneratorMinerOptions& options);
Status Validate(const WinepiOptions& options);
Status Validate(const MinepiOptions& options);
Status Validate(const PerracottaOptions& options);

Status Validate(const FullPatternsTask& task);
Status Validate(const ClosedTask& task);
Status Validate(const GeneratorsTask& task);
Status Validate(const RulesTask& task);
Status Validate(const SequentialTask& task);
Status Validate(const ClosedSequentialTask& task);
Status Validate(const SequentialGeneratorsTask& task);
Status Validate(const EpisodeTask& task);
Status Validate(const TwoEventTask& task);

}  // namespace specmine

#endif  // SPECMINE_ENGINE_TASKS_H_
