// RunReport: the uniform statistics record every Engine task returns,
// unifying the per-miner stats structs (IterMinerStats, RuleMinerStats,
// SeqMinerStats) behind one shape a server loop can log or bill against.

#ifndef SPECMINE_ENGINE_RUN_REPORT_H_
#define SPECMINE_ENGINE_RUN_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace specmine {

/// \brief Statistics describing one Engine task run.
///
/// Counter fields not meaningful for a task stay 0 (a rules run has no
/// patterns_emitted; an episode run has no premises_enumerated).
struct RunReport {
  /// Task identifier ("full-patterns", "closed-patterns", "generators",
  /// "rules", "backward-rules", "sequential", "closed-sequential",
  /// "sequential-generators", "episodes-winepi", "episodes-minepi",
  /// "two-event").
  std::string task;

  size_t nodes_visited = 0;        ///< DFS nodes expanded.
  size_t patterns_emitted = 0;     ///< Patterns delivered to the sink.
  size_t rules_emitted = 0;        ///< Rules delivered to the sink.
  size_t premises_enumerated = 0;  ///< Rule mining Step 1 count.
  size_t candidate_rules = 0;      ///< Rules before Steps 4-5.
  size_t subtrees_pruned = 0;      ///< Closed miner: P1-P3 subtree prunes.
  bool truncated = false;          ///< A cap or the sink stopped the run.

  /// The physical counting representation the run used: "csr", "bitmap",
  /// "mixed" (sharded runs whose shards resolved differently), or empty
  /// for tasks that use no counting index (sequential, episodes,
  /// two-event, backward rules).
  std::string backend;

  /// Physical index (CSR or bitmap) construction time spent by *this*
  /// call. 0 when the session's cached index was reused (or the task
  /// needs no index) — the session-reuse signal the engine tests assert
  /// on.
  double index_build_seconds = 0.0;
  /// Mining wall-clock (everything after index construction).
  double mine_seconds = 0.0;

  /// Sharded sessions only: how many shards the manifest lists, how many
  /// were quarantined at open (ShardFailurePolicy::kQuarantine), and the
  /// per-shard error strings ("shard 3 (path): header checksum mismatch").
  /// A degraded run mines the healthy subset; fractional thresholds are
  /// rescaled to the surviving trace count automatically because the
  /// merged database only holds healthy shards.
  size_t shards_total = 0;
  size_t shards_quarantined = 0;
  std::vector<std::string> shard_errors;

  /// Sharded full-pattern runs only: phase-1 provenance. A shard is
  /// *scanned* when its phase-1 DFS actually ran and *cached* when its
  /// candidates were replayed from the phase-1 candidate cache
  /// (phase1_cache.h) — after an append, a warm re-mine scans exactly the
  /// new shards (the incremental acceptance test pins old shards at 0
  /// nodes in shard_phase1_nodes, which is in shard order).
  size_t shards_scanned = 0;
  size_t shards_cached = 0;
  std::vector<size_t> shard_phase1_nodes;

  /// \brief One-line "task=... patterns=... index=...s mine=...s" summary.
  std::string ToString() const;
};

}  // namespace specmine

#endif  // SPECMINE_ENGINE_RUN_REPORT_H_
