#include "src/engine/shard_exec.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/itermine/bitmap_projection.h"
#include "src/itermine/qre_verifier.h"
#include "src/support/cancel.h"
#include "src/support/stopwatch.h"
#include "src/support/thread_pool.h"

namespace specmine {

namespace {

// Proportional local threshold: the smallest integer t with
// t >= S * w / total. Pigeonhole over the additive per-shard counts
// guarantees any pattern with global count >= S reaches t in some shard.
uint64_t LocalThreshold(uint64_t global_support, uint64_t shard_weight,
                        uint64_t total_weight) {
  if (total_weight == 0) return 1;
  const unsigned __int128 scaled =
      static_cast<unsigned __int128>(global_support) * shard_weight;
  uint64_t t = static_cast<uint64_t>((scaled + total_weight - 1) /
                                     total_weight);
  return t > 1 ? t : 1;
}

// Phase-1 output of one shard: the candidate patterns in *merged* ids with
// their exact local counts, plus a lookup map for phase 2 and the prune
// margins that make the scan reusable across appends.
struct ShardResult {
  std::vector<MinedPattern> patterns;  // Merged ids, local supports.
  std::unordered_map<Pattern, uint64_t, PatternHash> support;
  // For each merged event in any pruned subtree root, the minimum over
  // those roots of (global S - upper bound). Empty = the scan never
  // pruned and is complete at its local threshold.
  std::unordered_map<EventId, uint64_t> margins;
  size_t nodes_visited = 0;
  StatusCode stopped = StatusCode::kOk;  // Cancel fired inside this shard.
};

// occ[j][merged_ev]: occurrences of the event in shard j (0 when the
// event is outside shard j's alphabet). The source of the cross-shard
// instance-count bound below.
using OccurrenceTable = std::vector<std::vector<uint64_t>>;

// Sound per-shard cap on instances of a pattern touching every event in
// \p merged_ids: each instance starts at a distinct occurrence of the
// first event and contains at least one occurrence of every other, so
// count_j(P) <= min over the pattern's events of occ_j(event).
uint64_t ShardInstanceBound(const std::vector<uint64_t>& occ,
                            const std::vector<EventId>& merged_ids) {
  uint64_t bound = ~uint64_t{0};
  for (EventId ev : merged_ids) {
    bound = std::min(bound, occ[ev]);
    if (bound == 0) break;
  }
  return bound;
}

// Mines shard \p shard's candidates: a DFS at the local threshold,
// pruned by the cross-shard upper bound — a node whose local count plus
// every other shard's instance cap cannot reach the global threshold has
// no globally frequent descendant (counts only fall and alphabets only
// grow down the subtree), so the whole subtree is skipped. For modular
// corpora with (near-)disjoint shard alphabets the cross term is ~0 and
// each shard effectively mines at the full global threshold — without the
// prune, the low local thresholds the pigeonhole budget forces are
// combinatorially intractable on exactly those corpora.
//
// The prune bakes in the *other* shards' occurrence tables, which the
// next append changes, so each prune leaves evidence behind: for every
// event of the pruned root, the distance (S - upper_bound) to the global
// threshold. A cached scan is reusable only while the occurrences added
// since stay below every recorded margin (see the reuse check in
// MineShardedFull); the prune itself only removes patterns whose global
// support provably misses the threshold, so the final filtered output is
// identical with or without it.
void MineOneShard(const ShardedDatabase& set, const CountingBackend& backend,
                  size_t shard, const IterMinerOptions& options,
                  uint64_t local_threshold, const OccurrenceTable& occ,
                  ShardResult* out) {
  IterMinerOptions local = options;
  local.min_support = local_threshold;
  local.max_patterns = 0;   // Candidates must be complete.
  local.num_threads = 1;    // Parallelism lives at the shard level.
  const std::vector<EventId>& remap = set.remap(shard);
  const size_t num_shards = set.num_shards();
  std::vector<EventId> merged_ids;
  IterMinerStats stats;
  ScanFrequentIterative(
      backend, local,
      [&](const Pattern& pattern, uint64_t support) {
        merged_ids.clear();
        merged_ids.reserve(pattern.size());
        for (EventId local_ev : pattern) {
          merged_ids.push_back(remap[local_ev]);
        }
        uint64_t upper_bound = support;
        for (size_t j = 0;
             j < num_shards && upper_bound < options.min_support; ++j) {
          if (j == shard) continue;
          upper_bound += ShardInstanceBound(occ[j], merged_ids);
        }
        if (upper_bound < options.min_support) {
          // Prune the subtree, leaving its reuse evidence: the loop ran to
          // completion (the bound never reached S), so upper_bound is the
          // full cross-shard sum and the margin is exact.
          const uint64_t margin = options.min_support - upper_bound;
          for (EventId ev : merged_ids) {
            auto it = out->margins.find(ev);
            if (it == out->margins.end()) {
              out->margins.emplace(ev, margin);
            } else if (margin < it->second) {
              it->second = margin;
            }
          }
          return false;
        }
        Pattern merged(merged_ids);
        out->support.emplace(merged, support);
        out->patterns.push_back(MinedPattern{std::move(merged), support});
        return true;
      },
      &stats);
  out->nodes_visited = stats.nodes_visited;
  out->stopped = stats.stopped;
}

}  // namespace

PatternSet MineShardedFull(const ShardedDatabase& set,
                           const std::vector<CountingBackend>& backends,
                           const IterMinerOptions& options,
                           ShardExecStats* stats, ThreadPool* pool,
                           ShardCacheIO* cache) {
  ShardExecStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = ShardExecStats{};
  Stopwatch sw;
  PatternSet out;
  const size_t num_shards = set.num_shards();
  const uint64_t total_weight = set.TotalEvents();
  if (num_shards == 0 || total_weight == 0) {
    stats->mine_seconds = sw.ElapsedSeconds();
    return out;
  }
  const size_t num_threads = ThreadPool::ResolveThreads(options.num_threads);

  // Per-shard occurrence counts by merged event id, for the cross-shard
  // instance bound (phase 1's subtree prune and phase 2's skip test).
  OccurrenceTable occ(num_shards);
  for (size_t j = 0; j < num_shards; ++j) {
    occ[j].assign(set.dictionary().size(), 0);
    const std::vector<EventId>& remap = set.remap(j);
    for (size_t local_ev = 0; local_ev < remap.size(); ++local_ev) {
      occ[j][remap[local_ev]] =
          backends[j].TotalCount(static_cast<EventId>(local_ev));
    }
  }

  // Resolve the phase-1 cache: look up each shard, validate each hit's
  // reuse evidence, then fix every local threshold up front. Cache-less
  // runs use the proportional ceiling; cache-fed runs use the frozen
  // budget split — reused entries consume their stored (t - 1) of the
  // pigeonhole budget S - 1, and the shards left to scan split the
  // remainder proportionally by event weight (floors keep the sum within
  // the remainder, so the completeness invariant
  // sum of (t_i - 1) <= S - 1  holds across append epochs).
  const bool caching =
      cache != nullptr && cache->shard_digests.size() == num_shards;
  std::vector<const Phase1CacheEntry*> hits(num_shards, nullptr);
  std::vector<uint64_t> remap_digests(num_shards, 0);
  std::vector<uint64_t> legacy(num_shards, 1);
  for (size_t i = 0; i < num_shards; ++i) {
    legacy[i] = LocalThreshold(options.min_support,
                               set.shard(i).TotalEvents(), total_weight);
  }
  std::vector<uint64_t> thresholds = legacy;
  uint64_t options_fp = 0;
  if (caching) {
    options_fp =
        Phase1OptionsFingerprint(options.min_support, options.max_length);

    // An entry's prune omissions were justified against the corpus it was
    // scanned in (the cross-shard bound reads the other shards). It is
    // reusable here only if (a) every shard of that epoch is still
    // present — digests matched as a multiset, so a duplicated shard
    // cannot mask an absent one — and (b) for every margined event, the
    // occurrences the post-epoch shards add stay strictly below the
    // recorded margin. A pruned root p gains at most
    // min over its events of occ_added(event) instances from new shards
    // (each instance consumes a distinct occurrence of every event), and
    // its descendants gain no more, so (b) keeps every pruned pattern
    // provably below the global threshold in the current corpus.
    auto reusable = [&](const Phase1CacheEntry& entry) {
      std::unordered_map<uint64_t, int> pending;
      for (uint64_t d : entry.epoch_digests) ++pending[d];
      std::vector<bool> in_epoch(num_shards, false);
      size_t matched = 0;
      for (size_t j = 0; j < num_shards; ++j) {
        auto it = pending.find(cache->shard_digests[j]);
        if (it != pending.end() && it->second > 0) {
          --it->second;
          in_epoch[j] = true;
          ++matched;
        }
      }
      if (matched != entry.epoch_digests.size()) return false;
      for (const Phase1PruneMargin& m : entry.margins) {
        if (m.event >= set.dictionary().size()) return false;
        uint64_t added = 0;
        for (size_t j = 0; j < num_shards; ++j) {
          if (in_epoch[j]) continue;
          added += occ[j][m.event];
          if (added >= m.margin) return false;
        }
      }
      return true;
    };
    for (size_t i = 0; i < num_shards; ++i) {
      remap_digests[i] = RemapDigest(set.remap(i));
      if (cache->loaded != nullptr) {
        const Phase1CacheEntry* entry = cache->loaded->Find(
            cache->shard_digests[i], remap_digests[i], options_fp);
        if (entry != nullptr && reusable(*entry)) hits[i] = entry;
      }
    }
    const uint64_t budget =
        options.min_support > 0 ? options.min_support - 1 : 0;
    // Two attempts: reuse what the budget allows, but when accumulated
    // entries leave so little budget that a scanned shard would run far
    // below its proportional threshold (scan cost grows steeply as the
    // threshold falls), drop every hit and rescan the whole set instead —
    // a near-proportional full scan that also resets the budget split for
    // future appends.
    for (int attempt = 0; attempt < 2; ++attempt) {
      uint64_t consumed = 0;
      for (const Phase1CacheEntry* hit : hits) {
        if (hit != nullptr) consumed += hit->threshold - 1;
      }
      if (consumed > budget) {
        // Entries that overspend the budget cannot all be sound together
        // (they were not written by this scheme); scan everything instead.
        std::fill(hits.begin(), hits.end(), nullptr);
        consumed = 0;
      }
      uint64_t scan_weight = 0;
      for (size_t i = 0; i < num_shards; ++i) {
        if (hits[i] == nullptr) scan_weight += set.shard(i).TotalEvents();
      }
      const uint64_t leftover = budget - consumed;
      bool degenerate = false;
      for (size_t i = 0; i < num_shards; ++i) {
        if (hits[i] != nullptr) {
          thresholds[i] = hits[i]->threshold;
          continue;
        }
        thresholds[i] = 1;
        if (scan_weight > 0) {
          const unsigned __int128 scaled =
              static_cast<unsigned __int128>(leftover) *
              set.shard(i).TotalEvents();
          thresholds[i] = 1 + static_cast<uint64_t>(scaled / scan_weight);
        }
        if (thresholds[i] < (legacy[i] + 1) / 2) degenerate = true;
      }
      if (!degenerate || attempt == 1) break;
      std::fill(hits.begin(), hits.end(), nullptr);
    }
  }

  // Phase 1: every shard mined independently, one job per shard on the
  // session pool. Results land in per-shard slots, so the outcome is
  // identical at every thread count. A cache hit replays the stored scan
  // instead of running the DFS.
  std::vector<ShardResult> results(num_shards);
  auto mine_shard = [&](size_t i) {
    if (hits[i] != nullptr) {
      results[i].patterns = hits[i]->patterns;
      results[i].support.reserve(results[i].patterns.size());
      for (const MinedPattern& item : results[i].patterns) {
        results[i].support.emplace(item.pattern, item.support);
      }
      return;
    }
    MineOneShard(set, backends[i], i, options, thresholds[i], occ,
                 &results[i]);
  };
  if (num_threads > 1 && num_shards > 1) {
    stats->error =
        ThreadPool::ParallelForShared(pool, num_threads, num_shards,
                                      mine_shard);
    if (!stats->error.ok()) {
      stats->mine_seconds = sw.ElapsedSeconds();
      return out;
    }
  } else {
    for (size_t i = 0; i < num_shards; ++i) mine_shard(i);
  }
  // A token that fired during phase 1 leaves some shard's candidate set
  // incomplete; the only output that is still a prefix of the canonical
  // order is the empty one.
  for (const ShardResult& result : results) {
    if (result.stopped != StatusCode::kOk) stats->stopped = result.stopped;
  }
  if (options.cancel != nullptr && options.cancel->fired()) {
    stats->stopped = options.cancel->stop_code();
  }
  stats->shard_scans.resize(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    ShardScanStat& scan = stats->shard_scans[i];
    scan.cached = hits[i] != nullptr;
    scan.threshold = thresholds[i];
    scan.nodes_visited = results[i].nodes_visited;
    scan.local_patterns = results[i].patterns.size();
    if (scan.cached) {
      ++stats->shards_cached;
    } else {
      ++stats->shards_scanned;
    }
  }
  if (stats->stopped != StatusCode::kOk) {
    stats->mine_seconds = sw.ElapsedSeconds();
    return out;
  }

  // Shards whose scan (or replayed entry) never pruned ran a complete DFS
  // at thresholds[i]: absence from their output proves the local count is
  // below the threshold, which phase 2 exploits below. A pruned scan
  // proves no such thing — the absent pattern may have been pruned with a
  // count at or above the threshold.
  std::vector<bool> scan_complete(num_shards, false);
  for (size_t i = 0; i < num_shards; ++i) {
    scan_complete[i] =
        caching && (hits[i] != nullptr ? hits[i]->margins.empty()
                                       : results[i].margins.empty());
  }

  // Candidate union, deterministically ordered: lexicographic merged-id
  // order is exactly the DFS preorder the single-pass miner emits in
  // (children ascend by event id, prefixes precede extensions).
  std::unordered_set<Pattern, PatternHash> seen;
  std::vector<const Pattern*> candidates;
  for (const ShardResult& result : results) {
    stats->nodes_visited += result.nodes_visited;
    stats->local_patterns += result.patterns.size();
    for (const MinedPattern& item : result.patterns) {
      if (seen.insert(item.pattern).second) {
        candidates.push_back(&item.pattern);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Pattern* a, const Pattern* b) { return *a < *b; });
  stats->candidates = candidates.size();

  // Phase 2: exact global supports. Local-miner counts are exact where
  // present; a missing (candidate, shard) pair is first bounded by the
  // occurrence cap — zero bound (some candidate event absent from the
  // shard) costs nothing, and a candidate whose exact-plus-bounded total
  // cannot reach the threshold is dropped without any oracle scan. Only
  // the remaining pairs are recounted exactly with the QRE oracle.
  std::vector<std::vector<EventId>> to_local(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    to_local[i].assign(set.dictionary().size(), kInvalidEvent);
    const std::vector<EventId>& remap = set.remap(i);
    for (size_t local_ev = 0; local_ev < remap.size(); ++local_ev) {
      to_local[i][remap[local_ev]] = static_cast<EventId>(local_ev);
    }
  }
  std::vector<uint64_t> totals(candidates.size(), 0);
  std::atomic<size_t> recounts{0};
  std::atomic<size_t> bound_skips{0};
  constexpr uint64_t kNeedsRecount = ~uint64_t{0};
  auto count_candidate = [&](size_t c) {
    // A fired token skips the remaining recounts; the run then returns the
    // empty prefix below rather than a support-incomplete subset.
    if (options.cancel != nullptr && options.cancel->ShouldStop()) return;
    const Pattern& pattern = *candidates[c];
    // Workers run candidates concurrently, so the recount scratch (the
    // alphabet-union row) is per thread, not per candidate — recounts
    // stay allocation-free after each worker's first.
    thread_local QreRecountScratch recount;
    // One pass over the shards: exact counts where phase 1 reported the
    // pattern, the occurrence cap elsewhere (cached so the recount loop
    // repeats no lookups).
    uint64_t known = 0, bounded = 0;
    std::vector<uint64_t> exact(num_shards, kNeedsRecount);
    std::vector<uint64_t> bound(num_shards, 0);
    for (size_t i = 0; i < num_shards; ++i) {
      auto it = results[i].support.find(pattern);
      if (it != results[i].support.end()) {
        exact[i] = it->second;
        known += it->second;
      } else {
        bound[i] = ShardInstanceBound(occ[i], pattern.events());
        if (scan_complete[i]) {
          // This shard's scan (or replayed entry) was complete at
          // thresholds[i], so absence from its output proves
          // count_i <= thresholds[i] - 1 — often 0, which skips the
          // oracle recount outright.
          bound[i] = std::min(bound[i], thresholds[i] - 1);
        }
        bounded += bound[i];
      }
    }
    if (known + bounded < options.min_support) {
      bound_skips.fetch_add(1, std::memory_order_relaxed);
      totals[c] = 0;  // Provably below threshold; never emitted.
      return;
    }
    uint64_t total = known;
    std::vector<EventId> local_ids(pattern.size());
    for (size_t i = 0; i < num_shards; ++i) {
      // bound > 0 implies every candidate event occurs in (so is interned
      // by) shard i's dictionary — the remap below cannot miss.
      if (exact[i] != kNeedsRecount || bound[i] == 0) continue;
      for (size_t k = 0; k < pattern.size(); ++k) {
        local_ids[k] = to_local[i][pattern[k]];
      }
      recounts.fetch_add(1, std::memory_order_relaxed);
      total += CountInstances(backends[i], Pattern(local_ids), &recount);
    }
    totals[c] = total;
  };
  if (num_threads > 1 && candidates.size() > 1) {
    stats->error = ThreadPool::ParallelForShared(
        pool, num_threads, candidates.size(), count_candidate);
    if (!stats->error.ok()) {
      stats->mine_seconds = sw.ElapsedSeconds();
      return out;
    }
  } else {
    for (size_t c = 0; c < candidates.size(); ++c) count_candidate(c);
  }
  stats->bound_skips = bound_skips.load();
  stats->recounts = recounts.load();
  if (options.cancel != nullptr && options.cancel->fired()) {
    stats->stopped = options.cancel->stop_code();
    stats->mine_seconds = sw.ElapsedSeconds();
    return out;  // Empty prefix: some totals may be incomplete.
  }

  // Phase 3: the global filter, in the already-canonical order. Every
  // total is exact here, so stopping mid-loop yields a true prefix of the
  // single-pass emission order.
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (options.cancel != nullptr && options.cancel->ShouldStop()) {
      stats->stopped = options.cancel->stop_code();
      break;
    }
    if (totals[c] >= options.min_support) {
      out.Add(*candidates[c], totals[c]);
    }
  }

  // Hand back the refreshed cache — the entries for exactly the current
  // shards, hits and fresh scans alike. Only a clean, unstopped run is
  // persistable: a cancelled scan's candidate set is incomplete and must
  // never be reused. (Moving results[i].patterns is safe here: phase 3 is
  // done with the candidate pointers into them.)
  if (caching && cache->updated != nullptr &&
      stats->stopped == StatusCode::kOk) {
    cache->updated->entries.clear();
    cache->updated->entries.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      Phase1CacheEntry entry;
      entry.shard_digest = cache->shard_digests[i];
      entry.remap_digest = remap_digests[i];
      entry.options_fingerprint = options_fp;
      entry.threshold = thresholds[i];
      if (hits[i] != nullptr) {
        // A replayed entry keeps its original epoch and margins: its
        // prune omissions are relative to the corpus it was scanned
        // against, and the reuse check re-validates them on every load.
        entry.epoch_digests = hits[i]->epoch_digests;
        entry.margins = hits[i]->margins;
      } else {
        entry.epoch_digests = cache->shard_digests;
        entry.margins.reserve(results[i].margins.size());
        for (const auto& margin : results[i].margins) {
          entry.margins.push_back(
              Phase1PruneMargin{margin.first, margin.second});
        }
        std::sort(entry.margins.begin(), entry.margins.end(),
                  [](const Phase1PruneMargin& a, const Phase1PruneMargin& b) {
                    return a.event < b.event;
                  });
      }
      entry.patterns = std::move(results[i].patterns);
      cache->updated->entries.push_back(std::move(entry));
    }
  }
  stats->mine_seconds = sw.ElapsedSeconds();
  return out;
}

}  // namespace specmine
