#include "src/engine/shard_exec.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/itermine/bitmap_projection.h"
#include "src/itermine/qre_verifier.h"
#include "src/support/cancel.h"
#include "src/support/stopwatch.h"
#include "src/support/thread_pool.h"

namespace specmine {

namespace {

// Proportional local threshold: the smallest integer t with
// t >= S * w / total. Pigeonhole over the additive per-shard counts
// guarantees any pattern with global count >= S reaches t in some shard.
uint64_t LocalThreshold(uint64_t global_support, uint64_t shard_weight,
                        uint64_t total_weight) {
  if (total_weight == 0) return 1;
  const unsigned __int128 scaled =
      static_cast<unsigned __int128>(global_support) * shard_weight;
  uint64_t t = static_cast<uint64_t>((scaled + total_weight - 1) /
                                     total_weight);
  return t > 1 ? t : 1;
}

// Phase-1 output of one shard: the candidate patterns in *merged* ids with
// their exact local counts, plus a lookup map for phase 2.
struct ShardResult {
  std::vector<MinedPattern> patterns;  // Merged ids, local supports.
  std::unordered_map<Pattern, uint64_t, PatternHash> support;
  size_t nodes_visited = 0;
  StatusCode stopped = StatusCode::kOk;  // Cancel fired inside this shard.
};

// occ[j][merged_ev]: occurrences of the event in shard j (0 when the
// event is outside shard j's alphabet). The source of the cross-shard
// instance-count bound below.
using OccurrenceTable = std::vector<std::vector<uint64_t>>;

// Sound per-shard cap on instances of a pattern touching every event in
// \p merged_ids: each instance starts at a distinct occurrence of the
// first event and contains at least one occurrence of every other, so
// count_j(P) <= min over the pattern's events of occ_j(event).
uint64_t ShardInstanceBound(const std::vector<uint64_t>& occ,
                            const std::vector<EventId>& merged_ids) {
  uint64_t bound = ~uint64_t{0};
  for (EventId ev : merged_ids) {
    bound = std::min(bound, occ[ev]);
    if (bound == 0) break;
  }
  return bound;
}

// Mines shard \p shard's candidates: a DFS at the proportional local
// threshold, additionally pruned by the cross-shard upper bound — a node
// whose local count plus every other shard's instance cap cannot reach
// the global threshold has no globally frequent descendant (counts only
// fall and alphabets only grow down the subtree), so the whole subtree is
// skipped. For modular corpora with (near-)disjoint shard alphabets the
// cross term is ~0 and each shard effectively mines at the full global
// threshold.
void MineOneShard(const ShardedDatabase& set, const CountingBackend& backend,
                  size_t shard, const IterMinerOptions& options,
                  uint64_t local_threshold, const OccurrenceTable& occ,
                  ShardResult* out) {
  IterMinerOptions local = options;
  local.min_support = local_threshold;
  local.max_patterns = 0;   // Candidates must be complete.
  local.num_threads = 1;    // Parallelism lives at the shard level.
  const std::vector<EventId>& remap = set.remap(shard);
  const size_t num_shards = set.num_shards();
  std::vector<EventId> merged_ids;
  IterMinerStats stats;
  ScanFrequentIterative(
      backend, local,
      [&](const Pattern& pattern, uint64_t support) {
        merged_ids.clear();
        merged_ids.reserve(pattern.size());
        for (EventId local_ev : pattern) {
          merged_ids.push_back(remap[local_ev]);
        }
        uint64_t upper_bound = support;
        for (size_t j = 0; j < num_shards && upper_bound < options.min_support;
             ++j) {
          if (j == shard) continue;
          upper_bound += ShardInstanceBound(occ[j], merged_ids);
        }
        if (upper_bound < options.min_support) return false;  // Prune.
        Pattern merged(merged_ids);
        out->support.emplace(merged, support);
        out->patterns.push_back(MinedPattern{std::move(merged), support});
        return true;
      },
      &stats);
  out->nodes_visited = stats.nodes_visited;
  out->stopped = stats.stopped;
}

}  // namespace

PatternSet MineShardedFull(const ShardedDatabase& set,
                           const std::vector<CountingBackend>& backends,
                           const IterMinerOptions& options,
                           ShardExecStats* stats, ThreadPool* pool) {
  ShardExecStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = ShardExecStats{};
  Stopwatch sw;
  PatternSet out;
  const size_t num_shards = set.num_shards();
  const uint64_t total_weight = set.TotalEvents();
  if (num_shards == 0 || total_weight == 0) {
    stats->mine_seconds = sw.ElapsedSeconds();
    return out;
  }
  const size_t num_threads = ThreadPool::ResolveThreads(options.num_threads);

  // Per-shard occurrence counts by merged event id, for the cross-shard
  // instance bound (phase 1's subtree prune and phase 2's skip test).
  OccurrenceTable occ(num_shards);
  for (size_t j = 0; j < num_shards; ++j) {
    occ[j].assign(set.dictionary().size(), 0);
    const std::vector<EventId>& remap = set.remap(j);
    for (size_t local_ev = 0; local_ev < remap.size(); ++local_ev) {
      occ[j][remap[local_ev]] =
          backends[j].TotalCount(static_cast<EventId>(local_ev));
    }
  }

  // Phase 1: every shard mined independently, one job per shard on the
  // session pool. Results land in per-shard slots, so the outcome is
  // identical at every thread count.
  std::vector<ShardResult> results(num_shards);
  auto mine_shard = [&](size_t i) {
    MineOneShard(set, backends[i], i, options,
                 LocalThreshold(options.min_support,
                                set.shard(i).TotalEvents(), total_weight),
                 occ, &results[i]);
  };
  if (num_threads > 1 && num_shards > 1) {
    stats->error =
        ThreadPool::ParallelForShared(pool, num_threads, num_shards,
                                      mine_shard);
    if (!stats->error.ok()) {
      stats->mine_seconds = sw.ElapsedSeconds();
      return out;
    }
  } else {
    for (size_t i = 0; i < num_shards; ++i) mine_shard(i);
  }
  // A token that fired during phase 1 leaves some shard's candidate set
  // incomplete; the only output that is still a prefix of the canonical
  // order is the empty one.
  for (const ShardResult& result : results) {
    if (result.stopped != StatusCode::kOk) stats->stopped = result.stopped;
  }
  if (options.cancel != nullptr && options.cancel->fired()) {
    stats->stopped = options.cancel->stop_code();
  }
  if (stats->stopped != StatusCode::kOk) {
    stats->mine_seconds = sw.ElapsedSeconds();
    return out;
  }

  // Candidate union, deterministically ordered: lexicographic merged-id
  // order is exactly the DFS preorder the single-pass miner emits in
  // (children ascend by event id, prefixes precede extensions).
  std::unordered_set<Pattern, PatternHash> seen;
  std::vector<const Pattern*> candidates;
  for (const ShardResult& result : results) {
    stats->nodes_visited += result.nodes_visited;
    stats->local_patterns += result.patterns.size();
    for (const MinedPattern& item : result.patterns) {
      if (seen.insert(item.pattern).second) {
        candidates.push_back(&item.pattern);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Pattern* a, const Pattern* b) { return *a < *b; });
  stats->candidates = candidates.size();

  // Phase 2: exact global supports. Local-miner counts are exact where
  // present; a missing (candidate, shard) pair is first bounded by the
  // occurrence cap — zero bound (some candidate event absent from the
  // shard) costs nothing, and a candidate whose exact-plus-bounded total
  // cannot reach the threshold is dropped without any oracle scan. Only
  // the remaining pairs are recounted exactly with the QRE oracle.
  std::vector<std::vector<EventId>> to_local(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    to_local[i].assign(set.dictionary().size(), kInvalidEvent);
    const std::vector<EventId>& remap = set.remap(i);
    for (size_t local_ev = 0; local_ev < remap.size(); ++local_ev) {
      to_local[i][remap[local_ev]] = static_cast<EventId>(local_ev);
    }
  }
  std::vector<uint64_t> totals(candidates.size(), 0);
  std::atomic<size_t> recounts{0};
  std::atomic<size_t> bound_skips{0};
  constexpr uint64_t kNeedsRecount = ~uint64_t{0};
  auto count_candidate = [&](size_t c) {
    // A fired token skips the remaining recounts; the run then returns the
    // empty prefix below rather than a support-incomplete subset.
    if (options.cancel != nullptr && options.cancel->ShouldStop()) return;
    const Pattern& pattern = *candidates[c];
    // Workers run candidates concurrently, so the recount scratch (the
    // alphabet-union row) is per thread, not per candidate — recounts
    // stay allocation-free after each worker's first.
    thread_local QreRecountScratch recount;
    // One pass over the shards: exact counts where phase 1 reported the
    // pattern, the occurrence cap elsewhere (cached so the recount loop
    // repeats no lookups).
    uint64_t known = 0, bounded = 0;
    std::vector<uint64_t> exact(num_shards, kNeedsRecount);
    std::vector<uint64_t> bound(num_shards, 0);
    for (size_t i = 0; i < num_shards; ++i) {
      auto it = results[i].support.find(pattern);
      if (it != results[i].support.end()) {
        exact[i] = it->second;
        known += it->second;
      } else {
        bound[i] = ShardInstanceBound(occ[i], pattern.events());
        bounded += bound[i];
      }
    }
    if (known + bounded < options.min_support) {
      bound_skips.fetch_add(1, std::memory_order_relaxed);
      totals[c] = 0;  // Provably below threshold; never emitted.
      return;
    }
    uint64_t total = known;
    std::vector<EventId> local_ids(pattern.size());
    for (size_t i = 0; i < num_shards; ++i) {
      // bound > 0 implies every candidate event occurs in (so is interned
      // by) shard i's dictionary — the remap below cannot miss.
      if (exact[i] != kNeedsRecount || bound[i] == 0) continue;
      for (size_t k = 0; k < pattern.size(); ++k) {
        local_ids[k] = to_local[i][pattern[k]];
      }
      recounts.fetch_add(1, std::memory_order_relaxed);
      total += CountInstances(backends[i], Pattern(local_ids), &recount);
    }
    totals[c] = total;
  };
  if (num_threads > 1 && candidates.size() > 1) {
    stats->error = ThreadPool::ParallelForShared(
        pool, num_threads, candidates.size(), count_candidate);
    if (!stats->error.ok()) {
      stats->mine_seconds = sw.ElapsedSeconds();
      return out;
    }
  } else {
    for (size_t c = 0; c < candidates.size(); ++c) count_candidate(c);
  }
  stats->bound_skips = bound_skips.load();
  stats->recounts = recounts.load();
  if (options.cancel != nullptr && options.cancel->fired()) {
    stats->stopped = options.cancel->stop_code();
    stats->mine_seconds = sw.ElapsedSeconds();
    return out;  // Empty prefix: some totals may be incomplete.
  }

  // Phase 3: the global filter, in the already-canonical order. Every
  // total is exact here, so stopping mid-loop yields a true prefix of the
  // single-pass emission order.
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (options.cancel != nullptr && options.cancel->ShouldStop()) {
      stats->stopped = options.cancel->stop_code();
      break;
    }
    if (totals[c] >= options.min_support) {
      out.Add(*candidates[c], totals[c]);
    }
  }
  stats->mine_seconds = sw.ElapsedSeconds();
  return out;
}

}  // namespace specmine
