#include "src/engine/json_results.h"

namespace specmine {

namespace {

void WritePatternEvents(JsonWriter& writer, const Pattern& pattern,
                        const EventDictionary& dict) {
  writer.BeginArray();
  for (EventId ev : pattern) writer.String(dict.NameOrPlaceholder(ev));
  writer.EndArray();
}

}  // namespace

void WriteRunReport(JsonWriter& writer, const RunReport& report) {
  writer.BeginObject();
  writer.Field("task", report.task);
  writer.Field("backend", report.backend);
  writer.Field("nodes_visited", static_cast<uint64_t>(report.nodes_visited));
  writer.Field("patterns_emitted",
               static_cast<uint64_t>(report.patterns_emitted));
  writer.Field("rules_emitted", static_cast<uint64_t>(report.rules_emitted));
  writer.Field("premises_enumerated",
               static_cast<uint64_t>(report.premises_enumerated));
  writer.Field("candidate_rules",
               static_cast<uint64_t>(report.candidate_rules));
  writer.Field("subtrees_pruned",
               static_cast<uint64_t>(report.subtrees_pruned));
  writer.Field("truncated", report.truncated);
  writer.Field("index_build_seconds", report.index_build_seconds);
  writer.Field("mine_seconds", report.mine_seconds);
  writer.Field("shards_total", static_cast<uint64_t>(report.shards_total));
  writer.Field("shards_quarantined",
               static_cast<uint64_t>(report.shards_quarantined));
  writer.Key("shard_errors").BeginArray();
  for (const std::string& error : report.shard_errors) writer.String(error);
  writer.EndArray();
  writer.EndObject();
}

std::string PatternsResultToJson(const RunReport& report,
                                 const PatternSet& patterns,
                                 const EventDictionary& dict) {
  std::string out;
  JsonWriter writer(&out);
  writer.BeginObject();
  writer.Key("report");
  WriteRunReport(writer, report);
  writer.Key("patterns").BeginArray();
  for (const MinedPattern& item : patterns.items()) {
    writer.BeginObject();
    writer.Key("events");
    WritePatternEvents(writer, item.pattern, dict);
    writer.Field("support", item.support);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  writer.Finish();
  return out;
}

std::string RulesResultToJson(const RunReport& report, const RuleSet& rules,
                              const EventDictionary& dict) {
  std::string out;
  JsonWriter writer(&out);
  writer.BeginObject();
  writer.Key("report");
  WriteRunReport(writer, report);
  writer.Key("rules").BeginArray();
  for (const Rule& rule : rules.rules()) {
    writer.BeginObject();
    writer.Key("premise");
    WritePatternEvents(writer, rule.premise, dict);
    writer.Key("consequent");
    WritePatternEvents(writer, rule.consequent, dict);
    writer.Field("s_support", rule.s_support);
    writer.Field("i_support", rule.i_support);
    writer.Field("premise_points", rule.premise_points);
    writer.Field("satisfied_points", rule.satisfied_points);
    writer.Field("confidence", rule.confidence());
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  writer.Finish();
  return out;
}

std::string TwoEventResultToJson(const RunReport& report,
                                 const std::vector<TwoEventRule>& pairs,
                                 const EventDictionary& dict) {
  std::string out;
  JsonWriter writer(&out);
  writer.BeginObject();
  writer.Key("report");
  WriteRunReport(writer, report);
  writer.Key("pairs").BeginArray();
  for (const TwoEventRule& pair : pairs) {
    writer.BeginObject();
    writer.Field("cause", dict.NameOrPlaceholder(pair.cause));
    writer.Field("effect", dict.NameOrPlaceholder(pair.effect));
    writer.Field("template", PairTemplateName(pair.strongest));
    writer.Field("relevant_traces", pair.relevant_traces);
    writer.Field("satisfying_traces", pair.satisfying_traces);
    writer.Field("satisfaction", pair.satisfaction());
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  writer.Finish();
  return out;
}

}  // namespace specmine
