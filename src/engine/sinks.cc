#include "src/engine/sinks.h"

#include <algorithm>
#include <ostream>

namespace specmine {

namespace {

// The canonical report orders (PatternSet::SortBySupport and
// RuleSet::SortByQuality), as strict-weak comparators the top-k sinks can
// apply incrementally.
bool BetterPattern(const MinedPattern& a, const MinedPattern& b) {
  if (a.support != b.support) return a.support > b.support;
  return a.pattern < b.pattern;
}

bool BetterRule(const Rule& a, const Rule& b) {
  const double ca = a.confidence();
  const double cb = b.confidence();
  if (ca != cb) return ca > cb;
  if (a.s_support != b.s_support) return a.s_support > b.s_support;
  Pattern pa = a.Concatenation();
  Pattern pb = b.Concatenation();
  if (!(pa == pb)) return pa < pb;
  return a.premise.size() < b.premise.size();
}

}  // namespace

// ---------------------------------------------------------------------------
// Pattern sinks.

bool CountingPatternSink::Consume(const Pattern& pattern, uint64_t support) {
  ++count_;
  if (support > max_support_) max_support_ = support;
  if (pattern.size() > longest_length_) longest_length_ = pattern.size();
  return true;
}

bool TopKPatternSink::Consume(const Pattern& pattern, uint64_t support) {
  if (k_ == 0) return false;
  buffer_.push_back(MinedPattern{pattern, support});
  // Amortized O(k): let the buffer grow to 2k, then keep the best k.
  if (buffer_.size() >= 2 * k_) Shrink(k_);
  return true;
}

void TopKPatternSink::Shrink(size_t limit) {
  if (buffer_.size() <= limit) return;
  std::nth_element(buffer_.begin(), buffer_.begin() + limit, buffer_.end(),
                   BetterPattern);
  buffer_.resize(limit);
}

PatternSet TopKPatternSink::TakeSorted() {
  Shrink(k_);
  std::sort(buffer_.begin(), buffer_.end(), BetterPattern);
  PatternSet out;
  for (MinedPattern& item : buffer_) {
    out.Add(std::move(item.pattern), item.support);
  }
  buffer_.clear();
  return out;
}

bool WriterPatternSink::Consume(const Pattern& pattern, uint64_t support) {
  out_ << pattern.ToString(dict_) << "  sup=" << support << '\n';
  return true;
}

// ---------------------------------------------------------------------------
// Rule sinks.

bool CountingRuleSink::Consume(const Rule& rule) {
  ++count_;
  if (rule.confidence() > best_confidence_) {
    best_confidence_ = rule.confidence();
  }
  return true;
}

bool TopKRuleSink::Consume(const Rule& rule) {
  if (k_ == 0) return false;
  buffer_.push_back(rule);
  if (buffer_.size() >= 2 * k_) Shrink(k_);
  return true;
}

void TopKRuleSink::Shrink(size_t limit) {
  if (buffer_.size() <= limit) return;
  std::nth_element(buffer_.begin(), buffer_.begin() + limit, buffer_.end(),
                   BetterRule);
  buffer_.resize(limit);
}

RuleSet TopKRuleSink::TakeSorted() {
  Shrink(k_);
  std::sort(buffer_.begin(), buffer_.end(), BetterRule);
  RuleSet out;
  for (Rule& rule : buffer_) out.Add(std::move(rule));
  buffer_.clear();
  return out;
}

bool WriterRuleSink::Consume(const Rule& rule) {
  out_ << rule.ToString(dict_) << '\n';
  return true;
}

}  // namespace specmine
