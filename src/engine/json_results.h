// The one JSON rendering of a mining result, shared verbatim by the two
// surfaces that emit it: the specmined HTTP success envelope and the CLI
// --json flag. Because both call these functions, the surfaces cannot
// drift — the server end-to-end test diffs them byte for byte (modulo the
// timing fields, which legitimately differ run to run).
//
// Document shapes (pretty-printed, two-space indent, one field per line —
// see src/support/json_writer.h for the formatting contract):
//
//   patterns:  { "report": {...}, "patterns": [ {"events": [names...],
//                "support": N}, ... ] }
//   rules:     { "report": {...}, "rules": [ {"premise": [...],
//                "consequent": [...], "s_support": N, "i_support": N,
//                "premise_points": N, "satisfied_points": N,
//                "confidence": F}, ... ] }
//   pairs:     { "report": {...}, "pairs": [ {"cause": name,
//                "effect": name, "template": name, "relevant_traces": N,
//                "satisfying_traces": N, "satisfaction": F}, ... ] }
//
// The report object carries every RunReport field; its *_seconds members
// are the only fields whose bytes vary across equal runs.

#ifndef SPECMINE_ENGINE_JSON_RESULTS_H_
#define SPECMINE_ENGINE_JSON_RESULTS_H_

#include <string>
#include <vector>

#include "src/engine/run_report.h"
#include "src/patterns/pattern_set.h"
#include "src/rulemine/rule.h"
#include "src/support/json_writer.h"
#include "src/trace/event_dictionary.h"
#include "src/twoevent/perracotta.h"

namespace specmine {

/// \brief Writes the RunReport object (all counters and timings) as the
/// value at the writer's current position.
void WriteRunReport(JsonWriter& writer, const RunReport& report);

/// \brief The complete patterns-result document, trailing newline
/// included. \p patterns is rendered in its current order (callers sort
/// first; both surfaces use PatternSet::SortBySupport).
std::string PatternsResultToJson(const RunReport& report,
                                 const PatternSet& patterns,
                                 const EventDictionary& dict);

/// \brief The complete rules-result document (forward or backward rules —
/// report.task tells them apart).
std::string RulesResultToJson(const RunReport& report, const RuleSet& rules,
                              const EventDictionary& dict);

/// \brief The complete two-event (Perracotta) result document.
std::string TwoEventResultToJson(const RunReport& report,
                                 const std::vector<TwoEventRule>& pairs,
                                 const EventDictionary& dict);

}  // namespace specmine

#endif  // SPECMINE_ENGINE_JSON_RESULTS_H_
