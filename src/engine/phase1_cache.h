// The phase-1 candidate cache: per-shard scan results persisted beside a
// .smdbset manifest so that mining after an append re-scans only the new
// shards (docs/smdb_format.md, "Phase-1 candidate cache").
//
// A cache entry records one shard's phase-1 candidate set — the patterns
// (in merged EventIds) the shard-local DFS at a frozen local threshold
// emitted, with their exact local supports. The entry is keyed by
//
//   * the shard's content digest (XXH64 over the entire .smdb file bytes —
//     any bit of the file changing invalidates the entry, including payload
//     bits a kHeader-integrity open would not itself verify);
//   * a digest of the shard's merged-id remap (appends can extend the
//     merged dictionary; existing ids never change, but the remap identity
//     is what makes the recorded merged ids meaningful);
//   * an options fingerprint covering everything that shapes a phase-1
//     scan: the global min_support, max_length, and the cache format
//     version. Changing the threshold or scan options misses the cache.
//
// Scans run *with* the cross-shard subtree prune (the occurrence-cap bound
// is what keeps low local thresholds tractable), which makes an entry's
// omissions relative to the corpus it was scanned against. Two extra
// fields make reuse after an append sound:
//
//   * epoch_digests — the content digests of every shard present at scan
//     time. An entry is reusable only in a corpus that still contains all
//     of them (append-only evolution); anything else is a miss.
//   * margins — for each merged event appearing in any pruned subtree
//     root, the minimum over those roots of (min_support - upper_bound):
//     how many additional instances the closest pruned pattern would have
//     needed to reach the global threshold. A pruned pattern (and every
//     descendant) gains at most min over its events of the occurrences
//     that post-epoch shards add, so the entry stays sound while every
//     margined event's added occurrences stay strictly below its margin.
//     An empty margins list means the scan never pruned: the entry is a
//     complete scan at its threshold and is reusable under any append.
//
// Soundness contract (see shard_exec.cc for the mining-side half):
//   * entries hold clean scans only — a cancelled or failed scan is never
//     persisted;
//   * each entry's frozen threshold t satisfies the budget invariant
//     sum over all entries of (t - 1) <= min_support - 1, which is what
//     the pigeonhole completeness argument needs across append epochs.
//
// The cache file is a pure accelerator: a missing, torn, or corrupt file
// loads as empty and mining falls back to full scans with identical
// output. Saving rewrites the whole file atomically with only the entries
// for shards that currently exist, so entries for deleted or rewritten
// shards are garbage-collected on the next save.

#ifndef SPECMINE_ENGINE_PHASE1_CACHE_H_
#define SPECMINE_ENGINE_PHASE1_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/patterns/pattern_set.h"
#include "src/support/status.h"
#include "src/trace/event_dictionary.h"

namespace specmine {

/// \brief Prune evidence for one merged event: the smallest distance to
/// the global threshold over every pruned subtree root containing it.
struct Phase1PruneMargin {
  EventId event = 0;    ///< Merged event id.
  uint64_t margin = 1;  ///< min over pruned roots of (S - upper_bound).
};

/// \brief One shard's persisted phase-1 scan.
struct Phase1CacheEntry {
  /// XXH64 over the shard's entire .smdb file bytes.
  uint64_t shard_digest = 0;
  /// XXH64 over the shard's local-to-merged remap vector.
  uint64_t remap_digest = 0;
  /// Phase1OptionsFingerprint() of the producing run.
  uint64_t options_fingerprint = 0;
  /// The frozen local threshold the scan ran at (>= 1). Reusing the entry
  /// consumes (threshold - 1) of the global pigeonhole budget.
  uint64_t threshold = 1;
  /// Content digests of every shard in the corpus the scan ran against.
  /// Reuse requires all of them to still be present.
  std::vector<uint64_t> epoch_digests;
  /// Sparse per-event prune margins, ascending by event id. Empty means
  /// the scan never pruned (complete at `threshold`).
  std::vector<Phase1PruneMargin> margins;
  /// The candidate set: merged EventIds with exact local supports, in the
  /// shard DFS emission order.
  std::vector<MinedPattern> patterns;
};

/// \brief An in-memory phase-1 cache (the parsed .p1c file).
struct Phase1Cache {
  std::vector<Phase1CacheEntry> entries;

  /// \brief The entry matching all three key digests, or nullptr.
  const Phase1CacheEntry* Find(uint64_t shard_digest, uint64_t remap_digest,
                               uint64_t options_fingerprint) const;
};

/// \brief Where the cache for \p manifest_path lives: `<manifest>.p1c`,
/// beside the manifest so it travels (and is deleted) with the set.
std::string Phase1CachePath(const std::string& manifest_path);

/// \brief Fingerprint of every option that shapes a phase-1 scan. Bump the
/// internal format version whenever scan semantics or the file layout
/// change — old files then miss cleanly.
uint64_t Phase1OptionsFingerprint(uint64_t min_support, uint64_t max_length);

/// \brief XXH64 over a shard's local-to-merged remap vector.
uint64_t RemapDigest(const std::vector<EventId>& remap);

/// \brief Parses the cache file at \p path. A missing file is NotFound; a
/// file that fails any structural or checksum test is Corrupt. Callers
/// treat every failure as an empty cache — the file is an accelerator,
/// never a source of truth.
Result<Phase1Cache> LoadPhase1Cache(const std::string& path);

/// \brief Atomically rewrites the cache file at \p path with exactly
/// \p cache's entries. Fault-injection site: "phase1_cache.save".
Status SavePhase1Cache(const std::string& path, const Phase1Cache& cache);

}  // namespace specmine

#endif  // SPECMINE_ENGINE_PHASE1_CACHE_H_
