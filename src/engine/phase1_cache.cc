#include "src/engine/phase1_cache.h"

#include <cstring>
#include <fstream>
#include <iterator>
#include <ostream>

#include "src/support/fault_injection.h"
#include "src/trace/format_util.h"

namespace specmine {

namespace {

// File layout (little-endian by fiat, like the .smdb/.smdbset formats):
//
//   [ 0,  8)  magic "SMP1\r\n\x1a\n"
//   [ 8, 12)  format version (u32) = 2
//   [12, 16)  reserved (u32) = 0
//   [16, 24)  entry count (u64)
//   [24, 32)  XXH64 over everything from offset 32 to EOF
//   [32, ...) entries, each:
//       shard_digest u64 | remap_digest u64 | options_fingerprint u64 |
//       threshold u64 |
//       epoch count u64 | epoch x shard digest (u64) |
//       margin count u64 | margins, each: event u32 | margin u64 |
//       pattern count u64 | patterns, each:
//           support u64 | length u32 | length x EventId (u32)
//
// The whole-file payload digest (not per-entry) keeps the reader simple:
// the file is either wholly trusted or wholly ignored.
constexpr char kMagic[8] = {'S', 'M', 'P', '1', '\r', '\n', '\x1a', '\n'};
constexpr uint32_t kFormatVersion = 2;
constexpr size_t kHeaderBytes = 32;
constexpr size_t kPayloadDigestOffset = 24;

// Caps keep a corrupt count field from turning into a giant allocation
// before the bounds checks below would catch it.
constexpr uint64_t kMaxEntries = uint64_t{1} << 20;
constexpr uint64_t kMaxEpochShards = uint64_t{1} << 20;
constexpr uint64_t kMaxMargins = uint64_t{1} << 24;
constexpr uint64_t kMaxPatterns = uint64_t{1} << 32;
constexpr uint64_t kMaxPatternLength = uint64_t{1} << 20;

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::ParseError("corrupt phase-1 cache " + path + ": " + what);
}

// Bounds-checked little-endian cursor over the loaded file bytes.
struct Cursor {
  const char* p;
  const char* end;

  bool Read(void* out, size_t n) {
    if (static_cast<size_t>(end - p) < n) return false;
    std::memcpy(out, p, n);
    p += n;
    return true;
  }
  bool ReadU64(uint64_t* out) { return Read(out, 8); }
  bool ReadU32(uint32_t* out) { return Read(out, 4); }
};

template <typename T>
void Put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

}  // namespace

const Phase1CacheEntry* Phase1Cache::Find(uint64_t shard_digest,
                                          uint64_t remap_digest,
                                          uint64_t options_fingerprint) const {
  for (const Phase1CacheEntry& entry : entries) {
    if (entry.shard_digest == shard_digest &&
        entry.remap_digest == remap_digest &&
        entry.options_fingerprint == options_fingerprint) {
      return &entry;
    }
  }
  return nullptr;
}

std::string Phase1CachePath(const std::string& manifest_path) {
  return manifest_path + ".p1c";
}

uint64_t Phase1OptionsFingerprint(uint64_t min_support, uint64_t max_length) {
  // Any scan-shaping option must feed this digest; the format version is
  // folded in so a layout bump invalidates every old file.
  const uint64_t words[3] = {min_support, max_length, kFormatVersion};
  return format_util::XXH64(words, sizeof(words), /*seed=*/0x70316361);
}

uint64_t RemapDigest(const std::vector<EventId>& remap) {
  return format_util::XXH64(remap.data(), remap.size() * sizeof(EventId));
}

Result<Phase1Cache> LoadPhase1Cache(const std::string& path) {
  SPECMINE_RETURN_NOT_OK(format_util::CheckLittleEndianHost(".p1c"));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no phase-1 cache at " + path);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IOError("cannot read phase-1 cache: " + path);
  }
  if (bytes.size() < kHeaderBytes) {
    return Corrupt(path, "smaller than the 32-byte header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, 4);
  if (version != kFormatVersion) {
    return Corrupt(path, "unsupported version " + std::to_string(version));
  }
  uint64_t num_entries = 0;
  std::memcpy(&num_entries, bytes.data() + 16, 8);
  if (num_entries > kMaxEntries) {
    return Corrupt(path, "implausible entry count");
  }
  uint64_t stored_digest = 0;
  std::memcpy(&stored_digest, bytes.data() + kPayloadDigestOffset, 8);
  if (format_util::XXH64(bytes.data() + kHeaderBytes,
                         bytes.size() - kHeaderBytes) != stored_digest) {
    return Corrupt(path, "payload checksum mismatch");
  }

  Phase1Cache cache;
  cache.entries.reserve(static_cast<size_t>(num_entries));
  Cursor cur{bytes.data() + kHeaderBytes, bytes.data() + bytes.size()};
  std::vector<EventId> ids;
  for (uint64_t e = 0; e < num_entries; ++e) {
    Phase1CacheEntry entry;
    uint64_t num_patterns = 0;
    if (!cur.ReadU64(&entry.shard_digest) ||
        !cur.ReadU64(&entry.remap_digest) ||
        !cur.ReadU64(&entry.options_fingerprint) ||
        !cur.ReadU64(&entry.threshold)) {
      return Corrupt(path, "truncated entry header");
    }
    if (entry.threshold == 0) return Corrupt(path, "zero threshold");
    uint64_t num_epoch = 0;
    if (!cur.ReadU64(&num_epoch) || num_epoch > kMaxEpochShards) {
      return Corrupt(path, "implausible epoch shard count");
    }
    entry.epoch_digests.resize(static_cast<size_t>(num_epoch));
    if (!cur.Read(entry.epoch_digests.data(), size_t{8} * num_epoch)) {
      return Corrupt(path, "truncated epoch digests");
    }
    uint64_t num_margins = 0;
    if (!cur.ReadU64(&num_margins) || num_margins > kMaxMargins) {
      return Corrupt(path, "implausible margin count");
    }
    entry.margins.reserve(static_cast<size_t>(num_margins));
    for (uint64_t m = 0; m < num_margins; ++m) {
      Phase1PruneMargin margin;
      if (!cur.ReadU32(&margin.event) || !cur.ReadU64(&margin.margin)) {
        return Corrupt(path, "truncated margin");
      }
      // A pruned node's upper bound is strictly below the global support,
      // so a recorded margin of zero cannot have come from this writer.
      if (margin.margin == 0) return Corrupt(path, "zero prune margin");
      entry.margins.push_back(margin);
    }
    if (!cur.ReadU64(&num_patterns)) {
      return Corrupt(path, "truncated pattern count");
    }
    if (num_patterns > kMaxPatterns) {
      return Corrupt(path, "implausible pattern count");
    }
    entry.patterns.reserve(static_cast<size_t>(num_patterns));
    for (uint64_t k = 0; k < num_patterns; ++k) {
      uint64_t support = 0;
      uint32_t length = 0;
      if (!cur.ReadU64(&support) || !cur.ReadU32(&length)) {
        return Corrupt(path, "truncated pattern header");
      }
      if (length == 0 || length > kMaxPatternLength) {
        return Corrupt(path, "implausible pattern length");
      }
      ids.resize(length);
      if (!cur.Read(ids.data(), size_t{length} * sizeof(EventId))) {
        return Corrupt(path, "truncated pattern events");
      }
      entry.patterns.push_back(MinedPattern{Pattern(ids), support});
    }
    cache.entries.push_back(std::move(entry));
  }
  if (cur.p != cur.end) return Corrupt(path, "trailing bytes after entries");
  return cache;
}

Status SavePhase1Cache(const std::string& path, const Phase1Cache& cache) {
  SPECMINE_RETURN_NOT_OK(format_util::CheckLittleEndianHost(".p1c"));
  SPECMINE_RETURN_NOT_OK(CheckFault("phase1_cache.save"));

  // Serialize the payload first: the header's digest covers it.
  std::string payload;
  auto put = [&payload](const void* data, size_t n) {
    payload.append(static_cast<const char*>(data), n);
  };
  auto put64 = [&](uint64_t v) { put(&v, 8); };
  auto put32 = [&](uint32_t v) { put(&v, 4); };
  for (const Phase1CacheEntry& entry : cache.entries) {
    put64(entry.shard_digest);
    put64(entry.remap_digest);
    put64(entry.options_fingerprint);
    put64(entry.threshold);
    put64(entry.epoch_digests.size());
    put(entry.epoch_digests.data(), entry.epoch_digests.size() * 8);
    put64(entry.margins.size());
    for (const Phase1PruneMargin& margin : entry.margins) {
      put32(margin.event);
      put64(margin.margin);
    }
    put64(entry.patterns.size());
    for (const MinedPattern& item : entry.patterns) {
      put64(item.support);
      put32(static_cast<uint32_t>(item.pattern.size()));
      put(item.pattern.events().data(),
          item.pattern.size() * sizeof(EventId));
    }
  }
  const uint64_t digest = format_util::XXH64(payload.data(), payload.size());

  return format_util::AtomicWriteFile(path, [&](std::ostream& out) {
    out.write(kMagic, sizeof(kMagic));
    Put<uint32_t>(out, kFormatVersion);
    Put<uint32_t>(out, 0);  // reserved
    Put<uint64_t>(out, cache.entries.size());
    Put<uint64_t>(out, digest);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) return Status::IOError("stream error writing phase-1 cache");
    return Status::OK();
  });
}

}  // namespace specmine
