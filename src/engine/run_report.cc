#include "src/engine/run_report.h"

#include <sstream>

namespace specmine {

std::string RunReport::ToString() const {
  std::ostringstream os;
  os << "task=" << task;
  if (patterns_emitted != 0) os << " patterns=" << patterns_emitted;
  if (rules_emitted != 0) os << " rules=" << rules_emitted;
  if (nodes_visited != 0) os << " nodes=" << nodes_visited;
  if (premises_enumerated != 0) os << " premises=" << premises_enumerated;
  if (candidate_rules != 0) os << " candidates=" << candidate_rules;
  if (subtrees_pruned != 0) os << " pruned=" << subtrees_pruned;
  if (truncated) os << " truncated";
  if (!backend.empty()) os << " backend=" << backend;
  if (shards_total != 0) {
    os << " shards=" << shards_total;
    if (shards_quarantined != 0) {
      os << " quarantined=" << shards_quarantined;
    }
    if (shards_cached != 0) {
      os << " scanned=" << shards_scanned << " cached=" << shards_cached;
    }
  }
  os << " index=" << index_build_seconds << "s mine=" << mine_seconds << "s";
  return os.str();
}

}  // namespace specmine
