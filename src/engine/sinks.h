// Composable output sinks for Engine tasks, replacing the per-miner
// std::function callbacks. A sink receives each mined item in the miner's
// canonical emission order; returning false asks the producer to stop (for
// the streaming full-pattern scan this prunes the current subtree, exactly
// like the legacy callback contract; for materialized miners it stops
// delivery and the RunReport is marked truncated).
//
// Sinks compose by wrapping (TeePatternSink{collector, writer}) and are
// deliberately allocation-light so a server loop can stack them per
// request.

#ifndef SPECMINE_ENGINE_SINKS_H_
#define SPECMINE_ENGINE_SINKS_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/patterns/pattern_set.h"
#include "src/rulemine/rule.h"
#include "src/twoevent/perracotta.h"

namespace specmine {

// ---------------------------------------------------------------------------
// Interfaces.

/// \brief Receiver of mined (pattern, support) items.
class PatternSink {
 public:
  virtual ~PatternSink() = default;
  /// \brief Called once per emitted pattern. Return false to stop the
  /// producer (subtree prune in streaming scans, delivery stop otherwise).
  virtual bool Consume(const Pattern& pattern, uint64_t support) = 0;
};

/// \brief Receiver of mined rules.
class RuleSink {
 public:
  virtual ~RuleSink() = default;
  /// \brief Called once per emitted rule. Return false to stop delivery.
  virtual bool Consume(const Rule& rule) = 0;
};

/// \brief Receiver of mined two-event (Perracotta) rules.
class TwoEventSink {
 public:
  virtual ~TwoEventSink() = default;
  /// \brief Called once per emitted rule. Return false to stop delivery.
  virtual bool Consume(const TwoEventRule& rule) = 0;
};

// ---------------------------------------------------------------------------
// Pattern sinks.

/// \brief Collects everything into a PatternSet (the legacy return shape).
class CollectingPatternSink : public PatternSink {
 public:
  bool Consume(const Pattern& pattern, uint64_t support) override {
    set_.Add(pattern, support);
    return true;
  }
  /// \brief The patterns collected so far, in emission order.
  const PatternSet& set() const { return set_; }
  /// \brief Moves the collected set out (the sink is left empty).
  PatternSet TakeSet() { return std::move(set_); }

 private:
  PatternSet set_;
};

/// \brief Counts emissions (and tracks the best support) without storing
/// patterns — the cheapest way to size a result before paying for it.
class CountingPatternSink : public PatternSink {
 public:
  bool Consume(const Pattern& pattern, uint64_t support) override;
  size_t count() const { return count_; }
  uint64_t max_support() const { return max_support_; }
  size_t longest_length() const { return longest_length_; }

 private:
  size_t count_ = 0;
  uint64_t max_support_ = 0;
  size_t longest_length_ = 0;
};

/// \brief Keeps only the k best patterns by (support desc, pattern lex
/// asc) — the canonical report order — in O(k) memory.
class TopKPatternSink : public PatternSink {
 public:
  explicit TopKPatternSink(size_t k) : k_(k) {}

  bool Consume(const Pattern& pattern, uint64_t support) override;

  /// \brief The k (or fewer) best patterns, best first.
  PatternSet TakeSorted();

 private:
  void Shrink(size_t limit);

  size_t k_;
  std::vector<MinedPattern> buffer_;
};

/// \brief Streams "pattern  sup=N" lines (PatternSet::ToString's line
/// format) to an ostream as they are mined — no buffering.
class WriterPatternSink : public PatternSink {
 public:
  WriterPatternSink(std::ostream& out, const EventDictionary& dict)
      : out_(out), dict_(dict) {}

  bool Consume(const Pattern& pattern, uint64_t support) override;

 private:
  std::ostream& out_;
  const EventDictionary& dict_;
};

/// \brief Forwards to two sinks; asks to stop once either does.
class TeePatternSink : public PatternSink {
 public:
  TeePatternSink(PatternSink& first, PatternSink& second)
      : first_(first), second_(second) {}

  bool Consume(const Pattern& pattern, uint64_t support) override {
    const bool keep_first = first_.Consume(pattern, support);
    const bool keep_second = second_.Consume(pattern, support);
    return keep_first && keep_second;
  }

 private:
  PatternSink& first_;
  PatternSink& second_;
};

// ---------------------------------------------------------------------------
// Rule sinks.

/// \brief Collects everything into a RuleSet (the legacy return shape).
class CollectingRuleSink : public RuleSink {
 public:
  bool Consume(const Rule& rule) override {
    set_.Add(rule);
    return true;
  }
  /// \brief The rules collected so far, in emission order.
  const RuleSet& set() const { return set_; }
  /// \brief Moves the collected set out (the sink is left empty).
  RuleSet TakeSet() { return std::move(set_); }

 private:
  RuleSet set_;
};

/// \brief Counts emissions without storing rules.
class CountingRuleSink : public RuleSink {
 public:
  bool Consume(const Rule& rule) override;
  size_t count() const { return count_; }
  /// Highest confidence seen (0 when empty).
  double best_confidence() const { return best_confidence_; }

 private:
  size_t count_ = 0;
  double best_confidence_ = 0.0;
};

/// \brief Keeps only the k best rules by the canonical quality order
/// (confidence desc, s-support desc, concatenation lex) in O(k) memory.
class TopKRuleSink : public RuleSink {
 public:
  explicit TopKRuleSink(size_t k) : k_(k) {}

  bool Consume(const Rule& rule) override;

  /// \brief The k (or fewer) best rules, best first.
  RuleSet TakeSorted();

 private:
  void Shrink(size_t limit);

  size_t k_;
  std::vector<Rule> buffer_;
};

/// \brief Streams Rule::ToString lines to an ostream as rules are mined.
class WriterRuleSink : public RuleSink {
 public:
  WriterRuleSink(std::ostream& out, const EventDictionary& dict)
      : out_(out), dict_(dict) {}

  bool Consume(const Rule& rule) override;

 private:
  std::ostream& out_;
  const EventDictionary& dict_;
};

/// \brief Forwards to two rule sinks; asks to stop once either does.
class TeeRuleSink : public RuleSink {
 public:
  TeeRuleSink(RuleSink& first, RuleSink& second)
      : first_(first), second_(second) {}

  bool Consume(const Rule& rule) override {
    const bool keep_first = first_.Consume(rule);
    const bool keep_second = second_.Consume(rule);
    return keep_first && keep_second;
  }

 private:
  RuleSink& first_;
  RuleSink& second_;
};

// ---------------------------------------------------------------------------
// Two-event sinks.

/// \brief Collects two-event rules into a vector.
class CollectingTwoEventSink : public TwoEventSink {
 public:
  bool Consume(const TwoEventRule& rule) override {
    rules_.push_back(rule);
    return true;
  }
  /// \brief The rules collected so far, in emission order.
  const std::vector<TwoEventRule>& rules() const { return rules_; }
  /// \brief Moves the collected rules out (the sink is left empty).
  std::vector<TwoEventRule> TakeRules() { return std::move(rules_); }

 private:
  std::vector<TwoEventRule> rules_;
};

}  // namespace specmine

#endif  // SPECMINE_ENGINE_SINKS_H_
