// The sharded execution path: two-phase partition mining of the full
// frequent-iterative-pattern set over a ShardedDatabase, byte-identical to
// the single-database pass (docs/architecture.md, "Sharded execution").
//
// Phase 1 mines every shard independently — in parallel on the session's
// ThreadPool — at the proportional local threshold
//
//     t_i = max(1, ceil(S * events_i / events_total))
//
// with an additional cross-shard subtree prune: every instance of P in
// shard j starts at a distinct occurrence of P's first event and contains
// every event of P, so count_j(P) <= min over P's events of their
// occurrence counts in j. A node whose local count plus that cap summed
// over the other shards cannot reach the global S has no globally
// frequent descendant (counts only fall, alphabets only grow down the
// subtree) and is skipped. Completeness: by the partition (pigeonhole)
// argument some shard i0 has count_i0(P) >= t_i0 for any globally
// frequent P, and in that shard the cross-shard bound also clears S —
// for P and, by monotonicity, every prefix — so shard i0's miner records
// P; the union over shards is a complete candidate set. For modular
// corpora with (near-)disjoint shard alphabets the cross term is ~0 and
// each shard effectively mines at the full global threshold.
//
// Phase 2 completes the support counts: for every (candidate, shard)
// pair the local miner did not report, the occurrence cap is consulted
// first (zero — some candidate event absent from the shard — costs
// nothing, and a candidate provably below S is dropped unscanned); only
// the remaining pairs are recounted exactly with the QRE oracle. Phase 3
// filters by the global threshold and sorts lexicographically by merged
// EventIds, which *is* the single-pass DFS preorder — so emission order,
// content and supports all match the unsharded miner exactly
// (property-tested in tests/shard_engine_test.cc).

#ifndef SPECMINE_ENGINE_SHARD_EXEC_H_
#define SPECMINE_ENGINE_SHARD_EXEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/engine/phase1_cache.h"
#include "src/itermine/full_miner.h"
#include "src/patterns/pattern_set.h"
#include "src/trace/position_index.h"
#include "src/trace/shard_set.h"

namespace specmine {

class ThreadPool;

/// \brief How one shard's phase-1 candidates were obtained.
struct ShardScanStat {
  bool cached = false;          ///< Served from the phase-1 cache.
  uint64_t threshold = 0;       ///< Local threshold (frozen for hits).
  size_t nodes_visited = 0;     ///< Phase-1 DFS nodes (0 for cache hits).
  size_t local_patterns = 0;    ///< Candidates this shard contributed.
};

/// \brief Statistics of one sharded full-pattern run.
struct ShardExecStats {
  size_t nodes_visited = 0;    ///< DFS nodes over all shard miners.
  size_t local_patterns = 0;   ///< Phase-1 emissions over all shards.
  size_t candidates = 0;       ///< Distinct candidate patterns.
  size_t bound_skips = 0;      ///< Phase-2 candidates dropped by the bound.
  size_t recounts = 0;         ///< Phase-2 oracle recounts that scanned.
  size_t shards_scanned = 0;   ///< Shards whose phase-1 DFS actually ran.
  size_t shards_cached = 0;    ///< Shards served from the phase-1 cache.
  /// Per-shard phase-1 provenance, in shard order. The incremental
  /// acceptance test pins "append one shard, re-mine" to exactly one
  /// scanned shard with every old shard at 0 phase-1 nodes.
  std::vector<ShardScanStat> shard_scans;
  double mine_seconds = 0.0;   ///< Wall clock of the three phases.
  /// kCancelled / kDeadlineExceeded when options.cancel stopped the run.
  /// A run stopped during phase 1 or 2 returns an empty set (the empty
  /// prefix); one stopped during phase 3 returns a prefix of the canonical
  /// emission order with exact supports.
  StatusCode stopped = StatusCode::kOk;
  /// First error raised by a pool worker (e.g. an escaped exception).
  Status error = Status::OK();
};

/// \brief Cache wiring for MineShardedFull. With this in play the run
/// reuses loaded entries (skipping those shards' phase-1 DFS entirely) and
/// reports back a fresh entry set covering exactly the current shards.
///
/// Soundness differs from the cache-less path in two deliberate ways, both
/// output-preserving (tests/append_test.cc pins byte-identity):
///
///   * scans keep the cross-shard subtree prune (it is what makes low
///     local thresholds tractable), and each entry carries the evidence
///     that makes its pruned omissions checkable later: the digests of
///     every shard present at scan time plus per-event prune margins —
///     the minimum distance any pruned subtree root had to the global
///     threshold. An entry is reused only if its epoch's shards are all
///     still present and the occurrences added since stay strictly below
///     every margin; otherwise the shard is rescanned. The prune only
///     ever removes patterns whose global support is provably below the
///     threshold, so phases 2/3 erase the difference.
///   * local thresholds come from a frozen budget split rather than the
///     proportional ceiling: completeness needs only
///     sum over shards of (t_i - 1) <= min_support - 1 (pigeonhole).
///     Reused entries consume their stored (t - 1); scanned shards split
///     the leftover proportionally by event weight. The invariant holds
///     inductively across append epochs, so entries written generations
///     ago stay sound. When accumulated entries would squeeze a scanned
///     shard below half its proportional threshold, every hit is dropped
///     and the whole set rescans — a self-healing reset of the split.
struct ShardCacheIO {
  /// Entries loaded from disk to consult; may be null or empty.
  const Phase1Cache* loaded = nullptr;
  /// Out: entries for the current shards (reused + freshly scanned),
  /// ready for SavePhase1Cache. Filled only on a clean, unstopped run.
  Phase1Cache* updated = nullptr;
  /// Per-shard content digests (MappedDatabase::ComputeContentDigest),
  /// one per shard of the set, in shard order. Size mismatch disables
  /// caching for the run.
  std::vector<uint64_t> shard_digests;
};

/// \brief Mines the full frequent iterative pattern set of \p set with the
/// two-phase partition scheme.
///
/// \p backends must hold one counting backend per shard, in shard order
/// (each indexing that shard's database; kinds may differ per shard — the
/// adaptive chooser picks per shard density). Phase-1 scans and phase-2
/// recounts both run on the shard's backend; output is byte-identical for
/// every backend mix. \p options.min_support is the *global* absolute
/// threshold; \p options.max_length is honored; \p options.max_patterns is
/// ignored here (the caller cuts delivery — the sorted order makes the
/// prefix identical to single-pass truncation); \p options.num_threads
/// sizes the shard fan-out (through \p pool when it matches, exactly like
/// the in-shard miners).
///
/// Returns the patterns in merged EventIds with exact global supports, in
/// the single-pass emission order.
/// When \p cache is non-null, phase 1 consults and refreshes the phase-1
/// candidate cache as described on ShardCacheIO; output stays
/// byte-identical to the cache-less run.
PatternSet MineShardedFull(const ShardedDatabase& set,
                           const std::vector<CountingBackend>& backends,
                           const IterMinerOptions& options,
                           ShardExecStats* stats = nullptr,
                           ThreadPool* pool = nullptr,
                           ShardCacheIO* cache = nullptr);

}  // namespace specmine

#endif  // SPECMINE_ENGINE_SHARD_EXEC_H_
