// specmine::Engine — the unified session API over every miner in the
// library (the LogBase-style server seam: one long-lived handle per
// immutable trace database).
//
// An Engine owns a SequenceDatabase and lazily builds — then caches — the
// PositionIndex and a shared worker pool, so a session running many tasks
// (a multi-scenario request stream) pays for index construction and thread
// spawns once instead of per call. Every miner is exposed as a uniform
// task object:
//
//     Result<Engine> engine = Engine::FromTextTraceFile("traces.txt");
//     if (!engine.ok()) return engine.status();
//     CollectingPatternSink patterns;
//     Result<RunReport> report =
//         engine->Mine(ClosedTask{{.min_support = 10}}, patterns);
//
// Failures are values: invalid options, an empty database, and
// uint32-offset overflow all return Status instead of aborting or mining
// garbage. Emission order and content are byte-identical to the legacy
// per-miner free functions (which remain as thin deprecated wrappers).
//
// Thread-safety: Mine is safe to call concurrently from multiple threads
// on one Engine (the specmined server shares one session per corpus
// across its connection threads). The lazily built caches — CSR/bitmap
// index, per-shard indexes, unit view — are constructed under a mutex, so
// N requests racing into a cold corpus pay for exactly one build
// (index_builds() == 1; the concurrent hammer test pins this down), and
// every cache is immutable once published. Worker pools are handed out as
// exclusive leases: concurrent multi-threaded tasks each get their own
// pool (idle pools are cached and reused), because a ThreadPool fan-out
// requires the pool to itself be otherwise idle.

#ifndef SPECMINE_ENGINE_ENGINE_H_
#define SPECMINE_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/engine/run_report.h"
#include "src/engine/sinks.h"
#include "src/engine/tasks.h"
#include "src/itermine/counting_backend.h"
#include "src/itermine/merged_index.h"
#include "src/seqmine/prefixspan.h"
#include "src/support/status.h"
#include "src/support/thread_pool.h"
#include "src/trace/binary_format.h"
#include "src/trace/csv_trace_reader.h"
#include "src/trace/position_index.h"
#include "src/trace/sequence_database.h"
#include "src/trace/shard_set.h"

namespace specmine {

/// \brief A mining session over one immutable trace database.
class Engine {
 public:
  /// \brief Wraps \p db. Prefer the checked factories below: they reject
  /// databases the index layout cannot address up front; with this
  /// constructor the same check happens (as an error) on first Mine.
  explicit Engine(SequenceDatabase db)
      : db_(std::make_unique<SequenceDatabase>(std::move(db))) {}

  /// \brief Checked wrap: verifies the index's uint32 offset layout can
  /// address \p db.
  static Result<Engine> Create(SequenceDatabase db);

  /// \brief Loads plain-text traces from \p path into a new session.
  static Result<Engine> FromTextTraceFile(const std::string& path);

  /// \brief Loads CSV instrumentation traces from \p path.
  static Result<Engine> FromCsvTraceFile(const std::string& path,
                                         const CsvTraceOptions& options);

  /// \brief Opens a packed .smdb database (see binary_format.h) as a
  /// zero-copy mmap session: the event arena is range-checked with one
  /// sequential read but never copied, so resident memory stays
  /// O(dictionary) and databases larger than RAM page in on demand.
  static Result<Engine> FromBinaryFile(const std::string& path);

  /// \brief Same, with an explicit integrity mode (header-only by
  /// default; IntegrityMode::kFull re-hashes every section against the
  /// stored checksums before the session is handed out).
  static Result<Engine> FromBinaryFile(const std::string& path,
                                       const SmdbOpenOptions& options);

  /// \brief Opens a sharded corpus from its .smdbset manifest (see
  /// shard_set.h): every shard is mmap'ed and validated, and the shard
  /// structure is kept for MineSharded. The merged (remapped,
  /// concatenated) arena is NOT materialized: regular tasks under the
  /// default/auto backend run on the lazy merged backend
  /// (MergedCountingIndex, merged_index.h), which answers merged-view
  /// queries straight over the per-shard indexes. Contract table:
  ///
  ///   task / accessor            | merged arena materialized?
  ///   ---------------------------|----------------------------------------
  ///   Mine (auto backend)        | never — lazy merged backend
  ///   MineSharded                | never — per-shard execution
  ///   dictionary(), counts       | never — manifest metadata
  ///   Mine (explicit csr/bitmap/ | yes, on first use (the documented
  ///     hybrid), rules, seq-     | escape hatch: these need a physical
  ///     uential, episodes, two-  | index or arena over the merged view)
  ///     event, database(), Save- |
  ///     Binary                   |
  ///
  /// Either way every task mines byte-identically to the equivalent
  /// single .smdb — the lazy-merged-vs-eager arm of
  /// tests/backend_equivalence_test.cc pins this, quarantined sets
  /// included.
  static Result<Engine> FromShardSet(const std::string& path);

  /// \brief Same, with an explicit integrity mode and shard failure
  /// policy. Under ShardFailurePolicy::kQuarantine a shard that fails to
  /// open or validate is recorded (shard_set().open_report()) and the
  /// session mines the healthy subset: the merged database holds only
  /// healthy shards, so fractional support thresholds rescale to the
  /// surviving trace count automatically; every MineSharded report carries
  /// shards_total / shards_quarantined / shard_errors.
  static Result<Engine> FromShardSet(const std::string& path,
                                     const SetOpenOptions& options);

  /// \brief Writes the session's database as a .smdb file at \p path
  /// (materializes the merged arena on a lazy sharded session).
  Status SaveBinary(const std::string& path) const {
    return WriteBinaryDatabaseFile(database(), path);
  }

  /// \brief True iff this session mines straight out of an mmap'ed .smdb
  /// file (FromBinaryFile) rather than an in-memory arena.
  bool memory_mapped() const { return mapping_ != nullptr; }

  /// \brief True iff this session was opened from a .smdbset manifest
  /// (FromShardSet) and so also carries the per-shard structure.
  bool sharded() const { return shard_set_ != nullptr; }

  /// \brief The open shard set; only valid when sharded().
  const ShardedDatabase& shard_set() const { return *shard_set_; }

  /// \brief The wrapped database (immutable once published). On a lazy
  /// sharded session this materializes the merged arena on first call —
  /// prefer dictionary() / num_sequences() / total_events() when the
  /// metadata is all that is needed.
  const SequenceDatabase& database() const;

  /// \brief The session's event dictionary, without materializing the
  /// merged arena (the shard manifest already carries the merged
  /// dictionary).
  const EventDictionary& dictionary() const {
    return shard_set_ != nullptr ? shard_set_->dictionary()
                                 : db_->dictionary();
  }

  /// \brief Number of sequences, without materializing the merged arena.
  size_t num_sequences() const {
    return shard_set_ != nullptr ? shard_set_->TotalSequences() : db_->size();
  }

  /// \brief Total events, without materializing the merged arena.
  size_t total_events() const {
    return shard_set_ != nullptr ? shard_set_->TotalEvents()
                                 : db_->TotalEvents();
  }

  /// \brief Converts a fraction-of-sequences threshold to an absolute one
  /// (at least 1) — the paper reports thresholds as fractions.
  uint64_t AbsoluteSupport(double fraction) const;

  // -------------------------------------------------------------------------
  // Tasks. Each validates its options, runs the miner against the cached
  // index / shared pool, streams results into the sink in the legacy
  // emission order, and returns the unified RunReport.
  // report.index_build_seconds is non-zero only for the call that actually
  // built the session's index.

  Result<RunReport> Mine(const FullPatternsTask& task,
                         PatternSink& sink) const;
  Result<RunReport> Mine(const ClosedTask& task, PatternSink& sink) const;
  Result<RunReport> Mine(const GeneratorsTask& task, PatternSink& sink) const;
  Result<RunReport> Mine(const RulesTask& task, RuleSink& sink) const;
  Result<RunReport> Mine(const SequentialTask& task, PatternSink& sink) const;
  Result<RunReport> Mine(const ClosedSequentialTask& task,
                         PatternSink& sink) const;
  Result<RunReport> Mine(const SequentialGeneratorsTask& task,
                         PatternSink& sink) const;
  Result<RunReport> Mine(const EpisodeTask& task, PatternSink& sink) const;
  Result<RunReport> Mine(const TwoEventTask& task, TwoEventSink& sink) const;

  /// \brief The sharded execution path (sessions opened with FromShardSet
  /// only): mines the full-pattern task shard by shard, in parallel on
  /// the session's pool, with the two-phase partition scheme of
  /// shard_exec.h. Output — content, supports, and order — is
  /// byte-identical to Mine(task, sink) on the merged database for any
  /// non-pruning sink; a sink returning false stops delivery here (like
  /// the materialized tasks) instead of pruning a subtree, and
  /// max_patterns cuts delivery at the same pattern the single-pass scan
  /// would have stopped at. Per-shard indexes are built on first use and
  /// cached for the session, mirroring index().
  Result<RunReport> MineSharded(const FullPatternsTask& task,
                                PatternSink& sink) const;

  // -------------------------------------------------------------------------
  // Collecting conveniences: run the task with a collecting sink and
  // return the materialized set (unsorted, i.e. miner emission order).

  template <typename Task>
  Result<PatternSet> CollectPatterns(const Task& task,
                                     RunReport* report = nullptr) const {
    CollectingPatternSink sink;
    Result<RunReport> run = Mine(task, sink);
    if (!run.ok()) return run.status();
    if (report != nullptr) *report = *run;
    return sink.TakeSet();
  }

  Result<RuleSet> CollectRules(const RulesTask& task,
                               RunReport* report = nullptr) const;

  // -------------------------------------------------------------------------
  // Cached infrastructure (exposed for advanced callers and tests).

  /// \brief The session's CSR position index, building it on first use.
  /// The checked factories guarantee this cannot fail; after the unchecked
  /// constructor, prefer Mine (which reports indexability errors as
  /// Status) before touching this. Note the session may instead (or also)
  /// carry a bitmap index — see backend().
  const PositionIndex& index() const;

  /// \brief The session's counting backend for \p choice, building the
  /// physical index on first use (kAuto resolves via ChooseBackendKind;
  /// on a lazy sharded session kAuto yields the lazy merged backend over
  /// the per-shard indexes). Representations cache independently, so a
  /// session mixing explicit csr, bitmap and hybrid tasks builds each at
  /// most once. Like index(), this accessor aborts if the build fails —
  /// which for kAuto / kCsr the checked factories make unreachable, but
  /// an explicit kBitmap request beyond the 1 GB table cap does fail; for
  /// untrusted sizes run a Mine task instead, which reports the same
  /// condition as an OutOfRange Status.
  CountingBackend backend(BackendChoice choice = BackendChoice::kAuto) const;

  /// \brief How many physical index builds (CSR or bitmap) this session
  /// has paid for — at most one per representation, *including* under
  /// concurrent Mine calls racing into a cold session; a single-backend
  /// session stays at 1 however many tasks it runs (the cache assertion
  /// the tests pin down).
  size_t index_builds() const {
    return sync_->index_builds.load(std::memory_order_acquire);
  }

 private:
  // An exclusive lease on a worker pool for one task run. pool() is null
  // when the resolved thread count is 1 (sequential). The destructor
  // returns the pool to the session's idle cache so a sequential request
  // stream still amortizes thread spawns across tasks.
  class PoolLease {
   public:
    PoolLease(PoolLease&&) noexcept = default;
    PoolLease& operator=(PoolLease&&) = delete;
    ~PoolLease();

    ThreadPool* pool() const { return pool_.get(); }

   private:
    friend class Engine;
    PoolLease(const Engine* session, std::unique_ptr<ThreadPool> pool)
        : session_(session), pool_(std::move(pool)) {}

    const Engine* session_;
    std::unique_ptr<ThreadPool> pool_;
  };
  // Lazy sharded sessions only: the private default state (db_ null until
  // a task needs the materialized merged arena).
  Engine() = default;

  // Materializes the merged arena from the shard set if not yet present.
  // Requires cache_mu held. No-op for non-sharded sessions (db_ is always
  // set) and for already-materialized ones. Infallible: FromShardSet
  // validated the merged-view bounds up front.
  void MaterializeLocked() const;

  // Builds (once) and returns the cached CSR index; *build_seconds
  // receives the construction time if this call built it, else 0.
  // Thread-safe: concurrent cold callers serialize on cache_mu_ and all
  // but one observe a cache hit.
  Result<const PositionIndex*> EnsureIndex(double* build_seconds) const;

  // Resolves \p choice and returns a backend over the cached physical
  // index of that kind, building it on first use; *build_seconds receives
  // the construction time if this call built it, else 0. Thread-safe like
  // EnsureIndex.
  Result<CountingBackend> EnsureBackend(BackendChoice choice,
                                        double* build_seconds) const;

  // Leases a pool sized for \p requested_threads (options-style: 0 =
  // hardware concurrency); lease.pool() is nullptr when the resolved
  // count is 1 (sequential). Matching idle pools are reused; concurrent
  // tasks never share a live pool.
  PoolLease LeasePool(size_t requested_threads) const;

  // Returns a leased pool to the idle cache (called by ~PoolLease).
  void ReturnPool(std::unique_ptr<ThreadPool> pool) const;

  // The cached whole-sequence unit view the sequential miners run over,
  // built on first use (one Unit per sequence — O(sequences), cached so a
  // request stream doesn't re-materialize it per call).
  const UnitDatabase& Units() const;

  // Common preamble: task options valid, database non-empty.
  template <typename Task>
  Status Begin(const Task& task) const;

  // The memoized per-shard content digests (the phase-1 cache keys),
  // computed once per session under cache_mu. Sharded sessions only.
  const std::vector<uint64_t>& ShardDigests() const;

  // Fills *backends with one counting backend per shard (kinds resolved
  // per shard — the chooser runs on each shard's own shape), building any
  // missing physical index — one job per shard on \p pool when
  // \p num_threads allows; *build_seconds receives the wall-clock
  // construction time if this call built anything, else 0.
  Status EnsureShardBackends(BackendChoice choice,
                             std::vector<CountingBackend>* backends,
                             double* build_seconds, ThreadPool* pool,
                             size_t num_threads) const;

  // unique_ptr keeps the database (and so the index's back-pointer)
  // address-stable across Engine moves. For FromBinaryFile sessions db_ is
  // a view into mapping_, which must therefore outlive it; for
  // FromShardSet sessions shard_set_ owns the per-shard mappings and db_
  // is the materialized merged database.
  std::unique_ptr<MappedDatabase> mapping_;
  std::unique_ptr<ShardedDatabase> shard_set_;
  // mutable: lazy sharded sessions publish the merged arena on first use
  // by a task that needs it (MaterializeLocked, under cache_mu).
  mutable std::unique_ptr<SequenceDatabase> db_;
  // The mutexes and the build counter live behind one heap allocation
  // because an Engine must stay movable (the factories return by value);
  // mutexes and atomics are not. cache_mu guards every lazy cache build
  // (index_, bitmap_index_, the per-shard index vectors, units_); once a
  // cache is published it is immutable and read without the lock. pool_mu
  // guards the idle pool cache.
  struct Sync {
    std::mutex cache_mu;
    std::mutex pool_mu;
    std::atomic<size_t> index_builds{0};
  };
  mutable std::unique_ptr<Sync> sync_ = std::make_unique<Sync>();
  mutable std::unique_ptr<PositionIndex> index_;
  mutable std::unique_ptr<BitmapIndex> bitmap_index_;
  mutable std::unique_ptr<HybridIndex> hybrid_index_;
  // Per-shard physical indexes; a slot is filled lazily when a sharded
  // task resolves that shard to the corresponding kind.
  mutable std::vector<std::unique_ptr<PositionIndex>> shard_indexes_;
  mutable std::vector<std::unique_ptr<BitmapIndex>> shard_bitmap_indexes_;
  mutable std::vector<std::unique_ptr<HybridIndex>> shard_hybrid_indexes_;
  // The lazy merged backend (kAuto on a sharded session): answers
  // merged-view queries over the cached per-shard indexes, so regular
  // tasks never pay for Merge().
  mutable std::unique_ptr<MergedCountingIndex> merged_index_;
  mutable std::unique_ptr<UnitDatabase> units_;
  // Memoized per-shard content digests (built under cache_mu on the first
  // cache-enabled MineSharded; the shard files are immutable for the
  // session's lifetime).
  mutable std::vector<uint64_t> shard_digests_;
  // Idle worker pools awaiting a LeasePool checkout (any mix of widths).
  mutable std::vector<std::unique_ptr<ThreadPool>> idle_pools_;
};

}  // namespace specmine

#endif  // SPECMINE_ENGINE_ENGINE_H_
