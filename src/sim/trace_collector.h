// AOP-style instrumentation substitute: the paper instruments JBoss AS with
// JBoss-AOP and records method entries while the test suite runs; here the
// simulated components report method entries to a TraceCollector, which
// assembles the SequenceDatabase (substitution #1 in DESIGN.md §4).

#ifndef SPECMINE_SIM_TRACE_COLLECTOR_H_
#define SPECMINE_SIM_TRACE_COLLECTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Collects method-entry events into traces, one trace per test
/// case.
class TraceCollector {
 public:
  TraceCollector() = default;

  /// \brief Starts a new trace (a new test case execution).
  void BeginTrace();

  /// \brief Records entry into \p method ("Class.method") on the current
  /// trace; a trace is started implicitly if none is open.
  void Enter(std::string_view method);

  /// \brief Finishes the current trace; empty traces are dropped.
  void EndTrace();

  /// \brief Number of completed traces.
  size_t NumTraces() const { return builder_.size(); }

  /// \brief The collected database (finishes any open trace).
  SequenceDatabase TakeDatabase();

 private:
  SequenceDatabaseBuilder builder_;
  Sequence current_;
  bool open_ = false;
};

}  // namespace specmine

#endif  // SPECMINE_SIM_TRACE_COLLECTOR_H_
