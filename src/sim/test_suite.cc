#include "src/sim/test_suite.h"

namespace specmine {
namespace sim {

namespace {

size_t RunsForTrace(const TestSuiteOptions& options, Rng* rng) {
  size_t lo = options.min_runs_per_trace;
  size_t hi = options.max_runs_per_trace;
  if (hi < lo) hi = lo;
  return lo + static_cast<size_t>(rng->Uniform(hi - lo + 1));
}

}  // namespace

SequenceDatabase GenerateTransactionTraces(const TestSuiteOptions& options) {
  Rng rng(options.seed);
  TraceCollector collector;
  for (size_t t = 0; t < options.num_traces; ++t) {
    collector.BeginTrace();
    size_t runs = RunsForTrace(options, &rng);
    for (size_t r = 0; r < runs; ++r) {
      RunTransactionScenario(&collector, &rng, options.transaction);
    }
    collector.EndTrace();
  }
  return collector.TakeDatabase();
}

SequenceDatabase GenerateSecurityTraces(const TestSuiteOptions& options) {
  Rng rng(options.seed);
  TraceCollector collector;
  for (size_t t = 0; t < options.num_traces; ++t) {
    collector.BeginTrace();
    size_t runs = RunsForTrace(options, &rng);
    for (size_t r = 0; r < runs; ++r) {
      RunAuthenticationScenario(&collector, &rng, options.security);
    }
    collector.EndTrace();
  }
  return collector.TakeDatabase();
}

}  // namespace sim
}  // namespace specmine
