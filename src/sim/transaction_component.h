// Simulated JBoss transaction component. The classes and methods mirror the
// vocabulary visible in Figure 4 of the paper (the longest iterative
// pattern mined from the JBoss transaction component): connection set-up
// via TransactionManagerLocator, transaction-manager set-up via
// TxManager.begin / XidFactory, transaction set-up on TransactionImpl,
// commit (or rollback) processing, and disposal.
//
// Every method reports its entry to the TraceCollector, imitating the
// JBoss-AOP instrumentation of the case study. The call structure is real:
// TxManager.commit invokes TransactionImpl.commit, which runs the
// before-prepare / end-resources / completion chain, etc., so the emitted
// event order arises from the simulated control flow rather than from a
// hard-coded string list.

#ifndef SPECMINE_SIM_TRANSACTION_COMPONENT_H_
#define SPECMINE_SIM_TRANSACTION_COMPONENT_H_

#include <cstdint>
#include <vector>

#include "src/sim/trace_collector.h"
#include "src/support/random.h"

namespace specmine {
namespace sim {

/// \brief Simulated global transaction id.
class XidImpl {
 public:
  XidImpl(TraceCollector* trace, uint64_t id) : trace_(trace), id_(id) {}

  uint64_t GetTrulyGlobalId();
  uint64_t GetLocalId();
  uint64_t GetLocalIdValue();

 private:
  TraceCollector* trace_;
  uint64_t id_;
};

/// \brief Simulated local transaction id with identity operations.
class LocalId {
 public:
  LocalId(TraceCollector* trace, uint64_t value)
      : trace_(trace), value_(value) {}

  uint64_t HashCode();
  bool Equals(const LocalId& other);

 private:
  TraceCollector* trace_;
  uint64_t value_;
};

/// \brief Simulated Xid factory.
class XidFactory {
 public:
  explicit XidFactory(TraceCollector* trace) : trace_(trace) {}

  XidImpl NewXid();

 private:
  uint64_t GetNextId();

  TraceCollector* trace_;
  uint64_t next_id_ = 1;
};

/// \brief Simulated transaction: set-up, commit / rollback processing.
class TransactionImpl {
 public:
  TransactionImpl(TraceCollector* trace, XidImpl xid)
      : trace_(trace), xid_(xid) {}

  /// Transaction set-up block of Figure 4.
  void AssociateCurrentThread();
  uint64_t GetLocalId();
  uint64_t GetLocalIdValue();
  bool Equals(TransactionImpl* other);

  /// Commit processing block of Figure 4.
  void Commit();
  /// Rollback processing (the abort path of the protocol).
  void Rollback();

  /// Disposal interactions (invoked by TxManager).
  void DisposeChecks();

  bool committed() const { return committed_; }

 private:
  void BeforePrepare();
  void CheckIntegrity();
  void CheckBeforeStatus();
  void EndResources();
  void CompleteTransaction();
  void CancelTimeout();
  void DoAfterCompletion();
  void InstanceDone();

  TraceCollector* trace_;
  XidImpl xid_;
  bool committed_ = false;
};

/// \brief Simulated transaction manager locator (connection set-up).
class TransactionManagerLocator {
 public:
  explicit TransactionManagerLocator(TraceCollector* trace) : trace_(trace) {}

  /// getInstance -> locate -> tryJNDI -> usePrivateAPI, as in Figure 4.
  void GetInstance();

 private:
  void Locate();
  void TryJndi();
  void UsePrivateApi();

  TraceCollector* trace_;
};

/// \brief Simulated transaction manager.
class TxManager {
 public:
  explicit TxManager(TraceCollector* trace) : trace_(trace), factory_(trace) {}

  /// \brief Begins a transaction: TxManager.begin + Xid creation + the
  /// transaction set-up block.
  TransactionImpl Begin();

  /// \brief Commits via the transaction's commit chain.
  void Commit(TransactionImpl* tx);

  /// \brief Rolls back via the transaction's rollback chain.
  void Rollback(TransactionImpl* tx);

  /// \brief Disposes the transaction (release + identity checks).
  void ReleaseTransactionImpl(TransactionImpl* tx);

 private:
  TraceCollector* trace_;
  XidFactory factory_;
};

/// \brief Knobs for one simulated transaction client run.
struct TransactionScenarioOptions {
  /// Probability that a transaction aborts (rollback path).
  double rollback_probability = 0.15;
  /// Probability of an unrelated framework event (logging, caching)
  /// between protocol phases.
  double noise_probability = 0.3;
};

/// \brief Runs one client transaction against the simulated component,
/// appending its events to the collector's current trace. Returns true if
/// the transaction committed.
bool RunTransactionScenario(TraceCollector* trace, Rng* rng,
                            const TransactionScenarioOptions& options);

/// \brief The Figure-4 event sequence (the longest iterative pattern of
/// the paper's transaction case study) as method names — the expected
/// mining result on clean commit runs.
const std::vector<std::string>& Figure4Pattern();

}  // namespace sim
}  // namespace specmine

#endif  // SPECMINE_SIM_TRANSACTION_COMPONENT_H_
