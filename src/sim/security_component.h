// Simulated JBoss security component (JAAS authentication for EJB). The
// vocabulary mirrors Figure 5 of the paper — the recurrent rule mined from
// JBoss-Security:
//
//   premise   : XmlLoginCI.getConfEntry, AuthenInfo.getName
//   consequent: ClientLoginMod.initialize, ClientLoginMod.login,
//               ClientLoginMod.commit, SecAssocActs.setPrincipalInfo,
//               SetPrincipalInfoAction.run, SecAssocActs.pushSubjectCtxt,
//               SubjectThreadLocalStack.push, SimplePrincipal.toString,
//               SecAssoc.getPrincipal, SecAssoc.getCredential,
//               SecAssoc.getPrincipal, SecAssoc.getCredential
//
// i.e. whenever configuration is consulted to locate an authentication
// service, eventually the login module runs, principal information is
// bound to the subject, and principal/credential are used downstream.
// Scenarios include login failures (premise without consequent — the
// confidence dial), repeated authentications per trace (recurrence), and
// unrelated interleaved activity.

#ifndef SPECMINE_SIM_SECURITY_COMPONENT_H_
#define SPECMINE_SIM_SECURITY_COMPONENT_H_

#include <string>
#include <vector>

#include "src/sim/trace_collector.h"
#include "src/support/random.h"

namespace specmine {
namespace sim {

/// \brief Simulated XML login configuration.
class XmlLoginConfig {
 public:
  explicit XmlLoginConfig(TraceCollector* trace) : trace_(trace) {}

  /// \brief Consults configuration for the authentication entry; when the
  /// entry exists its name is read (the Figure-5 premise pair), otherwise
  /// the defaults are applied and the lookup returns empty.
  std::string GetConfEntry(bool entry_present = true);

  /// \brief Direct AuthenInfo.getName access without a configuration
  /// lookup (used by principal-listing style scenarios; this is what makes
  /// the two-event premise a genuine generator).
  std::string GetAuthenInfoName();

 private:
  TraceCollector* trace_;
};

/// \brief Simulated client login module (the JAAS module).
class ClientLoginModule {
 public:
  explicit ClientLoginModule(TraceCollector* trace) : trace_(trace) {}

  void Initialize();
  /// \brief Returns false on authentication failure.
  bool Login(bool will_succeed);
  /// \brief Commits the authentication: binds principal info to the
  /// subject and pushes the subject context.
  void Commit();
  /// \brief Abort path after a failed login.
  void Abort();

 private:
  TraceCollector* trace_;
};

/// \brief Simulated security association (principal/credential storage).
class SecurityAssociation {
 public:
  explicit SecurityAssociation(TraceCollector* trace) : trace_(trace) {}

  void SetPrincipalInfo();
  void PushSubjectContext();
  std::string GetPrincipal();
  std::string GetCredential();

 private:
  TraceCollector* trace_;
};

/// \brief Knobs for one simulated authentication run.
struct SecurityScenarioOptions {
  /// Probability that the login attempt fails (premise occurs, consequent
  /// does not — lowers the mined rule's confidence).
  double login_failure_probability = 0.0;
  /// Probability that the configuration lookup finds no authentication
  /// entry: XmlLoginCI.getConfEntry occurs *without* AuthenInfo.getName or
  /// any authentication. Distinguishes the one-event premise
  /// <getConfEntry> from the Figure-5 premise pair.
  double missing_entry_probability = 0.0;
  /// Probability that the run is a principal-listing scenario touching
  /// AuthenInfo.getName directly, with no configuration lookup and no
  /// authentication. Makes <getConfEntry, getName> a premise generator.
  double direct_name_lookup_probability = 0.0;
  /// Probability of an unrelated framework event between phases.
  double noise_probability = 0.3;
  /// Number of downstream principal/credential uses (Figure 5 shows two
  /// getPrincipal/getCredential pairs).
  size_t downstream_uses = 2;
};

/// \brief Runs one EJB authentication against the simulated component,
/// appending events to the collector's current trace. Returns true iff
/// authentication succeeded.
bool RunAuthenticationScenario(TraceCollector* trace, Rng* rng,
                               const SecurityScenarioOptions& options);

/// \brief The Figure-5 premise event names.
const std::vector<std::string>& Figure5Premise();

/// \brief The Figure-5 consequent event names.
const std::vector<std::string>& Figure5Consequent();

}  // namespace sim
}  // namespace specmine

#endif  // SPECMINE_SIM_SECURITY_COMPONENT_H_
