#include "src/sim/security_component.h"

namespace specmine {
namespace sim {

std::string XmlLoginConfig::GetConfEntry(bool entry_present) {
  trace_->Enter("XmlLoginCI.getConfEntry");
  if (!entry_present) {
    trace_->Enter("SecurityConfig.useDefaults");
    return "";
  }
  return GetAuthenInfoName();
}

std::string XmlLoginConfig::GetAuthenInfoName() {
  trace_->Enter("AuthenInfo.getName");
  return "ClientLoginModule";
}

void ClientLoginModule::Initialize() {
  trace_->Enter("ClientLoginMod.initialize");
}

bool ClientLoginModule::Login(bool will_succeed) {
  trace_->Enter("ClientLoginMod.login");
  return will_succeed;
}

void ClientLoginModule::Commit() { trace_->Enter("ClientLoginMod.commit"); }

void ClientLoginModule::Abort() { trace_->Enter("ClientLoginMod.abort"); }

void SecurityAssociation::SetPrincipalInfo() {
  trace_->Enter("SecAssocActs.setPrincipalInfo");
  // Privileged action that performs the actual binding.
  trace_->Enter("SetPrincipalInfoAction.run");
}

void SecurityAssociation::PushSubjectContext() {
  trace_->Enter("SecAssocActs.pushSubjectCtxt");
  trace_->Enter("SubjectThreadLocalStack.push");
  trace_->Enter("SimplePrincipal.toString");
}

std::string SecurityAssociation::GetPrincipal() {
  trace_->Enter("SecAssoc.getPrincipal");
  return "principal";
}

std::string SecurityAssociation::GetCredential() {
  trace_->Enter("SecAssoc.getCredential");
  return "credential";
}

namespace {

const char* const kNoiseEvents[] = {
    "Logger.log",
    "NamingCtxt.lookup",
    "Invocation.getArguments",
    "Clock.currentTime",
};

void MaybeNoise(TraceCollector* trace, Rng* rng, double probability) {
  while (rng->Bernoulli(probability)) {
    trace->Enter(kNoiseEvents[rng->Uniform(std::size(kNoiseEvents))]);
  }
}

}  // namespace

bool RunAuthenticationScenario(TraceCollector* trace, Rng* rng,
                               const SecurityScenarioOptions& options) {
  XmlLoginConfig config(trace);
  ClientLoginModule module(trace);
  SecurityAssociation assoc(trace);

  MaybeNoise(trace, rng, options.noise_probability);
  if (rng->Bernoulli(options.direct_name_lookup_probability)) {
    // Principal listing: reads the authentication info name directly;
    // no configuration lookup, no authentication.
    trace->Enter("PrincipalLister.list");
    config.GetAuthenInfoName();
    MaybeNoise(trace, rng, options.noise_probability);
    return false;
  }
  // Premise: configuration consulted for the authentication service.
  bool entry_present = !rng->Bernoulli(options.missing_entry_probability);
  if (config.GetConfEntry(entry_present).empty()) {
    MaybeNoise(trace, rng, options.noise_probability);
    return false;
  }
  MaybeNoise(trace, rng, options.noise_probability);

  bool succeed = !rng->Bernoulli(options.login_failure_probability);
  module.Initialize();
  if (!module.Login(succeed)) {
    module.Abort();
    MaybeNoise(trace, rng, options.noise_probability);
    return false;
  }
  module.Commit();
  // Bind principal information to the authenticated subject.
  assoc.SetPrincipalInfo();
  assoc.PushSubjectContext();
  MaybeNoise(trace, rng, options.noise_probability);
  // Downstream use of the subject's principal and credentials.
  for (size_t i = 0; i < options.downstream_uses; ++i) {
    assoc.GetPrincipal();
    assoc.GetCredential();
    MaybeNoise(trace, rng, options.noise_probability);
  }
  return true;
}

const std::vector<std::string>& Figure5Premise() {
  static const std::vector<std::string> kPremise = {
      "XmlLoginCI.getConfEntry",
      "AuthenInfo.getName",
  };
  return kPremise;
}

const std::vector<std::string>& Figure5Consequent() {
  static const std::vector<std::string> kConsequent = {
      "ClientLoginMod.initialize",
      "ClientLoginMod.login",
      "ClientLoginMod.commit",
      "SecAssocActs.setPrincipalInfo",
      "SetPrincipalInfoAction.run",
      "SecAssocActs.pushSubjectCtxt",
      "SubjectThreadLocalStack.push",
      "SimplePrincipal.toString",
      "SecAssoc.getPrincipal",
      "SecAssoc.getCredential",
      "SecAssoc.getPrincipal",
      "SecAssoc.getCredential",
  };
  return kConsequent;
}

}  // namespace sim
}  // namespace specmine
