#include "src/sim/transaction_component.h"

namespace specmine {
namespace sim {

uint64_t XidImpl::GetTrulyGlobalId() {
  trace_->Enter("XidImpl.getTrulyGlobalId");
  return id_ << 16;
}

uint64_t XidImpl::GetLocalId() {
  trace_->Enter("XidImpl.getLocalId");
  return id_;
}

uint64_t XidImpl::GetLocalIdValue() {
  trace_->Enter("XidImpl.getLocalIdValue");
  return id_;
}

uint64_t LocalId::HashCode() {
  trace_->Enter("LocalId.hashCode");
  return value_ * 0x9e3779b97f4a7c15ULL;
}

bool LocalId::Equals(const LocalId& other) {
  trace_->Enter("LocalId.equals");
  return value_ == other.value_;
}

uint64_t XidFactory::GetNextId() {
  trace_->Enter("XidFactory.getNextId");
  return next_id_++;
}

XidImpl XidFactory::NewXid() {
  trace_->Enter("XidFactory.newXid");
  return XidImpl(trace_, GetNextId());
}

void TransactionImpl::AssociateCurrentThread() {
  trace_->Enter("TransactionImpl.associateCurrentThread");
}

uint64_t TransactionImpl::GetLocalId() {
  trace_->Enter("TransactionImpl.getLocalId");
  return xid_.GetLocalId();
}

uint64_t TransactionImpl::GetLocalIdValue() {
  trace_->Enter("TransactionImpl.getLocalIdValue");
  return xid_.GetLocalIdValue();
}

bool TransactionImpl::Equals(TransactionImpl* other) {
  trace_->Enter("TransactionImpl.equals");
  // Identity comparison reads both transactions' local id values — the
  // doubled getLocalIdValue pair visible in Figure 4.
  uint64_t mine = GetLocalIdValue();
  uint64_t theirs = other->GetLocalIdValue();
  return mine == theirs;
}

void TransactionImpl::BeforePrepare() {
  trace_->Enter("TransactionImpl.beforePrepare");
  CheckIntegrity();
  CheckBeforeStatus();
}

void TransactionImpl::CheckIntegrity() {
  trace_->Enter("TransactionImpl.checkIntegrity");
}

void TransactionImpl::CheckBeforeStatus() {
  trace_->Enter("TransactionImpl.checkBeforeStatus");
}

void TransactionImpl::EndResources() {
  trace_->Enter("TransactionImpl.endResources");
}

void TransactionImpl::CompleteTransaction() {
  trace_->Enter("TransactionImpl.completeTransaction");
  CancelTimeout();
  DoAfterCompletion();
  InstanceDone();
}

void TransactionImpl::CancelTimeout() {
  trace_->Enter("TransactionImpl.cancelTimeout");
}

void TransactionImpl::DoAfterCompletion() {
  trace_->Enter("TransactionImpl.doAfterCompletion");
}

void TransactionImpl::InstanceDone() {
  trace_->Enter("TransactionImpl.instanceDone");
}

void TransactionImpl::Commit() {
  trace_->Enter("TransactionImpl.commit");
  BeforePrepare();
  EndResources();
  CompleteTransaction();
  committed_ = true;
}

void TransactionImpl::Rollback() {
  trace_->Enter("TransactionImpl.rollback");
  EndResources();
  CompleteTransaction();
  committed_ = false;
}

void TransactionImpl::DisposeChecks() {
  // Removal from the manager's transaction map: key recomputation and
  // identity check, as in the Figure-4 disposal block.
  LocalId key(trace_, GetLocalId());
  key.HashCode();
  key.Equals(key);
}

void TransactionManagerLocator::GetInstance() {
  trace_->Enter("TransactionManagerLocator.getInstance");
  Locate();
}

void TransactionManagerLocator::Locate() {
  trace_->Enter("TransactionManagerLocator.locate");
  TryJndi();
  UsePrivateApi();
}

void TransactionManagerLocator::TryJndi() {
  trace_->Enter("TransactionManagerLocator.tryJNDI");
}

void TransactionManagerLocator::UsePrivateApi() {
  trace_->Enter("TransactionManagerLocator.usePrivateAPI");
}

TransactionImpl TxManager::Begin() {
  trace_->Enter("TxManager.begin");
  XidImpl xid = factory_.NewXid();
  xid.GetTrulyGlobalId();
  TransactionImpl tx(trace_, xid);
  // Transaction set-up: thread association plus registration in the
  // manager's transaction map (hash + identity check on the local id).
  tx.AssociateCurrentThread();
  LocalId key(trace_, tx.GetLocalId());
  key.HashCode();
  tx.Equals(&tx);
  return tx;
}

void TxManager::Commit(TransactionImpl* tx) {
  trace_->Enter("TxManager.commit");
  tx->Commit();
}

void TxManager::Rollback(TransactionImpl* tx) {
  trace_->Enter("TxManager.rollback");
  tx->Rollback();
}

void TxManager::ReleaseTransactionImpl(TransactionImpl* tx) {
  trace_->Enter("TxManager.releaseTransactionImpl");
  tx->DisposeChecks();
}

namespace {

const char* const kNoiseEvents[] = {
    "Logger.log",
    "ConnectionPool.acquire",
    "ConnectionPool.release",
    "Cache.lookup",
    "Clock.currentTime",
};

void MaybeNoise(TraceCollector* trace, Rng* rng, double probability) {
  while (rng->Bernoulli(probability)) {
    trace->Enter(kNoiseEvents[rng->Uniform(std::size(kNoiseEvents))]);
  }
}

}  // namespace

bool RunTransactionScenario(TraceCollector* trace, Rng* rng,
                            const TransactionScenarioOptions& options) {
  TransactionManagerLocator locator(trace);
  TxManager manager(trace);

  MaybeNoise(trace, rng, options.noise_probability);
  locator.GetInstance();
  MaybeNoise(trace, rng, options.noise_probability);
  TransactionImpl tx = manager.Begin();
  MaybeNoise(trace, rng, options.noise_probability);

  bool commit = !rng->Bernoulli(options.rollback_probability);
  if (commit) {
    manager.Commit(&tx);
  } else {
    manager.Rollback(&tx);
  }
  MaybeNoise(trace, rng, options.noise_probability);
  manager.ReleaseTransactionImpl(&tx);
  MaybeNoise(trace, rng, options.noise_probability);
  return commit;
}

const std::vector<std::string>& Figure4Pattern() {
  static const std::vector<std::string> kPattern = {
      // Connection set up.
      "TransactionManagerLocator.getInstance",
      "TransactionManagerLocator.locate",
      "TransactionManagerLocator.tryJNDI",
      "TransactionManagerLocator.usePrivateAPI",
      // Tx manager set up.
      "TxManager.begin",
      "XidFactory.newXid",
      "XidFactory.getNextId",
      "XidImpl.getTrulyGlobalId",
      // Transaction set up.
      "TransactionImpl.associateCurrentThread",
      "TransactionImpl.getLocalId",
      "XidImpl.getLocalId",
      "LocalId.hashCode",
      "TransactionImpl.equals",
      "TransactionImpl.getLocalIdValue",
      "XidImpl.getLocalIdValue",
      "TransactionImpl.getLocalIdValue",
      "XidImpl.getLocalIdValue",
      // Transaction commit.
      "TxManager.commit",
      "TransactionImpl.commit",
      "TransactionImpl.beforePrepare",
      "TransactionImpl.checkIntegrity",
      "TransactionImpl.checkBeforeStatus",
      "TransactionImpl.endResources",
      "TransactionImpl.completeTransaction",
      "TransactionImpl.cancelTimeout",
      "TransactionImpl.doAfterCompletion",
      "TransactionImpl.instanceDone",
      // Transaction dispose.
      "TxManager.releaseTransactionImpl",
      "TransactionImpl.getLocalId",
      "XidImpl.getLocalId",
      "LocalId.hashCode",
      "LocalId.equals",
  };
  return kPattern;
}

}  // namespace sim
}  // namespace specmine
