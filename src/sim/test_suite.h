// The simulated "test suite": drives the instrumented components the way
// the paper runs the JBoss test suite to produce traces (Section 7).

#ifndef SPECMINE_SIM_TEST_SUITE_H_
#define SPECMINE_SIM_TEST_SUITE_H_

#include <cstdint>

#include "src/sim/security_component.h"
#include "src/sim/transaction_component.h"
#include "src/trace/sequence_database.h"

namespace specmine {
namespace sim {

/// \brief Knobs for the simulated test-suite run.
struct TestSuiteOptions {
  /// Number of test cases (traces) to run.
  size_t num_traces = 100;
  /// Scenario executions per trace, uniform in [min, max] — transactions
  /// and authentications repeat *within* a trace, the recurrence iterative
  /// patterns and recurrent rules target.
  size_t min_runs_per_trace = 1;
  size_t max_runs_per_trace = 4;
  uint64_t seed = 42;
  TransactionScenarioOptions transaction;
  SecurityScenarioOptions security;
};

/// \brief Runs the transaction test suite; one trace per test case.
SequenceDatabase GenerateTransactionTraces(const TestSuiteOptions& options);

/// \brief Runs the security (authentication) test suite.
SequenceDatabase GenerateSecurityTraces(const TestSuiteOptions& options);

}  // namespace sim
}  // namespace specmine

#endif  // SPECMINE_SIM_TEST_SUITE_H_
