#include "src/sim/trace_collector.h"

namespace specmine {

void TraceCollector::BeginTrace() {
  EndTrace();
  open_ = true;
}

void TraceCollector::Enter(std::string_view method) {
  if (!open_) open_ = true;
  current_.Append(builder_.mutable_dictionary()->Intern(method));
}

void TraceCollector::EndTrace() {
  if (open_ && !current_.empty()) {
    builder_.AddSequence(current_);
  }
  current_.Clear();
  open_ = false;
}

SequenceDatabase TraceCollector::TakeDatabase() {
  EndTrace();
  return builder_.Build();
}

}  // namespace specmine
