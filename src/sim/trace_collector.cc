#include "src/sim/trace_collector.h"

namespace specmine {

void TraceCollector::BeginTrace() {
  EndTrace();
  open_ = true;
}

void TraceCollector::Enter(std::string_view method) {
  if (!open_) open_ = true;
  current_.Append(db_.mutable_dictionary()->Intern(method));
}

void TraceCollector::EndTrace() {
  if (open_ && !current_.empty()) {
    db_.AddSequence(std::move(current_));
    current_ = Sequence();
  }
  current_ = Sequence();
  open_ = false;
}

SequenceDatabase TraceCollector::TakeDatabase() {
  EndTrace();
  return std::move(db_);
}

}  // namespace specmine
