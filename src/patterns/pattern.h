// Pattern: a series of events (Section 3.1 of the paper) plus the
// sub-sequence / super-sequence relations and concatenation operator.

#ifndef SPECMINE_PATTERNS_PATTERN_H_
#define SPECMINE_PATTERNS_PATTERN_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/trace/event_dictionary.h"
#include "src/trace/sequence.h"

namespace specmine {

/// \brief A series of events <e1, e2, ..., en>.
///
/// Patterns are ordered lists (not sets); the same event may repeat. The
/// sub-sequence relation (paper notation P1 ⊑ P2) is implemented by
/// IsSubsequenceOf.
class Pattern {
 public:
  Pattern() = default;
  explicit Pattern(std::vector<EventId> events) : events_(std::move(events)) {}
  Pattern(std::initializer_list<EventId> events) : events_(events) {}

  /// \brief Number of events in the pattern.
  size_t size() const { return events_.size(); }
  /// \brief True iff the pattern is empty.
  bool empty() const { return events_.empty(); }
  /// \brief Event at index \p i (0-based, unchecked).
  EventId operator[](size_t i) const { return events_[i]; }
  /// \brief First event; pattern must be non-empty.
  EventId first() const { return events_.front(); }
  /// \brief Last event; pattern must be non-empty.
  EventId last() const { return events_.back(); }

  /// \brief Underlying events.
  const std::vector<EventId>& events() const { return events_; }

  /// \brief Appends \p ev (returns a new pattern; the paper's P++<ev>).
  Pattern Extend(EventId ev) const;
  /// \brief Prepends \p ev (the paper's <ev>++P).
  Pattern Prepend(EventId ev) const;
  /// \brief Concatenation P1++P2.
  Pattern Concat(const Pattern& other) const;
  /// \brief Inserts \p ev before index \p at (0 <= at <= size()).
  Pattern Insert(size_t at, EventId ev) const;
  /// \brief Removes the event at index \p at (0 <= at < size()).
  Pattern Erase(size_t at) const;

  /// \brief True iff this pattern is a (not necessarily contiguous)
  /// sub-sequence of \p other (P ⊑ other).
  bool IsSubsequenceOf(const Pattern& other) const;

  /// \brief True iff this pattern is a sub-sequence of the sequence \p seq.
  bool IsSubsequenceOf(EventSpan seq) const;

  /// \brief The set of distinct events in the pattern (the QRE exclusion
  /// alphabet of Definition 4.1).
  std::unordered_set<EventId> Alphabet() const;

  /// \brief True iff \p ev occurs in the pattern.
  bool Contains(EventId ev) const;

  /// \brief Renders as "<name1, name2, ...>" using \p dict.
  std::string ToString(const EventDictionary& dict) const;
  /// \brief Renders as "<id1, id2, ...>".
  std::string ToString() const;

  bool operator==(const Pattern& other) const = default;
  /// \brief Lexicographic order (for canonical output ordering).
  bool operator<(const Pattern& other) const {
    return events_ < other.events_;
  }

  std::vector<EventId>::const_iterator begin() const { return events_.begin(); }
  std::vector<EventId>::const_iterator end() const { return events_.end(); }

 private:
  std::vector<EventId> events_;
};

/// \brief Hash functor so patterns can key unordered containers.
struct PatternHash {
  size_t operator()(const Pattern& p) const;
};

}  // namespace specmine

#endif  // SPECMINE_PATTERNS_PATTERN_H_
