// PatternSet: a collection of mined patterns with their supports, plus the
// set-level queries the tests and reports need (containment, sorting,
// closed-set coverage checks).

#ifndef SPECMINE_PATTERNS_PATTERN_SET_H_
#define SPECMINE_PATTERNS_PATTERN_SET_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/patterns/pattern.h"

namespace specmine {

/// \brief A mined pattern together with its support.
struct MinedPattern {
  Pattern pattern;
  /// Number of instances (iterative mining) or supporting sequences
  /// (sequential mining), depending on the producing miner.
  uint64_t support = 0;

  bool operator==(const MinedPattern& other) const = default;
};

/// \brief An ordered collection of mined patterns.
class PatternSet {
 public:
  PatternSet() = default;

  /// \brief Appends a mined pattern.
  void Add(Pattern p, uint64_t support);

  /// \brief Number of patterns.
  size_t size() const { return items_.size(); }
  /// \brief True iff no patterns were mined.
  bool empty() const { return items_.empty(); }
  /// \brief Item at index \p i.
  const MinedPattern& operator[](size_t i) const { return items_[i]; }
  /// \brief All items.
  const std::vector<MinedPattern>& items() const { return items_; }

  /// \brief Sorts by (descending support, lexicographic pattern) — the
  /// canonical report order. Stable across runs.
  void SortBySupport();

  /// \brief Sorts lexicographically by pattern — the canonical order for
  /// set comparisons in tests.
  void SortLexicographic();

  /// \brief Returns the support of \p p, or 0 if absent.
  uint64_t SupportOf(const Pattern& p) const;

  /// \brief True iff \p p is present.
  bool Contains(const Pattern& p) const;

  /// \brief Longest pattern (first one of maximal length); set must be
  /// non-empty.
  const MinedPattern& Longest() const;

  /// \brief Multi-line rendering using \p dict (one pattern per line).
  std::string ToString(const EventDictionary& dict) const;

 private:
  std::vector<MinedPattern> items_;
  std::unordered_map<Pattern, uint64_t, PatternHash> index_;
};

}  // namespace specmine

#endif  // SPECMINE_PATTERNS_PATTERN_SET_H_
