#include "src/patterns/pattern_set.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace specmine {

void PatternSet::Add(Pattern p, uint64_t support) {
  index_[p] = support;
  items_.push_back(MinedPattern{std::move(p), support});
}

void PatternSet::SortBySupport() {
  std::sort(items_.begin(), items_.end(),
            [](const MinedPattern& a, const MinedPattern& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.pattern < b.pattern;
            });
}

void PatternSet::SortLexicographic() {
  std::sort(items_.begin(), items_.end(),
            [](const MinedPattern& a, const MinedPattern& b) {
              return a.pattern < b.pattern;
            });
}

uint64_t PatternSet::SupportOf(const Pattern& p) const {
  auto it = index_.find(p);
  return it == index_.end() ? 0 : it->second;
}

bool PatternSet::Contains(const Pattern& p) const {
  return index_.count(p) > 0;
}

const MinedPattern& PatternSet::Longest() const {
  assert(!items_.empty());
  const MinedPattern* best = &items_[0];
  for (const auto& it : items_) {
    if (it.pattern.size() > best->pattern.size()) best = &it;
  }
  return *best;
}

std::string PatternSet::ToString(const EventDictionary& dict) const {
  std::ostringstream os;
  for (const auto& it : items_) {
    os << it.pattern.ToString(dict) << "  sup=" << it.support << '\n';
  }
  return os.str();
}

}  // namespace specmine
