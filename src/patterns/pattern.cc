#include "src/patterns/pattern.h"

#include <sstream>

namespace specmine {

Pattern Pattern::Extend(EventId ev) const {
  std::vector<EventId> out = events_;
  out.push_back(ev);
  return Pattern(std::move(out));
}

Pattern Pattern::Prepend(EventId ev) const {
  std::vector<EventId> out;
  out.reserve(events_.size() + 1);
  out.push_back(ev);
  out.insert(out.end(), events_.begin(), events_.end());
  return Pattern(std::move(out));
}

Pattern Pattern::Concat(const Pattern& other) const {
  std::vector<EventId> out = events_;
  out.insert(out.end(), other.events_.begin(), other.events_.end());
  return Pattern(std::move(out));
}

Pattern Pattern::Insert(size_t at, EventId ev) const {
  std::vector<EventId> out = events_;
  out.insert(out.begin() + static_cast<ptrdiff_t>(at), ev);
  return Pattern(std::move(out));
}

Pattern Pattern::Erase(size_t at) const {
  std::vector<EventId> out = events_;
  out.erase(out.begin() + static_cast<ptrdiff_t>(at));
  return Pattern(std::move(out));
}

namespace {
template <typename Container>
bool SubsequenceImpl(const std::vector<EventId>& small,
                     const Container& big) {
  size_t i = 0;
  for (EventId ev : big) {
    if (i == small.size()) return true;
    if (ev == small[i]) ++i;
  }
  return i == small.size();
}
}  // namespace

bool Pattern::IsSubsequenceOf(const Pattern& other) const {
  if (size() > other.size()) return false;
  return SubsequenceImpl(events_, other.events_);
}

bool Pattern::IsSubsequenceOf(EventSpan seq) const {
  if (size() > seq.size()) return false;
  return SubsequenceImpl(events_, seq);
}

std::unordered_set<EventId> Pattern::Alphabet() const {
  return std::unordered_set<EventId>(events_.begin(), events_.end());
}

bool Pattern::Contains(EventId ev) const {
  for (EventId e : events_) {
    if (e == ev) return true;
  }
  return false;
}

std::string Pattern::ToString(const EventDictionary& dict) const {
  std::ostringstream os;
  os << '<';
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dict.NameOrPlaceholder(events_[i]);
  }
  os << '>';
  return os.str();
}

std::string Pattern::ToString() const {
  std::ostringstream os;
  os << '<';
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) os << ", ";
    os << events_[i];
  }
  os << '>';
  return os.str();
}

size_t PatternHash::operator()(const Pattern& p) const {
  // FNV-1a over the event ids.
  uint64_t h = 1469598103934665603ULL;
  for (EventId ev : p) {
    h ^= ev;
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

}  // namespace specmine
