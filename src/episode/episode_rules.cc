#include "src/episode/episode_rules.h"

#include <sstream>

namespace specmine {

std::string EpisodeRule::ToString(const EventDictionary& dict) const {
  std::ostringstream os;
  os << antecedent.ToString(dict) << " => " << consequent.ToString(dict)
     << "  (fr=" << full_windows << ", conf=" << confidence() << ')';
  return os.str();
}

std::vector<EpisodeRule> MineEpisodeRules(const SequenceDatabase& db,
                                          const EpisodeRuleOptions& options) {
  WinepiOptions episode_options;
  episode_options.window_width = options.window_width;
  episode_options.min_window_count = options.min_window_count;
  episode_options.max_length = options.max_length;
  PatternSet episodes = MineWinepi(db, episode_options);

  std::vector<EpisodeRule> rules;
  for (const MinedPattern& beta : episodes.items()) {
    if (beta.pattern.size() < 2) continue;
    // Every proper prefix of beta is a frequent episode (window counts are
    // anti-monotone), so its count is already in the set.
    for (size_t k = 1; k < beta.pattern.size(); ++k) {
      Pattern alpha(std::vector<EventId>(beta.pattern.events().begin(),
                                         beta.pattern.events().begin() + k));
      uint64_t alpha_windows = episodes.SupportOf(alpha);
      if (alpha_windows == 0) {
        // Defensive: recompute (possible only if alpha was capped away).
        alpha_windows =
            CountSupportingWindows(alpha, db, options.window_width);
      }
      EpisodeRule rule;
      rule.antecedent = alpha;
      rule.consequent =
          Pattern(std::vector<EventId>(beta.pattern.events().begin() + k,
                                       beta.pattern.events().end()));
      rule.antecedent_windows = alpha_windows;
      rule.full_windows = beta.support;
      if (rule.confidence() >= options.min_confidence) {
        rules.push_back(std::move(rule));
      }
    }
  }
  return rules;
}

}  // namespace specmine
