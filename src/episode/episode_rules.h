// WINEPI-style episode rules (Mannila, Toivonen & Verkamo, DMKD 1997) —
// the "episode rule" related-work baseline of Section 2.
//
// A serial episode rule alpha => beta takes a frequent episode beta and a
// proper prefix alpha of it: "when the events of alpha occur (in order)
// inside a width-w window, the whole of beta occurs in that window", with
//
//     confidence = fr(beta, w) / fr(alpha, w)
//
// where fr is the number of width-w windows containing the episode. The
// contrast with recurrent rules (Section 2): both the premise and the
// consequent must fit in one window, so constraints spanning arbitrary
// distances are invisible here regardless of thresholds.

#ifndef SPECMINE_EPISODE_EPISODE_RULES_H_
#define SPECMINE_EPISODE_EPISODE_RULES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/episode/winepi.h"

namespace specmine {

/// \brief A mined serial episode rule: antecedent => antecedent++consequent.
struct EpisodeRule {
  /// The prefix episode alpha.
  Pattern antecedent;
  /// The remaining events of beta (so beta = antecedent ++ consequent).
  Pattern consequent;
  /// Windows containing alpha.
  uint64_t antecedent_windows = 0;
  /// Windows containing beta.
  uint64_t full_windows = 0;

  double confidence() const {
    return antecedent_windows == 0
               ? 0.0
               : static_cast<double>(full_windows) /
                     static_cast<double>(antecedent_windows);
  }

  /// \brief "<alpha> => <beta rest> [w] (fr=.., conf=..)" rendering.
  std::string ToString(const EventDictionary& dict) const;
};

/// \brief Options for episode rule mining.
struct EpisodeRuleOptions {
  /// Window width in events.
  size_t window_width = 10;
  /// Minimum window count of the full episode beta.
  uint64_t min_window_count = 1;
  /// Minimum confidence in [0, 1].
  double min_confidence = 0.5;
  /// Maximum episode length; 0 means unbounded.
  size_t max_length = 0;
};

/// \brief Mines all serial episode rules meeting the thresholds.
std::vector<EpisodeRule> MineEpisodeRules(const SequenceDatabase& db,
                                          const EpisodeRuleOptions& options);

}  // namespace specmine

#endif  // SPECMINE_EPISODE_EPISODE_RULES_H_
