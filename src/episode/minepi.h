// MINEPI-style serial episode mining via minimal occurrences (Mannila,
// Toivonen & Verkamo, DMKD 1997).
//
// A minimal occurrence of an episode is a window [s, e] in which the
// episode occurs while no proper sub-window of it contains the episode.
// Support = number of minimal occurrences with width <= max_window, summed
// over the database. Minimal occurrences of an extension are computed from
// the parent's minimal occurrences, which is what made MINEPI incremental;
// the same recurrence is used here.

#ifndef SPECMINE_EPISODE_MINEPI_H_
#define SPECMINE_EPISODE_MINEPI_H_

#include <cstdint>

#include "src/patterns/pattern_set.h"
#include "src/trace/position_index.h"
#include "src/trace/sequence_database.h"

namespace specmine {

class CancelToken;

/// \brief One minimal occurrence window [start, end] in a sequence.
struct MinimalOccurrence {
  SeqId seq = 0;
  Pos start = 0;
  Pos end = 0;

  bool operator==(const MinimalOccurrence& other) const = default;
};

/// \brief Options for MINEPI mining.
struct MinepiOptions {
  /// Maximal window width (end - start + 1) of a counted occurrence.
  size_t max_window = 10;
  /// Minimum number of minimal occurrences (absolute).
  uint64_t min_support = 1;
  /// Maximum episode length; 0 means unbounded.
  size_t max_length = 0;
  /// Optional cooperative stop signal, polled per episode candidate. Not
  /// owned; may be null.
  const CancelToken* cancel = nullptr;
};

/// \brief All minimal occurrences of \p episode in \p db (any width).
std::vector<MinimalOccurrence> FindMinimalOccurrences(
    const Pattern& episode, const SequenceDatabase& db);

/// \brief Mines all episodes whose bounded-width minimal occurrence count
/// meets the threshold.
PatternSet MineMinepi(const SequenceDatabase& db, const MinepiOptions& options);

}  // namespace specmine

#endif  // SPECMINE_EPISODE_MINEPI_H_
