#include "src/episode/minepi.h"

#include <algorithm>

#include "src/support/cancel.h"

namespace specmine {

namespace {

// mo(episode ++ ev) from mo(episode): each minimal occurrence [s, e]
// extends to [s, p] with p the first `ev` after e; keeping, per end
// position, only the window with the largest start restores minimality
// (starts are increasing and extended ends are non-decreasing).
std::vector<MinimalOccurrence> ExtendOccurrences(
    const std::vector<MinimalOccurrence>& parent, EventId ev,
    const SequenceDatabase& db) {
  std::vector<MinimalOccurrence> out;
  for (const MinimalOccurrence& mo : parent) {
    const EventSpan seq = db[mo.seq];
    Pos p = kNoPos;
    for (Pos q = mo.end + 1; q < seq.size(); ++q) {
      if (seq[q] == ev) {
        p = q;
        break;
      }
    }
    if (p == kNoPos) continue;
    MinimalOccurrence ext{mo.seq, mo.start, p};
    if (!out.empty() && out.back().seq == ext.seq &&
        out.back().end == ext.end) {
      out.back() = ext;  // Same end, larger start: keep the tighter window.
    } else {
      out.push_back(ext);
    }
  }
  return out;
}

uint64_t CountBounded(const std::vector<MinimalOccurrence>& mos,
                      size_t max_window) {
  uint64_t n = 0;
  for (const MinimalOccurrence& mo : mos) {
    if (mo.end - mo.start + 1 <= max_window) ++n;
  }
  return n;
}

void GrowMinepi(const SequenceDatabase& db, const MinepiOptions& options,
                const std::vector<EventId>& alphabet, const Pattern& episode,
                const std::vector<MinimalOccurrence>& mos, PatternSet* out) {
  if (options.max_length != 0 && episode.size() >= options.max_length) return;
  for (EventId ev : alphabet) {
    if (options.cancel != nullptr && options.cancel->ShouldStop()) return;
    Pattern candidate = episode.Extend(ev);
    std::vector<MinimalOccurrence> ext = ExtendOccurrences(mos, ev, db);
    if (ext.empty()) continue;
    uint64_t support = CountBounded(ext, options.max_window);
    if (support >= options.min_support) out->Add(candidate, support);
    // Minimal-occurrence counts are not anti-monotone in general, so the
    // subtree is grown whenever occurrences remain (bounded by max_length).
    GrowMinepi(db, options, alphabet, candidate, ext, out);
  }
}

}  // namespace

std::vector<MinimalOccurrence> FindMinimalOccurrences(
    const Pattern& episode, const SequenceDatabase& db) {
  std::vector<MinimalOccurrence> mos;
  if (episode.empty()) return mos;
  for (SeqId s = 0; s < db.size(); ++s) {
    const EventSpan seq = db[s];
    for (Pos p = 0; p < seq.size(); ++p) {
      if (seq[p] == episode[0]) mos.push_back(MinimalOccurrence{s, p, p});
    }
  }
  // Sorted by (seq, start) by construction.
  std::vector<MinimalOccurrence> result = mos;
  for (size_t k = 1; k < episode.size(); ++k) {
    result = ExtendOccurrences(result, episode[k], db);
  }
  return result;
}

PatternSet MineMinepi(const SequenceDatabase& db,
                      const MinepiOptions& options) {
  PatternSet out;
  std::vector<EventId> alphabet;
  std::vector<std::pair<Pattern, std::vector<MinimalOccurrence>>> singles;
  for (EventId ev = 0; ev < db.dictionary().size(); ++ev) {
    if (options.cancel != nullptr && options.cancel->ShouldStop()) break;
    Pattern single{ev};
    std::vector<MinimalOccurrence> mos = FindMinimalOccurrences(single, db);
    if (mos.empty()) continue;
    uint64_t support = CountBounded(mos, options.max_window);
    if (support >= options.min_support) {
      out.Add(single, support);
      alphabet.push_back(ev);
      singles.emplace_back(std::move(single), std::move(mos));
    }
  }
  for (const auto& [pattern, mos] : singles) {
    if (options.cancel != nullptr && options.cancel->ShouldStop()) break;
    GrowMinepi(db, options, alphabet, pattern, mos, &out);
  }
  return out;
}

}  // namespace specmine
