#include "src/episode/winepi.h"

#include <algorithm>
#include <vector>

#include "src/support/cancel.h"

namespace specmine {

namespace {

// For each end position e of seq, the latest start s such that `episode`
// embeds into seq[s..e] (kNoPos when it does not embed). O(len * m).
std::vector<Pos> LatestStartPerEnd(const Pattern& episode,
                                   EventSpan seq) {
  const size_t m = episode.size();
  std::vector<Pos> latest(m + 1, kNoPos);  // latest[k]: first k events.
  std::vector<Pos> result(seq.size(), kNoPos);
  for (Pos e = 0; e < seq.size(); ++e) {
    EventId x = seq[e];
    for (size_t k = m; k >= 1; --k) {
      if (episode[k - 1] != x) continue;
      if (k == 1) {
        latest[1] = e;
      } else if (latest[k - 1] != kNoPos) {
        latest[k] = latest[k - 1];
      }
    }
    result[e] = latest[m];
  }
  return result;
}

}  // namespace

uint64_t CountSupportingWindows(const Pattern& episode,
                                const SequenceDatabase& db, size_t width) {
  if (episode.empty() || width == 0) return 0;
  uint64_t count = 0;
  for (EventSpan seq : db) {
    if (seq.empty()) continue;
    std::vector<Pos> ms = LatestStartPerEnd(episode, seq);
    const int64_t len = static_cast<int64_t>(seq.size());
    const int64_t w = static_cast<int64_t>(width);
    for (int64_t t = -(w - 1); t <= len - 1; ++t) {
      int64_t lo = std::max<int64_t>(0, t);
      int64_t hi = std::min<int64_t>(len - 1, t + w - 1);
      if (hi < lo) continue;
      Pos s = ms[static_cast<size_t>(hi)];
      if (s != kNoPos && static_cast<int64_t>(s) >= lo) ++count;
    }
  }
  return count;
}

namespace {

void GrowEpisode(const SequenceDatabase& db, const WinepiOptions& options,
                 const std::vector<EventId>& alphabet, const Pattern& episode,
                 PatternSet* out) {
  if (options.max_length != 0 && episode.size() >= options.max_length) return;
  for (EventId ev : alphabet) {
    if (options.cancel != nullptr && options.cancel->ShouldStop()) return;
    Pattern candidate = episode.Extend(ev);
    uint64_t windows =
        CountSupportingWindows(candidate, db, options.window_width);
    if (windows < options.min_window_count) continue;
    out->Add(candidate, windows);
    GrowEpisode(db, options, alphabet, candidate, out);
  }
}

}  // namespace

PatternSet MineWinepi(const SequenceDatabase& db,
                      const WinepiOptions& options) {
  PatternSet out;
  std::vector<EventId> alphabet;
  for (EventId ev = 0; ev < db.dictionary().size(); ++ev) {
    if (options.cancel != nullptr && options.cancel->ShouldStop()) break;
    Pattern single{ev};
    uint64_t windows =
        CountSupportingWindows(single, db, options.window_width);
    if (windows >= options.min_window_count) {
      out.Add(single, windows);
      alphabet.push_back(ev);
    }
  }
  // Depth-first growth; window counts are anti-monotone under extension,
  // and an extension's events are frequent singletons, so restricting
  // candidates to `alphabet` is complete.
  std::vector<MinedPattern> singles = out.items();
  for (const MinedPattern& s : singles) {
    if (options.cancel != nullptr && options.cancel->ShouldStop()) break;
    GrowEpisode(db, options, alphabet, s.pattern, &out);
  }
  return out;
}

}  // namespace specmine
