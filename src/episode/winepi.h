// WINEPI-style serial episode mining (Mannila, Toivonen & Verkamo, DMKD
// 1997) — a related-work baseline for iterative pattern mining.
//
// An episode is a series of events; it occurs in a window of width `w` iff
// it is a subsequence of the events inside the window. The frequency of an
// episode is the number of width-w windows containing it, summed over all
// sequences (the original formulation uses one long sequence; we slide the
// window over each sequence independently and sum). Window counts are
// anti-monotone under extension, enabling depth-first apriori growth.
//
// The key contrast the paper draws (Sections 1-2): episode occurrences are
// confined to a window, so constraints whose events lie arbitrarily far
// apart (lock/unlock, open/close) are invisible to episode mining — the
// benchmark bench/ablation_prunes demonstrates exactly that.

#ifndef SPECMINE_EPISODE_WINEPI_H_
#define SPECMINE_EPISODE_WINEPI_H_

#include <cstdint>

#include "src/patterns/pattern_set.h"
#include "src/trace/position_index.h"
#include "src/trace/sequence_database.h"

namespace specmine {

class CancelToken;

/// \brief Options for WINEPI mining.
struct WinepiOptions {
  /// Window width in events (>= 1).
  size_t window_width = 10;
  /// Minimum number of windows containing the episode (absolute).
  uint64_t min_window_count = 1;
  /// Maximum episode length; 0 means unbounded.
  size_t max_length = 0;
  /// Optional cooperative stop signal, polled per episode candidate. Not
  /// owned; may be null.
  const CancelToken* cancel = nullptr;
};

/// \brief Number of width-w windows of \p db containing \p episode.
///
/// Windows are [t, t+w) for t in [-(w-1), len-1] per sequence, as in the
/// original definition (partial windows at both ends).
uint64_t CountSupportingWindows(const Pattern& episode,
                                const SequenceDatabase& db, size_t width);

/// \brief Mines all frequent serial episodes under the window-count
/// frequency.
PatternSet MineWinepi(const SequenceDatabase& db, const WinepiOptions& options);

}  // namespace specmine

#endif  // SPECMINE_EPISODE_WINEPI_H_
