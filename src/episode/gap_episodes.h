// Gap-constrained episode mining in the spirit of Casas-Garriga (PKDD
// 2003): the fixed window of WINEPI is replaced by a maximum gap between
// one event of the episode and the next.
//
// An occurrence is a chain of positions i1 < i2 < ... < ik with
// i_{j+1} - i_j <= max_gap. Support counts leftmost-greedy non-overlapping
// occurrences per sequence, summed over the database — the natural
// "repetitions within and across sequences" analogue, making this the
// closest episode-style baseline to iterative pattern mining.

#ifndef SPECMINE_EPISODE_GAP_EPISODES_H_
#define SPECMINE_EPISODE_GAP_EPISODES_H_

#include <cstdint>

#include "src/patterns/pattern_set.h"
#include "src/trace/position_index.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Options for gap-constrained episode mining.
struct GapEpisodeOptions {
  /// Maximum allowed gap i_{j+1} - i_j between consecutive episode events.
  size_t max_gap = 5;
  /// Minimum number of occurrences (absolute).
  uint64_t min_support = 1;
  /// Maximum episode length; 0 means unbounded.
  size_t max_length = 0;
};

/// \brief Counts leftmost-greedy non-overlapping gap-constrained
/// occurrences of \p episode in \p db.
uint64_t CountGapOccurrences(const Pattern& episode, const SequenceDatabase& db,
                             size_t max_gap);

/// \brief Mines all episodes whose gap-constrained occurrence count meets
/// the threshold (support is anti-monotone under this counting, enabling
/// apriori growth).
PatternSet MineGapEpisodes(const SequenceDatabase& db,
                           const GapEpisodeOptions& options);

}  // namespace specmine

#endif  // SPECMINE_EPISODE_GAP_EPISODES_H_
