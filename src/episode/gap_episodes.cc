#include "src/episode/gap_episodes.h"

#include <vector>

namespace specmine {

namespace {

// Earliest end position of a gap-constrained occurrence of `episode`
// located entirely within seq[from..], or kNoPos. Dynamic program over
// (position, matched-prefix-length); naive greedy is incomplete under gap
// constraints (an earlier match of event k can strand event k+1).
Pos EarliestGapOccurrenceEnd(const Pattern& episode, EventSpan seq,
                             Pos from, size_t max_gap) {
  const size_t m = episode.size();
  const size_t n = seq.size();
  if (m == 0 || from >= n) return kNoPos;
  // last_reach[k] = most recent position where the first k events matched
  // (within the gap windows); valid while p - last_reach[k] <= max_gap.
  // Scanning left to right and keeping only the latest reach per k is
  // sufficient: a later reach dominates an earlier one for all future gap
  // checks.
  std::vector<Pos> last_reach(m + 1, kNoPos);
  for (Pos p = from; p < n; ++p) {
    EventId x = seq[p];
    for (size_t k = m; k >= 1; --k) {
      if (episode[k - 1] != x) continue;
      if (k == 1) {
        last_reach[1] = p;
      } else if (last_reach[k - 1] != kNoPos &&
                 p - last_reach[k - 1] <= max_gap) {
        last_reach[k] = p;
        if (k == m) return p;
      }
    }
    if (m == 1 && last_reach[1] != kNoPos) return last_reach[1];
  }
  return kNoPos;
}

}  // namespace

uint64_t CountGapOccurrences(const Pattern& episode,
                             const SequenceDatabase& db, size_t max_gap) {
  if (episode.empty()) return 0;
  uint64_t count = 0;
  for (EventSpan seq : db) {
    Pos pos = 0;
    while (pos < seq.size()) {
      Pos end = EarliestGapOccurrenceEnd(episode, seq, pos, max_gap);
      if (end == kNoPos) break;
      ++count;
      pos = end + 1;
    }
  }
  return count;
}

namespace {

void GrowGap(const SequenceDatabase& db, const GapEpisodeOptions& options,
             const std::vector<EventId>& alphabet, const Pattern& episode,
             PatternSet* out) {
  if (options.max_length != 0 && episode.size() >= options.max_length) return;
  for (EventId ev : alphabet) {
    Pattern candidate = episode.Extend(ev);
    uint64_t support = CountGapOccurrences(candidate, db, options.max_gap);
    if (support < options.min_support) continue;
    out->Add(candidate, support);
    GrowGap(db, options, alphabet, candidate, out);
  }
}

}  // namespace

PatternSet MineGapEpisodes(const SequenceDatabase& db,
                           const GapEpisodeOptions& options) {
  PatternSet out;
  std::vector<EventId> alphabet;
  for (EventId ev = 0; ev < db.dictionary().size(); ++ev) {
    Pattern single{ev};
    uint64_t support = CountGapOccurrences(single, db, options.max_gap);
    if (support >= options.min_support) {
      out.Add(single, support);
      alphabet.push_back(ev);
    }
  }
  std::vector<MinedPattern> singles = out.items();
  for (const MinedPattern& s : singles) {
    GrowGap(db, options, alphabet, s.pattern, &out);
  }
  return out;
}

}  // namespace specmine
