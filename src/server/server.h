// specmined's HTTP server core: socket accept loop, routing, request
// decoding, and the mining handlers.
//
// Threading model: one acceptor thread plus one thread per connection
// (mining requests are long-running and CPU-bound, so the per-connection
// thread simply blocks — first in the admission gate, then in the miner —
// and the kernel's scheduler does the rest; no event loop is warranted at
// this request scale). Concurrency toward the Engine is safe by
// construction: Engine::Mine supports concurrent readers and the
// admission gate bounds how many mines run at once.
//
// Connection-thread lifecycle: a finishing connection moves its own
// std::thread handle onto a finished list, which the acceptor joins
// before each accept — a long-lived server never accumulates exited
// threads. Accepts past max_connections are answered 503 and closed
// without spawning, and idle_timeout_seconds bounds how long an idle
// keep-alive connection may hold its thread. Stop() cancels every
// in-flight mine through its registered CancelToken (so a request
// without a deadline cannot stall shutdown), shuts the live sockets
// down, and joins everything.
//
// Routes (documented in docs/server.md, exercised one-per-route by the CI
// smoke step):
//   GET  /healthz         liveness + build info
//   GET  /metrics         Prometheus text exposition
//   GET  /corpora         registered corpora
//   POST /corpora         register a corpus at runtime
//   POST /corpora/{name}/append
//                         append traces to a sharded corpus (commits the
//                         manifest at the next generation, then swaps the
//                         fresh session in; in-flight mines finish
//                         against the old generation)
//   POST /mine/patterns   iterative patterns (closed | full | generators)
//   POST /mine/rules      recurrent rules (forward | backward)
//   POST /mine/seq        sequential patterns (full | closed | generators)
//   POST /mine/episodes   serial episodes (WINEPI | MINEPI)
//   POST /mine/pairs      two-event rules (Perracotta)
//
// Success bodies for the mine routes are exactly the shared JSON result
// documents of src/engine/json_results.h — the same bytes the CLI's
// --json flag prints, which the end-to-end test diffs. Errors are a JSON
// envelope {"error": {"status", "http", "message"}} with the HTTP code
// from the single StatusToHttp mapping.

#ifndef SPECMINE_SERVER_SERVER_H_
#define SPECMINE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/server/admission.h"
#include "src/server/corpus_registry.h"
#include "src/server/http.h"
#include "src/server/metrics.h"
#include "src/support/net.h"
#include "src/support/status.h"

namespace specmine {

class CancelToken;

/// \brief Server configuration (capacity knobs in docs/server.md).
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port (port() reports the real one).
  uint16_t port = 0;
  AdmissionOptions admission;
  HttpLimits limits;
  /// Connection threads alive at once; accepts past this are answered
  /// 503 and closed without spawning a thread.
  size_t max_connections = 256;
  /// An idle keep-alive connection (no request bytes for this long) is
  /// closed so it cannot hold a connection slot forever; 0 disables.
  unsigned idle_timeout_seconds = 60;
  /// JSON-lines request log (one object per finished request); null
  /// disables logging.
  std::ostream* log = nullptr;
};

/// \brief The specmined HTTP server. Construct, Start(), Stop().
class Server {
 public:
  /// \brief \p corpora is shared, not owned (the binary registers
  /// startup corpora into it first), and must outlive the server.
  Server(CorpusRegistry* corpora, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Binds and starts the acceptor thread.
  Status Start();

  /// \brief The bound port; valid after a successful Start().
  uint16_t port() const { return port_; }

  /// \brief Stops accepting, unblocks and joins every connection thread.
  /// Idempotent; also called by the destructor.
  void Stop();

  /// \brief The admission gate (exposed so tests can pin down the 429
  /// path deterministically by exhausting slots from outside).
  AdmissionController& admission() { return admission_; }

  ServerMetrics& metrics() { return metrics_; }

  /// \brief Connection threads currently tracked (live + finished but not
  /// yet reaped); exposed so tests can pin down that completed
  /// connections are actually released.
  size_t connection_threads() const;

 private:
  // RAII entry in active_mines_ for one mine's CancelToken, so Stop()
  // can fire it; registering once Stop() has begun cancels immediately.
  class MineRegistration {
   public:
    MineRegistration(Server* server, CancelToken* token);
    ~MineRegistration();
    MineRegistration(const MineRegistration&) = delete;
    MineRegistration& operator=(const MineRegistration&) = delete;

   private:
    Server* server_;
    CancelToken* token_;
  };

  void AcceptLoop();
  void ServeConnection(uint64_t id, Socket socket);
  // Joins connection threads that have moved themselves onto finished_.
  void ReapFinished();

  // Routing + handlers. The returned route_label is the bounded-
  // cardinality metrics label ("other" for unmatched paths).
  HttpResponse Route(const HttpRequest& request, std::string* route_label);
  HttpResponse HandleHealthz() const;
  HttpResponse HandleMetrics() const;
  HttpResponse HandleListCorpora() const;
  HttpResponse HandleRegisterCorpus(const HttpRequest& request) const;
  HttpResponse HandleAppendCorpus(const std::string& name,
                                  const HttpRequest& request);
  HttpResponse HandleMine(const std::string& path,
                          const HttpRequest& request);

  void LogRequest(const HttpRequest& request, const HttpResponse& response,
                  double seconds);

  CorpusRegistry* corpora_;
  ServerOptions options_;
  ServerMetrics metrics_;
  AdmissionController admission_;
  Listener listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  mutable std::mutex mu_;  // Guards the connection/mine tracking below.
  std::unordered_map<uint64_t, std::thread> connections_;  // Live, by id.
  std::vector<std::thread> finished_;   // Exited, awaiting a join.
  std::set<int> live_fds_;              // For Stop() to shutdown().
  std::set<CancelToken*> active_mines_;  // For Stop() to Cancel().
  uint64_t next_connection_id_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex log_mu_;
  // Serializes appends: AppendSession assumes one writer per set, and one
  // process-wide lock keeps concurrent POST .../append requests from
  // interleaving tail shards (appends are rare and fast next to mines).
  std::mutex append_mu_;
};

}  // namespace specmine

#endif  // SPECMINE_SERVER_SERVER_H_
