// Request admission for specmined's mining routes: a concurrency limit
// plus a bounded wait queue in front of it.
//
// Mining requests are CPU-bound and can each fan out over the whole
// machine, so running every accepted connection at once would thrash;
// instead at most max_concurrent mines run, up to max_queued more wait
// their turn (FIFO via the condition variable), and anything beyond that
// is rejected immediately — the server answers 429 with a Retry-After
// hint rather than queueing without bound (load shedding beats collapse).
//
// Admission is a counting gate, deliberately not a work queue: the
// connection thread itself blocks in Acquire() and then runs the mine on
// its own stack, so no task handoff or future plumbing is needed.

#ifndef SPECMINE_SERVER_ADMISSION_H_
#define SPECMINE_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace specmine {

/// \brief Capacity knobs for the mining-route gate.
struct AdmissionOptions {
  /// Mines running at once (minimum 1).
  size_t max_concurrent = 2;
  /// Requests allowed to wait for a slot; past this, reject.
  size_t max_queued = 8;
  /// The Retry-After hint (seconds) sent with a rejection.
  unsigned retry_after_seconds = 1;
};

/// \brief A concurrency-limited admission gate with a bounded queue.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// \brief Takes a slot, waiting in the queue if one is not free.
  /// Returns false without waiting when the queue is already full (the
  /// caller answers 429) or when Shutdown() has been called.
  bool Acquire();

  /// \brief Returns a slot taken by a successful Acquire().
  void Release();

  /// \brief Wakes every queued waiter and makes all future Acquire()
  /// calls fail; used to drain the server on shutdown.
  void Shutdown();

  /// \brief Mines currently holding a slot (metrics gauge).
  size_t in_flight() const;
  /// \brief Requests currently waiting for a slot (metrics gauge).
  size_t queue_depth() const;

  unsigned retry_after_seconds() const { return options_.retry_after_seconds; }

 private:
  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  size_t running_ = 0;
  size_t waiting_ = 0;
  bool shutdown_ = false;
};

/// \brief RAII slot: releases on destruction if acquired.
class AdmissionPermit {
 public:
  explicit AdmissionPermit(AdmissionController* gate)
      : gate_(gate), admitted_(gate->Acquire()) {}
  ~AdmissionPermit() {
    if (admitted_) gate_->Release();
  }
  AdmissionPermit(const AdmissionPermit&) = delete;
  AdmissionPermit& operator=(const AdmissionPermit&) = delete;

  /// \brief False means the request was shed — answer 429.
  bool admitted() const { return admitted_; }

 private:
  AdmissionController* gate_;
  bool admitted_;
};

}  // namespace specmine

#endif  // SPECMINE_SERVER_ADMISSION_H_
