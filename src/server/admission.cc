#include "src/server/admission.h"

#include <algorithm>

namespace specmine {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  options_.max_concurrent = std::max<size_t>(1, options_.max_concurrent);
}

bool AdmissionController::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return false;
  if (running_ < options_.max_concurrent) {
    ++running_;
    return true;
  }
  if (waiting_ >= options_.max_queued) return false;
  ++waiting_;
  slot_free_.wait(lock, [this] {
    return shutdown_ || running_ < options_.max_concurrent;
  });
  --waiting_;
  if (shutdown_) return false;
  ++running_;
  return true;
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  slot_free_.notify_one();
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  slot_free_.notify_all();
}

size_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

}  // namespace specmine
