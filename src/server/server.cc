#include "src/server/server.h"

#include <sys/socket.h>

#include <chrono>
#include <ctime>
#include <optional>
#include <utility>

#include "src/engine/json_results.h"
#include "src/support/cancel.h"
#include "src/trace/append_session.h"
#include "src/support/json_reader.h"
#include "src/support/json_writer.h"
#include "src/support/version.h"

namespace specmine {

namespace {

HttpResponse ErrorResponse(const Status& status) {
  HttpResponse response;
  response.status = StatusToHttp(status.code());
  JsonWriter writer(&response.body);
  writer.BeginObject();
  writer.Key("error").BeginObject();
  writer.Field("status", StatusCodeName(status.code()));
  writer.Field("http", static_cast<int64_t>(response.status));
  writer.Field("message", status.message());
  writer.EndObject();
  writer.EndObject();
  writer.Finish();
  return response;
}

HttpResponse SimpleError(int http_status, std::string_view message) {
  HttpResponse response;
  response.status = http_status;
  JsonWriter writer(&response.body);
  writer.BeginObject();
  writer.Key("error").BeginObject();
  writer.Field("status", "Http");
  writer.Field("http", static_cast<int64_t>(http_status));
  writer.Field("message", message);
  writer.EndObject();
  writer.EndObject();
  writer.Finish();
  return response;
}

HttpResponse JsonOk(std::string body, int status = 200) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

// Decodes the fields shared by every mining request body.
struct MineCommon {
  std::string corpus;
  BackendChoice backend = BackendChoice::kAuto;
  uint64_t timeout_ms = 0;  // 0 = none.
};

Status DecodeBackend(const JsonValue& body, BackendChoice* out) {
  std::string value = "auto";
  Status status = body.GetString("backend", &value);
  if (!status.ok()) return status;
  if (value == "auto" || value.empty()) {
    *out = BackendChoice::kAuto;
  } else if (value == "csr") {
    *out = BackendChoice::kCsr;
  } else if (value == "bitmap") {
    *out = BackendChoice::kBitmap;
  } else if (value == "hybrid") {
    *out = BackendChoice::kHybrid;
  } else {
    return Status::InvalidArgument("field 'backend' must be auto, csr, "
                                   "bitmap or hybrid (got '" +
                                   value + "')");
  }
  return Status::OK();
}

Status DecodeCommon(const JsonValue& body, MineCommon* out) {
  Status status = body.GetString("corpus", &out->corpus);
  if (!status.ok()) return status;
  if (out->corpus.empty()) {
    return Status::InvalidArgument("field 'corpus' is required");
  }
  status = DecodeBackend(body, &out->backend);
  if (!status.ok()) return status;
  return body.GetUint("timeout_ms", &out->timeout_ms);
}

// Arms \p token's deadline when the request carried a timeout, mirroring
// the CLI's --timeout-ms. The token itself is always handed to the miner
// (unarmed it never fires on its own) so that Stop() can cancel a mine
// that carried no deadline.
const CancelToken* ArmTimeout(const MineCommon& common, CancelToken* token) {
  if (common.timeout_ms != 0) {
    token->SetDeadline(std::chrono::milliseconds(common.timeout_ms));
  }
  return token;
}

std::string NowIso8601() {
  using std::chrono::system_clock;
  std::time_t now = system_clock::to_time_t(system_clock::now());
  std::tm tm_utc;
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace

Server::Server(CorpusRegistry* corpora, ServerOptions options)
    : corpora_(corpora),
      options_(std::move(options)),
      admission_(options_.admission) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  Result<Listener> listener = Listener::Listen(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = listener.TakeValueOrDie();
  port_ = listener_.port();
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  admission_.Shutdown();
  listener_.Shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Stop the CPU-bound work first: a mine with no deadline would
    // otherwise block its connection thread (and this join) forever.
    for (CancelToken* token : active_mines_) token->Cancel();
    // Unblock every connection thread parked in a socket read; the
    // threads observe stopping_ and exit their serve loops.
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    for (auto& [id, thread] : connections_) {
      connections.push_back(std::move(thread));
    }
    connections_.clear();
    for (std::thread& thread : finished_) {
      connections.push_back(std::move(thread));
    }
    finished_.clear();
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
}

size_t Server::connection_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connections_.size() + finished_.size();
}

void Server::ReapFinished() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished.swap(finished_);
  }
  // These threads have already moved their handle here from their own
  // epilogue, so each join returns (almost) immediately.
  for (std::thread& t : finished) t.join();
}

Server::MineRegistration::MineRegistration(Server* server, CancelToken* token)
    : server_(server), token_(token) {
  std::lock_guard<std::mutex> lock(server_->mu_);
  server_->active_mines_.insert(token_);
  // A mine slipping in after Stop() swept active_mines_ must not run.
  if (server_->stopping_.load(std::memory_order_acquire)) token_->Cancel();
}

Server::MineRegistration::~MineRegistration() {
  std::lock_guard<std::mutex> lock(server_->mu_);
  server_->active_mines_.erase(token_);
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<Socket> accepted = listener_.Accept();
    // Join whatever connections finished since the last accept, so a
    // long-lived server never accumulates exited threads.
    ReapFinished();
    if (!accepted.ok()) {
      // Shutdown() fails the pending accept; anything else (e.g. EMFILE)
      // is transient — keep accepting unless we are stopping.
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;
    }
    Socket socket = accepted.TakeValueOrDie();
    if (options_.idle_timeout_seconds != 0) {
      socket.SetReadTimeout(options_.idle_timeout_seconds);
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (connections_.size() >= options_.max_connections) {
      // Shed in-line, never spawning past the cap (the tiny response
      // fits the socket send buffer, so this cannot stall the acceptor).
      HttpResponse response =
          SimpleError(503, "connection limit reached; retry later");
      metrics_.RecordRequest("other", response.status, 0.0);
      (void)socket.WriteAll(response.Serialize(/*keep_alive=*/false));
      continue;  // `socket` closes as it goes out of scope.
    }
    const uint64_t id = next_connection_id_++;
    live_fds_.insert(socket.fd());
    connections_[id] = std::thread(
        [this, id, s = std::move(socket)]() mutable {
          ServeConnection(id, std::move(s));
        });
  }
  ReapFinished();
}

void Server::ServeConnection(uint64_t id, Socket socket) {
  const int fd = socket.fd();
  HttpRequestParser parser(options_.limits);
  std::string pending;  // Bytes read but not yet consumed (pipelining).
  char buffer[16 * 1024];

  bool keep_alive = true;
  while (keep_alive && !stopping_.load(std::memory_order_acquire)) {
    // Feed buffered bytes first, then read more as needed.
    HttpRequestParser::State state = HttpRequestParser::State::kNeedMore;
    while (true) {
      if (!pending.empty()) {
        size_t consumed = 0;
        state = parser.Feed(pending, &consumed);
        pending.erase(0, consumed);
        if (state != HttpRequestParser::State::kNeedMore) break;
      }
      Result<size_t> n = socket.Read(buffer, sizeof(buffer));
      if (!n.ok() || *n == 0) {
        state = HttpRequestParser::State::kNeedMore;
        keep_alive = false;  // Peer closed or connection broke.
        break;
      }
      pending.append(buffer, *n);
    }
    if (!keep_alive && state == HttpRequestParser::State::kNeedMore) break;

    if (state == HttpRequestParser::State::kError) {
      HttpResponse response =
          SimpleError(parser.error_status(), parser.error());
      metrics_.RecordRequest("other", response.status, 0.0);
      (void)socket.WriteAll(response.Serialize(/*keep_alive=*/false));
      break;  // Framing is unrecoverable after a parse error.
    }

    const HttpRequest& request = parser.request();
    keep_alive = request.KeepAlive();

    metrics_.RequestStarted();
    const auto started = std::chrono::steady_clock::now();
    std::string route_label;
    HttpResponse response = Route(request, &route_label);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    metrics_.RequestFinished();
    metrics_.RecordRequest(route_label, response.status, seconds);
    LogRequest(request, response, seconds);

    if (!socket.WriteAll(response.Serialize(keep_alive)).ok()) break;
    parser.Reset();
  }

  // Deregister before closing so Stop() can never shutdown() a reused
  // descriptor number, and hand this thread's own handle to the reap
  // list — the acceptor (or Stop()) joins it, releasing the stack.
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_fds_.erase(fd);
    auto it = connections_.find(id);
    if (it != connections_.end()) {
      finished_.push_back(std::move(it->second));
      connections_.erase(it);
    }
    // Not found: Stop() already moved the handle and will join it.
  }
  socket.Close();
}

HttpResponse Server::Route(const HttpRequest& request,
                           std::string* route_label) {
  const std::string path = request.Path();
  *route_label = "other";
  if (path == "/healthz") {
    *route_label = path;
    if (request.method != "GET") return SimpleError(405, "use GET");
    return HandleHealthz();
  }
  if (path == "/metrics") {
    *route_label = path;
    if (request.method != "GET") return SimpleError(405, "use GET");
    return HandleMetrics();
  }
  if (path == "/corpora") {
    *route_label = path;
    if (request.method == "GET") return HandleListCorpora();
    if (request.method == "POST") return HandleRegisterCorpus(request);
    return SimpleError(405, "use GET or POST");
  }
  constexpr std::string_view kCorporaPrefix = "/corpora/";
  constexpr std::string_view kAppendSuffix = "/append";
  if (path.size() > kCorporaPrefix.size() + kAppendSuffix.size() &&
      path.compare(0, kCorporaPrefix.size(), kCorporaPrefix) == 0 &&
      path.compare(path.size() - kAppendSuffix.size(), kAppendSuffix.size(),
                   kAppendSuffix) == 0) {
    // Bounded-cardinality label: the corpus name stays out of it.
    *route_label = "/corpora/{name}/append";
    if (request.method != "POST") return SimpleError(405, "use POST");
    const std::string name =
        path.substr(kCorporaPrefix.size(),
                    path.size() - kCorporaPrefix.size() - kAppendSuffix.size());
    return HandleAppendCorpus(name, request);
  }
  if (path == "/mine/patterns" || path == "/mine/rules" ||
      path == "/mine/seq" || path == "/mine/episodes" ||
      path == "/mine/pairs") {
    *route_label = path;
    if (request.method != "POST") return SimpleError(405, "use POST");
    return HandleMine(path, request);
  }
  return SimpleError(404, "no route for '" + path + "'");
}

HttpResponse Server::HandleHealthz() const {
  std::string body;
  JsonWriter writer(&body);
  writer.BeginObject();
  writer.Field("status", "ok");
  writer.Field("version", VersionString());
  writer.Field("revision", GitRevision());
  writer.Field("corpora", static_cast<uint64_t>(corpora_->size()));
  writer.EndObject();
  writer.Finish();
  return JsonOk(std::move(body));
}

HttpResponse Server::HandleMetrics() const {
  ScrapeGauges gauges;
  gauges.mines_in_flight = admission_.in_flight();
  gauges.mine_queue_depth = admission_.queue_depth();
  gauges.corpora = corpora_->size();
  gauges.quarantined_shards = corpora_->quarantined_shards();
  for (const CorpusInfo& info : corpora_->List()) {
    gauges.corpus_generations.emplace_back(info.name, info.generation);
  }
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = metrics_.Render(gauges);
  return response;
}

HttpResponse Server::HandleListCorpora() const {
  std::string body;
  JsonWriter writer(&body);
  writer.BeginObject();
  writer.Key("corpora").BeginArray();
  for (const CorpusInfo& info : corpora_->List()) {
    writer.BeginObject();
    writer.Field("name", info.name);
    writer.Field("path", info.path);
    writer.Field("sequences", info.sequences);
    writer.Field("events", info.events);
    writer.Field("distinct_events", info.distinct_events);
    writer.Field("shards", info.shards);
    writer.Field("quarantined_shards", info.quarantined_shards);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  writer.Finish();
  return JsonOk(std::move(body));
}

HttpResponse Server::HandleRegisterCorpus(const HttpRequest& request) const {
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) return ErrorResponse(body.status());
  std::string name, path, integrity = "header";
  bool quarantine = false;
  Status status = body->GetString("name", &name);
  if (status.ok()) status = body->GetString("path", &path);
  if (status.ok()) status = body->GetString("integrity", &integrity);
  if (status.ok()) status = body->GetBool("quarantine", &quarantine);
  if (!status.ok()) return ErrorResponse(status);
  if (name.empty() || path.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("fields 'name' and 'path' are required"));
  }
  CorpusOpenOptions options;
  options.quarantine = quarantine;
  if (integrity == "off") {
    options.integrity = IntegrityMode::kOff;
  } else if (integrity == "header" || integrity.empty()) {
    options.integrity = IntegrityMode::kHeader;
  } else if (integrity == "full") {
    options.integrity = IntegrityMode::kFull;
  } else {
    return ErrorResponse(Status::InvalidArgument(
        "field 'integrity' must be off, header or full (got '" + integrity +
        "')"));
  }
  status = corpora_->Register(name, path, options);
  if (!status.ok()) return ErrorResponse(status);

  std::string out;
  JsonWriter writer(&out);
  writer.BeginObject();
  writer.Field("registered", name);
  writer.Field("path", path);
  writer.EndObject();
  writer.Finish();
  return JsonOk(std::move(out), 201);
}

HttpResponse Server::HandleAppendCorpus(const std::string& name,
                                        const HttpRequest& request) {
  // Appends share the mines' admission gate: they are real IO + commit
  // work and must not be free under load.
  AdmissionPermit permit(&admission_);
  if (!permit.admitted()) {
    metrics_.RecordRejected();
    HttpResponse response =
        SimpleError(429, "mining capacity exhausted; retry later");
    response.headers.emplace_back(
        "Retry-After", std::to_string(admission_.retry_after_seconds()));
    return response;
  }

  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const JsonValue* traces = parsed->Find("traces");
  if (traces == nullptr || !traces->is_array()) {
    return ErrorResponse(Status::InvalidArgument(
        "field 'traces' (array of space-separated event-name strings) is "
        "required"));
  }
  uint64_t shard_bytes = 0;
  bool seal = false;
  Status status = parsed->GetUint("shard_bytes", &shard_bytes);
  if (status.ok()) status = parsed->GetBool("seal", &seal);
  if (!status.ok()) return ErrorResponse(status);

  const std::string path = corpora_->PathOf(name);
  if (path.empty()) {
    return ErrorResponse(Status::NotFound("no corpus named '" + name + "'"));
  }
  if (!IsSmdbSetPath(path)) {
    return ErrorResponse(Status::InvalidArgument(
        "corpus '" + name + "' is not a sharded .smdbset corpus (append "
        "requires one; repack with 'specmine pack ... out.smdbset')"));
  }

  uint64_t generation = 0;
  uint64_t appended = 0;
  {
    // One append at a time: AppendSession assumes a single writer per set.
    std::lock_guard<std::mutex> lock(append_mu_);
    AppendOptions options;
    if (shard_bytes != 0) options.writer.shard_bytes = shard_bytes;
    Result<AppendSession> opened = AppendSession::Open(path, options);
    if (!opened.ok()) return ErrorResponse(opened.status());
    AppendSession session = opened.TakeValueOrDie();
    for (const JsonValue& line : traces->AsArray()) {
      if (!line.is_string()) {
        return ErrorResponse(Status::InvalidArgument(
            "field 'traces' must contain only strings"));
      }
      Status added = session.AddTraceFromString(line.AsString());
      if (!added.ok()) return ErrorResponse(added);
    }
    if (seal) {
      Status sealed = session.Seal();
      if (!sealed.ok()) return ErrorResponse(sealed);
    }
    Status committed = session.Commit();
    if (!committed.ok()) return ErrorResponse(committed);
    generation = session.committed_generation();
    appended = session.appended_sequences();
  }

  // Swap the fresh generation in; mines already running keep their old
  // session alive through their shared_ptr.
  Status reopened = corpora_->Reopen(name);
  if (!reopened.ok()) return ErrorResponse(reopened);
  metrics_.RecordAppend(appended);

  std::shared_ptr<const Engine> engine = corpora_->Find(name);
  std::string out;
  JsonWriter writer(&out);
  writer.BeginObject();
  writer.Field("corpus", name);
  writer.Field("appended", appended);
  writer.Field("generation", generation);
  if (engine != nullptr) {
    writer.Field("sequences", static_cast<uint64_t>(engine->num_sequences()));
    if (engine->sharded()) {
      writer.Field("shards",
                   static_cast<uint64_t>(engine->shard_set().num_shards()));
    }
  }
  writer.EndObject();
  writer.Finish();
  return JsonOk(std::move(out));
}

HttpResponse Server::HandleMine(const std::string& path,
                                const HttpRequest& request) {
  AdmissionPermit permit(&admission_);
  if (!permit.admitted()) {
    metrics_.RecordRejected();
    HttpResponse response =
        SimpleError(429, "mining capacity exhausted; retry later");
    response.headers.emplace_back(
        "Retry-After", std::to_string(admission_.retry_after_seconds()));
    return response;
  }

  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const JsonValue& body = *parsed;
  MineCommon common;
  Status status = DecodeCommon(body, &common);
  if (!status.ok()) return ErrorResponse(status);
  std::shared_ptr<const Engine> engine = corpora_->Find(common.corpus);
  if (engine == nullptr) {
    return ErrorResponse(
        Status::NotFound("no corpus named '" + common.corpus + "'"));
  }
  // dictionary(), not database(): mining a sharded corpus must not
  // materialize its merged arena just to render event names.
  const EventDictionary& dict = engine->dictionary();
  CancelToken token;
  MineRegistration registration(this, &token);  // Stop() cancels us.
  const CancelToken* cancel = ArmTimeout(common, &token);

  // Index-cache accounting: report.index_build_seconds is non-zero only
  // for the call that actually paid a build, so it is a per-call signal —
  // unlike a diff of the global index_builds() counter, it cannot
  // misattribute a concurrent request's build to this one.
  const auto record = [&](const RunReport& report, uint64_t patterns,
                          uint64_t rules) {
    std::optional<bool> hit;
    if (!report.backend.empty()) {
      hit = report.index_build_seconds == 0.0;
    }
    metrics_.RecordMine(report.backend, hit, patterns, rules);
  };

  if (path == "/mine/patterns") {
    double min_sup = 0.5;
    uint64_t max_len = 0, threads = 0;
    bool full = false, generators = false;
    status = body.GetDouble("min_sup", &min_sup);
    if (status.ok()) status = body.GetUint("max_len", &max_len);
    if (status.ok()) status = body.GetUint("threads", &threads);
    if (status.ok()) status = body.GetBool("full", &full);
    if (status.ok()) status = body.GetBool("generators", &generators);
    if (!status.ok()) return ErrorResponse(status);
    const uint64_t min_support = engine->AbsoluteSupport(min_sup);
    RunReport report;
    Result<PatternSet> mined = [&]() -> Result<PatternSet> {
      if (generators) {
        GeneratorsTask task;
        task.options.min_support = min_support;
        task.options.max_length = max_len;
        task.options.num_threads = threads;
        task.options.backend = common.backend;
        task.options.cancel = cancel;
        return engine->CollectPatterns(task, &report);
      }
      FullPatternsTask full_task;
      full_task.options.min_support = min_support;
      full_task.options.max_length = max_len;
      full_task.options.num_threads = threads;
      full_task.options.backend = common.backend;
      full_task.options.cancel = cancel;
      if (full) {
        if (engine->sharded()) {
          // The parallel per-shard path (byte-identical output by the
          // sharded-equivalence contract) — same dispatch as the CLI.
          CollectingPatternSink sink;
          Result<RunReport> run = engine->MineSharded(full_task, sink);
          if (!run.ok()) return run.status();
          report = *run;
          return sink.TakeSet();
        }
        return engine->CollectPatterns(full_task, &report);
      }
      ClosedTask task;
      task.options.min_support = min_support;
      task.options.max_length = max_len;
      task.options.num_threads = threads;
      task.options.backend = common.backend;
      task.options.cancel = cancel;
      return engine->CollectPatterns(task, &report);
    }();
    if (!mined.ok()) return ErrorResponse(mined.status());
    PatternSet patterns = mined.TakeValueOrDie();
    patterns.SortBySupport();
    record(report, patterns.size(), 0);
    return JsonOk(PatternsResultToJson(report, patterns, dict));
  }

  if (path == "/mine/rules") {
    RulesTask task;
    double min_ssup = 0.5, min_conf = 0.9;
    uint64_t min_isup = 1, max_pre = 0, max_post = 0, threads = 0;
    bool full = false, backward = false;
    status = body.GetDouble("min_ssup", &min_ssup);
    if (status.ok()) status = body.GetDouble("min_conf", &min_conf);
    if (status.ok()) status = body.GetUint("min_isup", &min_isup);
    if (status.ok()) status = body.GetUint("max_pre", &max_pre);
    if (status.ok()) status = body.GetUint("max_post", &max_post);
    if (status.ok()) status = body.GetUint("threads", &threads);
    if (status.ok()) status = body.GetBool("full", &full);
    if (status.ok()) status = body.GetBool("backward", &backward);
    if (!status.ok()) return ErrorResponse(status);
    task.options.min_s_support = engine->AbsoluteSupport(min_ssup);
    task.options.min_confidence = min_conf;
    task.options.min_i_support = min_isup;
    task.options.non_redundant = !full;
    task.options.max_premise_length = max_pre;
    task.options.max_consequent_length = max_post;
    task.options.num_threads = threads;
    task.options.backend = common.backend;
    task.options.cancel = cancel;
    task.backward = backward;
    RunReport report;
    Result<RuleSet> mined = engine->CollectRules(task, &report);
    if (!mined.ok()) return ErrorResponse(mined.status());
    RuleSet rules = mined.TakeValueOrDie();
    rules.SortByQuality();
    record(report, 0, rules.size());
    return JsonOk(RulesResultToJson(report, rules, dict));
  }

  if (path == "/mine/seq") {
    double min_sup = 0.5;
    uint64_t max_len = 0;
    bool closed = false, generators = false;
    status = body.GetDouble("min_sup", &min_sup);
    if (status.ok()) status = body.GetUint("max_len", &max_len);
    if (status.ok()) status = body.GetBool("closed", &closed);
    if (status.ok()) status = body.GetBool("generators", &generators);
    if (!status.ok()) return ErrorResponse(status);
    const uint64_t min_support = engine->AbsoluteSupport(min_sup);
    RunReport report;
    Result<PatternSet> mined = [&]() -> Result<PatternSet> {
      if (generators) {
        SequentialGeneratorsTask task;
        task.options.min_support = min_support;
        task.options.max_length = max_len;
        task.options.cancel = cancel;
        return engine->CollectPatterns(task, &report);
      }
      if (closed) {
        ClosedSequentialTask task;
        task.options.min_support = min_support;
        task.options.max_length = max_len;
        task.options.cancel = cancel;
        return engine->CollectPatterns(task, &report);
      }
      SequentialTask task;
      task.options.min_support = min_support;
      task.options.max_length = max_len;
      task.options.cancel = cancel;
      return engine->CollectPatterns(task, &report);
    }();
    if (!mined.ok()) return ErrorResponse(mined.status());
    PatternSet patterns = mined.TakeValueOrDie();
    patterns.SortBySupport();
    record(report, patterns.size(), 0);
    return JsonOk(PatternsResultToJson(report, patterns, dict));
  }

  if (path == "/mine/episodes") {
    uint64_t window = 10, min_count = 1, max_len = 0;
    bool minepi = false;
    status = body.GetUint("window", &window);
    if (status.ok()) status = body.GetUint("min_count", &min_count);
    if (status.ok()) status = body.GetUint("max_len", &max_len);
    if (status.ok()) status = body.GetBool("minepi", &minepi);
    if (!status.ok()) return ErrorResponse(status);
    EpisodeTask task;
    if (minepi) {
      task.algorithm = EpisodeTask::Algorithm::kMinepi;
      task.minepi.max_window = window;
      task.minepi.min_support = min_count;
      task.minepi.max_length = max_len;
      task.minepi.cancel = cancel;
    } else {
      task.winepi.window_width = window;
      task.winepi.min_window_count = min_count;
      task.winepi.max_length = max_len;
      task.winepi.cancel = cancel;
    }
    RunReport report;
    Result<PatternSet> mined = engine->CollectPatterns(task, &report);
    if (!mined.ok()) return ErrorResponse(mined.status());
    PatternSet episodes = mined.TakeValueOrDie();
    episodes.SortBySupport();
    record(report, episodes.size(), 0);
    return JsonOk(PatternsResultToJson(report, episodes, dict));
  }

  // /mine/pairs.
  TwoEventTask task;
  double min_sat = 1.0;
  uint64_t min_relevant = 1;
  status = body.GetDouble("min_sat", &min_sat);
  if (status.ok()) status = body.GetUint("min_relevant", &min_relevant);
  if (!status.ok()) return ErrorResponse(status);
  task.options.min_satisfaction = min_sat;
  task.options.min_relevant_traces = min_relevant;
  task.options.cancel = cancel;
  CollectingTwoEventSink sink;
  Result<RunReport> report = engine->Mine(task, sink);
  if (!report.ok()) return ErrorResponse(report.status());
  record(*report, 0, sink.rules().size());
  return JsonOk(TwoEventResultToJson(*report, sink.rules(), dict));
}

void Server::LogRequest(const HttpRequest& request,
                        const HttpResponse& response, double seconds) {
  if (options_.log == nullptr) return;
  // Hand-assembled compact JSON: the pretty-printing JsonWriter is for
  // result documents; a log line must stay one line.
  std::string line = "{\"ts\":\"" + NowIso8601() + "\",\"method\":\"" +
                     JsonEscape(request.method) + "\",\"path\":\"" +
                     JsonEscape(request.Path()) + "\",\"status\":" +
                     std::to_string(response.status) + ",\"seconds\":" +
                     JsonDouble(seconds) + ",\"bytes_out\":" +
                     std::to_string(response.body.size()) + "}";
  std::lock_guard<std::mutex> lock(log_mu_);
  *options_.log << line << '\n' << std::flush;
}

}  // namespace specmine
