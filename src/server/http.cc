#include "src/server/http.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace specmine {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// A token per RFC 9110: no separators, no control bytes. Enough to reject
// request lines with embedded whitespace tricks.
bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (c <= ' ' || c >= 127) return false;
    if (std::string_view("()<>@,;:\\\"/[]?={}").find(static_cast<char>(c)) !=
        std::string_view::npos) {
      return false;
    }
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string HttpRequest::Path() const {
  size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = FindHeader("connection");
  if (version == "HTTP/1.0") {
    return connection != nullptr && ToLower(*connection) == "keep-alive";
  }
  return connection == nullptr || ToLower(*connection) != "close";
}

HttpRequestParser::State HttpRequestParser::Fail(int http_status,
                                                 std::string message) {
  phase_ = Phase::kFailed;
  error_status_ = http_status;
  error_ = std::move(message);
  return State::kError;
}

bool HttpRequestParser::ParseRequestLine(std::string_view line) {
  size_t first = line.find(' ');
  size_t last = line.rfind(' ');
  if (first == std::string_view::npos || last == first) {
    Fail(400, "malformed request line: '" + std::string(line) + "'");
    return false;
  }
  std::string_view method = line.substr(0, first);
  std::string_view target = line.substr(first + 1, last - first - 1);
  std::string_view version = line.substr(last + 1);
  if (!IsToken(method)) {
    Fail(400, "malformed method in request line");
    return false;
  }
  if (target.empty() || target.find(' ') != std::string_view::npos) {
    Fail(400, "malformed request target");
    return false;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    Fail(505, "unsupported protocol version: '" + std::string(version) + "'");
    return false;
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  request_.version = std::string(version);
  return true;
}

bool HttpRequestParser::ParseHeaderLine(std::string_view line) {
  size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    Fail(400, "malformed header line: '" + std::string(line) + "'");
    return false;
  }
  std::string_view name = line.substr(0, colon);
  if (name.back() == ' ' || name.back() == '\t') {
    // Whitespace between field name and colon is a smuggling vector;
    // RFC 9112 requires rejection.
    Fail(400, "whitespace before ':' in header line");
    return false;
  }
  request_.headers.emplace_back(ToLower(name),
                                std::string(Trim(line.substr(colon + 1))));
  return true;
}

bool HttpRequestParser::BeginBody() {
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    Fail(501, "chunked transfer encoding is not supported");
    return false;
  }
  // RFC 9112 §6.3: conflicting Content-Length values are a request-
  // smuggling vector when a proxy and this server frame differently —
  // reject every repeated header outright (the digits-only check below
  // already rejects the list form "5, 5" in a single header).
  const std::string* length = nullptr;
  for (const auto& [name, value] : request_.headers) {
    if (name != "content-length") continue;
    if (length != nullptr) {
      Fail(400, "multiple Content-Length headers");
      return false;
    }
    length = &value;
  }
  if (length == nullptr) {
    body_expected_ = 0;
    return true;
  }
  if (length->empty() ||
      length->find_first_not_of("0123456789") != std::string::npos) {
    Fail(400, "malformed Content-Length: '" + *length + "'");
    return false;
  }
  errno = 0;
  unsigned long long parsed = std::strtoull(length->c_str(), nullptr, 10);
  if (errno != 0 || parsed > limits_.max_body_bytes) {
    Fail(413, "request body of " + *length + " bytes exceeds the " +
                  std::to_string(limits_.max_body_bytes) + " byte limit");
    return false;
  }
  body_expected_ = static_cast<size_t>(parsed);
  return true;
}

HttpRequestParser::State HttpRequestParser::Feed(std::string_view data,
                                                 size_t* consumed) {
  *consumed = 0;
  if (phase_ == Phase::kDone) return State::kComplete;
  if (phase_ == Phase::kFailed) return State::kError;

  while (true) {
    if (phase_ == Phase::kBody) {
      size_t need = body_expected_ - request_.body.size();
      size_t take = std::min(need, data.size() - *consumed);
      request_.body.append(data.substr(*consumed, take));
      *consumed += take;
      if (request_.body.size() < body_expected_) return State::kNeedMore;
      phase_ = Phase::kDone;
      return State::kComplete;
    }

    // Line phases: accumulate until CRLF (bare LF tolerated).
    size_t newline = data.find('\n', *consumed);
    if (newline == std::string_view::npos) {
      buffer_.append(data.substr(*consumed));
      *consumed = data.size();
      const size_t cap = phase_ == Phase::kRequestLine
                             ? limits_.max_request_line_bytes
                             : limits_.max_header_bytes - header_bytes_;
      if (buffer_.size() > cap) {
        return Fail(phase_ == Phase::kRequestLine ? 414 : 431,
                    phase_ == Phase::kRequestLine
                        ? "request line exceeds limit"
                        : "header block exceeds limit");
      }
      return State::kNeedMore;
    }
    buffer_.append(data.substr(*consumed, newline - *consumed));
    *consumed = newline + 1;
    if (!buffer_.empty() && buffer_.back() == '\r') buffer_.pop_back();
    std::string line = std::move(buffer_);
    buffer_.clear();

    if (phase_ == Phase::kRequestLine) {
      if (line.empty()) continue;  // RFC 9112: leading empty lines ignored.
      if (line.size() > limits_.max_request_line_bytes) {
        return Fail(414, "request line exceeds limit");
      }
      if (!ParseRequestLine(line)) return State::kError;
      phase_ = Phase::kHeaders;
      continue;
    }

    // Phase::kHeaders.
    if (line.empty()) {
      if (!BeginBody()) return State::kError;
      if (body_expected_ == 0) {
        phase_ = Phase::kDone;
        return State::kComplete;
      }
      phase_ = Phase::kBody;
      continue;
    }
    header_bytes_ += line.size() + 2;
    if (header_bytes_ > limits_.max_header_bytes) {
      return Fail(431, "header block exceeds limit");
    }
    if (!ParseHeaderLine(line)) return State::kError;
  }
}

void HttpRequestParser::Reset() {
  phase_ = Phase::kRequestLine;
  buffer_.clear();
  request_ = HttpRequest();
  header_bytes_ = 0;
  body_expected_ = 0;
  error_status_ = 0;
  error_.clear();
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

int StatusToHttp(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kParseError:
      return 422;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kIOError:
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

std::string HttpResponse::Serialize(bool keep_alive) const {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += HttpReasonPhrase(status);
  out += "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\n";
  out += "Content-Length: ";
  out += std::to_string(body.size());
  out += "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace specmine
