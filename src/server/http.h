// HTTP/1.1 message layer for specmined: an incremental request parser, a
// response builder, and the single Status -> HTTP status mapping every
// handler goes through.
//
// The parser is a push parser: the connection loop feeds it raw bytes as
// they arrive and it reports kNeedMore / kComplete / kError. Completed
// requests leave any trailing bytes unconsumed, which is what makes
// pipelined keep-alive connections work — the loop Reset()s the parser
// and feeds the leftover straight back in. Errors carry the HTTP status
// the server should answer with (400 malformed, 413 oversized body, 431
// oversized header block, 501 unsupported transfer encoding, 505 bad
// version) so the transport layer never guesses.
//
// Scope is deliberately the subset specmined speaks: Content-Length
// bodies only (no chunked encoding — a chunked request is answered 501),
// no multiline header folding, CONNECT/Upgrade not supported.

#ifndef SPECMINE_SERVER_HTTP_H_
#define SPECMINE_SERVER_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/support/status.h"

namespace specmine {

/// \brief Size caps the parser enforces; oversize input fails parsing
/// with the matching HTTP status instead of buffering without bound.
struct HttpLimits {
  /// Request line cap (method + target + version).
  size_t max_request_line_bytes = 8 * 1024;
  /// Combined header block cap (-> 431).
  size_t max_header_bytes = 64 * 1024;
  /// Body cap (-> 413). Mining request bodies are small JSON documents;
  /// the default is generous.
  size_t max_body_bytes = 4 * 1024 * 1024;
};

/// \brief One parsed request.
struct HttpRequest {
  std::string method;   // Uppercase by convention of the wire format.
  std::string target;   // Path plus optional query, exactly as sent.
  std::string version;  // "HTTP/1.0" or "HTTP/1.1".
  /// Headers in arrival order; names lowercased (field names are
  /// case-insensitive), values trimmed of surrounding whitespace.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// \brief The first header named \p name (lowercase), or nullptr.
  const std::string* FindHeader(std::string_view name) const;

  /// \brief The target's path component (query string stripped).
  std::string Path() const;

  /// \brief Whether the connection should stay open after the response:
  /// HTTP/1.1 unless "Connection: close", HTTP/1.0 only with
  /// "Connection: keep-alive".
  bool KeepAlive() const;
};

/// \brief Incremental HTTP/1.1 request parser (one request at a time).
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  explicit HttpRequestParser(HttpLimits limits = HttpLimits())
      : limits_(limits) {}

  /// \brief Consumes bytes from \p data. Returns the parser state after
  /// consuming; *consumed reports how many bytes were taken (on
  /// kComplete, bytes past the end of the request are left for the next
  /// parse — pipelining). Once kComplete or kError is reached, further
  /// Feed calls consume nothing until Reset().
  State Feed(std::string_view data, size_t* consumed);

  /// \brief The parsed request; valid once Feed returned kComplete.
  const HttpRequest& request() const { return request_; }

  /// \brief The HTTP status to answer with; valid in State::kError.
  int error_status() const { return error_status_; }
  /// \brief Human-readable parse error; valid in State::kError.
  const std::string& error() const { return error_; }

  /// \brief Clears all state for the next request on the connection.
  void Reset();

 private:
  enum class Phase { kRequestLine, kHeaders, kBody, kDone, kFailed };

  State Fail(int http_status, std::string message);
  bool ParseRequestLine(std::string_view line);
  bool ParseHeaderLine(std::string_view line);
  // Runs after the blank line: validates Content-Length / Transfer-
  // Encoding and decides whether a body follows.
  bool BeginBody();

  HttpLimits limits_;
  Phase phase_ = Phase::kRequestLine;
  std::string buffer_;  // Unconsumed partial line / body bytes.
  HttpRequest request_;
  size_t header_bytes_ = 0;
  size_t body_expected_ = 0;
  int error_status_ = 0;
  std::string error_;
};

/// \brief One response under construction.
struct HttpResponse {
  int status = 200;
  /// Content-Type of \p body; Content-Length is always computed.
  std::string content_type = "application/json";
  /// Extra headers (e.g. Retry-After) beyond the computed set.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// \brief Serializes status line, headers and body. \p keep_alive
  /// controls the Connection header.
  std::string Serialize(bool keep_alive) const;
};

/// \brief The canonical reason phrase for \p status ("OK", "Not Found",
/// ...); "Unknown" for statuses the server never emits.
const char* HttpReasonPhrase(int status);

/// \brief The one Status -> HTTP mapping (every handler and test goes
/// through this; keep it exhaustive over StatusCode):
///   kOk -> 200, kInvalidArgument/kOutOfRange -> 400, kNotFound -> 404,
///   kParseError -> 422, kCancelled -> 499 (client closed request),
///   kDeadlineExceeded -> 504, kIOError/kInternal -> 500.
int StatusToHttp(StatusCode code);

}  // namespace specmine

#endif  // SPECMINE_SERVER_HTTP_H_
