// The server's corpus table: name -> long-lived Engine session.
//
// Each registered corpus is opened once (text traces, CSV, packed .smdb,
// or sharded .smdbset — the same dispatch the CLI uses) and its Engine is
// cached for the lifetime of the process, so every request against that
// corpus shares the warm index/pool caches (the whole point of the
// server: pay for index construction once, not per request). Sessions are
// handed out as shared_ptr<const Engine>: an append (POST
// /corpora/{name}/append) swaps in a freshly opened session at the new
// generation via Reopen(), and any mine still running against the old
// generation keeps its reference alive until it finishes —
// Engine::Mine is safe for concurrent readers of one session.

#ifndef SPECMINE_SERVER_CORPUS_REGISTRY_H_
#define SPECMINE_SERVER_CORPUS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/support/status.h"
#include "src/trace/binary_format.h"
#include "src/trace/shard_set.h"

namespace specmine {

/// \brief How to open a corpus (mirrors the CLI's --integrity and
/// --quarantine flags).
struct CorpusOpenOptions {
  IntegrityMode integrity = IntegrityMode::kHeader;
  /// .smdbset only: mine the healthy subset instead of failing the open.
  bool quarantine = false;
};

/// \brief A registered corpus.
struct CorpusInfo {
  std::string name;
  std::string path;
  uint64_t sequences = 0;
  uint64_t events = 0;
  uint64_t distinct_events = 0;
  uint64_t shards = 0;              // 0 for unsharded corpora.
  uint64_t quarantined_shards = 0;
  /// Manifest generation (sharded corpora only; bumped by every committed
  /// append). 0 for unsharded corpora and freshly packed sets.
  uint64_t generation = 0;
};

/// \brief Thread-safe name -> Engine table.
class CorpusRegistry {
 public:
  /// \brief Opens \p path and registers it as \p name. Fails with
  /// InvalidArgument on a duplicate or empty name; open failures pass
  /// through (NotFound / ParseError / ...).
  Status Register(const std::string& name, const std::string& path,
                  const CorpusOpenOptions& options);

  /// \brief The session for \p name, or nullptr. The returned reference
  /// keeps the session alive even if an append swaps in a newer
  /// generation mid-request.
  std::shared_ptr<const Engine> Find(const std::string& name) const;

  /// \brief Re-opens \p name's path (same open options as registration)
  /// and atomically swaps the fresh session in. In-flight requests holding
  /// the old shared_ptr continue against the old generation; new Find()
  /// calls see the new one. Called after an append commits.
  Status Reopen(const std::string& name);

  /// \brief The path \p name was registered from (empty if unknown).
  std::string PathOf(const std::string& name) const;

  /// \brief Every registered corpus, in name order.
  std::vector<CorpusInfo> List() const;

  size_t size() const;

  /// \brief Total quarantined shards across all corpora (metrics gauge).
  uint64_t quarantined_shards() const;

 private:
  struct Entry {
    std::shared_ptr<const Engine> engine;
    CorpusInfo info;
    CorpusOpenOptions options;  // For Reopen() after an append.
  };

  // Opens path and fills a complete Entry (no lock held).
  static Result<Entry> OpenEntry(const std::string& name,
                                 const std::string& path,
                                 const CorpusOpenOptions& options);

  mutable std::mutex mu_;
  std::map<std::string, Entry> corpora_;
};

}  // namespace specmine

#endif  // SPECMINE_SERVER_CORPUS_REGISTRY_H_
