#include "src/server/corpus_registry.h"

#include <utility>

namespace specmine {

namespace {

Result<Engine> OpenCorpus(const std::string& path,
                          const CorpusOpenOptions& options) {
  if (IsSmdbSetPath(path)) {
    SetOpenOptions open;
    open.integrity = options.integrity;
    open.policy = options.quarantine ? ShardFailurePolicy::kQuarantine
                                     : ShardFailurePolicy::kFail;
    return Engine::FromShardSet(path, open);
  }
  if (IsSmdbPath(path)) {
    SmdbOpenOptions open;
    open.integrity = options.integrity;
    return Engine::FromBinaryFile(path, open);
  }
  return Engine::FromTextTraceFile(path);
}

}  // namespace

Result<CorpusRegistry::Entry> CorpusRegistry::OpenEntry(
    const std::string& name, const std::string& path,
    const CorpusOpenOptions& options) {
  Result<Engine> opened = OpenCorpus(path, options);
  if (!opened.ok()) return opened.status();

  Entry entry;
  entry.engine = std::make_shared<const Engine>(opened.TakeValueOrDie());
  entry.options = options;
  entry.info.name = name;
  entry.info.path = path;
  // Metadata accessors, not database(): a sharded corpus registers
  // without ever materializing its merged arena.
  entry.info.sequences = entry.engine->num_sequences();
  entry.info.events = entry.engine->total_events();
  entry.info.distinct_events = entry.engine->dictionary().size();
  if (entry.engine->sharded()) {
    const ShardedDatabase& set = entry.engine->shard_set();
    entry.info.shards = set.num_shards();
    entry.info.quarantined_shards = set.open_report().quarantined.size();
    entry.info.generation = set.generation();
  }
  return entry;
}

Status CorpusRegistry::Register(const std::string& name,
                                const std::string& path,
                                const CorpusOpenOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("corpus name must be non-empty");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (corpora_.count(name) > 0) {
      return Status::InvalidArgument("corpus '" + name +
                                     "' is already registered");
    }
  }
  // Open outside the lock: .smdbset validation can be slow and must not
  // block lookups for in-flight requests.
  Result<Entry> entry = OpenEntry(name, path, options);
  if (!entry.ok()) return entry.status();

  std::lock_guard<std::mutex> lock(mu_);
  // Two concurrent registrations of the same name can both pass the
  // early check; the second insert loses and reports the duplicate.
  auto [it, inserted] = corpora_.emplace(name, entry.TakeValueOrDie());
  if (!inserted) {
    return Status::InvalidArgument("corpus '" + name +
                                   "' is already registered");
  }
  return Status::OK();
}

Status CorpusRegistry::Reopen(const std::string& name) {
  std::string path;
  CorpusOpenOptions options;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = corpora_.find(name);
    if (it == corpora_.end()) {
      return Status::NotFound("corpus '" + name + "' is not registered");
    }
    path = it->second.info.path;
    options = it->second.options;
  }
  // Open outside the lock, then swap: in-flight mines keep their old
  // shared_ptr, new lookups see the new generation.
  Result<Entry> fresh = OpenEntry(name, path, options);
  if (!fresh.ok()) return fresh.status();

  std::lock_guard<std::mutex> lock(mu_);
  auto it = corpora_.find(name);
  if (it == corpora_.end()) {
    return Status::NotFound("corpus '" + name + "' is not registered");
  }
  it->second = fresh.TakeValueOrDie();
  return Status::OK();
}

std::shared_ptr<const Engine> CorpusRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = corpora_.find(name);
  return it == corpora_.end() ? nullptr : it->second.engine;
}

std::string CorpusRegistry::PathOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = corpora_.find(name);
  return it == corpora_.end() ? std::string() : it->second.info.path;
}

std::vector<CorpusInfo> CorpusRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CorpusInfo> out;
  out.reserve(corpora_.size());
  for (const auto& [name, entry] : corpora_) out.push_back(entry.info);
  return out;
}

size_t CorpusRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corpora_.size();
}

uint64_t CorpusRegistry::quarantined_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, entry] : corpora_) {
    total += entry.info.quarantined_shards;
  }
  return total;
}

}  // namespace specmine
