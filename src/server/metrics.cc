#include "src/server/metrics.h"

#include "src/itermine/simd_kernels.h"
#include "src/support/json_writer.h"

namespace specmine {

namespace {

void AppendHelp(std::string& out, const char* name, const char* type,
                const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void AppendValue(std::string& out, uint64_t value) {
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

void ServerMetrics::RecordRequest(const std::string& route, int http_status,
                                  double seconds) {
  RouteSeries* series = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<RouteSeries>& slot = routes_[route];
    if (slot == nullptr) slot = std::make_unique<RouteSeries>();
    slot->requests_by_status[http_status] += 1;
    series = slot.get();
  }
  series->latency.Observe(seconds);
}

void ServerMetrics::RecordMine(const std::string& backend,
                               std::optional<bool> index_cache_hit,
                               uint64_t patterns_emitted,
                               uint64_t rules_emitted) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    backends_[backend.empty() ? "none" : backend] += 1;
  }
  if (index_cache_hit.has_value()) {
    (*index_cache_hit ? index_cache_hits_ : index_cache_misses_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  patterns_emitted_.fetch_add(patterns_emitted, std::memory_order_relaxed);
  rules_emitted_.fetch_add(rules_emitted, std::memory_order_relaxed);
}

std::string ServerMetrics::Render(const ScrapeGauges& gauges) const {
  std::string out;
  out.reserve(4096);
  std::lock_guard<std::mutex> lock(mu_);

  AppendHelp(out, "specmined_requests_total", "counter",
             "Requests finished, by route and HTTP status code.");
  for (const auto& [route, series] : routes_) {
    for (const auto& [status, count] : series->requests_by_status) {
      out += "specmined_requests_total{route=\"" + JsonEscape(route) +
             "\",code=\"" + std::to_string(status) + "\"}";
      AppendValue(out, count);
    }
  }

  AppendHelp(out, "specmined_request_duration_seconds", "histogram",
             "Wall-clock request latency, by route.");
  for (const auto& [route, series] : routes_) {
    const std::string label = "{route=\"" + JsonEscape(route) + "\"";
    BucketHistogram::Snapshot snap = series->latency.Snap();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.bucket_counts.size(); ++i) {
      cumulative += snap.bucket_counts[i];
      out += "specmined_request_duration_seconds_bucket" + label + ",le=\"";
      out += i < snap.upper_bounds.size() ? JsonDouble(snap.upper_bounds[i])
                                          : std::string("+Inf");
      out += "\"}";
      AppendValue(out, cumulative);
    }
    out += "specmined_request_duration_seconds_sum" + label + "} " +
           JsonDouble(snap.sum) + "\n";
    out += "specmined_request_duration_seconds_count" + label + "}";
    AppendValue(out, snap.count);
  }

  AppendHelp(out, "specmined_requests_in_flight", "gauge",
             "Requests currently being served (all routes).");
  out += "specmined_requests_in_flight " +
         std::to_string(in_flight_.load(std::memory_order_relaxed)) + "\n";

  AppendHelp(out, "specmined_mines_in_flight", "gauge",
             "Mining tasks currently holding an admission slot.");
  out += "specmined_mines_in_flight";
  AppendValue(out, gauges.mines_in_flight);

  AppendHelp(out, "specmined_mine_queue_depth", "gauge",
             "Mining requests waiting for an admission slot.");
  out += "specmined_mine_queue_depth";
  AppendValue(out, gauges.mine_queue_depth);

  AppendHelp(out, "specmined_admission_rejected_total", "counter",
             "Mining requests shed by the admission gate (HTTP 429).");
  out += "specmined_admission_rejected_total";
  AppendValue(out, rejected_.load(std::memory_order_relaxed));

  AppendHelp(out, "specmined_index_cache_hits_total", "counter",
             "Mines served from an already-built corpus index.");
  out += "specmined_index_cache_hits_total";
  AppendValue(out, index_cache_hits_.load(std::memory_order_relaxed));

  AppendHelp(out, "specmined_index_cache_misses_total", "counter",
             "Mines that paid for an index build (cold corpus cache).");
  out += "specmined_index_cache_misses_total";
  AppendValue(out, index_cache_misses_.load(std::memory_order_relaxed));

  AppendHelp(out, "specmined_mine_backend_total", "counter",
             "Completed mines by resolved counting backend ('none' for "
             "miners that use no counting index).");
  for (const auto& [backend, count] : backends_) {
    out += "specmined_mine_backend_total{backend=\"" + JsonEscape(backend) +
           "\"}";
    AppendValue(out, count);
  }

  AppendHelp(out, "specmined_simd_dispatch", "gauge",
             "Info gauge: the SIMD kernel dispatch level the word-wise "
             "backends resolved at startup (constant 1 per level label).");
  out += std::string("specmined_simd_dispatch{level=\"") +
         SimdDispatchLevel() + "\"}";
  AppendValue(out, 1);

  AppendHelp(out, "specmined_patterns_emitted_total", "counter",
             "Patterns emitted across all completed mines.");
  out += "specmined_patterns_emitted_total";
  AppendValue(out, patterns_emitted_.load(std::memory_order_relaxed));

  AppendHelp(out, "specmined_rules_emitted_total", "counter",
             "Rules emitted across all completed mines.");
  out += "specmined_rules_emitted_total";
  AppendValue(out, rules_emitted_.load(std::memory_order_relaxed));

  AppendHelp(out, "specmined_corpus_appends_total", "counter",
             "Committed corpus appends (POST /corpora/{name}/append).");
  out += "specmined_corpus_appends_total";
  AppendValue(out, appends_.load(std::memory_order_relaxed));

  AppendHelp(out, "specmined_corpus_appended_traces_total", "counter",
             "Traces appended across all committed appends.");
  out += "specmined_corpus_appended_traces_total";
  AppendValue(out, appended_traces_.load(std::memory_order_relaxed));

  AppendHelp(out, "specmined_corpus_generation", "gauge",
             "Manifest generation per registered corpus (bumped by every "
             "committed append; 0 for unsharded corpora).");
  for (const auto& [corpus, generation] : gauges.corpus_generations) {
    out += "specmined_corpus_generation{corpus=\"" + JsonEscape(corpus) +
           "\"}";
    AppendValue(out, generation);
  }

  AppendHelp(out, "specmined_corpora", "gauge",
             "Corpora currently registered.");
  out += "specmined_corpora";
  AppendValue(out, gauges.corpora);

  AppendHelp(out, "specmined_quarantined_shards", "gauge",
             "Shards quarantined across all registered corpora.");
  out += "specmined_quarantined_shards";
  AppendValue(out, gauges.quarantined_shards);

  return out;
}

}  // namespace specmine
