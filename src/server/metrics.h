// Prometheus-style observability for specmined: a small metric registry
// with per-route request counters and latency histograms, mining-specific
// counters (backend chosen, patterns/rules emitted, index-cache hits),
// and a text-exposition renderer for GET /metrics.
//
// This is not a general metrics library — the metric set is fixed at
// compile time (the catalog in docs/server.md documents every series), so
// the registry is a handful of atomics plus one mutex-guarded map keyed
// by route. Recording on the request path is lock-light: the route map is
// append-only and histogram observation is lock-free.

#ifndef SPECMINE_SERVER_METRICS_H_
#define SPECMINE_SERVER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/support/histogram.h"

namespace specmine {

/// \brief Gauges whose source of truth lives outside the registry,
/// sampled at scrape time (admission gate, corpus registry).
struct ScrapeGauges {
  size_t mines_in_flight = 0;
  size_t mine_queue_depth = 0;
  size_t corpora = 0;
  uint64_t quarantined_shards = 0;
  /// (corpus name, manifest generation) per registered corpus, in name
  /// order — rendered as specmined_corpus_generation{corpus="..."}.
  std::vector<std::pair<std::string, uint64_t>> corpus_generations;
};

/// \brief The specmined metric registry. Thread-safe.
class ServerMetrics {
 public:
  ServerMetrics() = default;

  /// \brief Records one finished request: bumps
  /// specmined_requests_total{route,code} and observes \p seconds in the
  /// route's latency histogram.
  void RecordRequest(const std::string& route, int http_status,
                     double seconds);

  /// \brief HTTP-level in-flight gauge (all routes, admission included).
  void RequestStarted() { in_flight_.fetch_add(1, std::memory_order_relaxed); }
  void RequestFinished() { in_flight_.fetch_sub(1, std::memory_order_relaxed); }

  /// \brief One request shed by the admission gate (answered 429).
  void RecordRejected() {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }

  /// \brief One committed corpus append: bumps
  /// specmined_corpus_appends_total and the appended-trace total.
  void RecordAppend(uint64_t traces) {
    appends_.fetch_add(1, std::memory_order_relaxed);
    appended_traces_.fetch_add(traces, std::memory_order_relaxed);
  }

  /// \brief Accounting for one completed mine: which physical backend ran
  /// (empty for miners that use no counting index), whether the session's
  /// index cache was already warm (nullopt for index-free miners, which
  /// count in neither series), and how much was emitted.
  void RecordMine(const std::string& backend,
                  std::optional<bool> index_cache_hit,
                  uint64_t patterns_emitted, uint64_t rules_emitted);

  /// \brief Renders the whole registry in Prometheus text exposition
  /// format (deterministic series order).
  std::string Render(const ScrapeGauges& gauges) const;

 private:
  struct RouteSeries {
    std::map<int, uint64_t> requests_by_status;
    BucketHistogram latency{BucketHistogram::DefaultLatencyBounds()};
  };

  mutable std::mutex mu_;  // Guards routes_ / backends_ map shape.
  std::map<std::string, std::unique_ptr<RouteSeries>> routes_;
  std::map<std::string, uint64_t> backends_;
  std::atomic<int64_t> in_flight_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> index_cache_hits_{0};
  std::atomic<uint64_t> index_cache_misses_{0};
  std::atomic<uint64_t> patterns_emitted_{0};
  std::atomic<uint64_t> rules_emitted_{0};
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> appended_traces_{0};
};

}  // namespace specmine

#endif  // SPECMINE_SERVER_METRICS_H_
