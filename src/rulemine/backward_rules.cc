#include "src/rulemine/backward_rules.h"

#include <algorithm>

#include "src/rulemine/consequent_miner.h"
#include "src/rulemine/premise_miner.h"
#include "src/seqmine/closed_sequential_miner.h"
#include "src/seqmine/occurrence_engine.h"
#include "src/seqmine/prefixspan.h"

namespace specmine {

namespace {

// The database with every sequence reversed; event ids are shared with the
// original (the dictionary is re-interned in identical order).
SequenceDatabase ReverseDatabase(const SequenceDatabase& db) {
  SequenceDatabaseBuilder rev;
  rev.Reserve(db.size(), db.TotalEvents());
  for (size_t i = 0; i < db.dictionary().size(); ++i) {
    rev.mutable_dictionary()->Intern(
        db.dictionary().Name(static_cast<EventId>(i)));
  }
  std::vector<EventId> events;
  for (EventSpan seq : db) {
    events.assign(std::make_reverse_iterator(seq.end()),
                  std::make_reverse_iterator(seq.begin()));
    rev.AddSequence(EventSpan(events));
  }
  return rev.Build();
}

Pattern ReversePattern(const Pattern& p) {
  std::vector<EventId> events(p.events().rbegin(), p.events().rend());
  return Pattern(std::move(events));
}

}  // namespace

RuleSet MineBackwardRules(const SequenceDatabase& db,
                          const RuleMinerOptions& options,
                          RuleMinerStats* stats) {
  RuleMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = RuleMinerStats{};

  SequenceDatabase rev = ReverseDatabase(db);

  PremiseMinerOptions premise_options;
  premise_options.min_s_support = options.min_s_support;
  premise_options.max_length = options.max_premise_length;
  // Premise maximality pruning is a *forward*-concatenation argument: for
  // backward rules it would fold the past context into the premise, making
  // the post++pre concatenation (the rule's i-support witness) typically
  // unsatisfiable. Backward premises are enumerated in full and redundancy
  // is left to the final sweep.
  premise_options.maximality_pruning = false;

  RuleSet candidates;
  ScanPremises(
      db, premise_options,
      [&](const Pattern& premise, const TemporalPointSet& points) {
        if (stats->truncated) return false;
        ++stats->premises_enumerated;
        const uint64_t total_points = points.TotalPoints();
        if (total_points == 0) return true;

        // One unit per temporal point, into the reversed sequence: the
        // strict prefix before point j of a length-L sequence is the
        // suffix of the reversal starting at L - j.
        std::vector<Unit> units;
        for (SeqId s = 0; s < points.per_seq.size(); ++s) {
          const Pos len = static_cast<Pos>(db[s].size());
          for (Pos j : points.per_seq[s]) {
            units.push_back(Unit{s, static_cast<Pos>(len - j)});
          }
        }
        UnitDatabase unit_db(rev, std::move(units));
        const uint64_t threshold =
            ConfidenceSupportThreshold(options.min_confidence, total_points);

        PatternSet posts;
        if (options.non_redundant) {
          ClosedSeqMinerOptions closed_options;
          closed_options.min_support = threshold;
          closed_options.max_length = options.max_consequent_length;
          posts = MineClosedSequential(unit_db, closed_options);
        } else {
          SeqMinerOptions full_options;
          full_options.min_support = threshold;
          full_options.max_length = options.max_consequent_length;
          posts = MineFrequentSequential(unit_db, full_options);
        }

        for (const MinedPattern& post : posts.items()) {
          Rule rule;
          rule.premise = premise;
          rule.consequent = ReversePattern(post.pattern);
          rule.s_support = points.SupportingSequences();
          rule.premise_points = total_points;
          rule.satisfied_points = post.support;
          // i-support of a backward rule: occurrences of post ++ pre.
          rule.i_support =
              CountOccurrences(rule.consequent.Concat(rule.premise), db);
          candidates.Add(std::move(rule));
          ++stats->candidate_rules;
          if (options.max_rules != 0 &&
              stats->candidate_rules >= options.max_rules) {
            stats->truncated = true;
            return false;
          }
        }
        return true;
      });

  RuleSet filtered;
  for (const Rule& r : candidates.rules()) {
    if (r.i_support >= options.min_i_support) filtered.Add(r);
  }
  RuleSet out = options.non_redundant
                    ? RemoveRedundantRules(filtered, options.redundancy)
                    : std::move(filtered);
  stats->rules_emitted = out.size();
  return out;
}

std::string BackwardRuleToString(const Rule& rule,
                                 const EventDictionary& dict) {
  return rule.premise.ToString(dict) + " -> previously " +
         rule.consequent.ToString(dict) +
         "  (s-sup=" + std::to_string(rule.s_support) +
         ", i-sup=" + std::to_string(rule.i_support) + ", conf=" +
         std::to_string(rule.confidence()).substr(0, 5) + ")";
}

}  // namespace specmine
