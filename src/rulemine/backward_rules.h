// Backward recurrent rules — the second future-work extension (Section 8):
// "rules that express backward ... temporal constraints, e.g., whenever a
// series of events occurs, another series of events must have happened
// before".
//
// A backward rule `pre -> past(post)` states: whenever the series `pre`
// has just occurred at temporal point j, the series `post` occurred
// somewhere strictly before the point (post embeds into S[0..j-1] with
// room for all its events before S[j]).
//
// Statistics mirror the forward case:
//   s-support  — sequences containing pre;
//   confidence — fraction of temporal points of pre whose strict prefix
//                contains post;
//   i-support  — occurrences (Definition 5.1) of post ++ pre.
//
// Mining reuses the forward machinery through sequence reversal: post
// embeds into the strict prefix before j iff reverse(post) embeds into
// the suffix of the reversed sequence starting right after the mirrored
// point. Consequents are therefore mined with the standard confidence-
// thresholded sequential miner over the reversed database and un-reversed
// on output.

#ifndef SPECMINE_RULEMINE_BACKWARD_RULES_H_
#define SPECMINE_RULEMINE_BACKWARD_RULES_H_

#include "src/rulemine/rule_miner.h"

namespace specmine {

/// \brief Mines backward recurrent rules from \p db per \p options
/// (the options' premise/consequent roles read as pre / past-post).
/// Returned Rule objects carry `premise` = pre and `consequent` = post
/// with the backward statistics above.
RuleSet MineBackwardRules(const SequenceDatabase& db,
                          const RuleMinerOptions& options,
                          RuleMinerStats* stats = nullptr);

/// \brief The LTL-with-past rendering "G(pre -> P(post))" used by reports;
/// there is no past operator in the checkable fragment, so this is a
/// display form only.
std::string BackwardRuleToString(const Rule& rule,
                                 const EventDictionary& dict);

}  // namespace specmine

#endif  // SPECMINE_RULEMINE_BACKWARD_RULES_H_
