#include "src/rulemine/rule.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace specmine {

std::string Rule::ToString(const EventDictionary& dict) const {
  std::ostringstream os;
  os << premise.ToString(dict) << " -> " << consequent.ToString(dict)
     << "  (s-sup=" << s_support << ", i-sup=" << i_support << ", conf="
     << std::fixed << std::setprecision(3) << confidence() << ')';
  return os.str();
}

void RuleSet::SortByQuality() {
  std::sort(rules_.begin(), rules_.end(), [](const Rule& a, const Rule& b) {
    double ca = a.confidence();
    double cb = b.confidence();
    if (ca != cb) return ca > cb;
    if (a.s_support != b.s_support) return a.s_support > b.s_support;
    Pattern pa = a.Concatenation();
    Pattern pb = b.Concatenation();
    if (!(pa == pb)) return pa < pb;
    return a.premise.size() < b.premise.size();
  });
}

void RuleSet::SortLexicographic() {
  std::sort(rules_.begin(), rules_.end(), [](const Rule& a, const Rule& b) {
    if (!(a.premise == b.premise)) return a.premise < b.premise;
    return a.consequent < b.consequent;
  });
}

const Rule* RuleSet::Find(const Pattern& premise,
                          const Pattern& consequent) const {
  for (const Rule& r : rules_) {
    if (r.premise == premise && r.consequent == consequent) return &r;
  }
  return nullptr;
}

std::string RuleSet::ToString(const EventDictionary& dict) const {
  std::ostringstream os;
  for (const Rule& r : rules_) os << r.ToString(dict) << '\n';
  return os.str();
}

}  // namespace specmine
