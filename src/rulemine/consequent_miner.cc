#include "src/rulemine/consequent_miner.h"

#include <cmath>

#include "src/seqmine/closed_sequential_miner.h"
#include "src/seqmine/prefixspan.h"

namespace specmine {

uint64_t ConfidenceSupportThreshold(double min_confidence,
                                    uint64_t total_points) {
  if (min_confidence <= 0.0) return 1;
  // Smallest k with k / total >= min_conf, guarding float error.
  double raw = min_confidence * static_cast<double>(total_points);
  uint64_t k = static_cast<uint64_t>(std::ceil(raw - 1e-9));
  return k == 0 ? 1 : k;
}

PatternSet MineConsequents(const SequenceDatabase& db,
                           const TemporalPointSet& points,
                           const ConsequentMinerOptions& options) {
  std::vector<Unit> units;
  for (SeqId s = 0; s < points.per_seq.size(); ++s) {
    for (Pos j : points.per_seq[s]) {
      // The consequent must occur strictly after the temporal point.
      units.push_back(Unit{s, j + 1});
    }
  }
  UnitDatabase unit_db(db, std::move(units));
  const uint64_t threshold = ConfidenceSupportThreshold(
      options.min_confidence, points.TotalPoints());

  if (options.closed_pruning) {
    ClosedSeqMinerOptions closed_options;
    closed_options.min_support = threshold;
    closed_options.max_length = options.max_length;
    return MineClosedSequential(unit_db, closed_options);
  }
  SeqMinerOptions full_options;
  full_options.min_support = threshold;
  full_options.max_length = options.max_length;
  full_options.max_patterns = options.max_consequents;
  return MineFrequentSequential(unit_db, full_options);
}

}  // namespace specmine
