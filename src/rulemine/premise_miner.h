// Premise (pre-condition) mining — Step 1 of the paper's rule-mining
// pipeline: sequential patterns frequent by sequence support, optionally
// pruned to the ⊑-maximal member of each occurrence-equivalence class.
//
// Two premises with identical temporal-point sets yield identical
// statistics for every consequent (the points determine s-support,
// confidence and — via the earliest-embedding chain — the i-support of
// every concatenation). Under Definition 5.2 the rule with the *larger*
// concatenation dominates at equal statistics, so of an equivalence class
// only the ⊑-maximal premises can form non-redundant rules: a premise
// admitting a point-preserving one-event insertion is pruned, together
// with its whole subtree (forward growth preserves the equivalence, and a
// maximal premise's DFS prefixes are themselves maximal, so the surviving
// branches still enumerate every class representative).

#ifndef SPECMINE_RULEMINE_PREMISE_MINER_H_
#define SPECMINE_RULEMINE_PREMISE_MINER_H_

#include <cstdint>
#include <functional>

#include "src/itermine/counting_backend.h"
#include "src/patterns/pattern.h"
#include "src/rulemine/temporal_points.h"
#include "src/seqmine/prefixspan.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Options for premise enumeration.
struct PremiseMinerOptions {
  /// Minimum number of supporting sequences (absolute).
  uint64_t min_s_support = 1;
  /// Maximum premise length; 0 means unbounded.
  size_t max_length = 0;
  /// Prune premises (and their subtrees) that admit a point-preserving
  /// one-event insertion — the NR pipeline's Step-1 pruning, keeping only
  /// ⊑-maximal premises per occurrence-equivalence class. When false every
  /// frequent premise is enumerated (Full mode).
  bool maximality_pruning = true;
};

/// \brief Enumerates premises; \p sink receives each premise with its
/// temporal points. The sink's return value controls subtree growth
/// (return false to stop growing — used for external budget caps).
///
/// \p backend, when non-null (and indexing \p db), accelerates the
/// maximality pruning's insertion-window emptiness tests — a range query
/// per (sequence, slot) instead of a scalar scan. Verdicts are identical
/// with and without it.
void ScanPremises(
    const SequenceDatabase& db, const PremiseMinerOptions& options,
    const std::function<bool(const Pattern&, const TemporalPointSet&)>& sink,
    SeqMinerStats* stats = nullptr, const CountingBackend* backend = nullptr);

}  // namespace specmine

#endif  // SPECMINE_RULEMINE_PREMISE_MINER_H_
