#include "src/rulemine/premise_miner.h"

#include "src/seqmine/occurrence_engine.h"
#include "src/support/event_marks.h"

namespace specmine {

namespace {

// Earliest embedding end of `stem` in seq, where an empty stem "ends
// before position 0". Returns true iff embeddable, with *end = position of
// the stem's last event (or kNoPos for the empty stem).
bool StemEnd(const Pattern& stem, EventSpan seq, Pos* end) {
  if (stem.empty()) {
    *end = kNoPos;  // Interpreted as "points may start at position 0".
    return true;
  }
  *end = EarliestEmbeddingEnd(stem, seq, 0);
  return *end != kNoPos;
}

// True iff occ(premise-with-x-inserted-at-slot) == occ(premise) in every
// sequence. `stem` is premise minus its last event; the insertion slot is
// encoded in `stem_ins` (stem with x inserted). Equality holds iff, in
// every sequence with points, the modified stem still embeds and no
// occurrence of the last event falls in (stem_end, modified_stem_end].
bool InsertionPreservesPoints(const SequenceDatabase& db,
                              const Pattern& stem, const Pattern& stem_ins,
                              EventId last, const TemporalPointSet& points,
                              const CountingBackend* backend) {
  for (SeqId s = 0; s < db.size(); ++s) {
    if (points.per_seq[s].empty()) continue;  // occ subset of empty: fine.
    const EventSpan seq = db[s];
    Pos t = kNoPos;
    if (!StemEnd(stem, seq, &t)) return false;  // Defensive.
    Pos t_ins = EarliestEmbeddingEnd(stem_ins, seq, 0);
    if (t_ins == kNoPos) return false;
    // Any occurrence of `last` in (t, t_ins] is a point of the premise
    // that the extended premise loses.
    Pos from = (t == kNoPos) ? 0 : t + 1;
    if (backend != nullptr) {
      // One range-emptiness query instead of the scalar window scan.
      if (backend->AnyInRange(last, s, from, t_ins)) return false;
      continue;
    }
    for (Pos p = from; p <= t_ins && p < seq.size(); ++p) {
      if (seq[p] == last) return false;
    }
  }
  return true;
}

// True iff some one-event insertion (anywhere before the last event)
// yields a premise with identical temporal points — i.e. this premise is
// not ⊑-maximal in its occurrence-equivalence class, so every rule it
// forms is Definition-5.2-redundant to the extended premise's rule, and
// (because forward growth preserves the equivalence) so are all rules of
// its extensions.
// Reusable scratch for InsertionEquivalentExists: a dense mark set plus
// the candidate list it deduplicates, shared across every premise of one
// scan so the hot path allocates nothing.
struct InsertionScratch {
  EventMarkSet seen;
  std::vector<EventId> candidates;
};

bool InsertionEquivalentExists(const SequenceDatabase& db,
                               const Pattern& premise,
                               const TemporalPointSet& points,
                               InsertionScratch* scratch,
                               const CountingBackend* backend) {
  const size_t n = premise.size();
  const EventId last = premise.last();
  Pattern stem(std::vector<EventId>(premise.events().begin(),
                                    premise.events().end() - 1));

  // The first sequence with points bounds the candidate events: the
  // modified stem must fully embed before that sequence's first point.
  SeqId probe = 0;
  while (probe < db.size() && points.per_seq[probe].empty()) ++probe;
  if (probe == db.size()) return false;
  const EventSpan probe_seq = db[probe];
  const Pos first_point = points.per_seq[probe].front();

  for (size_t slot = 0; slot < n; ++slot) {
    // Candidates: events of the probe sequence strictly before its first
    // point and after the embedding of stem[0..slot-1].
    Pos from = 0;
    if (slot > 0) {
      Pattern head(std::vector<EventId>(stem.events().begin(),
                                        stem.events().begin() + slot));
      Pos head_end = EarliestEmbeddingEnd(head, probe_seq, 0);
      if (head_end == kNoPos) continue;
      from = head_end + 1;
    }
    const size_t num_events = db.dictionary().size();
    scratch->seen.EnsureSize(num_events);
    scratch->seen.Clear();
    scratch->candidates.clear();
    for (Pos p = from; p < first_point && p < probe_seq.size(); ++p) {
      if (probe_seq[p] >= num_events) continue;  // Defensive.
      if (scratch->seen.TestAndSet(probe_seq[p])) {
        scratch->candidates.push_back(probe_seq[p]);
      }
    }
    for (EventId x : scratch->candidates) {
      Pattern stem_ins = stem.Insert(slot, x);
      if (InsertionPreservesPoints(db, stem, stem_ins, last, points,
                                   backend)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void ScanPremises(
    const SequenceDatabase& db, const PremiseMinerOptions& options,
    const std::function<bool(const Pattern&, const TemporalPointSet&)>& sink,
    SeqMinerStats* stats, const CountingBackend* backend) {
  UnitDatabase units = UnitDatabase::WholeSequences(db);
  SeqMinerOptions scan_options;
  scan_options.min_support = options.min_s_support;
  scan_options.max_length = options.max_length;
  InsertionScratch scratch;
  ScanFrequentSequential(
      units, scan_options,
      [&](const Pattern& p, uint64_t /*support*/,
          const std::vector<uint32_t>& /*supporting*/) {
        TemporalPointSet points = ComputeTemporalPoints(p, db);
        if (options.maximality_pruning &&
            InsertionEquivalentExists(db, p, points, &scratch, backend)) {
          // A point-equivalent longer premise exists; its rules dominate
          // this premise's rules under Definition 5.2, and the equivalence
          // propagates to every forward extension — prune the subtree.
          return false;
        }
        return sink(p, points);
      },
      stats);
}

}  // namespace specmine
