#include "src/rulemine/temporal_points.h"

#include "src/seqmine/occurrence_engine.h"

namespace specmine {

size_t TemporalPointSet::TotalPoints() const {
  size_t n = 0;
  for (const auto& pts : per_seq) n += pts.size();
  return n;
}

size_t TemporalPointSet::SupportingSequences() const {
  size_t n = 0;
  for (const auto& pts : per_seq) {
    if (!pts.empty()) ++n;
  }
  return n;
}

TemporalPointSet ComputeTemporalPoints(const Pattern& pattern,
                                       const SequenceDatabase& db) {
  TemporalPointSet out;
  out.per_seq.resize(db.size());
  for (SeqId s = 0; s < db.size(); ++s) {
    out.per_seq[s] = OccurrencePoints(pattern, db[s]);
  }
  return out;
}

}  // namespace specmine
