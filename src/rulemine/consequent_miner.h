// Consequent (post-condition) mining — Step 3 of the paper's rule-mining
// pipeline: sequential patterns over the database of temporal-point
// suffixes, thresholded by min_conf × |points| (Theorem 3's confidence
// apriori), full or closed.

#ifndef SPECMINE_RULEMINE_CONSEQUENT_MINER_H_
#define SPECMINE_RULEMINE_CONSEQUENT_MINER_H_

#include <cstdint>

#include "src/patterns/pattern_set.h"
#include "src/rulemine/temporal_points.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Options for consequent enumeration.
struct ConsequentMinerOptions {
  /// Minimum confidence in [0, 1].
  double min_confidence = 0.5;
  /// Maximum consequent length; 0 means unbounded.
  size_t max_length = 0;
  /// Mine only closed consequents (the NR pipeline's Step-3 pruning):
  /// a consequent absorbed by a super-sequence with the same satisfied
  /// point set is dropped. When false every qualifying consequent is
  /// enumerated (Full mode).
  bool closed_pruning = true;
  /// Safety valve (0 = unbounded), full mode only.
  size_t max_consequents = 0;
};

/// \brief The smallest satisfied-point count meeting \p min_confidence over
/// \p total_points, never below 1.
uint64_t ConfidenceSupportThreshold(double min_confidence,
                                    uint64_t total_points);

/// \brief Mines consequents for a premise with temporal points \p points.
/// Each returned pattern's support is its satisfied-point count.
PatternSet MineConsequents(const SequenceDatabase& db,
                           const TemporalPointSet& points,
                           const ConsequentMinerOptions& options);

}  // namespace specmine

#endif  // SPECMINE_RULEMINE_CONSEQUENT_MINER_H_
