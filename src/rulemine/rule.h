// Recurrent rules (Section 5 of the paper): pre -> post with sequence
// support, instance support and confidence statistics.

#ifndef SPECMINE_RULEMINE_RULE_H_
#define SPECMINE_RULEMINE_RULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/patterns/pattern.h"

namespace specmine {

/// \brief A mined recurrent rule "pre -> post" with its statistics.
///
/// Semantics: whenever the series `premise` has just occurred at a temporal
/// point, eventually the series `consequent` occurs (Definition 5.1 fixes
/// temporal points; DESIGN.md §1.2 fixes the statistics).
struct Rule {
  Pattern premise;
  Pattern consequent;

  /// Number of sequences in which the premise occurs (s-support).
  uint64_t s_support = 0;
  /// Number of occurrences of premise++consequent (i-support).
  uint64_t i_support = 0;
  /// Total temporal points of the premise across the database.
  uint64_t premise_points = 0;
  /// Temporal points whose suffix contains the consequent.
  uint64_t satisfied_points = 0;

  /// \brief Confidence = satisfied_points / premise_points.
  double confidence() const {
    return premise_points == 0
               ? 0.0
               : static_cast<double>(satisfied_points) /
                     static_cast<double>(premise_points);
  }

  /// \brief premise ++ consequent.
  Pattern Concatenation() const { return premise.Concat(consequent); }

  /// \brief Exact confidence equality via cross multiplication.
  bool SameConfidenceAs(const Rule& other) const {
    return static_cast<unsigned __int128>(satisfied_points) *
               other.premise_points ==
           static_cast<unsigned __int128>(other.satisfied_points) *
               premise_points;
  }

  /// \brief "<pre> -> <post> (s=.., i=.., conf=..)" rendering.
  std::string ToString(const EventDictionary& dict) const;

  bool operator==(const Rule& other) const = default;
};

/// \brief An ordered collection of mined rules.
class RuleSet {
 public:
  RuleSet() = default;

  void Add(Rule rule) { rules_.push_back(std::move(rule)); }

  size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }
  const Rule& operator[](size_t i) const { return rules_[i]; }
  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>* mutable_rules() { return &rules_; }

  /// \brief Sorts by (descending confidence, descending s-support,
  /// lexicographic concatenation) — the canonical report order.
  void SortByQuality();

  /// \brief Sorts by (premise, consequent) lexicographically — the
  /// canonical order for set comparisons in tests.
  void SortLexicographic();

  /// \brief Finds a rule with the given premise and consequent, or nullptr.
  const Rule* Find(const Pattern& premise, const Pattern& consequent) const;

  /// \brief Multi-line rendering.
  std::string ToString(const EventDictionary& dict) const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace specmine

#endif  // SPECMINE_RULEMINE_RULE_H_
