#include "src/rulemine/redundancy.h"

#include <map>
#include <numeric>
#include <tuple>
#include <vector>

namespace specmine {

bool IsRedundantTo(const Rule& rx, const Rule& ry,
                   const RedundancyOptions& options) {
  if (rx.s_support != ry.s_support) return false;
  if (!rx.SameConfidenceAs(ry)) return false;
  if (options.require_equal_i_support && rx.i_support != ry.i_support) {
    return false;
  }
  Pattern cx = rx.Concatenation();
  Pattern cy = ry.Concatenation();
  if (cx == cy) {
    // Equal concatenations: keep the rule with the shorter premise
    // (longer consequent).
    return rx.premise.size() > ry.premise.size();
  }
  return cx.IsSubsequenceOf(cy);
}

namespace {

// Rules can only dominate one another when s-support, confidence and
// (optionally) i-support coincide, so the quadratic scan runs per
// equal-stat group. Confidence is keyed by its reduced fraction.
using StatsKey = std::tuple<uint64_t, uint64_t, uint64_t, uint64_t>;

StatsKey KeyOf(const Rule& r, const RedundancyOptions& options) {
  uint64_t num = r.satisfied_points;
  uint64_t den = r.premise_points;
  uint64_t g = std::gcd(num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  return {r.s_support, num, den,
          options.require_equal_i_support ? r.i_support : 0};
}

}  // namespace

RuleSet RemoveRedundantRules(const RuleSet& rules,
                             const RedundancyOptions& options) {
  std::map<StatsKey, std::vector<size_t>> groups;
  for (size_t i = 0; i < rules.size(); ++i) {
    groups[KeyOf(rules[i], options)].push_back(i);
  }
  RuleSet out;
  for (size_t i = 0; i < rules.size(); ++i) {
    const std::vector<size_t>& group = groups[KeyOf(rules[i], options)];
    bool redundant = false;
    for (size_t j : group) {
      if (i == j) continue;
      if (IsRedundantTo(rules[i], rules[j], options)) {
        redundant = true;
        break;
      }
    }
    if (!redundant) out.Add(rules[i]);
  }
  return out;
}

}  // namespace specmine
