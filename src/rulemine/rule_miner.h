// The recurrent-rule miner: Steps 1-5 of Section 5, in Full and
// Non-Redundant (NR) configurations — the two series of Figures 2 and 3.

#ifndef SPECMINE_RULEMINE_RULE_MINER_H_
#define SPECMINE_RULEMINE_RULE_MINER_H_

#include <cstdint>

#include "src/itermine/counting_backend.h"
#include "src/rulemine/redundancy.h"
#include "src/rulemine/rule.h"
#include "src/support/status.h"
#include "src/trace/sequence_database.h"

namespace specmine {

class CancelToken;

/// \brief Options for recurrent rule mining.
struct RuleMinerOptions {
  /// Minimum sequence support of the premise (absolute).
  uint64_t min_s_support = 1;
  /// Minimum confidence in [0, 1].
  double min_confidence = 0.5;
  /// Minimum instance support of premise++consequent (absolute). The paper
  /// runs its experiments at 1; there is no pruning property for it
  /// (Section 6), so it is applied as a post-filter (Step 4).
  uint64_t min_i_support = 1;
  /// Maximum premise / consequent lengths; 0 means unbounded.
  size_t max_premise_length = 0;
  size_t max_consequent_length = 0;
  /// NR pipeline (generator premises, closed consequents, Step-5 sweep)
  /// versus Full pipeline (every significant rule).
  bool non_redundant = true;
  /// Redundancy interpretation for the Step-5 sweep (see redundancy.h).
  RedundancyOptions redundancy;
  /// Safety valve: stop after this many candidate rules (0 = unbounded).
  size_t max_rules = 0;
  /// Physical counting representation for the i-support occurrence counts
  /// and the Step-1 insertion-window tests (see IterMinerOptions::backend).
  /// Honored by the Engine, which passes its cached backend down; the free
  /// functions run backend-free (scalar scans) unless handed one.
  BackendChoice backend = BackendChoice::kAuto;
  /// Worker threads for per-premise consequent mining; 0 = hardware
  /// concurrency, 1 = sequential. Rule sets are identical at every
  /// setting; the parallel path is used only when max_rules == 0 (the
  /// truncating path stays sequential to preserve its early stop).
  size_t num_threads = 0;
  /// Optional cooperative stop signal, polled per premise (the rule
  /// miner's subtree granularity). A stopped run reports the reason in
  /// RuleMinerStats::stopped. Not owned; may be null.
  const CancelToken* cancel = nullptr;
};

/// \brief Statistics describing one rule-miner run.
struct RuleMinerStats {
  size_t premises_enumerated = 0;
  size_t candidate_rules = 0;   ///< Rules before Steps 4-5.
  size_t rules_emitted = 0;     ///< Final output size.
  bool truncated = false;       ///< True iff max_rules stopped the run.
  /// kCancelled / kDeadlineExceeded when a CancelToken stopped the run.
  StatusCode stopped = StatusCode::kOk;
  /// First internal failure of the per-premise fan-out; OK otherwise.
  Status error = Status::OK();
};

class ThreadPool;

/// \brief Mines recurrent rules from \p db per \p options.
///
/// New code should go through specmine::Engine (src/engine/engine.h),
/// which validates options up front and shares one thread pool across a
/// session's tasks.
RuleSet MineRecurrentRules(const SequenceDatabase& db,
                           const RuleMinerOptions& options,
                           RuleMinerStats* stats = nullptr);

/// \brief Pool-reusing variant: \p pool, when non-null and matching the
/// resolved thread count, runs the per-premise fan-out instead of a fresh
/// pool per call. \p backend, when non-null (and indexing \p db),
/// accelerates the i-support occurrence counts and the premise
/// maximality tests; the rule set is identical with and without it.
RuleSet MineRecurrentRules(const SequenceDatabase& db,
                           const RuleMinerOptions& options,
                           RuleMinerStats* stats, ThreadPool* pool,
                           const CountingBackend* backend = nullptr);

}  // namespace specmine

#endif  // SPECMINE_RULEMINE_RULE_MINER_H_
