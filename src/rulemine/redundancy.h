// Rule redundancy (Definition 5.2) and the final filtering sweep (Step 5).

#ifndef SPECMINE_RULEMINE_REDUNDANCY_H_
#define SPECMINE_RULEMINE_REDUNDANCY_H_

#include "src/rulemine/rule.h"

namespace specmine {

/// \brief Options controlling the redundancy relation.
struct RedundancyOptions {
  /// Require equal i-support for redundancy.
  ///
  /// Definition 5.2 asks for "the same supports and confidence values".
  /// The pruning pipeline naturally establishes equal s-support and equal
  /// confidence; i-supports of a rule and its super-sequence rule can
  /// differ even when the rules convey the same constraint (the instance
  /// count of pre++post depends on the concatenation's embedding
  /// structure). The library's default (false) treats i-support as a
  /// filter threshold only — matching the pipeline's pruning — while true
  /// gives the strict reading. Both interpretations are exercised in tests.
  bool require_equal_i_support = false;
};

/// \brief True iff \p rx is redundant with respect to \p ry:
/// concat(rx) ⊑ concat(ry) (proper, or equal with a longer premise), equal
/// s-support, equal confidence, and — if required — equal i-support.
bool IsRedundantTo(const Rule& rx, const Rule& ry,
                   const RedundancyOptions& options);

/// \brief Removes every rule that is redundant to another rule of \p rules
/// (Step 5). Order-independent: dominance is acyclic by the tie-break.
RuleSet RemoveRedundantRules(const RuleSet& rules,
                             const RedundancyOptions& options);

}  // namespace specmine

#endif  // SPECMINE_RULEMINE_REDUNDANCY_H_
