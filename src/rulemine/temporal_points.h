// Temporal point computation (Definition 5.1): the positions at which a
// premise "has just occurred".

#ifndef SPECMINE_RULEMINE_TEMPORAL_POINTS_H_
#define SPECMINE_RULEMINE_TEMPORAL_POINTS_H_

#include <cstddef>
#include <vector>

#include "src/patterns/pattern.h"
#include "src/trace/position_index.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief The occurrence points of a pattern, grouped by sequence.
struct TemporalPointSet {
  /// per_seq[s] = sorted occurrence points of the pattern in sequence s.
  std::vector<std::vector<Pos>> per_seq;

  /// \brief Total number of points.
  size_t TotalPoints() const;
  /// \brief Number of sequences with at least one point (the s-support of
  /// any rule with this premise).
  size_t SupportingSequences() const;

  bool operator==(const TemporalPointSet& other) const = default;
};

/// \brief Computes the temporal points of \p pattern over \p db.
TemporalPointSet ComputeTemporalPoints(const Pattern& pattern,
                                       const SequenceDatabase& db);

}  // namespace specmine

#endif  // SPECMINE_RULEMINE_TEMPORAL_POINTS_H_
