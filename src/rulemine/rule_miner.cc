#include "src/rulemine/rule_miner.h"

#include <memory>
#include <utility>
#include <vector>

#include "src/rulemine/consequent_miner.h"
#include "src/rulemine/premise_miner.h"
#include "src/seqmine/occurrence_engine.h"
#include "src/support/cancel.h"
#include "src/support/thread_pool.h"

namespace specmine {

namespace {

// Steps 3-4 input for one premise, mined by a worker: every candidate
// rule of the premise, fully populated. Merging job outputs in premise
// order reproduces the sequential candidate order exactly.
struct PremiseJob {
  Pattern premise;
  TemporalPointSet points;
  std::vector<Rule> rules;

  void Mine(const SequenceDatabase& db,
            const ConsequentMinerOptions& consequent_options,
            const CountingBackend* backend, const CancelToken* cancel) {
    // Per-premise granularity: a fired token skips the whole job.
    if (cancel != nullptr && cancel->ShouldStopExact()) return;
    const uint64_t total_points = points.TotalPoints();
    const uint64_t s_support = points.SupportingSequences();
    PatternSet consequents = MineConsequents(db, points, consequent_options);
    rules.reserve(consequents.size());
    for (const MinedPattern& post : consequents.items()) {
      Rule rule;
      rule.premise = premise;
      rule.consequent = post.pattern;
      rule.s_support = s_support;
      rule.premise_points = total_points;
      rule.satisfied_points = post.support;
      rule.i_support = backend != nullptr
                           ? CountOccurrences(*backend, rule.Concatenation())
                           : CountOccurrences(rule.Concatenation(), db);
      rules.push_back(std::move(rule));
    }
  }
};

}  // namespace

RuleSet MineRecurrentRules(const SequenceDatabase& db,
                           const RuleMinerOptions& options,
                           RuleMinerStats* stats) {
  return MineRecurrentRules(db, options, stats, nullptr);
}

RuleSet MineRecurrentRules(const SequenceDatabase& db,
                           const RuleMinerOptions& options,
                           RuleMinerStats* stats, ThreadPool* pool,
                           const CountingBackend* backend) {
  RuleMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = RuleMinerStats{};

  PremiseMinerOptions premise_options;
  premise_options.min_s_support = options.min_s_support;
  premise_options.max_length = options.max_premise_length;
  premise_options.maximality_pruning = options.non_redundant;

  ConsequentMinerOptions consequent_options;
  consequent_options.min_confidence = options.min_confidence;
  consequent_options.max_length = options.max_consequent_length;
  consequent_options.closed_pruning = options.non_redundant;

  const size_t num_threads = ThreadPool::ResolveThreads(options.num_threads);
  RuleSet candidates;
  if (num_threads > 1 && options.max_rules == 0) {
    // Steps 1-2 stay sequential (the premise scan's maximality pruning is
    // interactive); the per-premise Steps 3-4 — the dominant cost — fan
    // out across the pool and merge in premise order.
    std::vector<std::unique_ptr<PremiseJob>> jobs;
    ScanPremises(
        db, premise_options,
        [&](const Pattern& premise, const TemporalPointSet& points) {
          if (options.cancel != nullptr && options.cancel->ShouldStop()) {
            stats->stopped = options.cancel->stop_code();
            return false;
          }
          ++stats->premises_enumerated;
          if (points.TotalPoints() == 0) return true;
          jobs.push_back(std::make_unique<PremiseJob>(
              PremiseJob{premise, points, {}}));
          return true;
        },
        nullptr, backend);
    stats->error = ThreadPool::ParallelForShared(
        pool, num_threads, jobs.size(), [&](size_t i) {
          jobs[i]->Mine(db, consequent_options, backend, options.cancel);
        });
    if (options.cancel != nullptr && options.cancel->fired()) {
      stats->stopped = options.cancel->stop_code();
    }
    for (auto& job : jobs) {
      for (Rule& rule : job->rules) {
        candidates.Add(std::move(rule));
        ++stats->candidate_rules;
      }
    }
  } else {
    // Step 1: enumerate premises; Step 2: their temporal points arrive
    // with each premise.
    ScanPremises(
        db, premise_options,
        [&](const Pattern& premise, const TemporalPointSet& points) {
          if (stats->truncated) return false;
          if (options.cancel != nullptr &&
              options.cancel->ShouldStopExact()) {
            stats->stopped = options.cancel->stop_code();
            return false;
          }
          ++stats->premises_enumerated;
          const uint64_t total_points = points.TotalPoints();
          const uint64_t s_support = points.SupportingSequences();
          if (total_points == 0) return true;

          // Step 3: consequents above the confidence-derived threshold.
          // The i-support scan (the expensive part of Step 4's input) is
          // computed per rule so max_rules truncation stops it early.
          PatternSet consequents =
              MineConsequents(db, points, consequent_options);
          for (const MinedPattern& post : consequents.items()) {
            Rule rule;
            rule.premise = premise;
            rule.consequent = post.pattern;
            rule.s_support = s_support;
            rule.premise_points = total_points;
            rule.satisfied_points = post.support;
            rule.i_support =
                backend != nullptr
                    ? CountOccurrences(*backend, rule.Concatenation())
                    : CountOccurrences(rule.Concatenation(), db);
            candidates.Add(std::move(rule));
            ++stats->candidate_rules;
            if (options.max_rules != 0 &&
                stats->candidate_rules >= options.max_rules) {
              stats->truncated = true;
              return false;
            }
          }
          return !stats->truncated;
        },
        nullptr, backend);
  }

  // Step 4: instance-support filter.
  RuleSet filtered;
  for (const Rule& r : candidates.rules()) {
    if (r.i_support >= options.min_i_support) filtered.Add(r);
  }

  // Step 5: final redundancy sweep (NR only).
  RuleSet out = options.non_redundant
                    ? RemoveRedundantRules(filtered, options.redundancy)
                    : std::move(filtered);
  stats->rules_emitted = out.size();
  return out;
}

}  // namespace specmine
