#include "src/rulemine/rule_miner.h"

#include "src/rulemine/consequent_miner.h"
#include "src/rulemine/premise_miner.h"
#include "src/seqmine/occurrence_engine.h"

namespace specmine {

RuleSet MineRecurrentRules(const SequenceDatabase& db,
                           const RuleMinerOptions& options,
                           RuleMinerStats* stats) {
  RuleMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = RuleMinerStats{};

  PremiseMinerOptions premise_options;
  premise_options.min_s_support = options.min_s_support;
  premise_options.max_length = options.max_premise_length;
  premise_options.maximality_pruning = options.non_redundant;

  ConsequentMinerOptions consequent_options;
  consequent_options.min_confidence = options.min_confidence;
  consequent_options.max_length = options.max_consequent_length;
  consequent_options.closed_pruning = options.non_redundant;

  RuleSet candidates;
  // Step 1: enumerate premises; Step 2: their temporal points arrive with
  // each premise.
  ScanPremises(
      db, premise_options,
      [&](const Pattern& premise, const TemporalPointSet& points) {
        if (stats->truncated) return false;
        ++stats->premises_enumerated;
        const uint64_t total_points = points.TotalPoints();
        const uint64_t s_support = points.SupportingSequences();
        if (total_points == 0) return true;

        // Step 3: consequents above the confidence-derived threshold.
        PatternSet consequents =
            MineConsequents(db, points, consequent_options);
        for (const MinedPattern& post : consequents.items()) {
          Rule rule;
          rule.premise = premise;
          rule.consequent = post.pattern;
          rule.s_support = s_support;
          rule.premise_points = total_points;
          rule.satisfied_points = post.support;
          // Step 4 input: the i-support of the concatenation.
          rule.i_support = CountOccurrences(rule.Concatenation(), db);
          candidates.Add(std::move(rule));
          ++stats->candidate_rules;
          if (options.max_rules != 0 &&
              stats->candidate_rules >= options.max_rules) {
            stats->truncated = true;
            return false;
          }
        }
        return !stats->truncated;
      });

  // Step 4: instance-support filter.
  RuleSet filtered;
  for (const Rule& r : candidates.rules()) {
    if (r.i_support >= options.min_i_support) filtered.Add(r);
  }

  // Step 5: final redundancy sweep (NR only).
  RuleSet out = options.non_redundant
                    ? RemoveRedundantRules(filtered, options.redundancy)
                    : std::move(filtered);
  stats->rules_emitted = out.size();
  return out;
}

}  // namespace specmine
