// SpecMiner: the case-study workflow of the paper's Section 7 — trace
// loading, iterative pattern mining and recurrent rule mining behind
// database-relative thresholds, producing a SpecificationReport.
//
// SpecMiner is now a thin veneer over specmine::Engine (src/engine/):
// one owned session whose PositionIndex and worker pool are built once and
// reused across MinePatterns / MineRules / Mine calls. The legacy
// PatternSet / RuleSet returning methods are byte-identical for every
// valid configuration; on a configuration the Engine rejects (e.g. a
// confidence outside [0, 1]) they degrade to an empty result instead of
// mining with undefined thresholds. Use the *Checked variants to see the
// rejection as a Status.

#ifndef SPECMINE_SPECMINE_SPEC_MINER_H_
#define SPECMINE_SPECMINE_SPEC_MINER_H_

#include <string>

#include "src/engine/engine.h"
#include "src/itermine/closed_miner.h"
#include "src/rulemine/rule_miner.h"
#include "src/specmine/report.h"
#include "src/support/status.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Pattern-mining configuration with database-relative thresholds.
struct PatternMiningConfig {
  /// Minimum support as a fraction of the number of sequences (the paper
  /// reports thresholds this way, e.g. 0.0025 for 0.25%).
  double min_support_fraction = 0.5;
  /// Mine the closed set (true) or the full set (false).
  bool closed = true;
  /// Maximum pattern length; 0 means unbounded.
  size_t max_length = 0;
  /// Cap on emitted patterns for the full set; 0 means unbounded.
  size_t max_patterns = 0;
  /// Worker threads (0 = hardware concurrency, 1 = sequential). The mined
  /// set is identical at every setting.
  size_t num_threads = 0;
};

/// \brief Rule-mining configuration with database-relative thresholds.
struct RuleMiningConfig {
  /// Minimum s-support as a fraction of the number of sequences.
  double min_s_support_fraction = 0.5;
  /// Minimum confidence in [0, 1].
  double min_confidence = 0.9;
  /// Minimum i-support (absolute; the paper's experiments use 1).
  uint64_t min_i_support = 1;
  /// Mine the non-redundant set (true) or the full set (false).
  bool non_redundant = true;
  /// Maximum premise / consequent lengths; 0 means unbounded.
  size_t max_premise_length = 0;
  size_t max_consequent_length = 0;
  /// Cap on candidate rules; 0 means unbounded.
  size_t max_rules = 0;
  /// Worker threads (0 = hardware concurrency, 1 = sequential). The mined
  /// set is identical at every setting.
  size_t num_threads = 0;
};

/// \brief Facade over the mining pipelines (one Engine session).
class SpecMiner {
 public:
  /// \brief Takes ownership of the trace database.
  explicit SpecMiner(SequenceDatabase db) : engine_(std::move(db)) {}

  /// \brief Loads traces in the plain-text format from \p path.
  static Result<SpecMiner> FromTraceFile(const std::string& path);

  /// \brief The wrapped database.
  const SequenceDatabase& database() const { return engine_.database(); }

  /// \brief The underlying session (cached index, shared pool).
  const Engine& engine() const { return engine_; }

  /// \brief The ClosedTask / FullPatternsTask equivalent of \p config.
  /// Mines iterative patterns, support sorted. \p stats, when non-null,
  /// receives the run's counters and the index-build / mine wall-clock
  /// split (index build time is charged to the session's first task only).
  PatternSet MinePatterns(const PatternMiningConfig& config,
                          IterMinerStats* stats = nullptr) const;

  /// \brief Status-returning variant of MinePatterns.
  Result<PatternSet> MinePatternsChecked(const PatternMiningConfig& config,
                                         IterMinerStats* stats
                                         = nullptr) const;

  /// \brief Mines recurrent rules per \p config (quality sorted).
  RuleSet MineRules(const RuleMiningConfig& config) const;

  /// \brief Status-returning variant of MineRules.
  Result<RuleSet> MineRulesChecked(const RuleMiningConfig& config) const;

  /// \brief Runs both miners over the shared session index and assembles
  /// the full report, including the LTL rendering of every rule. On a
  /// rejected configuration the report carries the database stats but
  /// empty pattern/rule sets (see MineChecked for the Status).
  SpecificationReport Mine(const PatternMiningConfig& pattern_config,
                           const RuleMiningConfig& rule_config) const;

  /// \brief Status-returning variant of Mine.
  Result<SpecificationReport> MineChecked(
      const PatternMiningConfig& pattern_config,
      const RuleMiningConfig& rule_config) const;

  /// \brief Converts a fraction-of-sequences threshold to an absolute one
  /// (at least 1).
  uint64_t AbsoluteSupport(double fraction) const {
    return engine_.AbsoluteSupport(fraction);
  }

 private:
  explicit SpecMiner(Engine engine) : engine_(std::move(engine)) {}

  Engine engine_;
};

}  // namespace specmine

#endif  // SPECMINE_SPECMINE_SPEC_MINER_H_
