// The specmine command-line interface, factored as a library function so
// the test suite can drive it with captured streams. The thin binary in
// tools/specmine_cli.cc forwards argv.
//
// Commands:
//   stats <traces>                        database shape statistics
//   pack <traces> <out.smdb|.smdbset>     pack into a binary database
//   mine-patterns <traces> [options]      iterative patterns
//   mine-rules <traces> [options]         recurrent rules (+LTL)
//   mine-seq / mine-episodes / mine-pairs sequential / episode / pair miners
//   verify <file.smdb|.smdbset>           full-integrity checksum pass
//   check <traces> --ltl <formula>        evaluate an LTL formula per trace
//   gen-quest <out> [options]             synthesize a QUEST dataset
//
// Common options:
//   --csv [--group-col N] [--event-col N] [--delim C] [--header]
//       read <traces> as grouped CSV instead of one-trace-per-line text
//   --integrity {off,header,full}
//       checksum verification when opening .smdb/.smdbset inputs (header)
//   --quarantine
//       .smdbset only: mine the healthy subset when shards fail to open,
//       instead of failing the whole corpus (degraded mode)
//   --timeout-ms N   (every mine-* command)
//       cancel the run cooperatively once the wall-clock budget passes;
//       already-streamed output is kept and the exit code is 6
//
// Exit codes (one bucket per failure class, for scripts):
//   0 success, 2 usage, 3 invalid argument, 4 parse error / corruption,
//   5 I/O error, 6 cancelled or deadline exceeded, 1 anything else.
//
// Pattern options:
//   --min-sup F      support threshold as a fraction of |DB|   (0.5)
//   --full           mine the full frequent set instead of the closed set
//   --generators     mine generators instead of the closed set
//   --max-len N      maximum pattern length
//   --threads N      worker threads (0 = all cores); output is identical
//                    at every setting. The timing line reports the index
//                    build / mine wall-clock split.
// Rule options:
//   --min-ssup F     s-support threshold as a fraction of |DB| (0.5)
//   --min-conf F     confidence threshold                      (0.9)
//   --min-isup N     i-support threshold                       (1)
//   --full           mine all significant rules (no NR pruning)
//   --backward       mine backward ("must have happened before") rules
//   --rank           order output by lift instead of confidence
//   --threads N      worker threads for consequent mining (0 = all cores)
// gen-quest options:
//   --d --c --n --s  QUEST parameters (thousands / averages)
//   --seed N         PRNG seed

#ifndef SPECMINE_SPECMINE_CLI_H_
#define SPECMINE_SPECMINE_CLI_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace specmine {

/// \brief Runs the CLI; returns the process exit code. \p args excludes
/// the program name.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace specmine

#endif  // SPECMINE_SPECMINE_CLI_H_
