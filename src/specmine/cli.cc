#include "src/specmine/cli.h"

#include <chrono>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "src/engine/engine.h"
#include "src/engine/json_results.h"
#include "src/support/cancel.h"
#include "src/support/version.h"
#include "src/ltl/checker.h"
#include "src/ltl/parser.h"
#include "src/ltl/translate.h"
#include "src/rulemine/backward_rules.h"
#include "src/specmine/ranking.h"
#include "src/synth/quest_generator.h"
#include "src/trace/append_session.h"
#include "src/trace/csv_trace_reader.h"
#include "src/trace/database_stats.h"
#include "src/trace/shard_set.h"
#include "src/trace/trace_io.h"

namespace specmine {

namespace {

constexpr const char* kUsage = R"(usage: specmine <command> [options]

commands:
  stats <traces> [--trace N]        print database shape statistics
  pack <traces> <out.smdb>          pack traces into a binary mmap database
  pack <traces> <out.smdbset> [--shard-bytes N]
                                    pack into size-bounded .smdb shards
                                    plus a .smdbset manifest
  pack --append <traces> <set.smdbset>
                                    append traces to an existing shard set
                                    without rewriting sealed shards (the
                                    manifest commits atomically at the
                                    next generation)
  mine-patterns <traces> [options]  mine iterative patterns
  mine-rules <traces> [options]     mine recurrent rules (with LTL forms)
  mine-seq <traces> [options]       mine sequential patterns (PrefixSpan/BIDE)
  mine-episodes <traces> [options]  mine serial episodes (WINEPI/MINEPI)
  mine-pairs <traces> [options]     mine two-event rules (Perracotta)
  verify <file.smdb|.smdbset>       re-hash every stored checksum (full
                                    integrity pass over all sections and,
                                    for a set, every shard)
  check <traces> --ltl <formula>    evaluate an LTL formula on every trace
  gen-quest <out> [options]         generate a QUEST-style dataset
  version                           print version and build revision

common options:
  --csv [--group-col N] [--event-col N] [--delim C] [--header]
  --integrity {off,header,full}     checksum verification when opening
                                    .smdb/.smdbset inputs (default header)
  --quarantine                      .smdbset only: skip shards that fail to
                                    open or validate instead of failing the
                                    whole corpus; mining runs over the
                                    healthy subset (degraded mode)
  <traces> ending in .smdb is opened as a packed binary database (zero-copy
  mmap; see 'pack') in every command that accepts a trace file; .smdbset
  opens a sharded corpus (shards mmap'ed, mining output identical to the
  equivalent single .smdb — mine-patterns --full runs the parallel
  per-shard path).

mine-patterns: --min-sup F (0.5) | --full | --generators | --max-len N
               --threads N (0 = all cores)
               --backend {auto,csr,bitmap,hybrid}
mine-rules:    --min-ssup F (0.5) --min-conf F (0.9) --min-isup N (1)
               --full | --backward | --rank
               --max-pre N --max-post N --threads N (0 = all cores)
               --backend {auto,csr,bitmap,hybrid}
mine-seq:      --min-sup F (0.5) | --closed | --generators | --max-len N
mine-episodes: --minepi | --window N (10) --min-count N (1) --max-len N
mine-pairs:    --min-sat F (1.0) --min-relevant N (1)
gen-quest:     --d F --c F --n F --s F --seed N

Every mine-* command accepts --timeout-ms N: the run is cancelled
cooperatively when the wall-clock budget passes, any patterns already
streamed are kept, and the process exits with code 6.

Every mine-* command also accepts --json: results are printed as the
canonical JSON document — the same serializer (and therefore the same
bytes, timing fields aside) as the specmined server's response for the
matching route (see docs/server.md).

All miners run through the specmine::Engine session API; invalid options
and malformed trace files are reported as errors (non-zero exit), never
mined around. Exit codes: 0 success, 2 usage, 3 invalid argument,
4 parse error / corruption, 5 I/O error, 6 cancelled or deadline
exceeded, 1 anything else.

--backend selects the physical counting representation: csr (horizontal
position lists), bitmap (vertical word-packed occurrence rows), hybrid
(bitmap rows for dense events, sorted ID-lists for rare ones), or auto
(default; per-database density heuristic — on a sharded corpus auto
mines through the lazy merged backend over the per-shard indexes, never
materializing the merged arena). Outputs are byte-identical across
backends. The word-wise backends run through SIMD kernels resolved once
at startup (AVX2 when the host supports it; set SPECMINE_FORCE_SCALAR=1
to pin the scalar fallback — the timing line reports the level in
effect). Accepted by every mine-* command; mine-seq, mine-episodes and
mine-pairs use no counting index, so there it only validates.
)";

// Minimal flag parser: positional arguments plus --flag [value] pairs.
class Args {
 public:
  Args(const std::vector<std::string>& args, size_t from) {
    for (size_t i = from; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a.size() >= 2 && a[0] == '-' && a[1] == '-') {
        std::string name = a.substr(2);
        if (i + 1 < args.size() && (args[i + 1].empty() ||
                                    args[i + 1][0] != '-' ||
                                    args[i + 1].size() < 2 ||
                                    args[i + 1][1] != '-')) {
          flags_[name] = args[i + 1];
          ++i;
        } else {
          flags_[name] = "";
        }
      } else {
        positional_.push_back(a);
      }
    }
  }

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  std::string Get(const std::string& name, const std::string& def) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
  }

  double GetDouble(const std::string& name, double def) const {
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty()) return def;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      return def;  // Unparseable value: fall back instead of aborting.
    }
  }

  uint64_t GetUint(const std::string& name, uint64_t def) const {
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty()) return def;
    // stoull silently wraps negatives ("-1" -> 2^64-1); treat them as
    // unparseable too and fall back instead of aborting downstream.
    if (it->second[0] == '-') return def;
    try {
      return std::stoull(it->second);
    } catch (const std::exception&) {
      return def;  // Unparseable value: fall back instead of aborting.
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

// Process exit codes (documented in kUsage): one bucket per failure class
// so scripts can tell bad flags from corrupt inputs from interrupted runs.
constexpr int kExitUsage = 2;
constexpr int kExitInvalidArgument = 3;
constexpr int kExitCorruptInput = 4;
constexpr int kExitIOError = 5;
constexpr int kExitInterrupted = 6;

int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return kExitInvalidArgument;
    case StatusCode::kParseError:
      return kExitCorruptInput;
    case StatusCode::kIOError:
    case StatusCode::kNotFound:
      return kExitIOError;
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
      return kExitInterrupted;
    default:
      return 1;
  }
}

// Prints \p status and returns its exit code.
int Fail(std::ostream& err, const Status& status) {
  err << status.ToString() << '\n';
  return ExitCodeFor(status);
}

// Arms \p token from --timeout-ms and returns it, or null when the flag is
// absent (the miners treat a null cancel pointer as "never stop").
const CancelToken* ArmTimeout(const Args& args, CancelToken* token) {
  if (!args.Has("timeout-ms")) return nullptr;
  token->SetDeadline(std::chrono::milliseconds(args.GetUint("timeout-ms", 0)));
  return token;
}

// Parses --integrity into \p out; false (with a message) on a bad value.
bool ParseIntegrityFlag(const Args& args, std::ostream& err,
                        IntegrityMode* out) {
  const std::string value = args.Get("integrity", "header");
  if (value.empty() || value == "header") {
    *out = IntegrityMode::kHeader;
  } else if (value == "off") {
    *out = IntegrityMode::kOff;
  } else if (value == "full") {
    *out = IntegrityMode::kFull;
  } else {
    err << "--integrity must be off, header or full (got '" << value
        << "')\n";
    return false;
  }
  return true;
}

// Parses --backend into \p out; false (with a message) on a bad value.
bool ParseBackendFlag(const Args& args, std::ostream& err,
                      BackendChoice* out) {
  const std::string value = args.Get("backend", "auto");
  if (value.empty() || value == "auto") {
    *out = BackendChoice::kAuto;
  } else if (value == "csr") {
    *out = BackendChoice::kCsr;
  } else if (value == "bitmap") {
    *out = BackendChoice::kBitmap;
  } else if (value == "hybrid") {
    *out = BackendChoice::kHybrid;
  } else {
    err << "--backend must be auto, csr, bitmap or hybrid (got '" << value
        << "')\n";
    return false;
  }
  return true;
}

// Opens an Engine session over the trace file named by \p path —
// plain-text by default, CSV instrumentation records with --csv, a packed
// binary database when the path ends in .smdb. Parse/validation errors
// (with their line numbers or corrupt section) come back as a non-OK
// Result.
Result<Engine> LoadEngine(const Args& args, const std::string& path,
                          std::ostream& err) {
  IntegrityMode integrity = IntegrityMode::kHeader;
  {
    std::ostringstream bad;
    if (!ParseIntegrityFlag(args, bad, &integrity)) {
      return Status::InvalidArgument(bad.str());
    }
  }
  if (IsSmdbSetPath(path)) {
    SetOpenOptions options;
    options.integrity = integrity;
    options.policy = args.Has("quarantine") ? ShardFailurePolicy::kQuarantine
                                            : ShardFailurePolicy::kFail;
    Result<Engine> engine = Engine::FromShardSet(path, options);
    if (engine.ok()) {
      // A degraded open must be loud: every quarantined shard goes to
      // stderr so no script mistakes a partial corpus for the whole one.
      for (const QuarantinedShard& q :
           engine->shard_set().open_report().quarantined) {
        err << "warning: quarantined shard " << q.index << " (" << q.path
            << "): " << q.error << '\n';
      }
    }
    return engine;
  }
  if (IsSmdbPath(path)) {
    SmdbOpenOptions options;
    options.integrity = integrity;
    return Engine::FromBinaryFile(path, options);
  }
  if (args.Has("csv")) {
    CsvTraceOptions options;
    options.group_column = args.GetUint("group-col", 0);
    options.event_column = args.GetUint("event-col", 1);
    std::string delim = args.Get("delim", ",");
    options.delimiter = delim.empty() ? ',' : delim[0];
    options.has_header = args.Has("header");
    return Engine::FromCsvTraceFile(path, options);
  }
  return Engine::FromTextTraceFile(path);
}

int CmdStats(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "stats: missing trace file\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, args.positional()[0], err);
  if (!engine.ok()) return Fail(err, engine.status());
  const SequenceDatabase& db = engine->database();
  out << ComputeStats(db).ToString() << '\n';
  const BackendKind chosen = ChooseBackendKind(db);
  out << "auto backend: " << BackendKindName(chosen) << '\n';
  out << "simd dispatch: " << SimdDispatchLevel() << '\n';
  if (chosen == BackendKind::kHybrid) {
    // Show the sparse/dense split the hybrid layout would use — the
    // knob --backend=hybrid tuning starts from (docs/user_guide.md).
    const HybridIndex hybrid(db);
    out << "hybrid split: " << hybrid.num_dense_events()
        << " dense events (bitmap rows), "
        << (hybrid.num_events() - hybrid.num_dense_events())
        << " sparse (ID-lists), cutoff " << hybrid.dense_cutoff()
        << " occurrences\n";
  }
  if (engine->sharded()) {
    const ShardedDatabase& set = engine->shard_set();
    out << set.num_shards() << " shards:\n";
    for (size_t i = 0; i < set.num_shards(); ++i) {
      out << "  shard " << i << ": " << set.shard(i).size()
          << " sequences, " << set.shard(i).TotalEvents() << " events, "
          << set.shard(i).dictionary().size() << " distinct ("
          << set.shard_path(i) << ")\n";
    }
  }
  if (args.Has("trace")) {
    // Bounds-checked by design: a bad id is a user error, not a crash.
    const uint64_t id = args.GetUint("trace", 0);
    if (id > std::numeric_limits<SeqId>::max()) {
      return Fail(err,
                  Status::OutOfRange("sequence id " + std::to_string(id) +
                                     " out of range (database has " +
                                     std::to_string(db.size()) +
                                     " sequences)"));
    }
    Result<EventSpan> trace = db.at(static_cast<SeqId>(id));
    if (!trace.ok()) return Fail(err, trace.status());
    out << "trace " << id << ':';
    for (EventId ev : *trace) out << ' ' << db.dictionary().NameOrPlaceholder(ev);
    out << '\n';
  }
  return 0;
}

int CmdPack(const Args& args, std::ostream& out, std::ostream& err) {
  // The flag parser greedily binds the token after --append as its value
  // ("pack --append traces.txt set.smdbset"); fold it back into the
  // positional list so the documented ordering works.
  std::vector<std::string> positional = args.positional();
  if (args.Has("append")) {
    const std::string value = args.Get("append", "");
    if (!value.empty()) positional.insert(positional.begin(), value);
  }
  if (positional.size() < 2) {
    err << "pack: usage: pack [--append] <traces> <out.smdb|out.smdbset> "
           "[--shard-bytes N] [--csv ...]\n";
    return 2;
  }
  const std::string& in_path = positional[0];
  const std::string& out_path = positional[1];
  if (args.Has("shard-bytes") && !IsSmdbSetPath(out_path)) {
    err << "pack: --shard-bytes requires a .smdbset output path\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, in_path, err);
  if (!engine.ok()) return Fail(err, engine.status());
  if (args.Has("append")) {
    if (!IsSmdbSetPath(out_path)) {
      err << "pack: --append requires a .smdbset target\n";
      return 2;
    }
    AppendOptions options;
    options.writer.shard_bytes =
        args.GetUint("shard-bytes", options.writer.shard_bytes);
    Result<AppendSession> opened = AppendSession::Open(out_path, options);
    if (!opened.ok()) return Fail(err, opened.status());
    AppendSession session = opened.TakeValueOrDie();
    const SequenceDatabase& db = engine->database();
    for (size_t i = 0; i < db.size(); ++i) {
      Result<EventSpan> trace = db.at(static_cast<SeqId>(i));
      if (!trace.ok()) return Fail(err, trace.status());
      Status added = session.AddSequence(*trace, db.dictionary());
      if (!added.ok()) return Fail(err, added);
    }
    Status committed = session.Commit();
    if (!committed.ok()) return Fail(err, committed);
    // Reopening validates the appended set end to end.
    Result<ShardedDatabase> set = ShardedDatabase::Open(out_path);
    if (!set.ok()) return Fail(err, set.status());
    out << "appended " << db.size() << " traces from " << in_path << " -> "
        << out_path << ": generation " << session.committed_generation()
        << ", " << set->num_shards() << " shards, "
        << set->TotalSequences() << " sequences\n";
    return 0;
  }
  if (IsSmdbSetPath(out_path)) {
    ShardWriterOptions options;
    options.shard_bytes = args.GetUint("shard-bytes", options.shard_bytes);
    Status written =
        WriteShardedDatabase(engine->database(), out_path, options);
    if (!written.ok()) return Fail(err, written);
    // Reopening validates the set end to end and tells us the shard count.
    Result<ShardedDatabase> set = ShardedDatabase::Open(out_path);
    if (!set.ok()) return Fail(err, set.status());
    out << "packed " << in_path << " -> " << out_path << ": "
        << set->num_shards() << " shards, "
        << ComputeStats(engine->database()).ToString() << '\n';
    return 0;
  }
  Status written = engine->SaveBinary(out_path);
  if (!written.ok()) return Fail(err, written);
  out << "packed " << in_path << " -> " << out_path << ": "
      << ComputeStats(engine->database()).ToString() << '\n';
  return 0;
}

int CmdMinePatterns(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "mine-patterns: missing trace file\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, args.positional()[0], err);
  if (!engine.ok()) return Fail(err, engine.status());
  const uint64_t min_support =
      engine->AbsoluteSupport(args.GetDouble("min-sup", 0.5));
  BackendChoice backend = BackendChoice::kAuto;
  if (!ParseBackendFlag(args, err, &backend)) return kExitInvalidArgument;
  CancelToken timeout;
  const CancelToken* cancel = ArmTimeout(args, &timeout);
  RunReport report;
  Result<PatternSet> mined = [&]() -> Result<PatternSet> {
    if (args.Has("generators")) {
      GeneratorsTask task;
      task.options.min_support = min_support;
      task.options.max_length = args.GetUint("max-len", 0);
      task.options.num_threads = args.GetUint("threads", 0);
      task.options.backend = backend;
      task.options.cancel = cancel;
      return engine->CollectPatterns(task, &report);
    }
    if (args.Has("full")) {
      FullPatternsTask task;
      task.options.min_support = min_support;
      task.options.max_length = args.GetUint("max-len", 0);
      task.options.num_threads = args.GetUint("threads", 0);
      task.options.backend = backend;
      task.options.cancel = cancel;
      if (engine->sharded()) {
        // The per-shard parallel path; output is byte-identical to the
        // merged pass (the sharded-equivalence contract).
        CollectingPatternSink sink;
        Result<RunReport> run = engine->MineSharded(task, sink);
        if (!run.ok()) return run.status();
        report = *run;
        return sink.TakeSet();
      }
      return engine->CollectPatterns(task, &report);
    }
    ClosedTask task;
    task.options.min_support = min_support;
    task.options.max_length = args.GetUint("max-len", 0);
    task.options.num_threads = args.GetUint("threads", 0);
    task.options.backend = backend;
    task.options.cancel = cancel;
    return engine->CollectPatterns(task, &report);
  }();
  if (!mined.ok()) return Fail(err, mined.status());
  PatternSet patterns = mined.TakeValueOrDie();
  patterns.SortBySupport();
  if (args.Has("json")) {
    out << PatternsResultToJson(report, patterns,
                                engine->dictionary());
    return 0;
  }
  out << patterns.size() << " patterns\n";
  out << "timing: backend " << (report.backend.empty() ? "-" : report.backend)
      << ", simd " << SimdDispatchLevel() << ", index build "
      << report.index_build_seconds << " s, mine " << report.mine_seconds
      << " s\n";
  out << patterns.ToString(engine->dictionary());
  return 0;
}

int CmdMineRules(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "mine-rules: missing trace file\n";
    return 2;
  }
  Result<Engine> loaded = LoadEngine(args, args.positional()[0], err);
  if (!loaded.ok()) return Fail(err, loaded.status());
  const Engine& engine = *loaded;
  const SequenceDatabase& db = engine.database();

  RulesTask task;
  task.options.min_s_support =
      engine.AbsoluteSupport(args.GetDouble("min-ssup", 0.5));
  task.options.min_confidence = args.GetDouble("min-conf", 0.9);
  task.options.min_i_support = args.GetUint("min-isup", 1);
  task.options.non_redundant = !args.Has("full");
  task.options.max_premise_length = args.GetUint("max-pre", 0);
  task.options.max_consequent_length = args.GetUint("max-post", 0);
  task.options.num_threads = args.GetUint("threads", 0);
  if (!ParseBackendFlag(args, err, &task.options.backend)) {
    return kExitInvalidArgument;
  }
  task.backward = args.Has("backward");
  CancelToken timeout;
  task.options.cancel = ArmTimeout(args, &timeout);

  RunReport report;
  Result<RuleSet> mined = engine.CollectRules(task, &report);
  if (!mined.ok()) return Fail(err, mined.status());
  RuleSet rules = mined.TakeValueOrDie();
  if (args.Has("json")) {
    rules.SortByQuality();
    out << RulesResultToJson(report, rules, db.dictionary());
    return 0;
  }
  out << rules.size() << (task.backward ? " backward" : "") << " rules\n";
  if (args.Has("rank") && !task.backward) {
    for (const RankedRule& rr : RankRules(rules, db)) {
      out << rr.rule.ToString(db.dictionary()) << "  lift="
          << rr.lift << '\n';
      out << "    LTL: " << RuleToLtl(rr.rule, db.dictionary())->ToString()
          << '\n';
    }
    return 0;
  }
  rules.SortByQuality();
  for (const Rule& r : rules.rules()) {
    if (task.backward) {
      out << BackwardRuleToString(r, db.dictionary()) << '\n';
    } else {
      out << r.ToString(db.dictionary()) << '\n';
      out << "    LTL: " << RuleToLtl(r, db.dictionary())->ToString() << '\n';
    }
  }
  return 0;
}

int CmdMineSeq(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "mine-seq: missing trace file\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, args.positional()[0], err);
  if (!engine.ok()) return Fail(err, engine.status());
  const uint64_t min_support =
      engine->AbsoluteSupport(args.GetDouble("min-sup", 0.5));
  const size_t max_length = args.GetUint("max-len", 0);
  BackendChoice backend = BackendChoice::kAuto;
  if (!ParseBackendFlag(args, err, &backend)) return kExitInvalidArgument;
  (void)backend;  // The sequential miners use no counting index.
  CancelToken timeout;
  const CancelToken* cancel = ArmTimeout(args, &timeout);
  RunReport report;
  Result<PatternSet> mined = [&]() -> Result<PatternSet> {
    if (args.Has("generators")) {
      SequentialGeneratorsTask task;
      task.options.min_support = min_support;
      task.options.max_length = max_length;
      task.options.cancel = cancel;
      return engine->CollectPatterns(task, &report);
    }
    if (args.Has("closed")) {
      ClosedSequentialTask task;
      task.options.min_support = min_support;
      task.options.max_length = max_length;
      task.options.cancel = cancel;
      return engine->CollectPatterns(task, &report);
    }
    SequentialTask task;
    task.options.min_support = min_support;
    task.options.max_length = max_length;
    task.options.cancel = cancel;
    return engine->CollectPatterns(task, &report);
  }();
  if (!mined.ok()) return Fail(err, mined.status());
  PatternSet patterns = mined.TakeValueOrDie();
  patterns.SortBySupport();
  if (args.Has("json")) {
    out << PatternsResultToJson(report, patterns,
                                engine->dictionary());
    return 0;
  }
  out << patterns.size() << " sequential patterns (" << report.task << ")\n";
  out << patterns.ToString(engine->dictionary());
  return 0;
}

int CmdMineEpisodes(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "mine-episodes: missing trace file\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, args.positional()[0], err);
  if (!engine.ok()) return Fail(err, engine.status());
  BackendChoice backend = BackendChoice::kAuto;
  if (!ParseBackendFlag(args, err, &backend)) return kExitInvalidArgument;
  (void)backend;  // The episode miners use no counting index.
  CancelToken timeout;
  const CancelToken* cancel = ArmTimeout(args, &timeout);
  EpisodeTask task;
  if (args.Has("minepi")) {
    task.algorithm = EpisodeTask::Algorithm::kMinepi;
    task.minepi.max_window = args.GetUint("window", 10);
    task.minepi.min_support = args.GetUint("min-count", 1);
    task.minepi.max_length = args.GetUint("max-len", 0);
    task.minepi.cancel = cancel;
  } else {
    task.winepi.window_width = args.GetUint("window", 10);
    task.winepi.min_window_count = args.GetUint("min-count", 1);
    task.winepi.max_length = args.GetUint("max-len", 0);
    task.winepi.cancel = cancel;
  }
  RunReport report;
  Result<PatternSet> mined = engine->CollectPatterns(task, &report);
  if (!mined.ok()) return Fail(err, mined.status());
  PatternSet episodes = mined.TakeValueOrDie();
  episodes.SortBySupport();
  if (args.Has("json")) {
    out << PatternsResultToJson(report, episodes,
                                engine->dictionary());
    return 0;
  }
  out << episodes.size() << " episodes (" << report.task << ")\n";
  out << episodes.ToString(engine->dictionary());
  return 0;
}

int CmdMinePairs(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "mine-pairs: missing trace file\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, args.positional()[0], err);
  if (!engine.ok()) return Fail(err, engine.status());
  BackendChoice backend = BackendChoice::kAuto;
  if (!ParseBackendFlag(args, err, &backend)) return kExitInvalidArgument;
  (void)backend;  // The two-event miner uses no counting index.
  CancelToken timeout;
  TwoEventTask task;
  task.options.min_satisfaction = args.GetDouble("min-sat", 1.0);
  task.options.min_relevant_traces = args.GetUint("min-relevant", 1);
  task.options.cancel = ArmTimeout(args, &timeout);
  CollectingTwoEventSink sink;
  Result<RunReport> report = engine->Mine(task, sink);
  if (!report.ok()) return Fail(err, report.status());
  if (args.Has("json")) {
    out << TwoEventResultToJson(*report, sink.rules(),
                                engine->dictionary());
    return 0;
  }
  out << sink.rules().size() << " two-event rules\n";
  for (const TwoEventRule& rule : sink.rules()) {
    out << rule.ToString(engine->dictionary()) << '\n';
  }
  return 0;
}

// Re-hashes every stored checksum of a packed file: a full-integrity open
// of the .smdb (or of the manifest and every shard of a .smdbset). With
// --quarantine a set verify reports bad shards instead of failing on the
// first one; any quarantined shard still makes the exit code non-zero, so
// scripts can use `specmine verify` as a boolean health probe.
int CmdVerify(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "verify: usage: verify <file.smdb|file.smdbset> [--quarantine]\n";
    return kExitUsage;
  }
  const std::string& path = args.positional()[0];
  if (IsSmdbSetPath(path)) {
    SetOpenOptions options;
    options.integrity = IntegrityMode::kFull;
    options.policy = args.Has("quarantine") ? ShardFailurePolicy::kQuarantine
                                            : ShardFailurePolicy::kFail;
    Result<ShardedDatabase> set = ShardedDatabase::Open(path, options);
    if (!set.ok()) return Fail(err, set.status());
    const SetOpenReport& report = set->open_report();
    out << path << ": " << set->num_shards() << " / " << report.shards_total
        << " shards verified, " << set->TotalSequences() << " sequences, "
        << set->TotalEvents() << " events, " << set->dictionary().size()
        << " distinct events\n";
    for (const QuarantinedShard& q : report.quarantined) {
      out << "  QUARANTINED shard " << q.index << " (" << q.path
          << "): " << q.error << '\n';
    }
    if (!report.quarantined.empty()) {
      return Fail(err, Status::ParseError(
                           std::to_string(report.quarantined.size()) +
                           " of " + std::to_string(report.shards_total) +
                           " shards failed verification"));
    }
    out << "OK\n";
    return 0;
  }
  if (IsSmdbPath(path)) {
    SmdbOpenOptions options;
    options.integrity = IntegrityMode::kFull;
    Result<MappedDatabase> mapped = MappedDatabase::Open(path, options);
    if (!mapped.ok()) return Fail(err, mapped.status());
    out << path << ": format v" << mapped->file_version() << ", "
        << mapped->db().size() << " sequences, " << mapped->db().TotalEvents()
        << " events, " << mapped->db().dictionary().size()
        << " distinct events\n";
    if (mapped->file_version() < kSmdbVersion) {
      out << "note: legacy v" << mapped->file_version()
          << " file carries no checksums; only structural validation ran "
             "(repack to add checksums)\n";
    }
    out << "OK\n";
    return 0;
  }
  err << "verify: expected a .smdb or .smdbset path, got '" << path << "'\n";
  return kExitUsage;
}

int CmdCheck(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty() || !args.Has("ltl")) {
    err << "check: usage: check <traces> --ltl <formula>\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, args.positional()[0], err);
  if (!engine.ok()) return Fail(err, engine.status());
  const SequenceDatabase& db = engine->database();
  Result<LtlPtr> formula = ParseLtl(args.Get("ltl", ""));
  if (!formula.ok()) return Fail(err, formula.status());
  size_t holding = 0;
  for (SeqId s = 0; s < db.size(); ++s) {
    bool ok = EvaluateLtl(*formula, db, s);
    if (ok) ++holding;
    out << "trace " << s << ": " << (ok ? "holds" : "VIOLATED") << '\n';
  }
  out << holding << " / " << db.size() << " traces satisfy "
      << (*formula)->ToString() << '\n';
  return holding == db.size() ? 0 : 1;
}

int CmdGenQuest(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "gen-quest: missing output file\n";
    return 2;
  }
  QuestParams params;
  params.d_sequences_thousands = args.GetDouble("d", 0.1);
  params.c_avg_sequence_length = args.GetDouble("c", 15.0);
  params.n_events_thousands = args.GetDouble("n", 0.2);
  params.s_avg_pattern_length = args.GetDouble("s", 6.0);
  params.seed = args.GetUint("seed", params.seed);
  Result<SequenceDatabase> db = GenerateQuest(params);
  if (!db.ok()) return Fail(err, db.status());
  Status written = WriteTextTraceFile(*db, args.positional()[0]);
  if (!written.ok()) return Fail(err, written);
  out << "wrote " << params.Label() << ": " << ComputeStats(*db).ToString()
      << '\n';
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 2 : 0;
  }
  if (args[0] == "version" || args[0] == "--version") {
    out << VersionLine() << '\n';
    return 0;
  }
  const std::string& command = args[0];
  Args parsed(args, 1);
  if (command == "stats") return CmdStats(parsed, out, err);
  if (command == "pack") return CmdPack(parsed, out, err);
  if (command == "mine-patterns") return CmdMinePatterns(parsed, out, err);
  if (command == "mine-rules") return CmdMineRules(parsed, out, err);
  if (command == "mine-seq") return CmdMineSeq(parsed, out, err);
  if (command == "mine-episodes") return CmdMineEpisodes(parsed, out, err);
  if (command == "mine-pairs") return CmdMinePairs(parsed, out, err);
  if (command == "verify") return CmdVerify(parsed, out, err);
  if (command == "check") return CmdCheck(parsed, out, err);
  if (command == "gen-quest") return CmdGenQuest(parsed, out, err);
  err << "unknown command: " << command << '\n' << kUsage;
  return 2;
}

}  // namespace specmine
