#include "src/specmine/cli.h"

#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "src/engine/engine.h"
#include "src/ltl/checker.h"
#include "src/ltl/parser.h"
#include "src/ltl/translate.h"
#include "src/rulemine/backward_rules.h"
#include "src/specmine/ranking.h"
#include "src/synth/quest_generator.h"
#include "src/trace/csv_trace_reader.h"
#include "src/trace/database_stats.h"
#include "src/trace/shard_set.h"
#include "src/trace/trace_io.h"

namespace specmine {

namespace {

constexpr const char* kUsage = R"(usage: specmine <command> [options]

commands:
  stats <traces> [--trace N]        print database shape statistics
  pack <traces> <out.smdb>          pack traces into a binary mmap database
  pack <traces> <out.smdbset> [--shard-bytes N]
                                    pack into size-bounded .smdb shards
                                    plus a .smdbset manifest
  mine-patterns <traces> [options]  mine iterative patterns
  mine-rules <traces> [options]     mine recurrent rules (with LTL forms)
  mine-seq <traces> [options]       mine sequential patterns (PrefixSpan/BIDE)
  mine-episodes <traces> [options]  mine serial episodes (WINEPI/MINEPI)
  mine-pairs <traces> [options]     mine two-event rules (Perracotta)
  check <traces> --ltl <formula>    evaluate an LTL formula on every trace
  gen-quest <out> [options]         generate a QUEST-style dataset

common options:
  --csv [--group-col N] [--event-col N] [--delim C] [--header]
  <traces> ending in .smdb is opened as a packed binary database (zero-copy
  mmap; see 'pack') in every command that accepts a trace file; .smdbset
  opens a sharded corpus (shards mmap'ed, mining output identical to the
  equivalent single .smdb — mine-patterns --full runs the parallel
  per-shard path).

mine-patterns: --min-sup F (0.5) | --full | --generators | --max-len N
               --threads N (0 = all cores) --backend {auto,csr,bitmap}
mine-rules:    --min-ssup F (0.5) --min-conf F (0.9) --min-isup N (1)
               --full | --backward | --rank
               --max-pre N --max-post N --threads N (0 = all cores)
               --backend {auto,csr,bitmap}
mine-seq:      --min-sup F (0.5) | --closed | --generators | --max-len N
mine-episodes: --minepi | --window N (10) --min-count N (1) --max-len N
mine-pairs:    --min-sat F (1.0) --min-relevant N (1)
gen-quest:     --d F --c F --n F --s F --seed N

All miners run through the specmine::Engine session API; invalid options
and malformed trace files are reported as errors (non-zero exit), never
mined around.

--backend selects the physical counting representation: csr (horizontal
position lists), bitmap (vertical word-packed occurrence rows), or auto
(default; per-database density heuristic). Outputs are byte-identical
across backends. Accepted by every mine-* command; mine-seq,
mine-episodes and mine-pairs use no counting index, so there it only
validates.
)";

// Minimal flag parser: positional arguments plus --flag [value] pairs.
class Args {
 public:
  Args(const std::vector<std::string>& args, size_t from) {
    for (size_t i = from; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a.size() >= 2 && a[0] == '-' && a[1] == '-') {
        std::string name = a.substr(2);
        if (i + 1 < args.size() && (args[i + 1].empty() ||
                                    args[i + 1][0] != '-' ||
                                    args[i + 1].size() < 2 ||
                                    args[i + 1][1] != '-')) {
          flags_[name] = args[i + 1];
          ++i;
        } else {
          flags_[name] = "";
        }
      } else {
        positional_.push_back(a);
      }
    }
  }

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  std::string Get(const std::string& name, const std::string& def) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
  }

  double GetDouble(const std::string& name, double def) const {
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty()) return def;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      return def;  // Unparseable value: fall back instead of aborting.
    }
  }

  uint64_t GetUint(const std::string& name, uint64_t def) const {
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty()) return def;
    // stoull silently wraps negatives ("-1" -> 2^64-1); treat them as
    // unparseable too and fall back instead of aborting downstream.
    if (it->second[0] == '-') return def;
    try {
      return std::stoull(it->second);
    } catch (const std::exception&) {
      return def;  // Unparseable value: fall back instead of aborting.
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

// Parses --backend into \p out; false (with a message) on a bad value.
bool ParseBackendFlag(const Args& args, std::ostream& err,
                      BackendChoice* out) {
  const std::string value = args.Get("backend", "auto");
  if (value.empty() || value == "auto") {
    *out = BackendChoice::kAuto;
  } else if (value == "csr") {
    *out = BackendChoice::kCsr;
  } else if (value == "bitmap") {
    *out = BackendChoice::kBitmap;
  } else {
    err << "--backend must be auto, csr or bitmap (got '" << value
        << "')\n";
    return false;
  }
  return true;
}

// Opens an Engine session over the trace file named by \p path —
// plain-text by default, CSV instrumentation records with --csv, a packed
// binary database when the path ends in .smdb. Parse/validation errors
// (with their line numbers or corrupt section) come back as a non-OK
// Result.
Result<Engine> LoadEngine(const Args& args, const std::string& path) {
  if (IsSmdbSetPath(path)) return Engine::FromShardSet(path);
  if (IsSmdbPath(path)) return Engine::FromBinaryFile(path);
  if (args.Has("csv")) {
    CsvTraceOptions options;
    options.group_column = args.GetUint("group-col", 0);
    options.event_column = args.GetUint("event-col", 1);
    std::string delim = args.Get("delim", ",");
    options.delimiter = delim.empty() ? ',' : delim[0];
    options.has_header = args.Has("header");
    return Engine::FromCsvTraceFile(path, options);
  }
  return Engine::FromTextTraceFile(path);
}

int CmdStats(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "stats: missing trace file\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, args.positional()[0]);
  if (!engine.ok()) {
    err << engine.status().ToString() << '\n';
    return 1;
  }
  const SequenceDatabase& db = engine->database();
  out << ComputeStats(db).ToString() << '\n';
  out << "auto backend: " << BackendKindName(ChooseBackendKind(db))
      << '\n';
  if (engine->sharded()) {
    const ShardedDatabase& set = engine->shard_set();
    out << set.num_shards() << " shards:\n";
    for (size_t i = 0; i < set.num_shards(); ++i) {
      out << "  shard " << i << ": " << set.shard(i).size()
          << " sequences, " << set.shard(i).TotalEvents() << " events, "
          << set.shard(i).dictionary().size() << " distinct ("
          << set.shard_path(i) << ")\n";
    }
  }
  if (args.Has("trace")) {
    // Bounds-checked by design: a bad id is a user error, not a crash.
    const uint64_t id = args.GetUint("trace", 0);
    if (id > std::numeric_limits<SeqId>::max()) {
      err << Status::OutOfRange("sequence id " + std::to_string(id) +
                                " out of range (database has " +
                                std::to_string(db.size()) + " sequences)")
                 .ToString()
          << '\n';
      return 1;
    }
    Result<EventSpan> trace = db.at(static_cast<SeqId>(id));
    if (!trace.ok()) {
      err << trace.status().ToString() << '\n';
      return 1;
    }
    out << "trace " << id << ':';
    for (EventId ev : *trace) out << ' ' << db.dictionary().NameOrPlaceholder(ev);
    out << '\n';
  }
  return 0;
}

int CmdPack(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().size() < 2) {
    err << "pack: usage: pack <traces> <out.smdb|out.smdbset> "
           "[--shard-bytes N] [--csv ...]\n";
    return 2;
  }
  const std::string& in_path = args.positional()[0];
  const std::string& out_path = args.positional()[1];
  if (args.Has("shard-bytes") && !IsSmdbSetPath(out_path)) {
    err << "pack: --shard-bytes requires a .smdbset output path\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, in_path);
  if (!engine.ok()) {
    err << engine.status().ToString() << '\n';
    return 1;
  }
  if (IsSmdbSetPath(out_path)) {
    ShardWriterOptions options;
    options.shard_bytes = args.GetUint("shard-bytes", options.shard_bytes);
    Status written =
        WriteShardedDatabase(engine->database(), out_path, options);
    if (!written.ok()) {
      err << written.ToString() << '\n';
      return 1;
    }
    // Reopening validates the set end to end and tells us the shard count.
    Result<ShardedDatabase> set = ShardedDatabase::Open(out_path);
    if (!set.ok()) {
      err << set.status().ToString() << '\n';
      return 1;
    }
    out << "packed " << in_path << " -> " << out_path << ": "
        << set->num_shards() << " shards, "
        << ComputeStats(engine->database()).ToString() << '\n';
    return 0;
  }
  Status written = engine->SaveBinary(out_path);
  if (!written.ok()) {
    err << written.ToString() << '\n';
    return 1;
  }
  out << "packed " << in_path << " -> " << out_path << ": "
      << ComputeStats(engine->database()).ToString() << '\n';
  return 0;
}

int CmdMinePatterns(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "mine-patterns: missing trace file\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, args.positional()[0]);
  if (!engine.ok()) {
    err << engine.status().ToString() << '\n';
    return 1;
  }
  const uint64_t min_support =
      engine->AbsoluteSupport(args.GetDouble("min-sup", 0.5));
  BackendChoice backend = BackendChoice::kAuto;
  if (!ParseBackendFlag(args, err, &backend)) return 2;
  RunReport report;
  Result<PatternSet> mined = [&]() -> Result<PatternSet> {
    if (args.Has("generators")) {
      GeneratorsTask task;
      task.options.min_support = min_support;
      task.options.max_length = args.GetUint("max-len", 0);
      task.options.num_threads = args.GetUint("threads", 0);
      task.options.backend = backend;
      return engine->CollectPatterns(task, &report);
    }
    if (args.Has("full")) {
      FullPatternsTask task;
      task.options.min_support = min_support;
      task.options.max_length = args.GetUint("max-len", 0);
      task.options.num_threads = args.GetUint("threads", 0);
      task.options.backend = backend;
      if (engine->sharded()) {
        // The per-shard parallel path; output is byte-identical to the
        // merged pass (the sharded-equivalence contract).
        CollectingPatternSink sink;
        Result<RunReport> run = engine->MineSharded(task, sink);
        if (!run.ok()) return run.status();
        report = *run;
        return sink.TakeSet();
      }
      return engine->CollectPatterns(task, &report);
    }
    ClosedTask task;
    task.options.min_support = min_support;
    task.options.max_length = args.GetUint("max-len", 0);
    task.options.num_threads = args.GetUint("threads", 0);
    task.options.backend = backend;
    return engine->CollectPatterns(task, &report);
  }();
  if (!mined.ok()) {
    err << mined.status().ToString() << '\n';
    return 2;
  }
  PatternSet patterns = mined.TakeValueOrDie();
  patterns.SortBySupport();
  out << patterns.size() << " patterns\n";
  out << "timing: backend " << (report.backend.empty() ? "-" : report.backend)
      << ", index build " << report.index_build_seconds << " s, mine "
      << report.mine_seconds << " s\n";
  out << patterns.ToString(engine->database().dictionary());
  return 0;
}

int CmdMineRules(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "mine-rules: missing trace file\n";
    return 2;
  }
  Result<Engine> loaded = LoadEngine(args, args.positional()[0]);
  if (!loaded.ok()) {
    err << loaded.status().ToString() << '\n';
    return 1;
  }
  const Engine& engine = *loaded;
  const SequenceDatabase& db = engine.database();

  RulesTask task;
  task.options.min_s_support =
      engine.AbsoluteSupport(args.GetDouble("min-ssup", 0.5));
  task.options.min_confidence = args.GetDouble("min-conf", 0.9);
  task.options.min_i_support = args.GetUint("min-isup", 1);
  task.options.non_redundant = !args.Has("full");
  task.options.max_premise_length = args.GetUint("max-pre", 0);
  task.options.max_consequent_length = args.GetUint("max-post", 0);
  task.options.num_threads = args.GetUint("threads", 0);
  if (!ParseBackendFlag(args, err, &task.options.backend)) return 2;
  task.backward = args.Has("backward");

  Result<RuleSet> mined = engine.CollectRules(task);
  if (!mined.ok()) {
    err << mined.status().ToString() << '\n';
    return 2;
  }
  RuleSet rules = mined.TakeValueOrDie();
  out << rules.size() << (task.backward ? " backward" : "") << " rules\n";
  if (args.Has("rank") && !task.backward) {
    for (const RankedRule& rr : RankRules(rules, db)) {
      out << rr.rule.ToString(db.dictionary()) << "  lift="
          << rr.lift << '\n';
      out << "    LTL: " << RuleToLtl(rr.rule, db.dictionary())->ToString()
          << '\n';
    }
    return 0;
  }
  rules.SortByQuality();
  for (const Rule& r : rules.rules()) {
    if (task.backward) {
      out << BackwardRuleToString(r, db.dictionary()) << '\n';
    } else {
      out << r.ToString(db.dictionary()) << '\n';
      out << "    LTL: " << RuleToLtl(r, db.dictionary())->ToString() << '\n';
    }
  }
  return 0;
}

int CmdMineSeq(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "mine-seq: missing trace file\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, args.positional()[0]);
  if (!engine.ok()) {
    err << engine.status().ToString() << '\n';
    return 1;
  }
  const uint64_t min_support =
      engine->AbsoluteSupport(args.GetDouble("min-sup", 0.5));
  const size_t max_length = args.GetUint("max-len", 0);
  BackendChoice backend = BackendChoice::kAuto;
  if (!ParseBackendFlag(args, err, &backend)) return 2;
  (void)backend;  // The sequential miners use no counting index.
  RunReport report;
  Result<PatternSet> mined = [&]() -> Result<PatternSet> {
    if (args.Has("generators")) {
      SequentialGeneratorsTask task;
      task.options.min_support = min_support;
      task.options.max_length = max_length;
      return engine->CollectPatterns(task, &report);
    }
    if (args.Has("closed")) {
      ClosedSequentialTask task;
      task.options.min_support = min_support;
      task.options.max_length = max_length;
      return engine->CollectPatterns(task, &report);
    }
    SequentialTask task;
    task.options.min_support = min_support;
    task.options.max_length = max_length;
    return engine->CollectPatterns(task, &report);
  }();
  if (!mined.ok()) {
    err << mined.status().ToString() << '\n';
    return 2;
  }
  PatternSet patterns = mined.TakeValueOrDie();
  patterns.SortBySupport();
  out << patterns.size() << " sequential patterns (" << report.task << ")\n";
  out << patterns.ToString(engine->database().dictionary());
  return 0;
}

int CmdMineEpisodes(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "mine-episodes: missing trace file\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, args.positional()[0]);
  if (!engine.ok()) {
    err << engine.status().ToString() << '\n';
    return 1;
  }
  BackendChoice backend = BackendChoice::kAuto;
  if (!ParseBackendFlag(args, err, &backend)) return 2;
  (void)backend;  // The episode miners use no counting index.
  EpisodeTask task;
  if (args.Has("minepi")) {
    task.algorithm = EpisodeTask::Algorithm::kMinepi;
    task.minepi.max_window = args.GetUint("window", 10);
    task.minepi.min_support = args.GetUint("min-count", 1);
    task.minepi.max_length = args.GetUint("max-len", 0);
  } else {
    task.winepi.window_width = args.GetUint("window", 10);
    task.winepi.min_window_count = args.GetUint("min-count", 1);
    task.winepi.max_length = args.GetUint("max-len", 0);
  }
  RunReport report;
  Result<PatternSet> mined = engine->CollectPatterns(task, &report);
  if (!mined.ok()) {
    err << mined.status().ToString() << '\n';
    return 2;
  }
  PatternSet episodes = mined.TakeValueOrDie();
  episodes.SortBySupport();
  out << episodes.size() << " episodes (" << report.task << ")\n";
  out << episodes.ToString(engine->database().dictionary());
  return 0;
}

int CmdMinePairs(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "mine-pairs: missing trace file\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, args.positional()[0]);
  if (!engine.ok()) {
    err << engine.status().ToString() << '\n';
    return 1;
  }
  BackendChoice backend = BackendChoice::kAuto;
  if (!ParseBackendFlag(args, err, &backend)) return 2;
  (void)backend;  // The two-event miner uses no counting index.
  TwoEventTask task;
  task.options.min_satisfaction = args.GetDouble("min-sat", 1.0);
  task.options.min_relevant_traces = args.GetUint("min-relevant", 1);
  CollectingTwoEventSink sink;
  Result<RunReport> report = engine->Mine(task, sink);
  if (!report.ok()) {
    err << report.status().ToString() << '\n';
    return 2;
  }
  out << sink.rules().size() << " two-event rules\n";
  for (const TwoEventRule& rule : sink.rules()) {
    out << rule.ToString(engine->database().dictionary()) << '\n';
  }
  return 0;
}

int CmdCheck(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty() || !args.Has("ltl")) {
    err << "check: usage: check <traces> --ltl <formula>\n";
    return 2;
  }
  Result<Engine> engine = LoadEngine(args, args.positional()[0]);
  if (!engine.ok()) {
    err << engine.status().ToString() << '\n';
    return 1;
  }
  const SequenceDatabase& db = engine->database();
  Result<LtlPtr> formula = ParseLtl(args.Get("ltl", ""));
  if (!formula.ok()) {
    err << formula.status().ToString() << '\n';
    return 1;
  }
  size_t holding = 0;
  for (SeqId s = 0; s < db.size(); ++s) {
    bool ok = EvaluateLtl(*formula, db, s);
    if (ok) ++holding;
    out << "trace " << s << ": " << (ok ? "holds" : "VIOLATED") << '\n';
  }
  out << holding << " / " << db.size() << " traces satisfy "
      << (*formula)->ToString() << '\n';
  return holding == db.size() ? 0 : 1;
}

int CmdGenQuest(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "gen-quest: missing output file\n";
    return 2;
  }
  QuestParams params;
  params.d_sequences_thousands = args.GetDouble("d", 0.1);
  params.c_avg_sequence_length = args.GetDouble("c", 15.0);
  params.n_events_thousands = args.GetDouble("n", 0.2);
  params.s_avg_pattern_length = args.GetDouble("s", 6.0);
  params.seed = args.GetUint("seed", params.seed);
  Result<SequenceDatabase> db = GenerateQuest(params);
  if (!db.ok()) {
    err << db.status().ToString() << '\n';
    return 1;
  }
  Status written = WriteTextTraceFile(*db, args.positional()[0]);
  if (!written.ok()) {
    err << written.ToString() << '\n';
    return 1;
  }
  out << "wrote " << params.Label() << ": " << ComputeStats(*db).ToString()
      << '\n';
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  Args parsed(args, 1);
  if (command == "stats") return CmdStats(parsed, out, err);
  if (command == "pack") return CmdPack(parsed, out, err);
  if (command == "mine-patterns") return CmdMinePatterns(parsed, out, err);
  if (command == "mine-rules") return CmdMineRules(parsed, out, err);
  if (command == "mine-seq") return CmdMineSeq(parsed, out, err);
  if (command == "mine-episodes") return CmdMineEpisodes(parsed, out, err);
  if (command == "mine-pairs") return CmdMinePairs(parsed, out, err);
  if (command == "check") return CmdCheck(parsed, out, err);
  if (command == "gen-quest") return CmdGenQuest(parsed, out, err);
  err << "unknown command: " << command << '\n' << kUsage;
  return 2;
}

}  // namespace specmine
