#include "src/specmine/ranking.h"

#include <algorithm>

#include "src/seqmine/occurrence_engine.h"

namespace specmine {

std::vector<RankedPattern> RankPatterns(const PatternSet& patterns) {
  std::vector<RankedPattern> out;
  out.reserve(patterns.size());
  for (const MinedPattern& p : patterns.items()) {
    RankedPattern rp;
    rp.item = p;
    rp.score = static_cast<double>(p.support) *
               static_cast<double>(p.pattern.size() - 1);
    out.push_back(std::move(rp));
  }
  std::sort(out.begin(), out.end(),
            [](const RankedPattern& a, const RankedPattern& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.item.support != b.item.support) {
                return a.item.support > b.item.support;
              }
              return a.item.pattern < b.item.pattern;
            });
  return out;
}

double ConsequentBaseline(const Pattern& consequent,
                          const SequenceDatabase& db) {
  size_t positions = 0;
  size_t satisfied = 0;
  for (EventSpan seq : db) {
    for (Pos j = 0; j < seq.size(); ++j) {
      ++positions;
      if (EmbedsAt(consequent, seq, j + 1)) ++satisfied;
    }
  }
  return positions == 0
             ? 0.0
             : static_cast<double>(satisfied) / static_cast<double>(positions);
}

std::vector<RankedRule> RankRules(const RuleSet& rules,
                                  const SequenceDatabase& db) {
  constexpr double kEpsilon = 1e-9;
  std::vector<RankedRule> out;
  out.reserve(rules.size());
  for (const Rule& r : rules.rules()) {
    RankedRule rr;
    rr.rule = r;
    rr.baseline = ConsequentBaseline(r.consequent, db);
    rr.lift = r.confidence() / std::max(rr.baseline, kEpsilon);
    out.push_back(std::move(rr));
  }
  std::sort(out.begin(), out.end(), [](const RankedRule& a,
                                       const RankedRule& b) {
    if (a.lift != b.lift) return a.lift > b.lift;
    double ca = a.rule.confidence();
    double cb = b.rule.confidence();
    if (ca != cb) return ca > cb;
    if (a.rule.s_support != b.rule.s_support) {
      return a.rule.s_support > b.rule.s_support;
    }
    Pattern pa = a.rule.Concatenation();
    Pattern pb = b.rule.Concatenation();
    return pa < pb;
  });
  return out;
}

}  // namespace specmine
