// Online runtime monitoring of mined recurrent rules — the paper's second
// motivating application ("aid program verification (also runtime
// monitoring)...", Section 1, and the future-work integration item).
//
// A SpecificationMonitor consumes events one at a time (no trace buffering)
// and tracks, per rule:
//   * premise progress — the earliest subsequence embedding of the premise
//     stem; once complete, every later occurrence of the premise's last
//     event is a temporal point (Definition 5.1);
//   * obligations — one per temporal point: the earliest embedding of the
//     consequent started strictly after the point; an obligation still
//     open at trace end is a violation.
//
// The counts reproduce the miner's statistics exactly: points == |occ(pre)|
// and discharged == satisfied points (property-tested against the miner).

#ifndef SPECMINE_SPECMINE_MONITOR_H_
#define SPECMINE_SPECMINE_MONITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/rulemine/rule.h"
#include "src/trace/event_dictionary.h"

namespace specmine {

/// \brief Cumulative monitoring statistics for one rule.
struct MonitorRuleStats {
  /// Temporal points of the premise seen so far (across finished traces
  /// plus the current one).
  uint64_t points = 0;
  /// Points whose consequent obligation completed.
  uint64_t discharged = 0;
  /// Obligations left open at a trace end.
  uint64_t violations = 0;
  /// Traces that ended with at least one open obligation.
  uint64_t violating_traces = 0;
};

/// \brief Streaming monitor for a set of recurrent rules.
class SpecificationMonitor {
 public:
  /// \brief Monitors rules against events named through \p dict (the
  /// dictionary used when the rules were mined). The dictionary must
  /// outlive the monitor.
  explicit SpecificationMonitor(const EventDictionary& dict) : dict_(&dict) {}

  /// \brief Registers a rule; returns its index.
  size_t AddRule(Rule rule);

  /// \brief Starts a new trace (implicitly finishes any open one).
  void BeginTrace();

  /// \brief Feeds one event by id.
  void OnEvent(EventId ev);

  /// \brief Feeds one event by name; unknown names are fed as a fresh id
  /// (they can never advance any rule).
  void OnEventName(const std::string& name);

  /// \brief Ends the current trace, counting open obligations as
  /// violations.
  void EndTrace();

  /// \brief Number of registered rules.
  size_t NumRules() const { return rules_.size(); }
  /// \brief The rule at \p index.
  const Rule& rule(size_t index) const { return rules_[index].rule; }
  /// \brief Statistics for the rule at \p index.
  const MonitorRuleStats& stats(size_t index) const {
    return rules_[index].stats;
  }

 private:
  struct RuleState {
    Rule rule;
    MonitorRuleStats stats;
    /// Events of the premise stem (premise minus last) matched so far.
    size_t stem_progress = 0;
    /// Open obligations: each entry is the number of consequent events
    /// already matched (earliest embedding per obligation).
    std::vector<size_t> obligations;
  };

  const EventDictionary* dict_;
  std::vector<RuleState> rules_;
  bool open_ = false;
};

}  // namespace specmine

#endif  // SPECMINE_SPECMINE_MONITOR_H_
