#include "src/specmine/spec_miner.h"

#include <utility>

#include "src/itermine/full_miner.h"
#include "src/ltl/translate.h"

namespace specmine {

namespace {

// The CLI and benches still consume IterMinerStats; mirror the unified
// report back into the legacy shape.
void ReportToStats(const RunReport& report, IterMinerStats* stats) {
  if (stats == nullptr) return;
  *stats = IterMinerStats{};
  stats->nodes_visited = report.nodes_visited;
  stats->patterns_emitted = report.patterns_emitted;
  stats->subtrees_pruned = report.subtrees_pruned;
  stats->truncated = report.truncated;
  stats->index_build_seconds = report.index_build_seconds;
  stats->mine_seconds = report.mine_seconds;
}

}  // namespace

Result<SpecMiner> SpecMiner::FromTraceFile(const std::string& path) {
  Result<Engine> engine = Engine::FromTextTraceFile(path);
  if (!engine.ok()) return engine.status();
  return SpecMiner(engine.TakeValueOrDie());
}

Result<PatternSet> SpecMiner::MinePatternsChecked(
    const PatternMiningConfig& config, IterMinerStats* stats) const {
  RunReport report;
  Result<PatternSet> mined = [&]() -> Result<PatternSet> {
    if (config.closed) {
      ClosedTask task;
      task.options.min_support = AbsoluteSupport(config.min_support_fraction);
      task.options.max_length = config.max_length;
      task.options.num_threads = config.num_threads;
      return engine_.CollectPatterns(task, &report);
    }
    FullPatternsTask task;
    task.options.min_support = AbsoluteSupport(config.min_support_fraction);
    task.options.max_length = config.max_length;
    task.options.max_patterns = config.max_patterns;
    task.options.num_threads = config.num_threads;
    return engine_.CollectPatterns(task, &report);
  }();
  if (!mined.ok()) return mined.status();
  ReportToStats(report, stats);
  PatternSet out = mined.TakeValueOrDie();
  out.SortBySupport();
  return out;
}

PatternSet SpecMiner::MinePatterns(const PatternMiningConfig& config,
                                   IterMinerStats* stats) const {
  Result<PatternSet> mined = MinePatternsChecked(config, stats);
  if (!mined.ok()) return PatternSet{};
  return mined.TakeValueOrDie();
}

Result<RuleSet> SpecMiner::MineRulesChecked(
    const RuleMiningConfig& config) const {
  RulesTask task;
  task.options.min_s_support = AbsoluteSupport(config.min_s_support_fraction);
  task.options.min_confidence = config.min_confidence;
  task.options.min_i_support = config.min_i_support;
  task.options.non_redundant = config.non_redundant;
  task.options.max_premise_length = config.max_premise_length;
  task.options.max_consequent_length = config.max_consequent_length;
  task.options.max_rules = config.max_rules;
  task.options.num_threads = config.num_threads;
  Result<RuleSet> mined = engine_.CollectRules(task);
  if (!mined.ok()) return mined.status();
  RuleSet rules = mined.TakeValueOrDie();
  rules.SortByQuality();
  return rules;
}

RuleSet SpecMiner::MineRules(const RuleMiningConfig& config) const {
  Result<RuleSet> mined = MineRulesChecked(config);
  if (!mined.ok()) return RuleSet{};
  return mined.TakeValueOrDie();
}

Result<SpecificationReport> SpecMiner::MineChecked(
    const PatternMiningConfig& pattern_config,
    const RuleMiningConfig& rule_config) const {
  SpecificationReport report;
  report.stats = ComputeStats(database());
  Result<PatternSet> patterns = MinePatternsChecked(pattern_config);
  if (!patterns.ok()) return patterns.status();
  report.patterns = patterns.TakeValueOrDie();
  Result<RuleSet> rules = MineRulesChecked(rule_config);
  if (!rules.ok()) return rules.status();
  report.rules = rules.TakeValueOrDie();
  report.ltl.reserve(report.rules.size());
  for (const Rule& rule : report.rules.rules()) {
    report.ltl.push_back(RuleToLtl(rule, database().dictionary())->ToString());
  }
  return report;
}

SpecificationReport SpecMiner::Mine(const PatternMiningConfig& pattern_config,
                                    const RuleMiningConfig& rule_config) const {
  Result<SpecificationReport> report =
      MineChecked(pattern_config, rule_config);
  if (report.ok()) return report.TakeValueOrDie();
  // Degrade contract: database stats survive, mined sets stay empty.
  SpecificationReport degraded;
  degraded.stats = ComputeStats(database());
  return degraded;
}

}  // namespace specmine
