#include "src/specmine/spec_miner.h"

#include <algorithm>
#include <cmath>

#include "src/itermine/full_miner.h"
#include "src/ltl/translate.h"
#include "src/trace/trace_io.h"

namespace specmine {

Result<SpecMiner> SpecMiner::FromTraceFile(const std::string& path) {
  Result<SequenceDatabase> db = ReadTextTraceFile(path);
  if (!db.ok()) return db.status();
  return SpecMiner(db.TakeValueOrDie());
}

uint64_t SpecMiner::AbsoluteSupport(double fraction) const {
  double raw = fraction * static_cast<double>(db_.size());
  uint64_t abs = static_cast<uint64_t>(std::ceil(raw - 1e-9));
  return std::max<uint64_t>(abs, 1);
}

PatternSet SpecMiner::MinePatterns(const PatternMiningConfig& config,
                                   IterMinerStats* stats) const {
  PatternSet out;
  if (config.closed) {
    ClosedIterMinerOptions options;
    options.min_support = AbsoluteSupport(config.min_support_fraction);
    options.max_length = config.max_length;
    options.num_threads = config.num_threads;
    out = MineClosedIterative(db_, options, stats);
  } else {
    IterMinerOptions options;
    options.min_support = AbsoluteSupport(config.min_support_fraction);
    options.max_length = config.max_length;
    options.max_patterns = config.max_patterns;
    options.num_threads = config.num_threads;
    out = MineFrequentIterative(db_, options, stats);
  }
  out.SortBySupport();
  return out;
}

RuleSet SpecMiner::MineRules(const RuleMiningConfig& config) const {
  RuleMinerOptions options;
  options.min_s_support = AbsoluteSupport(config.min_s_support_fraction);
  options.min_confidence = config.min_confidence;
  options.min_i_support = config.min_i_support;
  options.non_redundant = config.non_redundant;
  options.max_premise_length = config.max_premise_length;
  options.max_consequent_length = config.max_consequent_length;
  options.max_rules = config.max_rules;
  options.num_threads = config.num_threads;
  RuleSet rules = MineRecurrentRules(db_, options);
  rules.SortByQuality();
  return rules;
}

SpecificationReport SpecMiner::Mine(const PatternMiningConfig& pattern_config,
                                    const RuleMiningConfig& rule_config) const {
  SpecificationReport report;
  report.stats = ComputeStats(db_);
  report.patterns = MinePatterns(pattern_config);
  report.rules = MineRules(rule_config);
  report.ltl.reserve(report.rules.size());
  for (const Rule& rule : report.rules.rules()) {
    report.ltl.push_back(RuleToLtl(rule, db_.dictionary())->ToString());
  }
  return report;
}

}  // namespace specmine
