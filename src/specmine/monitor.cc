#include "src/specmine/monitor.h"

namespace specmine {

size_t SpecificationMonitor::AddRule(Rule rule) {
  RuleState state;
  state.rule = std::move(rule);
  rules_.push_back(std::move(state));
  return rules_.size() - 1;
}

void SpecificationMonitor::BeginTrace() {
  EndTrace();
  open_ = true;
}

void SpecificationMonitor::OnEvent(EventId ev) {
  if (!open_) open_ = true;
  for (RuleState& state : rules_) {
    const Pattern& pre = state.rule.premise;
    const Pattern& post = state.rule.consequent;

    // Advance open obligations first: a point's consequent starts strictly
    // *after* the point, so the current event must not feed an obligation
    // created by itself below.
    size_t write = 0;
    for (size_t read = 0; read < state.obligations.size(); ++read) {
      size_t progress = state.obligations[read];
      if (progress < post.size() && post[progress] == ev) ++progress;
      if (progress == post.size()) {
        ++state.stats.discharged;
      } else {
        state.obligations[write++] = progress;
      }
    }
    state.obligations.resize(write);

    // Premise: complete the stem greedily; once complete, every occurrence
    // of the last premise event is a temporal point.
    const size_t stem_size = pre.size() - 1;
    if (state.stem_progress < stem_size) {
      if (pre[state.stem_progress] == ev) ++state.stem_progress;
      // The same event may both extend the stem and be a point only when
      // it completes the stem and equals the last premise event — but a
      // point needs the stem complete *before* it (Definition 5.1 embeds
      // the premise within the prefix ending at the point), so falling
      // through here only when the stem was already complete is correct.
      if (state.stem_progress < stem_size) continue;
      // Stem just completed at this event: this event cannot also serve
      // as the point (it is part of the stem embedding).
      continue;
    }
    if (pre.last() == ev) {
      ++state.stats.points;
      if (post.empty()) {
        ++state.stats.discharged;
      } else {
        state.obligations.push_back(0);
      }
    }
  }
}

void SpecificationMonitor::OnEventName(const std::string& name) {
  EventId id = dict_->Lookup(name);
  if (id == kInvalidEvent) {
    // An event the mined vocabulary has never seen: use an id beyond every
    // rule's alphabet so no state advances.
    id = static_cast<EventId>(dict_->size());
  }
  OnEvent(id);
}

void SpecificationMonitor::EndTrace() {
  if (!open_) return;
  for (RuleState& state : rules_) {
    if (!state.obligations.empty()) {
      state.stats.violations += state.obligations.size();
      ++state.stats.violating_traces;
    }
    state.obligations.clear();
    state.stem_progress = 0;
  }
  open_ = false;
}

}  // namespace specmine
