// Ranking of mined patterns and rules — a future-work item of Section 8
// ("It will also be interesting to develop a method to rank mined patterns
// and rules").
//
// Patterns are scored by how surprising their support is given their
// length (support alone favours short trivial patterns; length alone
// favours barely-frequent giants). Rules are scored by a lift-style
// measure: the mined confidence divided by the probability that the
// consequent follows a *random* position of the database, so rules whose
// consequents are simply ubiquitous rank low even at confidence 1.0.

#ifndef SPECMINE_SPECMINE_RANKING_H_
#define SPECMINE_SPECMINE_RANKING_H_

#include <vector>

#include "src/patterns/pattern_set.h"
#include "src/rulemine/rule.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief A pattern with its ranking score.
struct RankedPattern {
  MinedPattern item;
  /// support * (length - 1): 0 for singletons, growing with both the
  /// amount of evidence and the specificity of the behaviour.
  double score = 0.0;
};

/// \brief A rule with its ranking scores.
struct RankedRule {
  Rule rule;
  /// Probability that the consequent embeds after a uniformly random
  /// position of the database (the "by chance" baseline).
  double baseline = 0.0;
  /// confidence / max(baseline, epsilon); > 1 means the premise genuinely
  /// predicts the consequent.
  double lift = 0.0;
};

/// \brief Ranks \p patterns by score (descending; ties by support then
/// lexicographic pattern — deterministic).
std::vector<RankedPattern> RankPatterns(const PatternSet& patterns);

/// \brief Ranks \p rules by lift (descending; ties by confidence,
/// s-support, then lexicographic concatenation).
std::vector<RankedRule> RankRules(const RuleSet& rules,
                                  const SequenceDatabase& db);

/// \brief The chance baseline used by RankRules: the fraction of event
/// positions of \p db whose strict suffix contains \p consequent.
double ConsequentBaseline(const Pattern& consequent,
                          const SequenceDatabase& db);

}  // namespace specmine

#endif  // SPECMINE_SPECMINE_RANKING_H_
