#include "src/specmine/report.h"

#include <sstream>

namespace specmine {

std::string SpecificationReport::ToText(const EventDictionary& dict) const {
  std::ostringstream os;
  os << "=== Trace database ===\n" << stats.ToString() << "\n\n";
  os << "=== Iterative patterns (" << patterns.size() << ") ===\n";
  for (const MinedPattern& p : patterns.items()) {
    os << "  " << p.pattern.ToString(dict) << "  sup=" << p.support << '\n';
  }
  os << "\n=== Recurrent rules (" << rules.size() << ") ===\n";
  for (size_t i = 0; i < rules.size(); ++i) {
    os << "  " << rules[i].ToString(dict) << '\n';
    if (i < ltl.size()) os << "      LTL: " << ltl[i] << '\n';
  }
  return os.str();
}

}  // namespace specmine
