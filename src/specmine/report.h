// SpecificationReport: the rendered result of a mining run — patterns,
// rules, their LTL forms, and database statistics.

#ifndef SPECMINE_SPECMINE_REPORT_H_
#define SPECMINE_SPECMINE_REPORT_H_

#include <string>
#include <vector>

#include "src/patterns/pattern_set.h"
#include "src/rulemine/rule.h"
#include "src/trace/database_stats.h"

namespace specmine {

/// \brief The combined output of a SpecMiner run.
struct SpecificationReport {
  DatabaseStats stats;
  PatternSet patterns;
  RuleSet rules;
  /// ltl[i] = Table-2 LTL rendering of rules[i].
  std::vector<std::string> ltl;

  /// \brief Multi-line human-readable rendering (the case-study style:
  /// patterns first, then rules with their LTL forms).
  std::string ToText(const EventDictionary& dict) const;
};

}  // namespace specmine

#endif  // SPECMINE_SPECMINE_REPORT_H_
