// Text visualization of mined specifications — the "visualization tool to
// help user in navigating and visualizing the mined specifications" of the
// paper's future work (Section 8).
//
// Three renderers:
//  * MSC-style chart of an iterative pattern: one lifeline per class
//    (derived from "Class.method" event names), events in temporal order —
//    a text-mode cousin of the paper's Figure 4 layout;
//  * the two-column premise/consequent rule card of Figure 5;
//  * a log-scale ASCII chart for benchmark series, used to render the
//    Figure 1-3 sweeps the way the paper plots them.

#ifndef SPECMINE_SPECMINE_VISUALIZE_H_
#define SPECMINE_SPECMINE_VISUALIZE_H_

#include <string>
#include <vector>

#include "src/patterns/pattern.h"
#include "src/rulemine/rule.h"

namespace specmine {

/// \brief Renders \p pattern as an MSC-style chart: lifelines are the
/// class prefixes of "Class.method" event names (events without a dot get
/// a "<global>" lifeline); each row marks the lifeline receiving the call.
std::string RenderMscChart(const Pattern& pattern,
                           const EventDictionary& dict);

/// \brief Renders a rule as the paper's Figure-5-style two-column card.
std::string RenderRuleCard(const Rule& rule, const EventDictionary& dict);

/// \brief One series of an AsciiChart.
struct ChartSeries {
  std::string name;
  std::vector<double> values;  // One per x label; must match labels size.
};

/// \brief Renders a log10-scale column chart (the paper's Figures 1-3 are
/// log-scale): one column group per x label, one letter-coded bar column
/// per series. Values <= 0 render as blank.
std::string RenderLogChart(const std::string& title,
                           const std::vector<std::string>& x_labels,
                           const std::vector<ChartSeries>& series,
                           size_t height = 12);

}  // namespace specmine

#endif  // SPECMINE_SPECMINE_VISUALIZE_H_
