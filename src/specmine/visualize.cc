#include "src/specmine/visualize.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace specmine {

namespace {

// "Class.method" -> "Class"; no dot -> "<global>".
std::string LifelineOf(const std::string& event_name) {
  size_t dot = event_name.find('.');
  if (dot == std::string::npos || dot == 0) return "<global>";
  return event_name.substr(0, dot);
}

std::string MethodOf(const std::string& event_name) {
  size_t dot = event_name.find('.');
  if (dot == std::string::npos) return event_name;
  return event_name.substr(dot + 1);
}

}  // namespace

std::string RenderMscChart(const Pattern& pattern,
                           const EventDictionary& dict) {
  // Collect lifelines in first-appearance order.
  std::vector<std::string> lifelines;
  std::vector<size_t> lane_of_event(pattern.size());
  std::vector<std::string> methods(pattern.size());
  for (size_t i = 0; i < pattern.size(); ++i) {
    std::string name = dict.NameOrPlaceholder(pattern[i]);
    std::string lifeline = LifelineOf(name);
    methods[i] = MethodOf(name);
    auto it = std::find(lifelines.begin(), lifelines.end(), lifeline);
    if (it == lifelines.end()) {
      lane_of_event[i] = lifelines.size();
      lifelines.push_back(lifeline);
    } else {
      lane_of_event[i] = static_cast<size_t>(it - lifelines.begin());
    }
  }
  size_t lane_width = 4;
  for (const std::string& l : lifelines) {
    lane_width = std::max(lane_width, l.size() + 2);
  }

  std::ostringstream os;
  // Header: lifeline names.
  for (const std::string& l : lifelines) {
    os << ' ' << l;
    os << std::string(lane_width - l.size() - 1, ' ');
  }
  os << '\n';
  // Lifeline rails.
  auto rail_row = [&](size_t active_lane, const std::string& label) {
    for (size_t lane = 0; lane < lifelines.size(); ++lane) {
      size_t mid = lane_width / 2;
      for (size_t c = 0; c < lane_width; ++c) {
        if (c == mid) {
          os << (lane == active_lane ? '*' : '|');
        } else {
          os << ' ';
        }
      }
    }
    if (!label.empty()) os << ' ' << label;
    os << '\n';
  };
  for (size_t i = 0; i < pattern.size(); ++i) {
    rail_row(lane_of_event[i],
             std::to_string(i + 1) + ". " + methods[i]);
  }
  return os.str();
}

std::string RenderRuleCard(const Rule& rule, const EventDictionary& dict) {
  size_t width = 10;  // "Premise" header floor.
  for (EventId ev : rule.premise) {
    width = std::max(width, dict.NameOrPlaceholder(ev).size());
  }
  std::ostringstream os;
  os << "+-" << std::string(width, '-') << "-+-" << std::string(width, '-')
     << "-+\n";
  auto row = [&](const std::string& a, const std::string& b) {
    os << "| " << a << std::string(width - std::min(width, a.size()), ' ')
       << " | " << b << std::string(width - std::min(width, b.size()), ' ')
       << " |\n";
  };
  row("Premise", "Consequent");
  os << "+-" << std::string(width, '-') << "-+-" << std::string(width, '-')
     << "-+\n";
  size_t rows = std::max(rule.premise.size(), rule.consequent.size());
  for (size_t i = 0; i < rows; ++i) {
    std::string a = i < rule.premise.size()
                        ? dict.NameOrPlaceholder(rule.premise[i])
                        : "";
    std::string b = i < rule.consequent.size()
                        ? dict.NameOrPlaceholder(rule.consequent[i])
                        : "";
    if (a.size() > width) a.resize(width);
    if (b.size() > width) b.resize(width);
    row(a, b);
  }
  os << "+-" << std::string(width, '-') << "-+-" << std::string(width, '-')
     << "-+\n";
  std::ostringstream stats;
  stats << "s-sup=" << rule.s_support << " i-sup=" << rule.i_support
        << " conf=" << rule.confidence();
  os << stats.str() << '\n';
  return os.str();
}

std::string RenderLogChart(const std::string& title,
                           const std::vector<std::string>& x_labels,
                           const std::vector<ChartSeries>& series,
                           size_t height) {
  std::ostringstream os;
  os << title << "  (log10 scale; ";
  for (size_t i = 0; i < series.size(); ++i) {
    if (i > 0) os << ", ";
    os << static_cast<char>('A' + i) << " = " << series[i].name;
  }
  os << ")\n";

  double max_log = 1.0;
  double min_log = 0.0;
  for (const ChartSeries& s : series) {
    for (double v : s.values) {
      if (v > 0) {
        max_log = std::max(max_log, std::log10(v));
        min_log = std::min(min_log, std::log10(v));
      }
    }
  }
  const double span = std::max(max_log - min_log, 1e-9);
  // Column-group width: room for the series bars and the x label.
  size_t group = series.size() + 1;
  for (const std::string& xl : x_labels) {
    group = std::max(group, xl.size() + 1);
  }

  for (size_t row = 0; row < height; ++row) {
    double level = max_log - span * static_cast<double>(row) /
                                 static_cast<double>(height - 1);
    char label[16];
    std::snprintf(label, sizeof(label), "%6.1f |", level);
    os << label;
    for (size_t x = 0; x < x_labels.size(); ++x) {
      for (size_t si = 0; si < series.size(); ++si) {
        double v = x < series[si].values.size() ? series[si].values[x] : 0.0;
        bool filled = v > 0 && std::log10(v) >= level - 1e-12;
        os << (filled ? static_cast<char>('A' + si) : ' ');
      }
      os << std::string(group - series.size(), ' ');
    }
    os << '\n';
  }
  os << "       +";
  os << std::string(x_labels.size() * group, '-');
  os << '\n';
  os << "        ";
  for (const std::string& xl : x_labels) {
    std::string shown = xl.size() > group - 1 ? xl.substr(0, group - 1) : xl;
    os << shown << std::string(group - shown.size(), ' ');
  }
  os << '\n';
  return os.str();
}

}  // namespace specmine
