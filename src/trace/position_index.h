// PositionIndex: per-event sorted position lists, the core lookup structure
// behind instance projection and temporal-point computation.

#ifndef SPECMINE_TRACE_POSITION_INDEX_H_
#define SPECMINE_TRACE_POSITION_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Position within a sequence (0-based).
using Pos = uint32_t;

/// \brief Sentinel for "no position".
inline constexpr Pos kNoPos = ~Pos{0};

/// \brief For each (event, sequence), the sorted list of positions at which
/// the event occurs.
///
/// Built once per database in O(total events); all queries are binary
/// searches. The miners use it to (a) find the first occurrence of an event
/// after/before a position, and (b) count occurrences inside a span.
class PositionIndex {
 public:
  /// \brief Builds the index over \p db. The database must outlive the index.
  explicit PositionIndex(const SequenceDatabase& db);

  /// \brief Sorted positions of \p ev in sequence \p seq (empty if none).
  const std::vector<Pos>& Positions(EventId ev, SeqId seq) const;

  /// \brief First position of \p ev in \p seq that is > \p after,
  /// or kNoPos.
  Pos FirstAfter(EventId ev, SeqId seq, Pos after) const;

  /// \brief First position of \p ev in \p seq that is >= \p at, or kNoPos.
  Pos FirstAtOrAfter(EventId ev, SeqId seq, Pos at) const;

  /// \brief Last position of \p ev in \p seq that is < \p before, or kNoPos.
  Pos LastBefore(EventId ev, SeqId seq, Pos before) const;

  /// \brief Number of occurrences of \p ev in \p seq within [lo, hi]
  /// inclusive. Returns 0 when lo > hi.
  size_t CountInRange(EventId ev, SeqId seq, Pos lo, Pos hi) const;

  /// \brief Total occurrences of \p ev across the database.
  size_t TotalCount(EventId ev) const;

  /// \brief Number of sequences containing \p ev at least once.
  size_t SequenceCount(EventId ev) const;

  /// \brief Number of distinct events the index knows about.
  size_t num_events() const { return total_counts_.size(); }

  /// \brief The indexed database.
  const SequenceDatabase& db() const { return *db_; }

 private:
  const SequenceDatabase* db_;
  // Sparse storage keyed by (event, sequence): only pairs with at least one
  // occurrence hold an entry. A dense events x sequences layout would be
  // quadratic in memory on paper-scale inputs (10k events x 5k sequences).
  std::unordered_map<uint64_t, std::vector<Pos>> cells_;
  std::vector<size_t> total_counts_;
  std::vector<size_t> sequence_counts_;
  std::vector<Pos> empty_;

  static uint64_t Key(EventId ev, SeqId seq) {
    return (static_cast<uint64_t>(ev) << 32) | seq;
  }
};

}  // namespace specmine

#endif  // SPECMINE_TRACE_POSITION_INDEX_H_
