// PositionIndex: per-event sorted position lists, the core lookup structure
// behind instance projection and temporal-point computation.
//
// Layout (see README.md, "Index layout & threading"): a flat two-level CSR.
// All positions live in one contiguous array grouped by (event, sequence);
// a dense per-(event, sequence) offset table gives O(1) cell lookup with no
// hashing and sequential memory within a cell. Databases whose
// events x sequences product would make the dense table too large fall back
// to a compact per-event CSR over only the sequences that contain the event
// (O(log k) lookup, linear memory).

#ifndef SPECMINE_TRACE_POSITION_INDEX_H_
#define SPECMINE_TRACE_POSITION_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/support/status.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Position within a sequence (0-based).
using Pos = uint32_t;

/// \brief Sentinel for "no position".
inline constexpr Pos kNoPos = ~Pos{0};

/// \brief A non-owning view of a sorted, contiguous run of positions —
/// what PositionIndex::Positions returns. Iterable like a vector.
class PosSpan {
 public:
  PosSpan() = default;
  PosSpan(const Pos* begin, const Pos* end) : begin_(begin), end_(end) {}

  const Pos* begin() const { return begin_; }
  const Pos* end() const { return end_; }
  size_t size() const { return static_cast<size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }
  Pos operator[](size_t i) const { return begin_[i]; }
  Pos front() const { return *begin_; }
  Pos back() const { return *(end_ - 1); }

 private:
  const Pos* begin_ = nullptr;
  const Pos* end_ = nullptr;
};

inline bool operator==(const PosSpan& s, const PosSpan& t) {
  if (s.size() != t.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != t[i]) return false;
  }
  return true;
}
inline bool operator==(const PosSpan& s, const std::vector<Pos>& v) {
  return s == PosSpan(v.data(), v.data() + v.size());
}
inline bool operator==(const std::vector<Pos>& v, const PosSpan& s) {
  return s == v;
}

/// \brief Verifies that \p db fits the index's uint32 offset layout: every
/// per-sequence position and every offset into the flat position array must
/// be representable as a uint32 (with kNoPos reserved as a sentinel).
/// Returns OutOfRange naming the violating quantity, else OK. PositionIndex
/// construction assumes this holds; the Engine façade and the trace readers
/// check it up front so oversized inputs surface as errors instead of
/// silently wrapped offsets.
Status CheckIndexable(const SequenceDatabase& db);

/// \brief For each (event, sequence), the sorted list of positions at which
/// the event occurs.
///
/// Built once per database in O(total events + events x sequences); all
/// queries are O(1) cell lookups plus binary searches. The miners use it to
/// (a) find the first occurrence of an event after/before a position, and
/// (b) count occurrences inside a span.
class PositionIndex {
 public:
  /// \brief Cells above which the dense offset table is abandoned for the
  /// compact per-event CSR (64M cells = 256 MB of offsets).
  static constexpr size_t kDefaultDenseCellLimit = size_t{1} << 26;

  /// \brief Builds the index over \p db. The database must outlive the
  /// index. \p dense_cell_limit exists for tests; leave it defaulted.
  explicit PositionIndex(const SequenceDatabase& db,
                         size_t dense_cell_limit = kDefaultDenseCellLimit);

  /// \brief Sorted positions of \p ev in sequence \p seq (empty if none).
  PosSpan Positions(EventId ev, SeqId seq) const {
    if (dense_) {
      if (ev >= num_events_ || seq >= num_seqs_) return PosSpan();
      const size_t cell = static_cast<size_t>(ev) * num_seqs_ + seq;
      const Pos* base = positions_.data();
      return PosSpan(base + (cell == 0 ? 0 : cell_ends_[cell - 1]),
                     base + cell_ends_[cell]);
    }
    return SparsePositions(ev, seq);
  }

  /// \brief First position of \p ev in \p seq that is > \p after,
  /// or kNoPos.
  Pos FirstAfter(EventId ev, SeqId seq, Pos after) const;

  /// \brief First position of \p ev in \p seq that is >= \p at, or kNoPos.
  Pos FirstAtOrAfter(EventId ev, SeqId seq, Pos at) const;

  /// \brief Last position of \p ev in \p seq that is < \p before, or kNoPos.
  Pos LastBefore(EventId ev, SeqId seq, Pos before) const;

  /// \brief Number of occurrences of \p ev in \p seq within [lo, hi]
  /// inclusive. Returns 0 when lo > hi.
  size_t CountInRange(EventId ev, SeqId seq, Pos lo, Pos hi) const;

  /// \brief Total occurrences of \p ev across the database.
  size_t TotalCount(EventId ev) const {
    return ev < total_counts_.size() ? total_counts_[ev] : 0;
  }

  /// \brief Number of sequences containing \p ev at least once.
  size_t SequenceCount(EventId ev) const {
    return ev < sequence_counts_.size() ? sequence_counts_[ev] : 0;
  }

  /// \brief Number of distinct events the index knows about.
  size_t num_events() const { return num_events_; }

  /// \brief True iff the dense O(1) offset table is in use (false = the
  /// compact fallback for huge events x sequences products).
  bool dense_layout() const { return dense_; }

  /// \brief The indexed database.
  const SequenceDatabase& db() const { return *db_; }

 private:
  void BuildDense();
  void BuildSparse();
  PosSpan SparsePositions(EventId ev, SeqId seq) const;

  const SequenceDatabase* db_;
  size_t num_events_ = 0;
  size_t num_seqs_ = 0;
  bool dense_ = true;

  // All positions, grouped by event then sequence, sorted within a cell.
  std::vector<Pos> positions_;

  // Dense layout: cell_ends_[ev * num_seqs_ + seq] = exclusive end of the
  // cell's run in positions_ (its begin is the previous cell's end). One
  // uint32 per cell; no hashing, O(1) lookup.
  std::vector<uint32_t> cell_ends_;

  // Sparse layout: per event, the ids of the sequences containing it
  // (sorted) and each such cell's start offset into positions_. Cell ends
  // are the next cell's start (or the event's end).
  std::vector<uint32_t> entry_begin_;   // size num_events_+1, into the two:
  std::vector<uint32_t> entry_seq_;     // sequence id per (event, seq) cell
  std::vector<uint32_t> entry_offset_;  // positions_ start per cell

  std::vector<size_t> total_counts_;
  std::vector<size_t> sequence_counts_;
};

}  // namespace specmine

#endif  // SPECMINE_TRACE_POSITION_INDEX_H_
