#include "src/trace/append_session.h"

#include <utility>

namespace specmine {

AppendSession::AppendSession(std::string manifest_path, AppendOptions options)
    : manifest_path_(std::move(manifest_path)),
      options_(options),
      writer_(manifest_path_, options_.writer) {}

Result<AppendSession> AppendSession::Open(const std::string& manifest_path,
                                          const AppendOptions& options) {
  if (!IsSmdbSetPath(manifest_path)) {
    return Status::InvalidArgument(
        "append target must be a .smdbset manifest: " + manifest_path);
  }
  Result<ShardSetManifest> manifest =
      ReadShardSetManifest(manifest_path, options.integrity);
  if (!manifest.ok()) return manifest.status();

  AppendSession session(manifest_path, options);
  session.base_generation_ = manifest->generation;
  session.committed_generation_ = manifest->generation;
  SPECMINE_RETURN_NOT_OK(session.writer_.SeedFromManifest(*manifest));
  session.tail_open_for_.Restart();
  return session;
}

Status AppendSession::MaybeSealByTime() {
  if (options_.seal_after_seconds <= 0.0) return Status::OK();
  if (writer_.tail_sequences() == 0) {
    // An empty tail has no age; the clock starts at its first trace.
    tail_open_for_.Restart();
    return Status::OK();
  }
  if (tail_open_for_.ElapsedSeconds() < options_.seal_after_seconds) {
    return Status::OK();
  }
  return Seal();
}

Status AppendSession::AddTrace(const std::vector<std::string>& event_names) {
  SPECMINE_RETURN_NOT_OK(MaybeSealByTime());
  SPECMINE_RETURN_NOT_OK(writer_.AddTrace(event_names));
  ++appended_sequences_;
  return Status::OK();
}

Status AppendSession::AddTraceFromString(std::string_view line) {
  SPECMINE_RETURN_NOT_OK(MaybeSealByTime());
  SPECMINE_RETURN_NOT_OK(writer_.AddTraceFromString(line));
  ++appended_sequences_;
  return Status::OK();
}

Status AppendSession::AddSequence(EventSpan events,
                                  const EventDictionary& dict) {
  SPECMINE_RETURN_NOT_OK(MaybeSealByTime());
  SPECMINE_RETURN_NOT_OK(writer_.AddSequence(events, dict));
  ++appended_sequences_;
  return Status::OK();
}

Status AppendSession::Seal() {
  SPECMINE_RETURN_NOT_OK(writer_.CutShard());
  tail_open_for_.Restart();
  return Status::OK();
}

Status AppendSession::Commit() {
  SPECMINE_RETURN_NOT_OK(writer_.Commit());
  // Commit() wrote (and then advanced past) this generation.
  committed_generation_ = writer_.next_generation() - 1;
  tail_open_for_.Restart();
  return Status::OK();
}

}  // namespace specmine
