// CSV trace reader: the trace-handling front end for instrumentation logs.
//
// Real instrumentation (JBoss-AOP in the paper's case study) emits one
// record per method entry, tagged with the test case / thread that
// produced it; a sequence database is obtained by grouping records and
// keeping their order. This reader handles that shape:
//
//     # comment
//     test_id,method[,extra columns ignored]
//     t1,TxManager.begin
//     t1,TxManager.commit
//     t2,TxManager.begin
//
// Options select the delimiter, which columns hold the grouping key and
// the event name, whether a header row is present, and how out-of-order
// groups are handled (records of a group need not be contiguous; groups
// become sequences in order of first appearance).

#ifndef SPECMINE_TRACE_CSV_TRACE_READER_H_
#define SPECMINE_TRACE_CSV_TRACE_READER_H_

#include <iosfwd>
#include <string>

#include "src/support/status.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Options for the CSV trace reader.
struct CsvTraceOptions {
  /// Field delimiter.
  char delimiter = ',';
  /// 0-based index of the column holding the grouping key (test case id).
  size_t group_column = 0;
  /// 0-based index of the column holding the event (method) name.
  size_t event_column = 1;
  /// Skip the first non-comment row (a header).
  bool has_header = false;
  /// Reject rows with fewer columns than needed (true) or skip them
  /// silently (false).
  bool strict = true;
};

/// \brief Parses CSV trace records from \p in into a sequence database;
/// one sequence per distinct grouping key, in order of first appearance.
/// Lines that are empty or start with '#' are ignored.
Result<SequenceDatabase> ReadCsvTraces(std::istream& in,
                                       const CsvTraceOptions& options);

/// \brief Reads the CSV trace format from the file at \p path.
Result<SequenceDatabase> ReadCsvTraceFile(const std::string& path,
                                          const CsvTraceOptions& options);

}  // namespace specmine

#endif  // SPECMINE_TRACE_CSV_TRACE_READER_H_
