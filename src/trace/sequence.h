// EventSpan — the zero-copy view of one program execution trace — and
// Sequence, the small owning buffer used while a trace is being assembled.
//
// Since the columnar storage refactor all traces live in one flat event
// arena inside SequenceDatabase; reading code sees them only through
// EventSpan views (two pointers into the arena, nothing owned, trivially
// copyable). Sequence remains as the mutable staging type the builders and
// collectors append into before the events are copied into an arena; it
// converts implicitly to EventSpan so read helpers take spans only.

#ifndef SPECMINE_TRACE_SEQUENCE_H_
#define SPECMINE_TRACE_SEQUENCE_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "src/trace/event_dictionary.h"

namespace specmine {

/// \brief A non-owning view of a contiguous run of events; one program
/// execution trace as stored in a database arena.
///
/// Positions are 0-based throughout the library (the paper indexes from 1;
/// the translation is made only when printing). A span is two pointers —
/// pass it by value. It is valid as long as the storage it points into
/// (a SequenceDatabase, a Sequence, or an mmap) is alive and unmodified.
class EventSpan {
 public:
  EventSpan() = default;
  EventSpan(const EventId* begin, const EventId* end)
      : begin_(begin), end_(end) {}
  EventSpan(const EventId* data, size_t size)
      : begin_(data), end_(data + size) {}
  /// \brief Views a vector's contents (the vector must outlive the span).
  explicit EventSpan(const std::vector<EventId>& events)
      : begin_(events.data()), end_(events.data() + events.size()) {}

  /// \brief Number of events.
  size_t size() const { return static_cast<size_t>(end_ - begin_); }
  /// \brief True iff the trace has no events.
  bool empty() const { return begin_ == end_; }
  /// \brief Event at position \p i (0-based, unchecked).
  EventId operator[](size_t i) const { return begin_[i]; }
  EventId front() const { return *begin_; }
  EventId back() const { return *(end_ - 1); }

  const EventId* begin() const { return begin_; }
  const EventId* end() const { return end_; }
  const EventId* data() const { return begin_; }

  /// \brief The sub-span [from, from + count) (unchecked).
  EventSpan subspan(size_t from, size_t count) const {
    return EventSpan(begin_ + from, begin_ + from + count);
  }

 private:
  const EventId* begin_ = nullptr;
  const EventId* end_ = nullptr;
};

inline bool operator==(EventSpan s, EventSpan t) {
  if (s.size() != t.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != t[i]) return false;
  }
  return true;
}
inline bool operator!=(EventSpan s, EventSpan t) { return !(s == t); }

/// \brief An owning, growable list of events: the staging buffer a trace is
/// assembled in before it is copied into a database arena.
class Sequence {
 public:
  Sequence() = default;
  explicit Sequence(std::vector<EventId> events) : events_(std::move(events)) {}
  Sequence(std::initializer_list<EventId> events) : events_(events) {}

  /// \brief Number of events.
  size_t size() const { return events_.size(); }
  /// \brief True iff the trace has no events.
  bool empty() const { return events_.empty(); }
  /// \brief Event at position \p i (0-based, unchecked).
  EventId operator[](size_t i) const { return events_[i]; }

  /// \brief Appends one event.
  void Append(EventId ev) { events_.push_back(ev); }
  /// \brief Drops all events.
  void Clear() { events_.clear(); }

  /// \brief Underlying storage (read-only).
  const std::vector<EventId>& events() const { return events_; }

  /// \brief Zero-copy view of the buffered events (valid until the next
  /// mutation of this Sequence).
  EventSpan span() const { return EventSpan(events_); }
  operator EventSpan() const { return span(); }  // NOLINT(runtime/explicit)

  bool operator==(const Sequence& other) const = default;

  std::vector<EventId>::const_iterator begin() const { return events_.begin(); }
  std::vector<EventId>::const_iterator end() const { return events_.end(); }

 private:
  std::vector<EventId> events_;
};

inline bool operator==(EventSpan s, const Sequence& t) { return s == t.span(); }
inline bool operator==(const Sequence& s, EventSpan t) { return s.span() == t; }

}  // namespace specmine

#endif  // SPECMINE_TRACE_SEQUENCE_H_
