// A Sequence is one program execution trace: an ordered list of events.

#ifndef SPECMINE_TRACE_SEQUENCE_H_
#define SPECMINE_TRACE_SEQUENCE_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "src/trace/event_dictionary.h"

namespace specmine {

/// \brief An ordered list of events; one program execution trace.
///
/// Positions are 0-based throughout the library (the paper indexes from 1;
/// the translation is made only when printing).
class Sequence {
 public:
  Sequence() = default;
  explicit Sequence(std::vector<EventId> events) : events_(std::move(events)) {}
  Sequence(std::initializer_list<EventId> events) : events_(events) {}

  /// \brief Number of events.
  size_t size() const { return events_.size(); }
  /// \brief True iff the trace has no events.
  bool empty() const { return events_.empty(); }
  /// \brief Event at position \p i (0-based, unchecked).
  EventId operator[](size_t i) const { return events_[i]; }

  /// \brief Appends one event.
  void Append(EventId ev) { events_.push_back(ev); }

  /// \brief Underlying storage (read-only).
  const std::vector<EventId>& events() const { return events_; }

  bool operator==(const Sequence& other) const = default;

  std::vector<EventId>::const_iterator begin() const { return events_.begin(); }
  std::vector<EventId>::const_iterator end() const { return events_.end(); }

 private:
  std::vector<EventId> events_;
};

}  // namespace specmine

#endif  // SPECMINE_TRACE_SEQUENCE_H_
