#include "src/trace/trace_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/support/fault_injection.h"
#include "src/support/strings.h"

namespace specmine {

Result<SequenceDatabase> ReadTextTraces(std::istream& in) {
  SPECMINE_RETURN_NOT_OK(CheckFault("trace_io.read"));
  SequenceDatabaseBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    builder.AddTraceFromString(stripped);
  }
  if (in.bad()) {
    return Status::IOError("stream error while reading traces at line " +
                           std::to_string(line_no));
  }
  return builder.Build();
}

Result<SequenceDatabase> ReadTextTraceFile(const std::string& path) {
  SPECMINE_RETURN_NOT_OK(CheckFault("trace_io.open"));
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open trace file: " + path);
  return ReadTextTraces(in);
}

Status WriteTextTraces(const SequenceDatabase& db, std::ostream& out) {
  for (EventSpan seq : db) {
    for (size_t i = 0; i < seq.size(); ++i) {
      if (i > 0) out << ' ';
      out << db.dictionary().NameOrPlaceholder(seq[i]);
    }
    out << '\n';
  }
  if (!out) return Status::IOError("stream error while writing traces");
  return Status::OK();
}

Status WriteTextTraceFile(const SequenceDatabase& db,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open output file: " + path);
  return WriteTextTraces(db, out);
}

Result<SequenceDatabase> ReadSpmTraces(std::istream& in) {
  std::string line;
  size_t line_no = 0;
  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!StripWhitespace(line).empty()) return true;
    }
    return false;
  };
  auto err = [&](const std::string& msg) {
    return Status::ParseError(msg + " (line " + std::to_string(line_no) + ")");
  };

  if (!next_line() || StripWhitespace(line) != "!specmine-traces v1") {
    return err("missing '!specmine-traces v1' header");
  }
  if (!next_line()) return err("missing '!events' section");
  std::istringstream hdr{line};
  std::string tag;
  size_t num_events = 0;
  hdr >> tag >> num_events;
  if (tag != "!events" || hdr.fail()) return err("malformed '!events' line");

  SequenceDatabaseBuilder builder;
  for (size_t i = 0; i < num_events; ++i) {
    if (!std::getline(in, line)) return err("truncated event table");
    ++line_no;
    std::string_view name = StripWhitespace(line);
    if (name.empty()) return err("empty event name");
    EventId id = builder.mutable_dictionary()->Intern(name);
    if (id != i) return err("duplicate event name: " + std::string(name));
  }

  while (next_line()) {
    std::istringstream row{line};
    row >> tag;
    if (tag != "!trace") return err("expected '!trace'");
    size_t declared = 0;
    row >> declared;
    if (row.fail()) return err("malformed '!trace' count");
    Sequence seq;
    uint64_t id = 0;
    while (row >> id) {
      if (id >= num_events) return err("event id out of range");
      seq.Append(static_cast<EventId>(id));
    }
    if (seq.size() != declared) return err("trace length mismatch");
    builder.AddSequence(seq);
  }
  if (in.bad()) return Status::IOError("stream error while reading traces");
  return builder.Build();
}

Status WriteSpmTraces(const SequenceDatabase& db, std::ostream& out) {
  out << "!specmine-traces v1\n";
  out << "!events " << db.dictionary().size() << '\n';
  for (size_t i = 0; i < db.dictionary().size(); ++i) {
    out << db.dictionary().Name(static_cast<EventId>(i)) << '\n';
  }
  for (EventSpan seq : db) {
    out << "!trace " << seq.size();
    for (EventId ev : seq) out << ' ' << ev;
    out << '\n';
  }
  if (!out) return Status::IOError("stream error while writing traces");
  return Status::OK();
}

}  // namespace specmine
