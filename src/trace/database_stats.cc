#include "src/trace/database_stats.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace specmine {

DatabaseStats ComputeStats(const SequenceDatabase& db) {
  DatabaseStats st;
  st.num_sequences = db.size();
  st.num_distinct_events = db.dictionary().size();
  st.min_length = db.empty() ? 0 : std::numeric_limits<size_t>::max();
  for (EventSpan s : db) {
    st.total_events += s.size();
    st.min_length = std::min(st.min_length, s.size());
    st.max_length = std::max(st.max_length, s.size());
  }
  st.avg_length = db.empty() ? 0.0
                             : static_cast<double>(st.total_events) /
                                   static_cast<double>(db.size());
  return st;
}

std::string DatabaseStats::ToString() const {
  std::ostringstream os;
  os << num_sequences << " sequences, " << num_distinct_events
     << " distinct events, " << total_events << " total events, length "
     << min_length << ".." << max_length << " (avg " << avg_length << ")";
  return os.str();
}

}  // namespace specmine
