// The .smdb binary database format: the columnar in-memory layout of
// SequenceDatabase, verbatim on disk, so loading is an mmap instead of a
// parse.
//
// Layout (little-endian, all sections 8-byte aligned; see README.md,
// "Storage layout & binary format"):
//
//     [0,  96)  header: magic "SMDB\r\n\x1a\n", version, counts, sizes,
//               four per-section XXH64 checksums, header checksum (v2;
//               v1 headers are 64 bytes and carry no checksums)
//     name offsets   (num_events + 1) x u64   CSR into the name blob
//     name blob      names_bytes raw bytes, padded to 8
//     trace offsets  (num_sequences + 1) x u64  CSR into the arena
//     event arena    total_events x u32 EventId
//
// The trace offsets + arena sections are byte-identical to the in-memory
// representation, so MappedDatabase points a SequenceDatabase view straight
// into the mapping — only the (small) dictionary is materialized. The
// reader validates magic, version, section bounds against the real file
// size, and offset-table monotonicity, returning Status on truncation or
// corruption rather than crashing on a hostile file. Payload integrity is
// governed by IntegrityMode: kHeader (default) additionally verifies the
// v2 header checksum, kFull re-hashes every section against the stored
// XXH64 digests, kOff skips both. v1 files (no checksums) still open
// under every mode with structural validation only.

#ifndef SPECMINE_TRACE_BINARY_FORMAT_H_
#define SPECMINE_TRACE_BINARY_FORMAT_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/support/status.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief The canonical .smdb file extension.
inline constexpr const char* kSmdbExtension = ".smdb";

/// \brief The 8-byte magic. The PNG-style \r\n\x1a\n tail catches files
/// mangled by text-mode transfers.
inline constexpr unsigned char kSmdbMagic[8] = {'S',  'M',  'D',  'B',
                                                0x0d, 0x0a, 0x1a, 0x0a};

/// \brief Current format version (96-byte header with XXH64 checksums).
inline constexpr uint32_t kSmdbVersion = 2;

/// \brief The checksum-less legacy version (64-byte header). Still
/// readable; WriteBinaryDatabase can still produce it for compat tests.
inline constexpr uint32_t kSmdbVersionLegacy = 1;

/// \brief How much integrity checking Open() performs beyond the
/// structural validation (magic, bounds, monotonicity) that always runs.
enum class IntegrityMode : uint8_t {
  /// Structural validation only; stored checksums are ignored.
  kOff,
  /// Also verify the header checksum (v2+; a v1 file has none, so this
  /// degrades to structural-only). The default: O(1) extra work.
  kHeader,
  /// Also re-hash every section against its stored digest. O(file size);
  /// use for `specmine verify` and paranoid opens.
  kFull,
};

/// \brief Human-readable integrity-mode name ("off"/"header"/"full").
const char* IntegrityModeName(IntegrityMode mode);

/// \brief True iff \p path names a .smdb file (case-sensitive suffix test;
/// the CLI uses it to accept packed databases everywhere traces are).
bool IsSmdbPath(const std::string& path);

/// \brief Exact size in bytes of the .smdb file a database with these
/// counts serializes to at the current version (header + all sections,
/// with their 8-byte padding). The ShardWriter uses it to rotate shards
/// before a size bound is crossed; docs/smdb_format.md derives the same
/// formula.
uint64_t SmdbFileBytes(uint64_t num_events, uint64_t num_sequences,
                       uint64_t total_events, uint64_t names_bytes);

/// \brief Writes \p db as a .smdb stream at the current format version.
/// Pass \p version = kSmdbVersionLegacy to produce a checksum-less v1
/// file (compatibility tests only).
Status WriteBinaryDatabase(const SequenceDatabase& db, std::ostream& out,
                           uint32_t version = kSmdbVersion);

/// \brief Writes \p db as a .smdb file at \p path.
Status WriteBinaryDatabaseFile(const SequenceDatabase& db,
                               const std::string& path,
                               uint32_t version = kSmdbVersion);

/// \brief Options for MappedDatabase::Open.
struct SmdbOpenOptions {
  IntegrityMode integrity = IntegrityMode::kHeader;
};

/// \brief A .smdb file mapped into memory, exposing its contents as a
/// zero-copy SequenceDatabase view.
///
/// Open() validates the header and offset tables before anything trusts
/// the bytes. The view in db() (and any copy of it) points into the
/// mapping, so the MappedDatabase must outlive every reader. Move-only.
class MappedDatabase {
 public:
  /// \brief Maps and validates the .smdb file at \p path with default
  /// options (IntegrityMode::kHeader).
  static Result<MappedDatabase> Open(const std::string& path);

  /// \brief Maps and validates with explicit integrity options. A
  /// checksum mismatch is reported as ParseError naming the section.
  static Result<MappedDatabase> Open(const std::string& path,
                                     const SmdbOpenOptions& options);

  /// \brief An empty mapping (no file, empty db()) — a placeholder to
  /// move-assign an Open() result into (the ShardedDatabase does this per
  /// shard).
  MappedDatabase() = default;

  MappedDatabase(MappedDatabase&& other) noexcept;
  MappedDatabase& operator=(MappedDatabase&& other) noexcept;
  MappedDatabase(const MappedDatabase&) = delete;
  MappedDatabase& operator=(const MappedDatabase&) = delete;
  ~MappedDatabase();

  /// \brief The mapped database. Valid while this object is alive.
  const SequenceDatabase& db() const { return db_; }

  /// \brief Size of the underlying mapping in bytes.
  size_t mapped_bytes() const { return map_len_; }

  /// \brief The on-disk format version of the opened file (1 or 2).
  uint32_t file_version() const { return file_version_; }

  /// \brief XXH64 over the entire mapped byte range — a content identity
  /// for this shard file (the phase-1 candidate cache keys on it). Any
  /// byte change, header or payload, changes the digest. O(file size) and
  /// not memoized: callers that need it repeatedly should keep the value
  /// (the Engine does, under its cache lock). 0 for an empty mapping.
  uint64_t ComputeContentDigest() const;

 private:
  void Release();

  void* map_ = nullptr;   // mmap base (or heap buffer when mmap_ is false).
  size_t map_len_ = 0;
  bool mmap_ = false;     // True when map_ came from mmap(2).
  uint32_t file_version_ = 0;
  SequenceDatabase db_;
};

}  // namespace specmine

#endif  // SPECMINE_TRACE_BINARY_FORMAT_H_
