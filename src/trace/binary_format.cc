#include "src/trace/binary_format.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <utility>
#include <vector>

#include "src/trace/format_util.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define SPECMINE_HAVE_MMAP 1
#endif

namespace specmine {

namespace {

// Fixed-size header. All multi-byte fields are little-endian; the
// section offsets are derived from the counts, so corrupting a count can
// only shrink/grow the expected file size, which is checked against the
// real one. v1 headers are the first 56 bytes padded to 64; v2 headers
// are 96 bytes: the same 56, then four per-section XXH64 digests at
// [56, 88), then a header checksum over bytes [0, 88) at [88, 96).
struct SmdbHeader {
  unsigned char magic[8];
  uint32_t version;
  uint32_t reserved0;
  uint64_t num_events;
  uint64_t num_sequences;
  uint64_t total_events;
  uint64_t names_bytes;
  uint64_t file_bytes;
};
static_assert(sizeof(SmdbHeader) == 56, "header packs to 56 + pad");

// v2 checksum block, stored at byte 56 of the header.
struct SmdbChecksums {
  uint64_t name_offsets;  // XXH64 of the name-offset table (unpadded).
  uint64_t names;         // XXH64 of the name blob (unpadded).
  uint64_t seq_offsets;   // XXH64 of the trace-offset table.
  uint64_t arena;         // XXH64 of the event arena (unpadded).
  uint64_t header;        // XXH64 of header bytes [0, 88).
};
static_assert(sizeof(SmdbChecksums) == 40, "five u64 digests");

constexpr size_t kHeaderBytesV1 = 64;
constexpr size_t kHeaderBytesV2 = 96;
constexpr size_t kChecksumsOffset = 56;
constexpr size_t kHeaderChecksumSpan = 88;  // header digest covers [0, 88).

constexpr size_t HeaderBytes(uint32_t version) {
  return version >= 2 ? kHeaderBytesV2 : kHeaderBytesV1;
}

// Field caps that make every section-offset computation below safe in
// uint64 arithmetic (and reject nonsense counts early).
constexpr uint64_t kMaxIds = uint64_t{1} << 32;    // EventId / SeqId are u32.
constexpr uint64_t kMaxBytes = uint64_t{1} << 48;  // names / arena bytes.

using format_util::PadTo8;

struct SectionLayout {
  uint64_t name_offsets_off;  // (num_events + 1) x u64
  uint64_t names_off;         // names_bytes, padded to 8
  uint64_t seq_offsets_off;   // (num_sequences + 1) x u64
  uint64_t arena_off;         // total_events x u32
  uint64_t file_bytes;
};

SectionLayout ComputeLayout(uint32_t version, uint64_t num_events,
                            uint64_t num_sequences, uint64_t total_events,
                            uint64_t names_bytes) {
  SectionLayout l;
  l.name_offsets_off = HeaderBytes(version);
  l.names_off = l.name_offsets_off + 8 * (num_events + 1);
  l.seq_offsets_off = l.names_off + PadTo8(names_bytes);
  l.arena_off = l.seq_offsets_off + 8 * (num_sequences + 1);
  l.file_bytes = l.arena_off + PadTo8(4 * total_events);
  return l;
}

Status CheckHostEndianness() {
  return format_util::CheckLittleEndianHost(".smdb");
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::ParseError("corrupt .smdb file " + path + ": " + what);
}

}  // namespace

uint64_t SmdbFileBytes(uint64_t num_events, uint64_t num_sequences,
                       uint64_t total_events, uint64_t names_bytes) {
  return ComputeLayout(kSmdbVersion, num_events, num_sequences, total_events,
                       names_bytes)
      .file_bytes;
}

const char* IntegrityModeName(IntegrityMode mode) {
  switch (mode) {
    case IntegrityMode::kOff:
      return "off";
    case IntegrityMode::kHeader:
      return "header";
    case IntegrityMode::kFull:
      return "full";
  }
  return "unknown";
}

bool IsSmdbPath(const std::string& path) {
  const std::string ext = kSmdbExtension;
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

Status WriteBinaryDatabase(const SequenceDatabase& db, std::ostream& out,
                           uint32_t version) {
  SPECMINE_RETURN_NOT_OK(CheckHostEndianness());
  if (version != kSmdbVersionLegacy && version != kSmdbVersion) {
    return Status::InvalidArgument("unsupported .smdb write version " +
                                   std::to_string(version));
  }
  const EventDictionary& dict = db.dictionary();
  const uint64_t num_events = dict.size();
  const uint64_t num_sequences = db.size();
  const uint64_t total_events = db.TotalEvents();

  // Dictionary CSR: name offsets into the concatenated blob. The blob is
  // materialized so the v2 section digest hashes contiguous bytes.
  std::vector<uint64_t> name_offsets(num_events + 1, 0);
  std::string name_blob;
  for (uint64_t i = 0; i < num_events; ++i) {
    const std::string& name = dict.Name(static_cast<EventId>(i));
    name_offsets[i + 1] = name_offsets[i] + name.size();
    name_blob += name;
  }
  const uint64_t names_bytes = name_offsets[num_events];
  const SectionLayout layout = ComputeLayout(
      version, num_events, num_sequences, total_events, names_bytes);

  SmdbHeader header{};
  std::memcpy(header.magic, kSmdbMagic, sizeof(kSmdbMagic));
  header.version = version;
  header.num_events = num_events;
  header.num_sequences = num_sequences;
  header.total_events = total_events;
  header.names_bytes = names_bytes;
  header.file_bytes = layout.file_bytes;

  const char zeros[8] = {};
  auto write = [&out](const void* data, size_t n) {
    if (n == 0) return;  // Empty arena: data may be null.
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  };
  write(&header, sizeof(header));
  if (version >= 2) {
    using format_util::XXH64;
    SmdbChecksums sums{};
    sums.name_offsets = XXH64(name_offsets.data(), 8 * name_offsets.size());
    sums.names = XXH64(name_blob.data(), name_blob.size());
    sums.seq_offsets = XXH64(db.offsets(), 8 * (num_sequences + 1));
    sums.arena = XXH64(db.arena(), 4 * total_events);
    // The header digest covers the 56 packed bytes plus the four section
    // digests — i.e. everything before itself, with the struct pad zeroed.
    unsigned char head_bytes[kHeaderChecksumSpan] = {};
    std::memcpy(head_bytes, &header, sizeof(header));
    std::memcpy(head_bytes + kChecksumsOffset, &sums, 4 * sizeof(uint64_t));
    sums.header = XXH64(head_bytes, kHeaderChecksumSpan);
    write(&sums, sizeof(sums));
  } else {
    write(zeros, kHeaderBytesV1 - sizeof(header));
  }
  write(name_offsets.data(), 8 * name_offsets.size());
  write(name_blob.data(), name_blob.size());
  write(zeros, PadTo8(names_bytes) - names_bytes);
  write(db.offsets(), 8 * (num_sequences + 1));
  write(db.arena(), 4 * total_events);
  write(zeros, PadTo8(4 * total_events) - 4 * total_events);
  if (!out) return Status::IOError("stream error while writing .smdb data");
  return Status::OK();
}

Status WriteBinaryDatabaseFile(const SequenceDatabase& db,
                               const std::string& path, uint32_t version) {
  return format_util::AtomicWriteFile(
      path, [&db, version](std::ostream& out) {
        return WriteBinaryDatabase(db, out, version);
      });
}

Result<MappedDatabase> MappedDatabase::Open(const std::string& path) {
  return Open(path, SmdbOpenOptions{});
}

Result<MappedDatabase> MappedDatabase::Open(const std::string& path,
                                            const SmdbOpenOptions& options) {
  SPECMINE_RETURN_NOT_OK(CheckHostEndianness());
  SPECMINE_RETURN_NOT_OK(CheckFault("binary_format.open"));
  MappedDatabase mapped;

#ifdef SPECMINE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open .smdb file: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat .smdb file: " + path);
  }
  mapped.map_len_ = static_cast<size_t>(st.st_size);
  if (mapped.map_len_ > 0) {
    void* base = ::mmap(nullptr, mapped.map_len_, PROT_READ, MAP_PRIVATE, fd,
                        0);
    ::close(fd);
    if (base == MAP_FAILED) {
      return Status::IOError("cannot mmap .smdb file: " + path);
    }
    mapped.map_ = base;
    mapped.mmap_ = true;
  } else {
    ::close(fd);
  }
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open .smdb file: " + path);
  const std::streamoff size = in.tellg();
  in.seekg(0);
  mapped.map_len_ = static_cast<size_t>(size);
  if (mapped.map_len_ > 0) {
    mapped.map_ = ::operator new(mapped.map_len_);
    in.read(static_cast<char*>(mapped.map_), size);
    if (!in) return Status::IOError("cannot read .smdb file: " + path);
  }
#endif

  const unsigned char* bytes = static_cast<const unsigned char*>(mapped.map_);
  if (mapped.map_len_ < kHeaderBytesV1) {
    return Corrupt(path, "file is " + std::to_string(mapped.map_len_) +
                             " bytes, smaller than the 64-byte header");
  }
  SmdbHeader header;
  std::memcpy(&header, bytes, sizeof(header));
  if (std::memcmp(header.magic, kSmdbMagic, sizeof(kSmdbMagic)) != 0) {
    return Corrupt(path, "bad magic (not a .smdb file)");
  }
  if (header.version != kSmdbVersionLegacy && header.version != kSmdbVersion) {
    return Corrupt(path, "unsupported format version " +
                             std::to_string(header.version) + " (reader is v" +
                             std::to_string(kSmdbVersion) + ")");
  }
  mapped.file_version_ = header.version;
  SmdbChecksums sums{};
  if (header.version >= 2) {
    if (mapped.map_len_ < kHeaderBytesV2) {
      return Corrupt(path, "file is " + std::to_string(mapped.map_len_) +
                               " bytes, smaller than the 96-byte v2 header");
    }
    std::memcpy(&sums, bytes + kChecksumsOffset, sizeof(sums));
    // Verify the header digest before trusting any count field: a flipped
    // bit anywhere in the header surfaces as a checksum mismatch rather
    // than a downstream structural error.
    if (options.integrity != IntegrityMode::kOff &&
        format_util::XXH64(bytes, kHeaderChecksumSpan) != sums.header) {
      return Corrupt(path, "header checksum mismatch");
    }
  }
  if (header.num_events > kMaxIds || header.num_sequences > kMaxIds ||
      header.total_events > kMaxBytes || header.names_bytes > kMaxBytes) {
    return Corrupt(path, "header counts exceed format limits");
  }
  const SectionLayout layout =
      ComputeLayout(header.version, header.num_events, header.num_sequences,
                    header.total_events, header.names_bytes);
  if (layout.file_bytes != header.file_bytes) {
    return Corrupt(path, "header size fields are inconsistent");
  }
  if (mapped.map_len_ < layout.file_bytes) {
    return Corrupt(path, "truncated: header promises " +
                             std::to_string(layout.file_bytes) +
                             " bytes, file has " +
                             std::to_string(mapped.map_len_));
  }

  const uint64_t* name_offsets =
      reinterpret_cast<const uint64_t*>(bytes + layout.name_offsets_off);
  const char* names = reinterpret_cast<const char*>(bytes + layout.names_off);
  const uint64_t* seq_offsets =
      reinterpret_cast<const uint64_t*>(bytes + layout.seq_offsets_off);
  const EventId* arena =
      reinterpret_cast<const EventId*>(bytes + layout.arena_off);

  if (header.version >= 2 && options.integrity == IntegrityMode::kFull) {
    using format_util::XXH64;
    if (XXH64(name_offsets, 8 * (header.num_events + 1)) !=
        sums.name_offsets) {
      return Corrupt(path, "name offset table checksum mismatch");
    }
    if (XXH64(names, header.names_bytes) != sums.names) {
      return Corrupt(path, "name blob checksum mismatch");
    }
    if (XXH64(seq_offsets, 8 * (header.num_sequences + 1)) !=
        sums.seq_offsets) {
      return Corrupt(path, "trace offset table checksum mismatch");
    }
    if (XXH64(arena, 4 * header.total_events) != sums.arena) {
      return Corrupt(path, "event arena checksum mismatch");
    }
  }

  if (name_offsets[0] != 0 ||
      name_offsets[header.num_events] != header.names_bytes) {
    return Corrupt(path, "name offset table does not span the name blob");
  }
  for (uint64_t i = 0; i < header.num_events; ++i) {
    if (name_offsets[i + 1] < name_offsets[i]) {
      return Corrupt(path, "name offset table is not monotonic at entry " +
                               std::to_string(i));
    }
  }
  if (seq_offsets[0] != 0 ||
      seq_offsets[header.num_sequences] != header.total_events) {
    return Corrupt(path, "trace offset table does not span the event arena");
  }
  for (uint64_t s = 0; s < header.num_sequences; ++s) {
    if (seq_offsets[s + 1] < seq_offsets[s]) {
      return Corrupt(path, "out-of-bounds trace offset at sequence " +
                               std::to_string(s));
    }
  }
  // Every event id in the arena must name a dictionary entry: all
  // downstream consumers (index builds, shard remaps, name lookups)
  // index by these ids without further checks, so an out-of-range id
  // here would be undefined behaviour later instead of a clean error.
  for (uint64_t e = 0; e < header.total_events; ++e) {
    if (arena[e] >= header.num_events) {
      return Corrupt(path, "event id " + std::to_string(arena[e]) +
                               " at arena index " + std::to_string(e) +
                               " is outside the dictionary (" +
                               std::to_string(header.num_events) +
                               " entries)");
    }
  }

  EventDictionary dictionary;
  for (uint64_t i = 0; i < header.num_events; ++i) {
    const std::string_view name(names + name_offsets[i],
                                name_offsets[i + 1] - name_offsets[i]);
    if (name.empty()) {
      return Corrupt(path, "empty event name at id " + std::to_string(i));
    }
    if (dictionary.Intern(name) != i) {
      return Corrupt(path,
                     "duplicate event name: \"" + std::string(name) + "\"");
    }
  }

  mapped.db_ = SequenceDatabase::WrapView(
      std::move(dictionary), arena, seq_offsets,
      static_cast<size_t>(header.num_sequences));
  return mapped;
}

MappedDatabase::MappedDatabase(MappedDatabase&& other) noexcept
    : map_(other.map_),
      map_len_(other.map_len_),
      mmap_(other.mmap_),
      file_version_(other.file_version_),
      db_(std::move(other.db_)) {
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.mmap_ = false;
  other.file_version_ = 0;
}

MappedDatabase& MappedDatabase::operator=(MappedDatabase&& other) noexcept {
  if (this == &other) return *this;
  Release();
  map_ = other.map_;
  map_len_ = other.map_len_;
  mmap_ = other.mmap_;
  file_version_ = other.file_version_;
  db_ = std::move(other.db_);
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.mmap_ = false;
  other.file_version_ = 0;
  return *this;
}

MappedDatabase::~MappedDatabase() { Release(); }

uint64_t MappedDatabase::ComputeContentDigest() const {
  if (map_ == nullptr || map_len_ == 0) return 0;
  return format_util::XXH64(map_, map_len_);
}

void MappedDatabase::Release() {
  if (map_ == nullptr) return;
#ifdef SPECMINE_HAVE_MMAP
  if (mmap_) {
    ::munmap(map_, map_len_);
  } else {
    ::operator delete(map_);
  }
#else
  ::operator delete(map_);
#endif
  map_ = nullptr;
  map_len_ = 0;
  mmap_ = false;
}

}  // namespace specmine
