#include "src/trace/binary_format.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <utility>
#include <vector>

#include "src/trace/format_util.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define SPECMINE_HAVE_MMAP 1
#endif

namespace specmine {

namespace {

// Fixed 64-byte header. All multi-byte fields are little-endian; the
// section offsets are derived from the counts, so corrupting a count can
// only shrink/grow the expected file size, which is checked against the
// real one.
struct SmdbHeader {
  unsigned char magic[8];
  uint32_t version;
  uint32_t reserved0;
  uint64_t num_events;
  uint64_t num_sequences;
  uint64_t total_events;
  uint64_t names_bytes;
  uint64_t file_bytes;
};
static_assert(sizeof(SmdbHeader) == 56, "header packs to 56 + 8 pad");

constexpr size_t kHeaderBytes = 64;

// Field caps that make every section-offset computation below safe in
// uint64 arithmetic (and reject nonsense counts early).
constexpr uint64_t kMaxIds = uint64_t{1} << 32;    // EventId / SeqId are u32.
constexpr uint64_t kMaxBytes = uint64_t{1} << 48;  // names / arena bytes.

using format_util::PadTo8;

struct SectionLayout {
  uint64_t name_offsets_off;  // (num_events + 1) x u64
  uint64_t names_off;         // names_bytes, padded to 8
  uint64_t seq_offsets_off;   // (num_sequences + 1) x u64
  uint64_t arena_off;         // total_events x u32
  uint64_t file_bytes;
};

SectionLayout ComputeLayout(uint64_t num_events, uint64_t num_sequences,
                            uint64_t total_events, uint64_t names_bytes) {
  SectionLayout l;
  l.name_offsets_off = kHeaderBytes;
  l.names_off = l.name_offsets_off + 8 * (num_events + 1);
  l.seq_offsets_off = l.names_off + PadTo8(names_bytes);
  l.arena_off = l.seq_offsets_off + 8 * (num_sequences + 1);
  l.file_bytes = l.arena_off + PadTo8(4 * total_events);
  return l;
}

Status CheckHostEndianness() {
  return format_util::CheckLittleEndianHost(".smdb");
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::ParseError("corrupt .smdb file " + path + ": " + what);
}

}  // namespace

uint64_t SmdbFileBytes(uint64_t num_events, uint64_t num_sequences,
                       uint64_t total_events, uint64_t names_bytes) {
  return ComputeLayout(num_events, num_sequences, total_events, names_bytes)
      .file_bytes;
}

bool IsSmdbPath(const std::string& path) {
  const std::string ext = kSmdbExtension;
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

Status WriteBinaryDatabase(const SequenceDatabase& db, std::ostream& out) {
  SPECMINE_RETURN_NOT_OK(CheckHostEndianness());
  const EventDictionary& dict = db.dictionary();
  const uint64_t num_events = dict.size();
  const uint64_t num_sequences = db.size();
  const uint64_t total_events = db.TotalEvents();

  // Dictionary CSR: name offsets into the concatenated blob.
  std::vector<uint64_t> name_offsets(num_events + 1, 0);
  for (uint64_t i = 0; i < num_events; ++i) {
    name_offsets[i + 1] =
        name_offsets[i] + dict.Name(static_cast<EventId>(i)).size();
  }
  const uint64_t names_bytes = name_offsets[num_events];
  const SectionLayout layout =
      ComputeLayout(num_events, num_sequences, total_events, names_bytes);

  SmdbHeader header{};
  std::memcpy(header.magic, kSmdbMagic, sizeof(kSmdbMagic));
  header.version = kSmdbVersion;
  header.num_events = num_events;
  header.num_sequences = num_sequences;
  header.total_events = total_events;
  header.names_bytes = names_bytes;
  header.file_bytes = layout.file_bytes;

  const char zeros[8] = {};
  auto write = [&out](const void* data, size_t n) {
    if (n == 0) return;  // Empty arena: data may be null.
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  };
  write(&header, sizeof(header));
  write(zeros, kHeaderBytes - sizeof(header));
  write(name_offsets.data(), 8 * name_offsets.size());
  for (uint64_t i = 0; i < num_events; ++i) {
    const std::string& name = dict.Name(static_cast<EventId>(i));
    write(name.data(), name.size());
  }
  write(zeros, PadTo8(names_bytes) - names_bytes);
  write(db.offsets(), 8 * (num_sequences + 1));
  write(db.arena(), 4 * total_events);
  write(zeros, PadTo8(4 * total_events) - 4 * total_events);
  if (!out) return Status::IOError("stream error while writing .smdb data");
  return Status::OK();
}

Status WriteBinaryDatabaseFile(const SequenceDatabase& db,
                               const std::string& path) {
  return format_util::AtomicWriteFile(path, [&db](std::ostream& out) {
    return WriteBinaryDatabase(db, out);
  });
}

Result<MappedDatabase> MappedDatabase::Open(const std::string& path) {
  SPECMINE_RETURN_NOT_OK(CheckHostEndianness());
  MappedDatabase mapped;

#ifdef SPECMINE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open .smdb file: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat .smdb file: " + path);
  }
  mapped.map_len_ = static_cast<size_t>(st.st_size);
  if (mapped.map_len_ > 0) {
    void* base = ::mmap(nullptr, mapped.map_len_, PROT_READ, MAP_PRIVATE, fd,
                        0);
    ::close(fd);
    if (base == MAP_FAILED) {
      return Status::IOError("cannot mmap .smdb file: " + path);
    }
    mapped.map_ = base;
    mapped.mmap_ = true;
  } else {
    ::close(fd);
  }
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open .smdb file: " + path);
  const std::streamoff size = in.tellg();
  in.seekg(0);
  mapped.map_len_ = static_cast<size_t>(size);
  if (mapped.map_len_ > 0) {
    mapped.map_ = ::operator new(mapped.map_len_);
    in.read(static_cast<char*>(mapped.map_), size);
    if (!in) return Status::IOError("cannot read .smdb file: " + path);
  }
#endif

  const unsigned char* bytes = static_cast<const unsigned char*>(mapped.map_);
  if (mapped.map_len_ < kHeaderBytes) {
    return Corrupt(path, "file is " + std::to_string(mapped.map_len_) +
                             " bytes, smaller than the 64-byte header");
  }
  SmdbHeader header;
  std::memcpy(&header, bytes, sizeof(header));
  if (std::memcmp(header.magic, kSmdbMagic, sizeof(kSmdbMagic)) != 0) {
    return Corrupt(path, "bad magic (not a .smdb file)");
  }
  if (header.version != kSmdbVersion) {
    return Corrupt(path, "unsupported format version " +
                             std::to_string(header.version) + " (reader is v" +
                             std::to_string(kSmdbVersion) + ")");
  }
  if (header.num_events > kMaxIds || header.num_sequences > kMaxIds ||
      header.total_events > kMaxBytes || header.names_bytes > kMaxBytes) {
    return Corrupt(path, "header counts exceed format limits");
  }
  const SectionLayout layout =
      ComputeLayout(header.num_events, header.num_sequences,
                    header.total_events, header.names_bytes);
  if (layout.file_bytes != header.file_bytes) {
    return Corrupt(path, "header size fields are inconsistent");
  }
  if (mapped.map_len_ < layout.file_bytes) {
    return Corrupt(path, "truncated: header promises " +
                             std::to_string(layout.file_bytes) +
                             " bytes, file has " +
                             std::to_string(mapped.map_len_));
  }

  const uint64_t* name_offsets =
      reinterpret_cast<const uint64_t*>(bytes + layout.name_offsets_off);
  const char* names = reinterpret_cast<const char*>(bytes + layout.names_off);
  const uint64_t* seq_offsets =
      reinterpret_cast<const uint64_t*>(bytes + layout.seq_offsets_off);
  const EventId* arena =
      reinterpret_cast<const EventId*>(bytes + layout.arena_off);

  if (name_offsets[0] != 0 ||
      name_offsets[header.num_events] != header.names_bytes) {
    return Corrupt(path, "name offset table does not span the name blob");
  }
  for (uint64_t i = 0; i < header.num_events; ++i) {
    if (name_offsets[i + 1] < name_offsets[i]) {
      return Corrupt(path, "name offset table is not monotonic at entry " +
                               std::to_string(i));
    }
  }
  if (seq_offsets[0] != 0 ||
      seq_offsets[header.num_sequences] != header.total_events) {
    return Corrupt(path, "trace offset table does not span the event arena");
  }
  for (uint64_t s = 0; s < header.num_sequences; ++s) {
    if (seq_offsets[s + 1] < seq_offsets[s]) {
      return Corrupt(path, "out-of-bounds trace offset at sequence " +
                               std::to_string(s));
    }
  }

  EventDictionary dictionary;
  for (uint64_t i = 0; i < header.num_events; ++i) {
    const std::string_view name(names + name_offsets[i],
                                name_offsets[i + 1] - name_offsets[i]);
    if (name.empty()) {
      return Corrupt(path, "empty event name at id " + std::to_string(i));
    }
    if (dictionary.Intern(name) != i) {
      return Corrupt(path,
                     "duplicate event name: \"" + std::string(name) + "\"");
    }
  }

  mapped.db_ = SequenceDatabase::WrapView(
      std::move(dictionary), arena, seq_offsets,
      static_cast<size_t>(header.num_sequences));
  return mapped;
}

MappedDatabase::MappedDatabase(MappedDatabase&& other) noexcept
    : map_(other.map_),
      map_len_(other.map_len_),
      mmap_(other.mmap_),
      db_(std::move(other.db_)) {
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.mmap_ = false;
}

MappedDatabase& MappedDatabase::operator=(MappedDatabase&& other) noexcept {
  if (this == &other) return *this;
  Release();
  map_ = other.map_;
  map_len_ = other.map_len_;
  mmap_ = other.mmap_;
  db_ = std::move(other.db_);
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.mmap_ = false;
  return *this;
}

MappedDatabase::~MappedDatabase() { Release(); }

void MappedDatabase::Release() {
  if (map_ == nullptr) return;
#ifdef SPECMINE_HAVE_MMAP
  if (mmap_) {
    ::munmap(map_, map_len_);
  } else {
    ::operator delete(map_);
  }
#else
  ::operator delete(map_);
#endif
  map_ = nullptr;
  map_len_ = 0;
  mmap_ = false;
}

}  // namespace specmine
