#include "src/trace/sequence_database.h"

#include "src/support/strings.h"

namespace specmine {

SeqId SequenceDatabase::AddTrace(const std::vector<std::string>& event_names) {
  Sequence seq;
  for (const auto& name : event_names) seq.Append(dictionary_.Intern(name));
  return AddSequence(std::move(seq));
}

SeqId SequenceDatabase::AddSequence(Sequence seq) {
  sequences_.push_back(std::move(seq));
  return static_cast<SeqId>(sequences_.size() - 1);
}

SeqId SequenceDatabase::AddTraceFromString(std::string_view line) {
  Sequence seq;
  for (const auto& tok : SplitAndTrim(line, ' ')) {
    seq.Append(dictionary_.Intern(tok));
  }
  return AddSequence(std::move(seq));
}

size_t SequenceDatabase::TotalEvents() const {
  size_t n = 0;
  for (const auto& s : sequences_) n += s.size();
  return n;
}

}  // namespace specmine
