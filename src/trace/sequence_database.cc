#include "src/trace/sequence_database.h"

#include <utility>

#include "src/support/strings.h"

namespace specmine {

SequenceDatabase::SequenceDatabase() {
  owned_offsets_.push_back(0);
  Repoint();
}

SequenceDatabase::SequenceDatabase(const SequenceDatabase& other)
    : dictionary_(other.dictionary_),
      owned_arena_(other.owned_arena_),
      owned_offsets_(other.owned_offsets_),
      arena_(other.arena_),
      offsets_(other.offsets_),
      num_seqs_(other.num_seqs_) {
  Repoint();
}

SequenceDatabase::SequenceDatabase(SequenceDatabase&& other) noexcept
    : dictionary_(std::move(other.dictionary_)),
      owned_arena_(std::move(other.owned_arena_)),
      owned_offsets_(std::move(other.owned_offsets_)),
      arena_(other.arena_),
      offsets_(other.offsets_),
      num_seqs_(other.num_seqs_) {
  Repoint();
  other.owned_arena_.clear();
  other.owned_offsets_.assign(1, 0);
  other.num_seqs_ = 0;
  other.Repoint();
}

SequenceDatabase& SequenceDatabase::operator=(const SequenceDatabase& other) {
  if (this == &other) return *this;
  SequenceDatabase copy(other);
  *this = std::move(copy);
  return *this;
}

SequenceDatabase& SequenceDatabase::operator=(
    SequenceDatabase&& other) noexcept {
  if (this == &other) return *this;
  dictionary_ = std::move(other.dictionary_);
  owned_arena_ = std::move(other.owned_arena_);
  owned_offsets_ = std::move(other.owned_offsets_);
  arena_ = other.arena_;
  offsets_ = other.offsets_;
  num_seqs_ = other.num_seqs_;
  Repoint();
  other.owned_arena_.clear();
  other.owned_offsets_.assign(1, 0);
  other.num_seqs_ = 0;
  other.Repoint();
  return *this;
}

void SequenceDatabase::Repoint() {
  if (owned_offsets_.empty()) return;  // View: keep the external pointers.
  arena_ = owned_arena_.data();
  offsets_ = owned_offsets_.data();
}

SequenceDatabase SequenceDatabase::WrapView(EventDictionary dictionary,
                                            const EventId* arena,
                                            const uint64_t* offsets,
                                            size_t num_sequences) {
  SequenceDatabase db;
  db.dictionary_ = std::move(dictionary);
  db.owned_arena_.clear();
  db.owned_offsets_.clear();
  db.arena_ = arena;
  db.offsets_ = offsets;
  db.num_seqs_ = num_sequences;
  return db;
}

Result<EventSpan> SequenceDatabase::at(SeqId id) const {
  if (id >= num_seqs_) {
    return Status::OutOfRange("sequence id " + std::to_string(id) +
                              " out of range (database has " +
                              std::to_string(num_seqs_) + " sequences)");
  }
  return (*this)[id];
}

SeqId SequenceDatabaseBuilder::AddTrace(
    const std::vector<std::string>& event_names) {
  for (const auto& name : event_names) {
    arena_.push_back(dictionary_.Intern(name));
  }
  offsets_.push_back(arena_.size());
  return static_cast<SeqId>(offsets_.size() - 2);
}

SeqId SequenceDatabaseBuilder::AddSequence(EventSpan events) {
  arena_.insert(arena_.end(), events.begin(), events.end());
  offsets_.push_back(arena_.size());
  return static_cast<SeqId>(offsets_.size() - 2);
}

SeqId SequenceDatabaseBuilder::AddTraceFromString(std::string_view line) {
  for (const auto& tok : SplitAndTrim(line, ' ')) {
    arena_.push_back(dictionary_.Intern(tok));
  }
  offsets_.push_back(arena_.size());
  return static_cast<SeqId>(offsets_.size() - 2);
}

SequenceDatabase SequenceDatabaseBuilder::Build() {
  SequenceDatabase db;
  db.dictionary_ = std::move(dictionary_);
  db.owned_arena_ = std::move(arena_);
  db.owned_offsets_ = std::move(offsets_);
  db.num_seqs_ = db.owned_offsets_.size() - 1;
  db.Repoint();
  dictionary_ = EventDictionary();
  arena_.clear();
  offsets_.assign(1, 0);
  return db;
}

}  // namespace specmine
