// Log-structured appends to an existing .smdbset corpus.
//
// An AppendSession opens a packed shard set and accepts new traces
// without rewriting any sealed shard: the existing shards stay immutable
// history, new traces stream into an active *tail* shard (the same
// size-bounded ShardWriter rotation regular packing uses), and the
// manifest — the set's single commit point — is atomically rewritten at
// the next generation when the session commits. The merged dictionary is
// extended in place: existing merged ids never change, new names get the
// next ids, so append-then-mine is byte-identical to repacking the whole
// corpus from scratch (tests/append_test.cc pins this down).
//
// Tail-shard seal boundaries, mirroring a log-structured store's segment
// roll policy:
//   * size    — the ShardWriter rotates before the tail's projected
//               .smdb size would cross options.writer.shard_bytes;
//   * time    — a tail left open longer than options.seal_after_seconds
//               is sealed before the next trace is appended (0 = off);
//   * explicit — Seal() cuts the tail now (e.g. at a module boundary).
//
// Crash atomicity: shard files are written (fsync + rename) before the
// manifest is; the manifest write is itself atomic. A crash anywhere in
// an append therefore leaves the old manifest — and so the old
// generation — fully intact; at worst an unreferenced tail shard file
// remains, which the next append overwrites (shard numbering continues
// from the manifest's shard count). A clean Commit() failure goes one
// step further and deletes the unreferenced files.

#ifndef SPECMINE_TRACE_APPEND_SESSION_H_
#define SPECMINE_TRACE_APPEND_SESSION_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.h"
#include "src/support/stopwatch.h"
#include "src/trace/binary_format.h"
#include "src/trace/shard_set.h"

namespace specmine {

/// \brief Options for AppendSession::Open.
struct AppendOptions {
  /// Tail-shard size bound (and any other writer knobs).
  ShardWriterOptions writer;
  /// Seal the tail before the next append once it has been open this
  /// long. 0 disables the time boundary (size/explicit seals still
  /// apply).
  double seal_after_seconds = 0.0;
  /// Integrity checking for the manifest read at Open().
  IntegrityMode integrity = IntegrityMode::kHeader;
};

/// \brief An open append transaction against a .smdbset corpus.
///
/// Open -> AddTrace*/Seal* -> Commit (repeatable) -> destruction. Nothing
/// the session wrote is visible to readers until Commit() rewrites the
/// manifest; a session dropped without a successful Commit leaves the set
/// exactly at its base generation. Not thread-safe; concurrent appends to
/// the same set must be serialized by the caller (specmined holds one
/// append lock per process).
class AppendSession {
 public:
  /// \brief Opens the manifest at \p manifest_path and prepares a tail
  /// shard after its existing shards. Fails if the manifest is missing or
  /// corrupt; shard files are not opened (appending never reads them).
  static Result<AppendSession> Open(const std::string& manifest_path,
                                    const AppendOptions& options = {});

  AppendSession(AppendSession&&) = default;
  AppendSession& operator=(AppendSession&&) = default;
  AppendSession(const AppendSession&) = delete;
  AppendSession& operator=(const AppendSession&) = delete;

  /// \brief Appends one trace of event names.
  Status AddTrace(const std::vector<std::string>& event_names);

  /// \brief Appends a trace parsed from space-separated event names.
  Status AddTraceFromString(std::string_view line);

  /// \brief Appends a trace of \p dict-relative event ids.
  Status AddSequence(EventSpan events, const EventDictionary& dict);

  /// \brief Explicit seal boundary: cuts the tail shard now (writes its
  /// .smdb file). The manifest is untouched until Commit().
  Status Seal();

  /// \brief Seals the tail and atomically rewrites the manifest at the
  /// next generation. On success the committed generation advances and
  /// the session stays open for further appends; on failure the on-disk
  /// set is still the last committed generation and the session is dead
  /// (the first failure is sticky, uncommitted tail files are removed).
  Status Commit();

  /// \brief The generation of the manifest this session opened.
  uint64_t base_generation() const { return base_generation_; }

  /// \brief The generation of the last successful Commit(), or
  /// base_generation() before the first one.
  uint64_t committed_generation() const { return committed_generation_; }

  /// \brief Traces appended by this session so far.
  size_t appended_sequences() const { return appended_sequences_; }

  /// \brief Shard files this set will have once committed (sealed shards
  /// plus a pending tail, if any).
  size_t shards() const {
    return writer_.shards_written() + (writer_.tail_sequences() > 0 ? 1 : 0);
  }

  /// \brief The merged dictionary (base names plus anything appended).
  const EventDictionary& dictionary() const { return writer_.dictionary(); }

 private:
  AppendSession(std::string manifest_path, AppendOptions options);

  // Applies the time boundary: seals a stale tail before the next append.
  Status MaybeSealByTime();

  std::string manifest_path_;
  AppendOptions options_;
  ShardWriter writer_;
  Stopwatch tail_open_for_;
  uint64_t base_generation_ = 0;
  uint64_t committed_generation_ = 0;
  size_t appended_sequences_ = 0;
};

}  // namespace specmine

#endif  // SPECMINE_TRACE_APPEND_SESSION_H_
