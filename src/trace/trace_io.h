// Readers and writers for trace files.
//
// Two formats are supported:
//
//  * Plain text ("txt"): one trace per line, events are whitespace-separated
//    tokens. Lines starting with '#' are comments. This is the interchange
//    format used by the examples.
//
//  * Structured ("spm"): a small self-describing format that persists the
//    event dictionary explicitly so ids survive round trips:
//
//        !specmine-traces v1
//        !events <n>
//        <name 0>
//        ...
//        !trace <k> <id id id ...>
//
// Both readers validate input and return ParseError with line numbers.

#ifndef SPECMINE_TRACE_TRACE_IO_H_
#define SPECMINE_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/support/status.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Parses the plain-text trace format from \p in.
Result<SequenceDatabase> ReadTextTraces(std::istream& in);

/// \brief Reads the plain-text trace format from the file at \p path.
Result<SequenceDatabase> ReadTextTraceFile(const std::string& path);

/// \brief Writes \p db in the plain-text trace format.
Status WriteTextTraces(const SequenceDatabase& db, std::ostream& out);

/// \brief Writes \p db in the plain-text trace format to \p path.
Status WriteTextTraceFile(const SequenceDatabase& db, const std::string& path);

/// \brief Parses the structured "spm" format from \p in.
Result<SequenceDatabase> ReadSpmTraces(std::istream& in);

/// \brief Writes \p db in the structured "spm" format.
Status WriteSpmTraces(const SequenceDatabase& db, std::ostream& out);

}  // namespace specmine

#endif  // SPECMINE_TRACE_TRACE_IO_H_
