// Sharded trace corpora: the .smdbset manifest format, the ShardedDatabase
// reader and the ShardWriter splitter.
//
// A corpus too large (or too distributed) for one .smdb file is stored as
// an ordered set of .smdb *shards* plus one small .smdbset *manifest*
// (see docs/smdb_format.md for the byte-level spec). Each shard is a fully
// self-contained .smdb database with its own compact event dictionary —
// only the names that occur in that shard — so shards can be produced by
// independent runs and mined on machines that never see the rest of the
// corpus. The manifest carries what makes the set one corpus:
//
//   * the merged event dictionary (the union of all shard alphabets, in
//     first-appearance order across the stream that produced the set);
//   * one remap table per shard translating shard-local EventIds to
//     merged ids;
//   * per-shard trace/event counts, cross-checked against the shard files
//     when the set is opened.
//
// The logical database of a shard set is the concatenation of its shards,
// in manifest order, with every event renumbered through the remap — and
// it is *exactly* equal (dictionary ids included) to the database the same
// trace stream would have produced unsharded. Every mining result over a
// merged shard set is therefore byte-identical to mining the equivalent
// single .smdb; tests/shard_set_test.cc and tests/shard_engine_test.cc pin
// this down.

#ifndef SPECMINE_TRACE_SHARD_SET_H_
#define SPECMINE_TRACE_SHARD_SET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.h"
#include "src/trace/binary_format.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief The canonical .smdbset manifest file extension.
inline constexpr const char* kSmdbSetExtension = ".smdbset";

/// \brief The manifest's 8-byte magic ("SMDS" + the PNG-style tail that
/// catches text-mode mangling, as in .smdb).
inline constexpr unsigned char kSmdbSetMagic[8] = {'S',  'M',  'D',  'S',
                                                   0x0d, 0x0a, 0x1a, 0x0a};

/// \brief Current manifest format version (v2 adds a payload checksum
/// and a header checksum in the previously-reserved header pad).
inline constexpr uint32_t kSmdbSetVersion = 2;

/// \brief The checksum-less legacy manifest version. Still readable.
inline constexpr uint32_t kSmdbSetVersionLegacy = 1;

/// \brief What to do when one shard of a set fails to open or validate.
enum class ShardFailurePolicy : uint8_t {
  /// Any bad shard fails the whole Open (the historical behavior).
  kFail,
  /// Bad shards (missing, corrupt, wrong version, checksum mismatch,
  /// manifest disagreement) are quarantined: recorded in the open report
  /// and excluded, and the set presents only the healthy subset. Totals
  /// reflect surviving shards, so fractional support thresholds rescale
  /// to the surviving trace count automatically.
  kQuarantine,
};

/// \brief One shard excluded by ShardFailurePolicy::kQuarantine.
struct QuarantinedShard {
  /// Manifest position of the shard (0-based).
  size_t index = 0;
  /// Resolved shard file path.
  std::string path;
  /// Why it was excluded (the underlying Status message).
  std::string error;
};

/// \brief Options for ShardedDatabase::Open.
struct SetOpenOptions {
  /// Integrity checking for the manifest and every shard.
  IntegrityMode integrity = IntegrityMode::kHeader;
  /// Per-shard failure handling.
  ShardFailurePolicy policy = ShardFailurePolicy::kFail;
};

/// \brief What Open found: total shard count and any quarantined shards.
struct SetOpenReport {
  size_t shards_total = 0;
  std::vector<QuarantinedShard> quarantined;
};

/// \brief True iff \p path names a .smdbset manifest (case-sensitive
/// suffix test; the CLI uses it to accept shard sets everywhere traces
/// are).
bool IsSmdbSetPath(const std::string& path);

/// \brief The parsed manifest of a shard set, without any shard file
/// opened — what an AppendSession resumes from and what crash-recovery
/// checks inspect. Produced by ReadShardSetManifest; ShardedDatabase::Open
/// is layered on top of the same parse.
struct ShardSetManifest {
  /// On-disk manifest format version (1 or 2).
  uint32_t version = kSmdbSetVersion;
  /// Manifest generation: 0 for a freshly packed set, +1 per committed
  /// append rewrite. v1 manifests (and v2 files written before the field
  /// existed) read as generation 0.
  uint64_t generation = 0;
  /// The merged dictionary, in merged-id order.
  EventDictionary dictionary;
  struct Shard {
    /// The path exactly as recorded in the manifest (usually relative).
    std::string recorded_path;
    /// The openable path (resolved against the manifest's directory).
    std::string resolved_path;
    uint64_t num_sequences = 0;
    uint64_t total_events = 0;
    std::vector<EventId> remap;  // local id -> merged id.
  };
  std::vector<Shard> shards;
  uint64_t total_sequences = 0;
  uint64_t total_events = 0;
};

/// \brief Reads and validates the manifest at \p path without opening any
/// shard file. Validation covers magic/version, the v2 checksums per
/// \p integrity, the layout/size cross-checks, dictionary well-formedness
/// and the shard-table totals — everything except the per-shard file
/// checks ShardedDatabase::Open adds.
Result<ShardSetManifest> ReadShardSetManifest(
    const std::string& path,
    IntegrityMode integrity = IntegrityMode::kHeader);

/// \brief An open shard set: the parsed manifest plus every shard mapped
/// read-only (MappedDatabase), validated against the manifest's counts and
/// dictionary remap. Move-only, like the mappings it owns.
class ShardedDatabase {
 public:
  /// \brief Opens and validates the manifest at \p path, then opens every
  /// shard (paths resolved relative to the manifest's directory).
  ///
  /// Fails with ParseError on a corrupt manifest, IOError naming the shard
  /// path when a shard file is missing, and ParseError when a shard is
  /// corrupt, has the wrong format version, or disagrees with the manifest
  /// (counts, dictionary size, or any name/remap mismatch).
  static Result<ShardedDatabase> Open(const std::string& path);

  /// \brief Open with explicit integrity mode and shard-failure policy.
  /// Under ShardFailurePolicy::kQuarantine, per-shard failures are
  /// recorded in open_report() instead of failing the whole set; manifest
  /// corruption still fails regardless of policy.
  static Result<ShardedDatabase> Open(const std::string& path,
                                      const SetOpenOptions& options);

  /// \brief The open report: manifest shard count and quarantined shards
  /// (always empty under ShardFailurePolicy::kFail).
  const SetOpenReport& open_report() const { return report_; }

  ShardedDatabase(ShardedDatabase&&) noexcept = default;
  ShardedDatabase& operator=(ShardedDatabase&&) noexcept = default;
  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  /// \brief Number of shards (0 for an empty set).
  size_t num_shards() const { return shards_.size(); }

  /// \brief Shard \p i's database view (shard-local EventIds!). Valid
  /// while this ShardedDatabase is alive.
  const SequenceDatabase& shard(size_t i) const {
    return shards_[i].mapped.db();
  }

  /// \brief Shard \p i's local-to-merged EventId remap:
  /// remap(i)[local_id] == merged id. One entry per shard-dictionary name.
  const std::vector<EventId>& remap(size_t i) const {
    return shards_[i].remap;
  }

  /// \brief Shard \p i's resolved (openable) file path.
  const std::string& shard_path(size_t i) const { return shards_[i].path; }

  /// \brief XXH64 over shard \p i's entire file bytes — the content
  /// identity the phase-1 candidate cache keys on. O(shard size) per
  /// call (not memoized; the Engine caches the values).
  uint64_t ComputeShardDigest(size_t i) const {
    return shards_[i].mapped.ComputeContentDigest();
  }

  /// \brief The manifest path this set was opened from.
  const std::string& manifest_path() const { return manifest_path_; }

  /// \brief The manifest generation (0 for a freshly packed set, +1 per
  /// committed append).
  uint64_t generation() const { return generation_; }

  /// \brief The merged dictionary over all shards.
  const EventDictionary& dictionary() const { return dictionary_; }

  /// \brief Total sequences across open (healthy) shards. O(1).
  size_t TotalSequences() const { return total_sequences_; }

  /// \brief Total events across open (healthy) shards. O(1).
  size_t TotalEvents() const { return total_events_; }

  /// \brief Materializes the logical (concatenated, remapped) database:
  /// shard 0's traces first, every event translated to merged ids. The
  /// result owns its storage and is exactly the database the same trace
  /// stream would have produced unsharded.
  SequenceDatabase Merge() const;

 private:
  struct Shard {
    MappedDatabase mapped;
    std::vector<EventId> remap;  // local id -> merged id.
    std::string path;            // Resolved path, for error messages.
  };

  ShardedDatabase() = default;

  EventDictionary dictionary_;
  std::vector<Shard> shards_;
  size_t total_sequences_ = 0;
  size_t total_events_ = 0;
  std::string manifest_path_;
  uint64_t generation_ = 0;
  SetOpenReport report_;
};

/// \brief Options for ShardWriter / WriteShardedDatabase.
struct ShardWriterOptions {
  /// Target maximum bytes per shard file. A shard is closed before the
  /// trace that would push its .smdb size past this bound — except that a
  /// single trace larger than the bound still becomes a (oversized) shard
  /// of its own rather than being split or dropped.
  uint64_t shard_bytes = uint64_t{64} << 20;  // 64 MiB.
};

/// \brief Splits a trace stream into size-bounded .smdb shards plus a
/// .smdbset manifest.
///
/// Feed traces in corpus order (AddTrace / AddTraceFromString /
/// AddSequence); the writer interns names into the merged dictionary in
/// first-appearance order, keeps the current shard's compact local
/// dictionary and remap, rotates to a new shard file whenever the size
/// bound would be exceeded (or on an explicit CutShard — e.g. at module or
/// per-run boundaries, which keeps shard alphabets small), and Finish()
/// writes the manifest. Shard files are named <manifest stem>.NNNN.smdb
/// next to the manifest and recorded under their relative names.
class ShardWriter {
 public:
  /// \brief Prepares a writer for the manifest at \p manifest_path.
  /// Nothing is written until the first rotation or Finish().
  explicit ShardWriter(std::string manifest_path,
                       ShardWriterOptions options = {});

  /// \brief Pre-interns every name of \p dict, in id order, into the
  /// merged dictionary. Call before the first trace to make the merged
  /// dictionary (and so every merged id) exactly equal to an existing
  /// database's — the bit-identity guarantee WriteShardedDatabase relies
  /// on.
  void AdoptDictionary(const EventDictionary& dict);

  /// \brief Resumes writing an existing set from its parsed \p manifest
  /// (log-structured append): adopts the merged dictionary, the sealed
  /// shard records and the totals, so new traces continue in a fresh tail
  /// shard numbered after the existing ones, and the next manifest write
  /// carries generation manifest.generation + 1. Must be called before
  /// any trace is added; \p manifest must be the manifest at this
  /// writer's manifest_path.
  Status SeedFromManifest(const ShardSetManifest& manifest);

  /// \brief Seals the tail shard (CutShard) and atomically rewrites the
  /// manifest at the next generation — a durable commit point after which
  /// the set reopens with everything added so far. Unlike Finish() the
  /// writer stays open for more traces; each successful Commit bumps the
  /// generation the next manifest write will carry.
  Status Commit();

  /// \brief Appends one trace of event names.
  Status AddTrace(const std::vector<std::string>& event_names);

  /// \brief Appends a trace parsed from space-separated event names.
  Status AddTraceFromString(std::string_view line);

  /// \brief Appends a trace of \p dict-relative event ids (each id is
  /// resolved to its name and re-interned into the merged dictionary).
  Status AddSequence(EventSpan events, const EventDictionary& dict);

  /// \brief Closes the current shard now, writing its .smdb file. No-op
  /// when the current shard holds no traces.
  Status CutShard();

  /// \brief Flushes the last shard and writes the manifest. The writer
  /// accepts no further traces afterwards. Idempotent. On a terminal
  /// failure (the sticky failed state), shard files written since the
  /// last successful Commit() are deleted: no manifest will ever
  /// reference them, so leaving them behind would shadow the paths the
  /// next (re)pack or append writes.
  Status Finish();

  /// \brief The merged dictionary accumulated so far.
  const EventDictionary& dictionary() const { return merged_; }

  /// \brief Shard files written so far (the current open shard excluded).
  size_t shards_written() const { return records_.size(); }

  /// \brief Traces accepted so far (across all shards).
  size_t sequences_written() const { return total_sequences_; }

  /// \brief Traces currently buffered in the open (uncut) tail shard.
  size_t tail_sequences() const { return current_.size(); }

  /// \brief The generation the next manifest write will carry (0 for a
  /// fresh writer; base generation + 1 after SeedFromManifest; +1 per
  /// successful Commit).
  uint64_t next_generation() const { return next_generation_; }

 private:
  struct ShardRecord {
    std::string relative_path;
    uint64_t num_sequences = 0;
    uint64_t total_events = 0;
    std::vector<EventId> remap;  // local -> merged.
  };

  // The .smdb file size the current shard would have with \p extra_events
  // more events, \p extra_names more dictionary entries and
  // \p extra_name_bytes more name-blob bytes appended.
  uint64_t ProjectedShardBytes(uint64_t extra_sequences,
                               uint64_t extra_events, uint64_t extra_names,
                               uint64_t extra_name_bytes) const;

  // Appends a trace of merged ids, rotating first if the size bound says
  // so.
  Status AddMergedTrace(const std::vector<EventId>& merged_ids);

  Status WriteManifest() const;

  // Deletes shard files written since the last successful manifest write
  // (the sticky-failure path: no manifest will ever reference them).
  void RemoveUncommittedShards();

  std::string manifest_path_;
  ShardWriterOptions options_;
  EventDictionary merged_;
  SequenceDatabaseBuilder current_;         // Shard-local ids.
  std::vector<EventId> current_remap_;      // Local -> merged.
  std::vector<EventId> merged_to_local_;    // Merged -> local (or invalid).
  uint64_t current_name_bytes_ = 0;         // Local name blob size.
  std::vector<ShardRecord> records_;
  std::vector<std::string> uncommitted_shards_;  // Paths pending a commit.
  size_t total_sequences_ = 0;
  size_t total_events_ = 0;
  uint64_t next_generation_ = 0;
  bool finished_ = false;
  Status failed_ = Status::OK();  // Sticky first I/O failure.
};

/// \brief Packs \p db into size-bounded shards plus a manifest at
/// \p manifest_path. The shard set's merged dictionary (and so its merged
/// database) is exactly \p db, ids included.
Status WriteShardedDatabase(const SequenceDatabase& db,
                            const std::string& manifest_path,
                            const ShardWriterOptions& options = {});

}  // namespace specmine

#endif  // SPECMINE_TRACE_SHARD_SET_H_
