#include "src/trace/csv_trace_reader.h"

#include <fstream>
#include <istream>
#include <unordered_map>
#include <vector>

#include "src/support/strings.h"

namespace specmine {

namespace {

// Splits a CSV row; fields are trimmed but empty fields are *kept* (column
// positions matter here, unlike SplitAndTrim).
std::vector<std::string> SplitRow(std::string_view row, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (start <= row.size()) {
    size_t pos = row.find(delimiter, start);
    std::string_view field = pos == std::string_view::npos
                                 ? row.substr(start)
                                 : row.substr(start, pos - start);
    fields.emplace_back(StripWhitespace(field));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return fields;
}

// Names exactly what is wrong with a rejected row: too few columns, or an
// empty key/event field. Includes the 1-based line number (the contract
// the CLI error paths and tests pin) and a snippet of the offending line.
Status MalformedRow(size_t line_no, std::string_view row,
                    const std::vector<std::string>& fields,
                    const CsvTraceOptions& options, size_t needed_columns) {
  std::string what;
  if (fields.size() < needed_columns) {
    what = "expected at least " + std::to_string(needed_columns) +
           " columns, got " + std::to_string(fields.size());
  } else if (fields[options.group_column].empty()) {
    what = "empty group field (column " +
           std::to_string(options.group_column) + ")";
  } else {
    what = "empty event field (column " +
           std::to_string(options.event_column) + ")";
  }
  constexpr size_t kSnippetLimit = 60;
  std::string snippet(row.substr(0, kSnippetLimit));
  if (row.size() > kSnippetLimit) snippet += "...";
  return Status::ParseError("malformed CSV trace record at line " +
                            std::to_string(line_no) + ": " + what + " in \"" +
                            snippet + "\"");
}

}  // namespace

Result<SequenceDatabase> ReadCsvTraces(std::istream& in,
                                       const CsvTraceOptions& options) {
  SequenceDatabaseBuilder builder;
  // Group key -> sequence under construction, in first-appearance order.
  std::unordered_map<std::string, size_t> group_index;
  std::vector<std::string> group_order;
  std::vector<Sequence> groups;

  const size_t needed_columns =
      std::max(options.group_column, options.event_column) + 1;
  std::string line;
  size_t line_no = 0;
  bool header_pending = options.has_header;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    if (header_pending) {
      header_pending = false;
      continue;
    }
    std::vector<std::string> fields = SplitRow(stripped, options.delimiter);
    if (fields.size() < needed_columns ||
        fields[options.event_column].empty() ||
        fields[options.group_column].empty()) {
      if (options.strict) {
        return MalformedRow(line_no, stripped, fields, options,
                            needed_columns);
      }
      continue;  // Non-strict mode: tolerate and drop the row.
    }
    const std::string& key = fields[options.group_column];
    auto [it, inserted] = group_index.try_emplace(key, groups.size());
    if (inserted) {
      group_order.push_back(key);
      groups.emplace_back();
    }
    groups[it->second].Append(
        builder.mutable_dictionary()->Intern(fields[options.event_column]));
  }
  if (in.bad()) {
    return Status::IOError("stream error while reading CSV traces at line " +
                           std::to_string(line_no));
  }
  for (const Sequence& seq : groups) builder.AddSequence(seq);
  return builder.Build();
}

Result<SequenceDatabase> ReadCsvTraceFile(const std::string& path,
                                          const CsvTraceOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open CSV trace file: " + path);
  return ReadCsvTraces(in, options);
}

}  // namespace specmine
