// Interning of event names (method invocations) to dense integer ids.
//
// Program traces name events by strings such as "TxManager.begin". All
// mining code works on dense EventId integers; the dictionary provides the
// bijection and survives round-trips through the trace readers/writers.

#ifndef SPECMINE_TRACE_EVENT_DICTIONARY_H_
#define SPECMINE_TRACE_EVENT_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/support/status.h"

namespace specmine {

/// \brief Dense integer identifier of an interned event name.
using EventId = uint32_t;

/// \brief Sentinel for "no event".
inline constexpr EventId kInvalidEvent = ~EventId{0};

/// \brief Bidirectional map between event names and dense EventIds.
///
/// Ids are assigned in first-intern order starting at 0, so a dictionary is
/// deterministic given the intern call sequence. Lookup by name is O(1)
/// expected; lookup by id is O(1).
class EventDictionary {
 public:
  /// \brief Pre-sizes the name table and the hash map for \p num_events
  /// upcoming interns (bulk copies — shard merges, dictionary adoption —
  /// know the total up front; this skips the rehash/realloc churn).
  void Reserve(size_t num_events) {
    names_.reserve(num_events);
    ids_.reserve(num_events);
  }

  /// \brief Returns the id of \p name, interning it if new.
  EventId Intern(std::string_view name);

  /// \brief Returns the id of \p name, or kInvalidEvent if never interned.
  EventId Lookup(std::string_view name) const;

  /// \brief Returns the name for \p id; id must be < size().
  const std::string& Name(EventId id) const;

  /// \brief Returns the name for \p id, or "<ev{id}>" if out of range.
  std::string NameOrPlaceholder(EventId id) const;

  /// \brief Number of distinct interned events.
  size_t size() const { return names_.size(); }

  /// \brief True iff no event has been interned.
  bool empty() const { return names_.empty(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, EventId> ids_;
};

}  // namespace specmine

#endif  // SPECMINE_TRACE_EVENT_DICTIONARY_H_
