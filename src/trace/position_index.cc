#include "src/trace/position_index.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace specmine {

Status CheckIndexable(const SequenceDatabase& db) {
  // The CSR offsets are uint32 (kNoPos reserved as a sentinel); past that
  // the counting passes would wrap and scatter out of bounds. A database
  // this large needs a sharded index first.
  if (db.TotalEvents() >= kNoPos) {
    return Status::OutOfRange(
        "database has " + std::to_string(db.TotalEvents()) +
        " events, beyond the 2^32-2 the index's uint32 offsets can address");
  }
  const uint64_t* offsets = db.offsets();
  for (SeqId s = 0; s < db.size(); ++s) {
    const uint64_t len = offsets[s + 1] - offsets[s];
    if (len >= kNoPos) {
      return Status::OutOfRange(
          "sequence " + std::to_string(s) + " has " + std::to_string(len) +
          " events, beyond the uint32 position range");
    }
  }
  return Status::OK();
}

PositionIndex::PositionIndex(const SequenceDatabase& db,
                             size_t dense_cell_limit)
    : db_(&db),
      num_events_(db.dictionary().size()),
      num_seqs_(db.size()) {
  // The CSR offsets are uint32; past 2^32-1 total events the counting
  // passes would wrap and scatter out of bounds. Fail loudly rather than
  // corrupt (a real database this large needs a sharded index first).
  if (db.TotalEvents() >= kNoPos) {
    std::fprintf(stderr,
                 "PositionIndex: database has %zu events, beyond the 2^32-1 "
                 "the CSR offsets can address\n",
                 db.TotalEvents());
    std::abort();
  }
  total_counts_.assign(num_events_, 0);
  sequence_counts_.assign(num_events_, 0);
  dense_ = num_events_ * num_seqs_ <= dense_cell_limit;
  if (dense_) {
    BuildDense();
  } else {
    BuildSparse();
  }
}

void PositionIndex::BuildDense() {
  const size_t num_cells = num_events_ * num_seqs_;
  // Both passes run straight over the flat arena: no per-sequence objects,
  // one linear scan each, with the CSR offsets supplying trace boundaries.
  const EventId* arena = db_->arena();
  const uint64_t* offsets = db_->offsets();
  // Pass 1: per-cell counts, stored one slot ahead so the inclusive prefix
  // sum below turns cell_ends_[c] into the *start* of cell c.
  cell_ends_.assign(num_cells + 1, 0);
  for (SeqId s = 0; s < num_seqs_; ++s) {
    for (uint64_t i = offsets[s]; i < offsets[s + 1]; ++i) {
      EventId ev = arena[i];
      if (ev >= num_events_) continue;  // Defensive; ids come from dict.
      ++cell_ends_[static_cast<size_t>(ev) * num_seqs_ + s + 1];
      ++total_counts_[ev];
    }
  }
  for (size_t c = 1; c <= num_cells; ++c) cell_ends_[c] += cell_ends_[c - 1];
  positions_.resize(cell_ends_[num_cells]);
  // Pass 2: scatter. Writing through cell_ends_[c] advances each start to
  // its cell's exclusive end, which is exactly the lookup invariant:
  // cell c spans [cell_ends_[c-1], cell_ends_[c]).
  for (SeqId s = 0; s < num_seqs_; ++s) {
    for (uint64_t i = offsets[s]; i < offsets[s + 1]; ++i) {
      EventId ev = arena[i];
      if (ev >= num_events_) continue;
      const size_t cell = static_cast<size_t>(ev) * num_seqs_ + s;
      positions_[cell_ends_[cell]++] = static_cast<Pos>(i - offsets[s]);
    }
  }
  cell_ends_.pop_back();  // The sentinel is dead after the scatter.
  for (EventId ev = 0; ev < num_events_; ++ev) {
    // Distinct sequences containing ev = non-empty cells in its row.
    size_t prev = static_cast<size_t>(ev) * num_seqs_;
    size_t count = 0;
    uint32_t last = prev == 0 ? 0 : cell_ends_[prev - 1];
    for (size_t c = prev; c < prev + num_seqs_; ++c) {
      if (cell_ends_[c] != last) ++count;
      last = cell_ends_[c];
    }
    sequence_counts_[ev] = count;
  }
}

void PositionIndex::BuildSparse() {
  const EventId* arena = db_->arena();
  const uint64_t* offsets = db_->offsets();
  // Pass 1: per-event totals and distinct-sequence counts.
  std::vector<SeqId> last_seq(num_events_, static_cast<SeqId>(-1));
  for (SeqId s = 0; s < num_seqs_; ++s) {
    for (uint64_t i = offsets[s]; i < offsets[s + 1]; ++i) {
      EventId ev = arena[i];
      if (ev >= num_events_) continue;
      ++total_counts_[ev];
      if (last_seq[ev] != s) {
        last_seq[ev] = s;
        ++sequence_counts_[ev];
      }
    }
  }
  entry_begin_.assign(num_events_ + 1, 0);
  for (EventId ev = 0; ev < num_events_; ++ev) {
    entry_begin_[ev + 1] =
        entry_begin_[ev] + static_cast<uint32_t>(sequence_counts_[ev]);
  }
  entry_seq_.resize(entry_begin_[num_events_]);
  entry_offset_.resize(entry_begin_[num_events_]);

  // Pass 2: scatter. Per-event cursors; iterating sequences in order keeps
  // each event's cells sorted by sequence and each cell sorted by position.
  std::vector<uint32_t> pos_cursor(num_events_ + 1, 0);
  for (EventId ev = 0; ev < num_events_; ++ev) {
    pos_cursor[ev + 1] = pos_cursor[ev] + static_cast<uint32_t>(total_counts_[ev]);
  }
  positions_.resize(pos_cursor[num_events_]);
  std::vector<uint32_t> entry_cursor(entry_begin_.begin(),
                                     entry_begin_.end() - 1);
  std::fill(last_seq.begin(), last_seq.end(), static_cast<SeqId>(-1));
  for (SeqId s = 0; s < num_seqs_; ++s) {
    for (uint64_t i = offsets[s]; i < offsets[s + 1]; ++i) {
      EventId ev = arena[i];
      if (ev >= num_events_) continue;
      if (last_seq[ev] != s) {
        last_seq[ev] = s;
        entry_seq_[entry_cursor[ev]] = s;
        entry_offset_[entry_cursor[ev]] = pos_cursor[ev];
        ++entry_cursor[ev];
      }
      positions_[pos_cursor[ev]++] = static_cast<Pos>(i - offsets[s]);
    }
  }
}

PosSpan PositionIndex::SparsePositions(EventId ev, SeqId seq) const {
  if (ev >= num_events_ || seq >= num_seqs_) return PosSpan();
  const uint32_t lo = entry_begin_[ev];
  const uint32_t hi = entry_begin_[ev + 1];
  const uint32_t* first = entry_seq_.data() + lo;
  const uint32_t* last = entry_seq_.data() + hi;
  const uint32_t* it = std::lower_bound(first, last, seq);
  if (it == last || *it != seq) return PosSpan();
  const size_t entry = static_cast<size_t>(it - entry_seq_.data());
  const uint32_t begin = entry_offset_[entry];
  // The cell ends where the event's next cell starts (or the event ends,
  // which is the next event's first offset or the end of positions_).
  const uint32_t end =
      entry + 1 < hi ? entry_offset_[entry + 1]
                     : (hi < entry_offset_.size()
                            ? entry_offset_[hi]
                            : static_cast<uint32_t>(positions_.size()));
  return PosSpan(positions_.data() + begin, positions_.data() + end);
}

Pos PositionIndex::FirstAfter(EventId ev, SeqId seq, Pos after) const {
  const PosSpan ps = Positions(ev, seq);
  const Pos* it = std::upper_bound(ps.begin(), ps.end(), after);
  return it == ps.end() ? kNoPos : *it;
}

Pos PositionIndex::FirstAtOrAfter(EventId ev, SeqId seq, Pos at) const {
  const PosSpan ps = Positions(ev, seq);
  const Pos* it = std::lower_bound(ps.begin(), ps.end(), at);
  return it == ps.end() ? kNoPos : *it;
}

Pos PositionIndex::LastBefore(EventId ev, SeqId seq, Pos before) const {
  const PosSpan ps = Positions(ev, seq);
  const Pos* it = std::lower_bound(ps.begin(), ps.end(), before);
  if (it == ps.begin()) return kNoPos;
  return *(it - 1);
}

size_t PositionIndex::CountInRange(EventId ev, SeqId seq, Pos lo,
                                   Pos hi) const {
  if (lo > hi) return 0;
  const PosSpan ps = Positions(ev, seq);
  const Pos* b = std::lower_bound(ps.begin(), ps.end(), lo);
  const Pos* e = std::upper_bound(b, ps.end(), hi);
  return static_cast<size_t>(e - b);
}

}  // namespace specmine
