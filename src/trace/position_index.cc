#include "src/trace/position_index.h"

#include <algorithm>

namespace specmine {

PositionIndex::PositionIndex(const SequenceDatabase& db) : db_(&db) {
  const size_t num_events = db.dictionary().size();
  const size_t num_seqs = db.size();
  total_counts_.assign(num_events, 0);
  sequence_counts_.assign(num_events, 0);
  cells_.reserve(db.TotalEvents() / 2 + 16);
  for (SeqId s = 0; s < num_seqs; ++s) {
    const Sequence& seq = db[s];
    for (Pos p = 0; p < seq.size(); ++p) {
      EventId ev = seq[p];
      if (ev >= num_events) continue;  // Defensive; ids come from dictionary.
      auto& positions = cells_[Key(ev, s)];
      if (positions.empty()) ++sequence_counts_[ev];
      positions.push_back(p);
      ++total_counts_[ev];
    }
  }
}

const std::vector<Pos>& PositionIndex::Positions(EventId ev, SeqId seq) const {
  auto it = cells_.find(Key(ev, seq));
  return it == cells_.end() ? empty_ : it->second;
}

Pos PositionIndex::FirstAfter(EventId ev, SeqId seq, Pos after) const {
  const auto& ps = Positions(ev, seq);
  auto it = std::upper_bound(ps.begin(), ps.end(), after);
  return it == ps.end() ? kNoPos : *it;
}

Pos PositionIndex::FirstAtOrAfter(EventId ev, SeqId seq, Pos at) const {
  const auto& ps = Positions(ev, seq);
  auto it = std::lower_bound(ps.begin(), ps.end(), at);
  return it == ps.end() ? kNoPos : *it;
}

Pos PositionIndex::LastBefore(EventId ev, SeqId seq, Pos before) const {
  const auto& ps = Positions(ev, seq);
  auto it = std::lower_bound(ps.begin(), ps.end(), before);
  if (it == ps.begin()) return kNoPos;
  return *(it - 1);
}

size_t PositionIndex::CountInRange(EventId ev, SeqId seq, Pos lo,
                                   Pos hi) const {
  if (lo > hi) return 0;
  const auto& ps = Positions(ev, seq);
  auto b = std::lower_bound(ps.begin(), ps.end(), lo);
  auto e = std::upper_bound(ps.begin(), ps.end(), hi);
  return static_cast<size_t>(e - b);
}

size_t PositionIndex::TotalCount(EventId ev) const {
  return ev < total_counts_.size() ? total_counts_[ev] : 0;
}

size_t PositionIndex::SequenceCount(EventId ev) const {
  return ev < sequence_counts_.size() ? sequence_counts_[ev] : 0;
}

}  // namespace specmine
