// Low-level helpers shared by the .smdb and .smdbset writers/readers:
// the 8-byte padding rule, the little-endian host guard, the XXH64
// payload checksum, and the write-to-temp-then-rename atomic file
// protocol. One definition each, so the two formats cannot drift apart
// on disk behavior.

#ifndef SPECMINE_TRACE_FORMAT_UTIL_H_
#define SPECMINE_TRACE_FORMAT_UTIL_H_

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define SPECMINE_HAVE_FSYNC 1
#endif

#include "src/support/fault_injection.h"
#include "src/support/status.h"

namespace specmine {
namespace format_util {

/// \brief Rounds \p n up to the next multiple of 8 (every section of the
/// binary formats is 8-byte aligned; see docs/smdb_format.md §1).
inline uint64_t PadTo8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

/// \brief The binary formats are little-endian *by fiat* — the on-disk
/// bytes are the in-memory layout. On a big-endian host both reading and
/// writing must refuse, naming \p format (".smdb" / ".smdbset").
inline Status CheckLittleEndianHost(const char* format) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal(std::string(format) +
                            " files are little-endian; this host is "
                            "big-endian");
  }
  return Status::OK();
}

/// \brief XXH64 (Yann Collet's xxHash, 64-bit variant) over \p len bytes
/// with seed \p seed. This is the checksum the v2 binary formats store
/// per section: fast enough to verify a mmap'd corpus at open time, and
/// with far better bit-flip dispersion than an additive sum. Implemented
/// from the public specification; matches the reference digests.
inline uint64_t XXH64(const void* data, size_t len, uint64_t seed = 0) {
  constexpr uint64_t kP1 = 0x9E3779B185EBCA87ULL;
  constexpr uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;
  constexpr uint64_t kP3 = 0x165667B19E3779F9ULL;
  constexpr uint64_t kP4 = 0x85EBCA77C2B2AE63ULL;
  constexpr uint64_t kP5 = 0x27D4EB2F165667C5ULL;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  auto rotl = [](uint64_t x, int r) { return (x << r) | (x >> (64 - r)); };
  auto read64 = [](const unsigned char* q) {
    uint64_t v;
    std::memcpy(&v, q, 8);
    return v;  // Little-endian host enforced by CheckLittleEndianHost.
  };
  auto read32 = [](const unsigned char* q) {
    uint32_t v;
    std::memcpy(&v, q, 4);
    return static_cast<uint64_t>(v);
  };
  auto round = [&](uint64_t acc, uint64_t input) {
    return rotl(acc + input * kP2, 31) * kP1;
  };

  uint64_t h;
  if (len >= 32) {
    uint64_t v1 = seed + kP1 + kP2;
    uint64_t v2 = seed + kP2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kP1;
    do {
      v1 = round(v1, read64(p));
      v2 = round(v2, read64(p + 8));
      v3 = round(v3, read64(p + 16));
      v4 = round(v4, read64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    auto merge = [&](uint64_t acc, uint64_t v) {
      return (acc ^ round(0, v)) * kP1 + kP4;
    };
    h = merge(h, v1);
    h = merge(h, v2);
    h = merge(h, v3);
    h = merge(h, v4);
  } else {
    h = seed + kP5;
  }
  h += static_cast<uint64_t>(len);
  while (p + 8 <= end) {
    h = rotl(h ^ round(0, read64(p)), 27) * kP1 + kP4;
    p += 8;
  }
  if (p + 4 <= end) {
    h = rotl(h ^ (read32(p) * kP1), 23) * kP2 + kP3;
    p += 4;
  }
  while (p < end) {
    h = rotl(h ^ (*p * kP5), 11) * kP1;
    ++p;
  }
  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

/// \brief fsyncs \p path (best effort on platforms without fsync). A
/// write-then-rename commit is only crash-durable if the temp file's
/// bytes and the directory entry both reach stable storage.
inline Status FsyncFile(const std::string& path) {
#ifdef SPECMINE_HAVE_FSYNC
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open for fsync: " + path);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("fsync failed: " + path);
#endif
  return Status::OK();
}

/// \brief fsyncs the directory containing \p path so a completed rename
/// survives a crash. Best effort off unix.
inline Status FsyncParentDir(const std::string& path) {
#ifdef SPECMINE_HAVE_FSYNC
  size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open directory for fsync: " + dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("directory fsync failed: " + dir);
#endif
  return Status::OK();
}

/// \brief Writes a file atomically and durably: \p write_body streams
/// into <path>.tmp, which is fsynced and renamed onto \p path only after
/// a clean flush, then the directory entry is fsynced. Rationale:
/// truncating \p path in place would shear any live mmap of the old file
/// (packing a database onto itself = SIGBUS + a destroyed input), a
/// mid-write failure must not leave a corrupt half-file at the final
/// name, and an un-fsynced rename is not a commit — a crash could
/// surface a zero-length or torn file under the committed name. Every
/// failure path unlinks the temp file.
///
/// Fault-injection sites: "format_util.open_tmp", "format_util.write",
/// "format_util.fsync", "format_util.rename".
inline Status AtomicWriteFile(
    const std::string& path,
    const std::function<Status(std::ostream&)>& write_body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    Status written = CheckFault("format_util.open_tmp");
    if (written.ok() && !out) {
      written = Status::IOError("cannot open output file: " + tmp);
    }
    if (written.ok()) written = write_body(out);
    if (written.ok()) written = CheckFault("format_util.write");
    if (written.ok()) {
      out.flush();
      if (!out) written = Status::IOError("stream error while writing " + tmp);
    }
    if (!written.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return written;
    }
  }
  Status synced = CheckFault("format_util.fsync");
  if (synced.ok()) synced = FsyncFile(tmp);
  if (!synced.ok()) {
    std::remove(tmp.c_str());
    return synced;
  }
  Status renamed = CheckFault("format_util.rename");
  if (renamed.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    renamed = Status::IOError("cannot rename " + tmp + " to " + path);
  }
  if (!renamed.ok()) {
    std::remove(tmp.c_str());
    return renamed;
  }
  return FsyncParentDir(path);
}

}  // namespace format_util
}  // namespace specmine

#endif  // SPECMINE_TRACE_FORMAT_UTIL_H_
