// Low-level helpers shared by the .smdb and .smdbset writers/readers:
// the 8-byte padding rule, the little-endian host guard, and the
// write-to-temp-then-rename atomic file protocol. One definition each, so
// the two formats cannot drift apart on disk behavior.

#ifndef SPECMINE_TRACE_FORMAT_UTIL_H_
#define SPECMINE_TRACE_FORMAT_UTIL_H_

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>

#include "src/support/status.h"

namespace specmine {
namespace format_util {

/// \brief Rounds \p n up to the next multiple of 8 (every section of the
/// binary formats is 8-byte aligned; see docs/smdb_format.md §1).
inline uint64_t PadTo8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

/// \brief The binary formats are little-endian *by fiat* — the on-disk
/// bytes are the in-memory layout. On a big-endian host both reading and
/// writing must refuse, naming \p format (".smdb" / ".smdbset").
inline Status CheckLittleEndianHost(const char* format) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal(std::string(format) +
                            " files are little-endian; this host is "
                            "big-endian");
  }
  return Status::OK();
}

/// \brief Writes a file atomically: \p write_body streams into
/// <path>.tmp, which is renamed onto \p path only after a clean flush.
/// Rationale: truncating \p path in place would shear any live mmap of
/// the old file (packing a database onto itself = SIGBUS + a destroyed
/// input), and a mid-write failure must not leave a corrupt half-file at
/// the final name.
inline Status AtomicWriteFile(
    const std::string& path,
    const std::function<Status(std::ostream&)>& write_body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open output file: " + tmp);
    Status written = write_body(out);
    if (written.ok()) {
      out.flush();
      if (!out) written = Status::IOError("stream error while writing " + tmp);
    }
    if (!written.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return written;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace format_util
}  // namespace specmine

#endif  // SPECMINE_TRACE_FORMAT_UTIL_H_
