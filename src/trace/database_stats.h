// Summary statistics of a sequence database (used by reports and examples).

#ifndef SPECMINE_TRACE_DATABASE_STATS_H_
#define SPECMINE_TRACE_DATABASE_STATS_H_

#include <cstddef>
#include <string>

#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Shape statistics of a SequenceDatabase.
struct DatabaseStats {
  size_t num_sequences = 0;
  size_t num_distinct_events = 0;
  size_t total_events = 0;
  size_t min_length = 0;
  size_t max_length = 0;
  double avg_length = 0.0;

  /// \brief One-line human-readable rendering.
  std::string ToString() const;
};

/// \brief Computes shape statistics for \p db.
DatabaseStats ComputeStats(const SequenceDatabase& db);

}  // namespace specmine

#endif  // SPECMINE_TRACE_DATABASE_STATS_H_
