#include "src/trace/shard_set.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <unordered_set>
#include <utility>

#include "src/support/strings.h"
#include "src/trace/format_util.h"

namespace specmine {

namespace {

// Fixed 96-byte manifest header; all multi-byte fields little-endian. The
// section offsets derive from the counts (docs/smdb_format.md), so a
// corrupted count can only move the expected file size, which is checked
// against the real one. v1 pads the 80 packed bytes with 16 zeros; v2
// stores a payload digest at [80, 88) (XXH64 over bytes
// [96, file_bytes)) and a header digest at [88, 96) (XXH64 over [0, 88)).
// The generation counter lives in what used to be the reserved pad after
// the version, so every manifest ever written reads back consistently
// (older files carry 0 there) and the field is covered by the v2 header
// digest.
struct SmdbSetHeader {
  unsigned char magic[8];
  uint32_t version;
  uint32_t generation;
  uint64_t num_shards;
  uint64_t num_events;       // Merged dictionary size.
  uint64_t total_sequences;  // Sum over shards.
  uint64_t total_events;     // Sum over shards.
  uint64_t names_bytes;      // Merged name blob.
  uint64_t remap_entries;    // Sum of per-shard local dictionary sizes.
  uint64_t paths_bytes;      // Concatenated shard path blob.
  uint64_t file_bytes;
};
static_assert(sizeof(SmdbSetHeader) == 80, "header packs to 80 + 16 pad");

constexpr size_t kSetHeaderBytes = 96;
constexpr size_t kSetPayloadChecksumOffset = 80;
constexpr size_t kSetHeaderChecksumOffset = 88;
constexpr size_t kSetHeaderChecksumSpan = 88;  // Digest covers [0, 88).

// Per-shard fixed record in the shard table section.
struct SetShardRecord {
  uint64_t num_sequences;
  uint64_t total_events;
  uint64_t num_local_events;  // Shard dictionary size == remap slice size.
};
static_assert(sizeof(SetShardRecord) == 24, "record is 3 x u64");

// Field caps making every offset computation below safe in uint64
// arithmetic (and rejecting nonsense counts early). Shard/event ids are
// u32; byte blobs get the same 2^48 cap as .smdb.
constexpr uint64_t kMaxIds = uint64_t{1} << 32;
constexpr uint64_t kMaxBytes = uint64_t{1} << 48;

using format_util::PadTo8;

struct SetLayout {
  uint64_t name_offsets_off;   // (num_events + 1) x u64
  uint64_t names_off;          // names_bytes, padded to 8
  uint64_t shard_records_off;  // num_shards x SetShardRecord
  uint64_t remap_off;          // remap_entries x u32, padded to 8
  uint64_t path_offsets_off;   // (num_shards + 1) x u64
  uint64_t paths_off;          // paths_bytes, padded to 8
  uint64_t file_bytes;
};

SetLayout ComputeSetLayout(uint64_t num_shards, uint64_t num_events,
                           uint64_t names_bytes, uint64_t remap_entries,
                           uint64_t paths_bytes) {
  SetLayout l;
  l.name_offsets_off = kSetHeaderBytes;
  l.names_off = l.name_offsets_off + 8 * (num_events + 1);
  l.shard_records_off = l.names_off + PadTo8(names_bytes);
  l.remap_off = l.shard_records_off + sizeof(SetShardRecord) * num_shards;
  l.path_offsets_off = l.remap_off + PadTo8(4 * remap_entries);
  l.paths_off = l.path_offsets_off + 8 * (num_shards + 1);
  l.file_bytes = l.paths_off + PadTo8(paths_bytes);
  return l;
}

Status CheckHostEndianness() {
  return format_util::CheckLittleEndianHost(".smdbset");
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::ParseError("corrupt .smdbset manifest " + path + ": " +
                            what);
}

// "/a/b/c.smdbset" -> "/a/b/" (empty when the path has no directory part).
std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

// "/a/b/c.smdbset" -> "c" — the stem shard file names are derived from.
std::string StemOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::string ext = kSmdbSetExtension;
  if (base.size() > ext.size() &&
      base.compare(base.size() - ext.size(), ext.size(), ext) == 0) {
    base.resize(base.size() - ext.size());
  }
  return base;
}

std::string ShardRelativePath(const std::string& manifest_path,
                              size_t shard_index) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".%04zu", shard_index);
  return StemOf(manifest_path) + suffix + kSmdbExtension;
}

std::string ResolveShardPath(const std::string& manifest_path,
                             const std::string& recorded) {
  if (!recorded.empty() && recorded[0] == '/') return recorded;  // Absolute.
  return DirOf(manifest_path) + recorded;
}

}  // namespace

bool IsSmdbSetPath(const std::string& path) {
  const std::string ext = kSmdbSetExtension;
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

// ---------------------------------------------------------------------------
// ReadShardSetManifest.

Result<ShardSetManifest> ReadShardSetManifest(const std::string& path,
                                              IntegrityMode integrity) {
  SPECMINE_RETURN_NOT_OK(CheckHostEndianness());
  SPECMINE_RETURN_NOT_OK(CheckFault("shard_set.manifest_open"));

  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open .smdbset manifest: " + path);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IOError("cannot read .smdbset manifest: " + path);
  }

  if (bytes.size() < kSetHeaderBytes) {
    return Corrupt(path, "file is " + std::to_string(bytes.size()) +
                             " bytes, smaller than the 96-byte header");
  }
  SmdbSetHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kSmdbSetMagic, sizeof(kSmdbSetMagic)) != 0) {
    return Corrupt(path, "bad magic (not a .smdbset manifest)");
  }
  if (header.version != kSmdbSetVersionLegacy &&
      header.version != kSmdbSetVersion) {
    return Corrupt(path, "unsupported manifest version " +
                             std::to_string(header.version) + " (reader is v" +
                             std::to_string(kSmdbSetVersion) + ")");
  }
  if (header.version >= 2 && integrity != IntegrityMode::kOff) {
    // Header digest first, so a flipped header bit is always reported as
    // a checksum mismatch rather than a downstream structural error.
    uint64_t stored_header_sum = 0;
    std::memcpy(&stored_header_sum,
                bytes.data() + kSetHeaderChecksumOffset, 8);
    if (format_util::XXH64(bytes.data(), kSetHeaderChecksumSpan) !=
        stored_header_sum) {
      return Corrupt(path, "header checksum mismatch");
    }
  }
  if (header.num_shards > kMaxIds || header.num_events > kMaxIds ||
      header.total_sequences > kMaxBytes ||
      header.total_events > kMaxBytes || header.names_bytes > kMaxBytes ||
      header.remap_entries > kMaxBytes || header.paths_bytes > kMaxBytes) {
    return Corrupt(path, "header counts exceed format limits");
  }
  const SetLayout layout =
      ComputeSetLayout(header.num_shards, header.num_events,
                       header.names_bytes, header.remap_entries,
                       header.paths_bytes);
  if (layout.file_bytes != header.file_bytes) {
    return Corrupt(path, "header size fields are inconsistent");
  }
  if (bytes.size() < layout.file_bytes) {
    return Corrupt(path, "truncated: header promises " +
                             std::to_string(layout.file_bytes) +
                             " bytes, file has " +
                             std::to_string(bytes.size()));
  }
  if (header.version >= 2 && integrity == IntegrityMode::kFull) {
    uint64_t stored_payload_sum = 0;
    std::memcpy(&stored_payload_sum,
                bytes.data() + kSetPayloadChecksumOffset, 8);
    if (format_util::XXH64(bytes.data() + kSetHeaderBytes,
                           layout.file_bytes - kSetHeaderBytes) !=
        stored_payload_sum) {
      return Corrupt(path, "payload checksum mismatch");
    }
  }

  const unsigned char* base =
      reinterpret_cast<const unsigned char*>(bytes.data());
  const uint64_t* name_offsets =
      reinterpret_cast<const uint64_t*>(base + layout.name_offsets_off);
  const char* names =
      reinterpret_cast<const char*>(base + layout.names_off);
  const SetShardRecord* shard_records =
      reinterpret_cast<const SetShardRecord*>(base + layout.shard_records_off);
  const uint32_t* remap =
      reinterpret_cast<const uint32_t*>(base + layout.remap_off);
  const uint64_t* path_offsets =
      reinterpret_cast<const uint64_t*>(base + layout.path_offsets_off);
  const char* paths = reinterpret_cast<const char*>(base + layout.paths_off);

  if (name_offsets[0] != 0 ||
      name_offsets[header.num_events] != header.names_bytes) {
    return Corrupt(path, "name offset table does not span the name blob");
  }
  for (uint64_t i = 0; i < header.num_events; ++i) {
    if (name_offsets[i + 1] < name_offsets[i]) {
      return Corrupt(path, "name offset table is not monotonic at entry " +
                               std::to_string(i));
    }
  }
  if (path_offsets[0] != 0 ||
      path_offsets[header.num_shards] != header.paths_bytes) {
    return Corrupt(path, "path offset table does not span the path blob");
  }
  for (uint64_t s = 0; s < header.num_shards; ++s) {
    if (path_offsets[s + 1] < path_offsets[s]) {
      return Corrupt(path, "path offset table is not monotonic at shard " +
                               std::to_string(s));
    }
  }

  ShardSetManifest manifest;
  manifest.version = header.version;
  manifest.generation = header.generation;
  manifest.total_sequences = header.total_sequences;
  manifest.total_events = header.total_events;
  for (uint64_t i = 0; i < header.num_events; ++i) {
    const std::string_view name(names + name_offsets[i],
                                name_offsets[i + 1] - name_offsets[i]);
    if (name.empty()) {
      return Corrupt(path, "empty event name at merged id " +
                               std::to_string(i));
    }
    if (manifest.dictionary.Intern(name) != i) {
      return Corrupt(path,
                     "duplicate event name: \"" + std::string(name) + "\"");
    }
  }

  // Cross-check the shard table against the header totals before touching
  // any shard file.
  uint64_t sum_sequences = 0, sum_events = 0, sum_locals = 0;
  for (uint64_t s = 0; s < header.num_shards; ++s) {
    const SetShardRecord& rec = shard_records[s];
    if (rec.num_sequences > kMaxIds || rec.total_events > kMaxBytes ||
        rec.num_local_events > kMaxIds) {
      return Corrupt(path, "shard " + std::to_string(s) +
                               " counts exceed format limits");
    }
    sum_sequences += rec.num_sequences;
    sum_events += rec.total_events;
    sum_locals += rec.num_local_events;
  }
  if (sum_sequences != header.total_sequences ||
      sum_events != header.total_events ||
      sum_locals != header.remap_entries) {
    return Corrupt(path, "shard table totals disagree with the header");
  }

  manifest.shards.reserve(header.num_shards);
  uint64_t remap_cursor = 0;
  for (uint64_t s = 0; s < header.num_shards; ++s) {
    const SetShardRecord& rec = shard_records[s];
    ShardSetManifest::Shard shard;
    shard.recorded_path.assign(paths + path_offsets[s],
                               path_offsets[s + 1] - path_offsets[s]);
    if (shard.recorded_path.empty()) {
      return Corrupt(path, "empty path for shard " + std::to_string(s));
    }
    shard.resolved_path = ResolveShardPath(path, shard.recorded_path);
    shard.num_sequences = rec.num_sequences;
    shard.total_events = rec.total_events;
    shard.remap.assign(remap + remap_cursor,
                       remap + remap_cursor + rec.num_local_events);
    remap_cursor += rec.num_local_events;
    manifest.shards.push_back(std::move(shard));
  }
  return manifest;
}

// ---------------------------------------------------------------------------
// ShardedDatabase.

Result<ShardedDatabase> ShardedDatabase::Open(const std::string& path) {
  return Open(path, SetOpenOptions{});
}

Result<ShardedDatabase> ShardedDatabase::Open(const std::string& path,
                                              const SetOpenOptions& options) {
  Result<ShardSetManifest> parsed =
      ReadShardSetManifest(path, options.integrity);
  if (!parsed.ok()) return parsed.status();
  ShardSetManifest manifest = parsed.TakeValueOrDie();
  const size_t num_events = manifest.dictionary.size();

  ShardedDatabase set;
  set.dictionary_ = std::move(manifest.dictionary);
  set.manifest_path_ = path;
  set.generation_ = manifest.generation;
  set.report_.shards_total = manifest.shards.size();
  const bool quarantine =
      options.policy == ShardFailurePolicy::kQuarantine;
  uint64_t healthy_sequences = 0, healthy_events = 0;
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    ShardSetManifest::Shard& rec = manifest.shards[s];
    Shard shard;
    shard.path = rec.resolved_path;
    shard.remap = std::move(rec.remap);

    // Everything from here down is scoped to this one shard, so under
    // ShardFailurePolicy::kQuarantine a failure excludes the shard
    // instead of failing the set.
    Status shard_status = Status::OK();
    for (size_t l = 0; shard_status.ok() && l < shard.remap.size(); ++l) {
      if (shard.remap[l] >= num_events) {
        shard_status = Corrupt(path, "shard " + std::to_string(s) +
                                         " remap entry " + std::to_string(l) +
                                         " exceeds the merged dictionary");
      }
    }
    if (shard_status.ok()) {
      shard_status = CheckFault("shard_set.shard_open");
    }
    if (shard_status.ok()) {
      SmdbOpenOptions shard_options;
      shard_options.integrity = options.integrity;
      Result<MappedDatabase> mapped =
          MappedDatabase::Open(shard.path, shard_options);
      if (!mapped.ok()) {
        // A missing shard stays IOError; corruption (bad magic, wrong
        // version, truncation, checksum mismatch) stays ParseError — both
        // with the set context.
        const std::string what =
            "shard " + std::to_string(s) + " of " + path + ": " +
            mapped.status().message();
        shard_status = mapped.status().code() == StatusCode::kIOError
                           ? Status::IOError(what)
                           : Status::ParseError(what);
      } else {
        shard.mapped = mapped.TakeValueOrDie();
      }
    }
    if (shard_status.ok()) {
      const SequenceDatabase& db = shard.mapped.db();
      if (db.size() != rec.num_sequences ||
          db.TotalEvents() != rec.total_events ||
          db.dictionary().size() != shard.remap.size()) {
        shard_status =
            Corrupt(path, "shard " + std::to_string(s) + " (" + shard.path +
                              ") disagrees with its manifest record");
      }
    }
    if (shard_status.ok()) {
      // The remap must translate every local name to the same merged name
      // — this is what makes the merged ids meaningful.
      const SequenceDatabase& db = shard.mapped.db();
      for (size_t l = 0; shard_status.ok() && l < shard.remap.size(); ++l) {
        if (db.dictionary().Name(static_cast<EventId>(l)) !=
            set.dictionary_.Name(shard.remap[l])) {
          shard_status =
              Corrupt(path, "shard " + std::to_string(s) +
                                " dictionary disagrees with its remap at "
                                "local id " +
                                std::to_string(l));
        }
      }
    }

    if (!shard_status.ok()) {
      if (!quarantine) return shard_status;
      set.report_.quarantined.push_back(
          QuarantinedShard{s, shard.path, shard_status.message()});
      continue;
    }
    healthy_sequences += rec.num_sequences;
    healthy_events += rec.total_events;
    set.shards_.push_back(std::move(shard));
  }

  // Healthy-subset totals: equal to the header totals when nothing was
  // quarantined (the shard table was cross-checked above), smaller
  // otherwise — so fractional support thresholds rescale automatically.
  set.total_sequences_ = healthy_sequences;
  set.total_events_ = healthy_events;
  return set;
}

SequenceDatabase ShardedDatabase::Merge() const {
  SequenceDatabaseBuilder builder;
  // Everything is pre-reserved from the manifest totals — arena, offsets,
  // and the dictionary's name table — so the copy loop never reallocates.
  builder.Reserve(total_sequences_, total_events_);
  builder.mutable_dictionary()->Reserve(dictionary_.size());
  // Merged dictionary first, in merged-id order, so ids survive exactly.
  for (size_t i = 0; i < dictionary_.size(); ++i) {
    builder.mutable_dictionary()->Intern(
        dictionary_.Name(static_cast<EventId>(i)));
  }
  std::vector<EventId> scratch;
  for (const Shard& shard : shards_) {
    const SequenceDatabase& db = shard.mapped.db();
    for (EventSpan seq : db) {
      scratch.clear();
      scratch.reserve(seq.size());
      for (EventId local : seq) scratch.push_back(shard.remap[local]);
      builder.AddSequence(EventSpan(scratch));
    }
  }
  return builder.Build();
}

// ---------------------------------------------------------------------------
// ShardWriter.

ShardWriter::ShardWriter(std::string manifest_path, ShardWriterOptions options)
    : manifest_path_(std::move(manifest_path)), options_(options) {}

void ShardWriter::AdoptDictionary(const EventDictionary& dict) {
  merged_.Reserve(dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    merged_.Intern(dict.Name(static_cast<EventId>(i)));
  }
  if (merged_to_local_.size() < merged_.size()) {
    merged_to_local_.resize(merged_.size(), kInvalidEvent);
  }
}

Status ShardWriter::SeedFromManifest(const ShardSetManifest& manifest) {
  if (!failed_.ok()) return failed_;
  if (finished_) {
    return Status::InvalidArgument(
        "ShardWriter::Finish() was already called for " + manifest_path_);
  }
  if (merged_.size() > 0 || !records_.empty() || total_sequences_ > 0 ||
      current_.size() > 0) {
    return Status::InvalidArgument(
        "SeedFromManifest requires a fresh writer (nothing adopted or "
        "added yet) for " + manifest_path_);
  }
  AdoptDictionary(manifest.dictionary);
  records_.reserve(manifest.shards.size());
  for (const ShardSetManifest::Shard& shard : manifest.shards) {
    ShardRecord record;
    record.relative_path = shard.recorded_path;
    record.num_sequences = shard.num_sequences;
    record.total_events = shard.total_events;
    record.remap = shard.remap;
    records_.push_back(std::move(record));
  }
  total_sequences_ = manifest.total_sequences;
  total_events_ = manifest.total_events;
  // The existing shards are already committed by the on-disk manifest;
  // only shards this writer produces are cleanup candidates, and the
  // next manifest write supersedes the base generation.
  next_generation_ = manifest.generation + 1;
  return Status::OK();
}

uint64_t ShardWriter::ProjectedShardBytes(uint64_t extra_sequences,
                                          uint64_t extra_events,
                                          uint64_t extra_names,
                                          uint64_t extra_name_bytes) const {
  return SmdbFileBytes(current_.dictionary().size() + extra_names,
                       current_.size() + extra_sequences,
                       current_.TotalEvents() + extra_events,
                       current_name_bytes_ + extra_name_bytes);
}

Status ShardWriter::AddMergedTrace(const std::vector<EventId>& merged_ids) {
  if (!failed_.ok()) return failed_;
  if (finished_) {
    return Status::InvalidArgument(
        "ShardWriter::Finish() was already called for " + manifest_path_);
  }
  if (merged_to_local_.size() < merged_.size()) {
    merged_to_local_.resize(merged_.size(), kInvalidEvent);
  }

  // Names this trace would add to the current shard's local dictionary
  // (each distinct new name counted once).
  uint64_t extra_names = 0, extra_name_bytes = 0;
  std::unordered_set<EventId> fresh;
  for (EventId id : merged_ids) {
    if (merged_to_local_[id] == kInvalidEvent && fresh.insert(id).second) {
      ++extra_names;
      extra_name_bytes += merged_.Name(id).size();
    }
  }
  if (current_.size() > 0 &&
      ProjectedShardBytes(1, merged_ids.size(), extra_names,
                          extra_name_bytes) > options_.shard_bytes) {
    SPECMINE_RETURN_NOT_OK(CutShard());
  }

  std::vector<EventId> local_ids;
  local_ids.reserve(merged_ids.size());
  for (EventId id : merged_ids) {
    EventId local = merged_to_local_[id];
    if (local == kInvalidEvent) {
      local = current_.mutable_dictionary()->Intern(merged_.Name(id));
      merged_to_local_[id] = local;
      current_remap_.push_back(id);
      current_name_bytes_ += merged_.Name(id).size();
    }
    local_ids.push_back(local);
  }
  current_.AddSequence(EventSpan(local_ids));
  ++total_sequences_;
  total_events_ += merged_ids.size();
  return Status::OK();
}

Status ShardWriter::AddTrace(const std::vector<std::string>& event_names) {
  std::vector<EventId> merged_ids;
  merged_ids.reserve(event_names.size());
  for (const std::string& name : event_names) {
    merged_ids.push_back(merged_.Intern(name));
  }
  return AddMergedTrace(merged_ids);
}

Status ShardWriter::AddTraceFromString(std::string_view line) {
  std::vector<EventId> merged_ids;
  for (const auto& tok : SplitAndTrim(line, ' ')) {
    merged_ids.push_back(merged_.Intern(tok));
  }
  return AddMergedTrace(merged_ids);
}

Status ShardWriter::AddSequence(EventSpan events,
                                const EventDictionary& dict) {
  std::vector<EventId> merged_ids;
  merged_ids.reserve(events.size());
  for (EventId id : events) {
    if (id >= dict.size()) {
      return Status::OutOfRange("event id " + std::to_string(id) +
                                " not in the provided dictionary (size " +
                                std::to_string(dict.size()) + ")");
    }
    merged_ids.push_back(merged_.Intern(dict.Name(id)));
  }
  return AddMergedTrace(merged_ids);
}

Status ShardWriter::CutShard() {
  if (!failed_.ok()) return failed_;
  if (current_.size() == 0) return Status::OK();
  const std::string relative =
      ShardRelativePath(manifest_path_, records_.size());
  SequenceDatabase shard_db = current_.Build();  // Resets the builder.
  Status written = WriteBinaryDatabaseFile(
      shard_db, DirOf(manifest_path_) + relative);
  if (!written.ok()) {
    failed_ = written;
    return failed_;
  }
  ShardRecord record;
  record.relative_path = relative;
  record.num_sequences = shard_db.size();
  record.total_events = shard_db.TotalEvents();
  record.remap = std::move(current_remap_);
  records_.push_back(std::move(record));
  uncommitted_shards_.push_back(DirOf(manifest_path_) + relative);
  current_remap_.clear();
  merged_to_local_.assign(merged_.size(), kInvalidEvent);
  current_name_bytes_ = 0;
  return Status::OK();
}

void ShardWriter::RemoveUncommittedShards() {
  for (const std::string& path : uncommitted_shards_) {
    std::remove(path.c_str());
  }
  uncommitted_shards_.clear();
}

Status ShardWriter::Commit() {
  if (!failed_.ok()) {
    RemoveUncommittedShards();
    return failed_;
  }
  if (finished_) {
    return Status::InvalidArgument(
        "ShardWriter::Finish() was already called for " + manifest_path_);
  }
  Status cut = CutShard();
  if (!cut.ok()) {
    RemoveUncommittedShards();
    return cut;
  }
  Status written = WriteManifest();
  if (!written.ok()) {
    failed_ = written;
    RemoveUncommittedShards();
    return failed_;
  }
  uncommitted_shards_.clear();
  ++next_generation_;
  return Status::OK();
}

Status ShardWriter::Finish() {
  if (finished_) return Status::OK();
  Status committed = Commit();
  if (!committed.ok()) return committed;
  finished_ = true;
  return Status::OK();
}

Status ShardWriter::WriteManifest() const {
  SPECMINE_RETURN_NOT_OK(CheckHostEndianness());

  std::vector<uint64_t> name_offsets(merged_.size() + 1, 0);
  for (size_t i = 0; i < merged_.size(); ++i) {
    name_offsets[i + 1] =
        name_offsets[i] + merged_.Name(static_cast<EventId>(i)).size();
  }
  const uint64_t names_bytes = name_offsets[merged_.size()];

  uint64_t remap_entries = 0, paths_bytes = 0;
  for (const ShardRecord& rec : records_) {
    remap_entries += rec.remap.size();
    paths_bytes += rec.relative_path.size();
  }
  const SetLayout layout =
      ComputeSetLayout(records_.size(), merged_.size(), names_bytes,
                       remap_entries, paths_bytes);

  if (next_generation_ > std::numeric_limits<uint32_t>::max()) {
    return Status::Internal("manifest generation counter overflow");
  }
  SmdbSetHeader header{};
  std::memcpy(header.magic, kSmdbSetMagic, sizeof(kSmdbSetMagic));
  header.version = kSmdbSetVersion;
  header.generation = static_cast<uint32_t>(next_generation_);
  header.num_shards = records_.size();
  header.num_events = merged_.size();
  header.total_sequences = total_sequences_;
  header.total_events = total_events_;
  header.names_bytes = names_bytes;
  header.remap_entries = remap_entries;
  header.paths_bytes = paths_bytes;
  header.file_bytes = layout.file_bytes;

  // The payload (everything after the header) is assembled in memory —
  // manifests are metadata-sized — so the v2 payload digest hashes one
  // contiguous buffer, then header and payload are streamed out.
  std::string payload;
  payload.reserve(layout.file_bytes - kSetHeaderBytes);
  const char zeros[8] = {};
  auto append = [&payload](const void* data, size_t n) {
    if (n == 0) return;
    payload.append(static_cast<const char*>(data), n);
  };
  append(name_offsets.data(), 8 * name_offsets.size());
  for (size_t i = 0; i < merged_.size(); ++i) {
    const std::string& name = merged_.Name(static_cast<EventId>(i));
    append(name.data(), name.size());
  }
  append(zeros, PadTo8(names_bytes) - names_bytes);
  for (const ShardRecord& rec : records_) {
    SetShardRecord packed{rec.num_sequences, rec.total_events,
                          rec.remap.size()};
    append(&packed, sizeof(packed));
  }
  for (const ShardRecord& rec : records_) {
    append(rec.remap.data(), 4 * rec.remap.size());
  }
  append(zeros, PadTo8(4 * remap_entries) - 4 * remap_entries);
  std::vector<uint64_t> path_offsets(records_.size() + 1, 0);
  for (size_t s = 0; s < records_.size(); ++s) {
    path_offsets[s + 1] = path_offsets[s] + records_[s].relative_path.size();
  }
  append(path_offsets.data(), 8 * path_offsets.size());
  for (const ShardRecord& rec : records_) {
    append(rec.relative_path.data(), rec.relative_path.size());
  }
  append(zeros, PadTo8(paths_bytes) - paths_bytes);
  if (payload.size() != layout.file_bytes - kSetHeaderBytes) {
    return Status::Internal("manifest payload size disagrees with layout");
  }

  unsigned char head_bytes[kSetHeaderBytes] = {};
  std::memcpy(head_bytes, &header, sizeof(header));
  const uint64_t payload_sum =
      format_util::XXH64(payload.data(), payload.size());
  std::memcpy(head_bytes + kSetPayloadChecksumOffset, &payload_sum, 8);
  const uint64_t header_sum =
      format_util::XXH64(head_bytes, kSetHeaderChecksumSpan);
  std::memcpy(head_bytes + kSetHeaderChecksumOffset, &header_sum, 8);

  return format_util::AtomicWriteFile(
      manifest_path_, [&](std::ostream& out) {
        out.write(reinterpret_cast<const char*>(head_bytes),
                  kSetHeaderBytes);
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        if (!out) {
          return Status::IOError("stream error while writing the manifest");
        }
        return Status::OK();
      });
}

Status WriteShardedDatabase(const SequenceDatabase& db,
                            const std::string& manifest_path,
                            const ShardWriterOptions& options) {
  ShardWriter writer(manifest_path, options);
  // Adopting the dictionary up front makes the set's merged ids exactly
  // \p db's ids, so ShardedDatabase::Merge() reproduces \p db bit for bit.
  writer.AdoptDictionary(db.dictionary());
  for (EventSpan seq : db) {
    SPECMINE_RETURN_NOT_OK(writer.AddSequence(seq, db.dictionary()));
  }
  return writer.Finish();
}

}  // namespace specmine
