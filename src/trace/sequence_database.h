// SequenceDatabase: the SeqDB of the paper — a set of program traces plus
// the event dictionary naming their events.

#ifndef SPECMINE_TRACE_SEQUENCE_DATABASE_H_
#define SPECMINE_TRACE_SEQUENCE_DATABASE_H_

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "src/trace/event_dictionary.h"
#include "src/trace/sequence.h"

namespace specmine {

/// \brief Index of a sequence within a database.
using SeqId = uint32_t;

/// \brief A database of event sequences (program traces).
///
/// Owns both the sequences and the EventDictionary used to name events.
/// This is the input type of every miner in the library.
class SequenceDatabase {
 public:
  SequenceDatabase() = default;

  /// \brief Adds a trace given by event names, interning new names.
  /// Returns the id of the added sequence.
  SeqId AddTrace(const std::vector<std::string>& event_names);

  /// \brief Adds a trace of already-interned event ids.
  SeqId AddSequence(Sequence seq);

  /// \brief Convenience: parses a whitespace-free arrow-less string of
  /// space-separated event names ("a b a c") and adds it as a trace.
  SeqId AddTraceFromString(std::string_view line);

  /// \brief Number of sequences.
  size_t size() const { return sequences_.size(); }
  /// \brief True iff the database holds no sequences.
  bool empty() const { return sequences_.empty(); }
  /// \brief Sequence by id (unchecked).
  const Sequence& operator[](SeqId id) const { return sequences_[id]; }
  /// \brief All sequences.
  const std::vector<Sequence>& sequences() const { return sequences_; }

  /// \brief Total number of events over all sequences.
  size_t TotalEvents() const;

  /// \brief The dictionary naming this database's events.
  const EventDictionary& dictionary() const { return dictionary_; }
  /// \brief Mutable dictionary (used by generators that pre-intern names).
  EventDictionary* mutable_dictionary() { return &dictionary_; }

 private:
  EventDictionary dictionary_;
  std::vector<Sequence> sequences_;
};

}  // namespace specmine

#endif  // SPECMINE_TRACE_SEQUENCE_DATABASE_H_
