// SequenceDatabase: the SeqDB of the paper — a set of program traces plus
// the event dictionary naming their events.
//
// Storage is columnar and arena-backed (see README.md, "Storage layout &
// binary format"): all events of all traces live in one flat arena,
// delimited by a CSR offsets table (offsets[s]..offsets[s+1] is trace s).
// Traces are exposed only as zero-copy EventSpan views. A database is
// immutable once built; the mutable construction path is
// SequenceDatabaseBuilder below, which appends into the same columnar form
// and finalizes without copying. The arena/offsets may also be *views* into
// memory owned elsewhere (an mmap of a .smdb file — see binary_format.h),
// in which case the in-memory layout is byte-identical to the on-disk one.

#ifndef SPECMINE_TRACE_SEQUENCE_DATABASE_H_
#define SPECMINE_TRACE_SEQUENCE_DATABASE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.h"
#include "src/trace/event_dictionary.h"
#include "src/trace/sequence.h"

namespace specmine {

/// \brief Index of a sequence within a database.
using SeqId = uint32_t;

/// \brief A database of event sequences (program traces).
///
/// Owns (or views) the event arena and the EventDictionary naming events.
/// This is the input type of every miner in the library. Immutable; build
/// one with SequenceDatabaseBuilder, the trace readers, or MappedDatabase.
///
/// Copying a database that owns its arena deep-copies it; copying a *view*
/// database (one wrapping an mmap) copies only the pointers, so the copy
/// shares — and must not outlive — the mapped storage.
class SequenceDatabase {
 public:
  SequenceDatabase();
  SequenceDatabase(const SequenceDatabase& other);
  SequenceDatabase(SequenceDatabase&& other) noexcept;
  SequenceDatabase& operator=(const SequenceDatabase& other);
  SequenceDatabase& operator=(SequenceDatabase&& other) noexcept;

  /// \brief Wraps storage owned elsewhere (an mmap'ed .smdb section pair).
  /// \p offsets must have \p num_sequences + 1 entries with offsets[0] == 0
  /// and offsets[num_sequences] == the arena length; both arrays must
  /// outlive the database and every copy of it.
  static SequenceDatabase WrapView(EventDictionary dictionary,
                                   const EventId* arena,
                                   const uint64_t* offsets,
                                   size_t num_sequences);

  /// \brief Number of sequences.
  size_t size() const { return num_seqs_; }
  /// \brief True iff the database holds no sequences.
  bool empty() const { return num_seqs_ == 0; }

  /// \brief Sequence by id (unchecked; \p id must be < size()).
  EventSpan operator[](SeqId id) const {
    return EventSpan(arena_ + offsets_[id], arena_ + offsets_[id + 1]);
  }

  /// \brief Bounds-checked sequence access: OutOfRange for an invalid id.
  Result<EventSpan> at(SeqId id) const;

  /// \brief Total number of events over all sequences. O(1).
  size_t TotalEvents() const { return offsets_[num_seqs_]; }

  /// \brief The dictionary naming this database's events.
  const EventDictionary& dictionary() const { return dictionary_; }

  /// \brief The flat event arena (TotalEvents() entries), grouped by
  /// sequence. Exposed for the index builder and the binary writer.
  const EventId* arena() const { return arena_; }
  /// \brief The CSR offsets table (size() + 1 entries, offsets()[0] == 0).
  const uint64_t* offsets() const { return offsets_; }
  /// \brief True iff the arena is owned by this object (false for views
  /// into an mmap).
  bool owns_storage() const { return !owned_offsets_.empty(); }

  /// \brief Iteration yields one EventSpan per sequence, in id order.
  class const_iterator {
   public:
    const_iterator(const SequenceDatabase* db, SeqId id) : db_(db), id_(id) {}
    EventSpan operator*() const { return (*db_)[id_]; }
    const_iterator& operator++() {
      ++id_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return id_ == o.id_; }
    bool operator!=(const const_iterator& o) const { return id_ != o.id_; }

   private:
    const SequenceDatabase* db_;
    SeqId id_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    return const_iterator(this, static_cast<SeqId>(num_seqs_));
  }

 private:
  friend class SequenceDatabaseBuilder;

  // Re-points arena_/offsets_ at the owned vectors when this database owns
  // its storage (after construction, copy, or move). View databases keep
  // their external pointers.
  void Repoint();

  EventDictionary dictionary_;
  // Owned storage. A view database leaves both vectors empty; an owned
  // database always has owned_offsets_ = {0, ...}, so owns_storage() can
  // key off offsets alone.
  std::vector<EventId> owned_arena_;
  std::vector<uint64_t> owned_offsets_;
  const EventId* arena_ = nullptr;
  const uint64_t* offsets_ = nullptr;
  size_t num_seqs_ = 0;
};

/// \brief The mutable construction path: append traces, then Build() the
/// immutable columnar database. Appends go straight into the flat arena —
/// no per-trace allocations.
class SequenceDatabaseBuilder {
 public:
  SequenceDatabaseBuilder() { offsets_.push_back(0); }

  /// \brief Pre-sizes the arena (optional; appends reallocate as needed).
  void Reserve(size_t num_sequences, size_t total_events) {
    offsets_.reserve(num_sequences + 1);
    arena_.reserve(total_events);
  }

  /// \brief Adds a trace given by event names, interning new names.
  /// Returns the id of the added sequence.
  SeqId AddTrace(const std::vector<std::string>& event_names);

  /// \brief Adds a trace of already-interned event ids.
  SeqId AddSequence(EventSpan events);

  /// \brief Adds a trace of already-interned event ids.
  SeqId AddSequence(std::initializer_list<EventId> events) {
    return AddSequence(EventSpan(events.begin(), events.end()));
  }

  /// \brief Convenience: parses a string of space-separated event names
  /// ("a b a c") and adds it as a trace.
  SeqId AddTraceFromString(std::string_view line);

  /// \brief Number of traces added so far.
  size_t size() const { return offsets_.size() - 1; }
  /// \brief True iff no trace has been added.
  bool empty() const { return size() == 0; }
  /// \brief Total number of events added so far.
  size_t TotalEvents() const { return arena_.size(); }

  /// \brief Trace \p id as appended so far (unchecked). The view is valid
  /// until the next append.
  EventSpan operator[](SeqId id) const {
    return EventSpan(arena_.data() + offsets_[id],
                     arena_.data() + offsets_[id + 1]);
  }

  /// \brief The dictionary being populated.
  const EventDictionary& dictionary() const { return dictionary_; }
  /// \brief Mutable dictionary (used by generators that pre-intern names).
  EventDictionary* mutable_dictionary() { return &dictionary_; }

  /// \brief Finalizes into an immutable database. The builder is left
  /// empty and reusable.
  SequenceDatabase Build();

 private:
  EventDictionary dictionary_;
  std::vector<EventId> arena_;
  std::vector<uint64_t> offsets_;  // Always starts with 0.
};

}  // namespace specmine

#endif  // SPECMINE_TRACE_SEQUENCE_DATABASE_H_
