// QUEST-style synthetic sequence generator.
//
// The paper's performance study (Section 6) uses the IBM QUEST synthetic
// data generator "with modification to ensure generation of sequences of
// events", parameterised by D (number of sequences, in thousands), C
// (average events per sequence), N (number of distinct events, in
// thousands) and S (average number of events in the maximal sequences);
// the evaluated dataset is D5C20N10S20. QUEST is closed source, so this is
// a reimplementation honouring the same parameterisation (substitution #2
// in DESIGN.md §4):
//
//  * a pool of "maximal" seed patterns is drawn first, with Poisson(S)
//    lengths and Zipf-skewed events;
//  * each sequence is filled to a Poisson(C) length by repeatedly either
//    embedding a randomly chosen seed pattern — with per-event corruption
//    and random interleaved noise, and possibly several times per sequence
//    (the within-sequence repetition iterative patterns target) — or
//    appending noise events.
//
// Everything is deterministic given the seed.

#ifndef SPECMINE_SYNTH_QUEST_GENERATOR_H_
#define SPECMINE_SYNTH_QUEST_GENERATOR_H_

#include <cstdint>
#include <string>

#include "src/support/status.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Parameters of the QUEST-style generator. Defaults give the
/// benchmark's CI-scale dataset; the paper-scale dataset is
/// QuestParams::D5C20N10S20().
struct QuestParams {
  /// Number of sequences in thousands (paper's D).
  double d_sequences_thousands = 1.0;
  /// Average events per sequence (paper's C).
  double c_avg_sequence_length = 15.0;
  /// Number of distinct events in thousands (paper's N).
  double n_events_thousands = 0.5;
  /// Average seed ("maximal") pattern length (paper's S).
  double s_avg_pattern_length = 8.0;

  /// Number of seed patterns in the pool.
  size_t num_seed_patterns = 200;
  /// Probability that the next filler is a seed pattern embedding rather
  /// than a single noise event.
  double pattern_probability = 0.7;
  /// Per-event drop probability while embedding a pattern.
  double corruption_probability = 0.15;
  /// Probability of interleaving a noise event between consecutive pattern
  /// events while embedding.
  double interleave_probability = 0.25;
  /// Zipf exponent of the event-usage distribution.
  double zipf_exponent = 0.8;
  /// PRNG seed.
  uint64_t seed = 20080824;  // VLDB'08 opening day.

  /// \brief "D<d>C<c>N<n>S<s>" dataset label as used in the paper.
  std::string Label() const;

  /// \brief The paper's dataset parameters.
  static QuestParams D5C20N10S20();
};

/// \brief Generates a database per \p params. Event names are "e0".."eK".
/// Fails if parameters are non-positive or inconsistent.
Result<SequenceDatabase> GenerateQuest(const QuestParams& params);

}  // namespace specmine

#endif  // SPECMINE_SYNTH_QUEST_GENERATOR_H_
