// Planted-pattern generator: databases with exactly known ground truth,
// used by the test suite and the case-study-style examples.
//
// Unlike the QUEST generator (statistical shape, no exact ground truth),
// this one plants chosen patterns verbatim a chosen number of times per
// sequence, separated by noise drawn from a disjoint alphabet, so tests can
// assert exact supports: each planting is one QRE instance, and noise can
// never interfere (disjoint alphabets).

#ifndef SPECMINE_SYNTH_PLANTED_GENERATOR_H_
#define SPECMINE_SYNTH_PLANTED_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/status.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief One pattern to plant.
struct PlantedPattern {
  /// Event names of the pattern, in order.
  std::vector<std::string> events;
  /// Number of times to plant it in each selected sequence.
  size_t repetitions_per_sequence = 1;
  /// Fraction of sequences that receive the pattern, in (0, 1].
  double sequence_fraction = 1.0;
};

/// \brief Parameters of the planted generator.
struct PlantedParams {
  size_t num_sequences = 100;
  /// Number of noise events appended between consecutive planted events
  /// (uniform in [0, max_noise_run]).
  size_t max_noise_run = 3;
  /// Size of the noise alphabet (names "n0".."nK", disjoint from planted
  /// event names by convention — callers must not reuse them).
  size_t noise_alphabet = 20;
  uint64_t seed = 7;
  std::vector<PlantedPattern> patterns;
};

/// \brief The generated database plus per-pattern expected supports.
///
/// Self-overlapping patterns (e.g. <a,a>) and patterns sharing events can
/// form instances straddling plantings, so the expected counts are
/// computed on the generated database with the independent QRE verifier
/// (not analytically); the value of the generator for tests is that the
/// *production* miners — which share no counting code with the verifier —
/// must reproduce these numbers and must rank planted patterns above noise.
struct PlantedDatabase {
  SequenceDatabase db;
  /// expected_instances[i] = number of QRE instances of patterns[i].
  std::vector<uint64_t> expected_instances;
  /// expected_sequences[i] = number of sequences containing patterns[i]
  /// as a subsequence.
  std::vector<uint64_t> expected_sequences;
};

/// \brief Generates a database per \p params. Fails on empty patterns or
/// out-of-range fractions.
Result<PlantedDatabase> GeneratePlanted(const PlantedParams& params);

}  // namespace specmine

#endif  // SPECMINE_SYNTH_PLANTED_GENERATOR_H_
