#include "src/synth/quest_generator.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "src/support/random.h"

namespace specmine {

std::string QuestParams::Label() const {
  auto fmt = [](double v) {
    std::ostringstream os;
    if (v == std::floor(v)) {
      os << static_cast<int64_t>(v);
    } else {
      os << v;
    }
    return os.str();
  };
  return "D" + fmt(d_sequences_thousands) + "C" + fmt(c_avg_sequence_length) +
         "N" + fmt(n_events_thousands) + "S" + fmt(s_avg_pattern_length);
}

QuestParams QuestParams::D5C20N10S20() {
  QuestParams p;
  p.d_sequences_thousands = 5.0;
  p.c_avg_sequence_length = 20.0;
  p.n_events_thousands = 10.0;
  p.s_avg_pattern_length = 20.0;
  p.num_seed_patterns = 1000;
  return p;
}

Result<SequenceDatabase> GenerateQuest(const QuestParams& params) {
  if (params.d_sequences_thousands <= 0 || params.c_avg_sequence_length <= 0 ||
      params.n_events_thousands <= 0 || params.s_avg_pattern_length <= 0) {
    return Status::InvalidArgument(
        "QUEST parameters D, C, N, S must all be positive");
  }
  if (params.num_seed_patterns == 0) {
    return Status::InvalidArgument("num_seed_patterns must be positive");
  }
  const size_t num_sequences =
      static_cast<size_t>(std::lround(params.d_sequences_thousands * 1000.0));
  const size_t num_events =
      static_cast<size_t>(std::lround(params.n_events_thousands * 1000.0));
  if (num_sequences == 0 || num_events == 0) {
    return Status::InvalidArgument("D and N must round to at least 1 element");
  }

  Rng rng(params.seed);
  ZipfSampler zipf(num_events, params.zipf_exponent);

  SequenceDatabaseBuilder builder;
  for (size_t i = 0; i < num_events; ++i) {
    builder.mutable_dictionary()->Intern("e" + std::to_string(i));
  }

  // Seed pattern pool with exponential-ish weights (a few hot patterns).
  std::vector<std::vector<EventId>> seeds(params.num_seed_patterns);
  for (auto& seed : seeds) {
    int len =
        std::max(1, rng.Poisson(params.s_avg_pattern_length));
    seed.reserve(static_cast<size_t>(len));
    for (int k = 0; k < len; ++k) {
      seed.push_back(static_cast<EventId>(zipf.Sample(&rng)));
    }
  }
  std::vector<double> weight_cdf(seeds.size());
  double acc = 0.0;
  for (size_t i = 0; i < seeds.size(); ++i) {
    acc += std::exp(-static_cast<double>(i) * 4.0 /
                    static_cast<double>(seeds.size()));
    weight_cdf[i] = acc;
  }
  for (auto& w : weight_cdf) w /= acc;
  weight_cdf.back() = 1.0;
  auto pick_seed = [&]() -> const std::vector<EventId>& {
    double u = rng.NextDouble();
    auto it = std::lower_bound(weight_cdf.begin(), weight_cdf.end(), u);
    size_t idx = it == weight_cdf.end()
                     ? weight_cdf.size() - 1
                     : static_cast<size_t>(it - weight_cdf.begin());
    return seeds[idx];
  };

  for (size_t s = 0; s < num_sequences; ++s) {
    const size_t target_len = static_cast<size_t>(
        std::max(1, rng.Poisson(params.c_avg_sequence_length)));
    Sequence seq;
    while (seq.size() < target_len) {
      if (rng.Bernoulli(params.pattern_probability)) {
        const std::vector<EventId>& seed = pick_seed();
        for (EventId ev : seed) {
          if (rng.Bernoulli(params.corruption_probability)) continue;
          if (rng.Bernoulli(params.interleave_probability)) {
            seq.Append(static_cast<EventId>(zipf.Sample(&rng)));
          }
          seq.Append(ev);
          if (seq.size() >= target_len + seed.size()) break;
        }
      } else {
        seq.Append(static_cast<EventId>(zipf.Sample(&rng)));
      }
    }
    builder.AddSequence(seq);
  }
  return builder.Build();
}

}  // namespace specmine
