#include "src/synth/planted_generator.h"

#include <algorithm>
#include <cmath>

#include "src/itermine/qre_verifier.h"
#include "src/support/random.h"

namespace specmine {

Result<PlantedDatabase> GeneratePlanted(const PlantedParams& params) {
  if (params.num_sequences == 0) {
    return Status::InvalidArgument("num_sequences must be positive");
  }
  for (const PlantedPattern& p : params.patterns) {
    if (p.events.empty()) {
      return Status::InvalidArgument("planted pattern must be non-empty");
    }
    if (p.sequence_fraction <= 0.0 || p.sequence_fraction > 1.0) {
      return Status::InvalidArgument(
          "sequence_fraction must be in (0, 1]");
    }
    if (p.repetitions_per_sequence == 0) {
      return Status::InvalidArgument(
          "repetitions_per_sequence must be positive");
    }
  }

  Rng rng(params.seed);
  PlantedDatabase out;
  SequenceDatabaseBuilder builder;

  // Intern planted events first so their ids are stable, then the noise
  // alphabet.
  std::vector<std::vector<EventId>> planted_ids(params.patterns.size());
  for (size_t i = 0; i < params.patterns.size(); ++i) {
    for (const std::string& name : params.patterns[i].events) {
      planted_ids[i].push_back(builder.mutable_dictionary()->Intern(name));
    }
  }
  std::vector<EventId> noise_ids;
  for (size_t i = 0; i < params.noise_alphabet; ++i) {
    noise_ids.push_back(
        builder.mutable_dictionary()->Intern("n" + std::to_string(i)));
  }

  auto append_noise = [&](Sequence* seq) {
    if (noise_ids.empty() || params.max_noise_run == 0) return;
    size_t run = static_cast<size_t>(
        rng.Uniform(static_cast<uint64_t>(params.max_noise_run) + 1));
    for (size_t k = 0; k < run; ++k) {
      seq->Append(noise_ids[rng.Uniform(noise_ids.size())]);
    }
  };

  for (size_t s = 0; s < params.num_sequences; ++s) {
    Sequence seq;
    append_noise(&seq);
    for (size_t i = 0; i < params.patterns.size(); ++i) {
      const PlantedPattern& p = params.patterns[i];
      // Deterministic sequence selection: the first round(fraction * n)
      // sequences receive the pattern (supports are then predictable).
      size_t receiving = static_cast<size_t>(std::llround(
          p.sequence_fraction * static_cast<double>(params.num_sequences)));
      if (s >= receiving) continue;
      for (size_t r = 0; r < p.repetitions_per_sequence; ++r) {
        for (EventId ev : planted_ids[i]) {
          seq.Append(ev);
          append_noise(&seq);
        }
      }
    }
    builder.AddSequence(seq);
  }
  out.db = builder.Build();
  const SequenceDatabase& db = out.db;

  // Ground truth via the independent QRE verifier / subsequence check.
  for (size_t i = 0; i < params.patterns.size(); ++i) {
    Pattern p(planted_ids[i]);
    out.expected_instances.push_back(CountInstances(p, db));
    uint64_t seqs = 0;
    for (EventSpan seq : db) {
      if (p.IsSubsequenceOf(seq)) ++seqs;
    }
    out.expected_sequences.push_back(seqs);
  }
  return out;
}

}  // namespace specmine
