#include "src/support/fault_injection.h"

#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace specmine {
namespace {

struct Entry {
  int countdown = 0;
  bool throws = false;
  Status fault;
  bool spent = false;
};

// Slow-path state, only touched when armed_ is true.
std::mutex& Mu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, Entry>& Sites() {
  static std::map<std::string, Entry> sites;
  return sites;
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(const std::string& site, int countdown,
                        Status fault) {
  std::lock_guard<std::mutex> lock(Mu());
  Entry& e = Sites()[site];
  e.countdown = countdown;
  e.throws = false;
  e.fault = std::move(fault);
  e.spent = false;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::ArmThrow(const std::string& site, int countdown) {
  std::lock_guard<std::mutex> lock(Mu());
  Entry& e = Sites()[site];
  e.countdown = countdown;
  e.throws = true;
  e.fault = Status::Internal("injected throw");
  e.spent = false;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(Mu());
  Sites().clear();
  armed_.store(false, std::memory_order_release);
}

Status FaultInjector::Check(const char* site) {
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  bool throw_now = false;
  Status fault = Status::OK();
  {
    std::lock_guard<std::mutex> lock(Mu());
    auto it = Sites().find(site);
    if (it == Sites().end() || it->second.spent) return Status::OK();
    Entry& e = it->second;
    if (e.countdown-- > 0) return Status::OK();
    e.spent = true;
    throw_now = e.throws;
    fault = e.fault;
  }
  if (throw_now) throw std::runtime_error(std::string("injected fault at ") + site);
  return fault;
}

}  // namespace specmine
