#include "src/support/json_writer.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace specmine {

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonDouble(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::to_chars_result res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

void JsonWriter::Indent() {
  out_->append(2 * stack_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  assert(!finished_ && "value after Finish()");
  if (stack_.empty()) return;  // Top-level value.
  if (stack_.back() == Frame::kObject) {
    assert(pending_key_ && "object member without Key()");
    pending_key_ = false;
    return;  // Key() already wrote the separator and indent.
  }
  if (has_members_.back()) out_->append(",\n");
  has_members_.back() = true;
  Indent();
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  assert(!stack_.empty() && stack_.back() == Frame::kObject);
  assert(!pending_key_ && "two Key() calls in a row");
  if (has_members_.back()) out_->append(",\n");
  has_members_.back() = true;
  Indent();
  out_->push_back('"');
  out_->append(JsonEscape(name));
  out_->append("\": ");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_->append("{\n");
  stack_.push_back(Frame::kObject);
  has_members_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty() && stack_.back() == Frame::kObject);
  const bool had_members = has_members_.back();
  stack_.pop_back();
  has_members_.pop_back();
  if (had_members) {
    out_->push_back('\n');
    Indent();
    out_->push_back('}');
  } else {
    // Roll the "{\n" back to an empty "{}" on one line.
    out_->pop_back();
    out_->push_back('}');
  }
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_->append("[\n");
  stack_.push_back(Frame::kArray);
  has_members_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty() && stack_.back() == Frame::kArray);
  const bool had_members = has_members_.back();
  stack_.pop_back();
  has_members_.pop_back();
  if (had_members) {
    out_->push_back('\n');
    Indent();
    out_->push_back(']');
  } else {
    out_->pop_back();
    out_->push_back(']');
  }
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_->push_back('"');
  out_->append(JsonEscape(value));
  out_->push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_->append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_->append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  out_->append(JsonDouble(value));
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_->append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_->append("null");
  return *this;
}

void JsonWriter::Finish() {
  assert(stack_.empty() && "Finish() inside an open container");
  if (!finished_) {
    out_->push_back('\n');
    finished_ = true;
  }
}

}  // namespace specmine
