#include "src/support/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace specmine {

namespace {

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

BucketHistogram::BucketHistogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  assert(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(
      upper_bounds_.size() + 1);  // +1: the +Inf bucket.
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<double> BucketHistogram::DefaultLatencyBounds() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
          0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0,
          30.0,   60.0};
}

void BucketHistogram::Observe(double value) {
  const size_t bucket =
      static_cast<size_t>(std::lower_bound(upper_bounds_.begin(),
                                           upper_bounds_.end(), value) -
                          upper_bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      observed, DoubleToBits(BitsToDouble(observed) + value),
      std::memory_order_relaxed)) {
  }
}

BucketHistogram::Snapshot BucketHistogram::Snap() const {
  Snapshot snap;
  snap.upper_bounds = upper_bounds_;
  snap.bucket_counts.reserve(upper_bounds_.size() + 1);
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) {
    snap.bucket_counts.push_back(buckets_[i].load(std::memory_order_relaxed));
  }
  snap.sum = BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
  snap.count = count_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace specmine
