// Deterministic fault injection for robustness tests.
//
// FaultInjector is a process-wide singleton compiled into every build. It
// is a no-op unless a test (or the CLI under SPECMINE_FAULT env control)
// arms a named *site*: the fast path is one relaxed atomic load, so the
// hooks cost nothing in production. Sites are string keys chosen at the
// call site, e.g. "trace_io.open", "shard_set.shard_open",
// "format_util.rename", "thread_pool.task".
//
// Two kinds of faults:
//   * Status faults (Arm): Check(site) returns the armed Status after the
//     countdown reaches zero, modelling a failed open/read/rename.
//   * Throw faults (ArmThrow): Check(site) throws std::runtime_error,
//     modelling a misbehaving user callback escaping into a worker thread.
//
// The countdown makes "fail the Nth open" scenarios deterministic. Tests
// must Disarm() (or use ScopedFault) so state never leaks across cases.

#ifndef SPECMINE_SUPPORT_FAULT_INJECTION_H_
#define SPECMINE_SUPPORT_FAULT_INJECTION_H_

#include <atomic>
#include <string>

#include "src/support/status.h"

namespace specmine {

/// \brief Process-wide injection registry. All members thread-safe.
class FaultInjector {
 public:
  /// \brief The singleton instance.
  static FaultInjector& Instance();

  /// \brief Arms \p site: the (countdown+1)-th Check(site) call returns
  /// \p fault (countdown 0 = the next call). Replaces any earlier arming.
  void Arm(const std::string& site, int countdown, Status fault);

  /// \brief Arms \p site to throw std::runtime_error at the
  /// (countdown+1)-th Check(site) call.
  void ArmThrow(const std::string& site, int countdown);

  /// \brief Disarms every site.
  void DisarmAll();

  /// \brief The hook: OK and near-free when nothing is armed.
  Status Check(const char* site);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
};

/// \brief RAII arming: disarms everything on destruction.
class ScopedFault {
 public:
  ScopedFault(const std::string& site, int countdown, Status fault) {
    FaultInjector::Instance().Arm(site, countdown, std::move(fault));
  }
  ~ScopedFault() { FaultInjector::Instance().DisarmAll(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

/// \brief Call-site hook; returns OK unless \p site is armed and due.
inline Status CheckFault(const char* site) {
  return FaultInjector::Instance().Check(site);
}

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_FAULT_INJECTION_H_
