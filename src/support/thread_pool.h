// A small work-stealing thread pool for the miners' first-level subtree
// parallelism (README.md, "Index layout & threading").
//
// Each worker owns a deque: tasks are submitted round-robin, a worker pops
// its own queue from the front and, when empty, steals from the back of a
// sibling's queue. Subtree jobs are coarse, so contention is negligible;
// stealing only matters when the root fan-out is skewed.

#ifndef SPECMINE_SUPPORT_THREAD_POOL_H_
#define SPECMINE_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/support/status.h"

namespace specmine {

/// \brief Fixed-size work-stealing thread pool.
class ThreadPool {
 public:
  /// \brief Spawns \p num_threads workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// \brief Drains remaining tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues one task. Safe from any thread.
  void Submit(std::function<void()> task);

  /// \brief Blocks until every submitted task has finished.
  void Wait();

  /// \brief Returns (and clears) the first exception any worker caught
  /// since the last call, converted to a kInternal Status — OK when every
  /// task body returned normally. An exception escaping a task no longer
  /// std::terminates the process; it fails the owning fan-out instead.
  Status TakeError();

  /// \brief Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// \brief The hardware concurrency, at least 1.
  static size_t HardwareThreads();

  /// \brief Resolves an options-style thread count: 0 = hardware
  /// concurrency, anything else verbatim up to a sanity cap (a garbage
  /// request must not translate into millions of threads).
  static size_t ResolveThreads(size_t requested) {
    constexpr size_t kMaxThreads = 1024;
    if (requested == 0) return HardwareThreads();
    return requested < kMaxThreads ? requested : kMaxThreads;
  }

  /// \brief Runs fn(i) for every i in [0, n) on this pool's workers and
  /// blocks until all calls finish, returning the first error a task body
  /// threw (converted to kInternal). The pool must be otherwise idle (the
  /// miners run one fan-out at a time; an Engine session serializes its
  /// tasks).
  template <typename Fn>
  Status ParallelFor(size_t n, Fn&& fn) {
    for (size_t i = 0; i < n; ++i) {
      Submit([i, &fn] { fn(i); });
    }
    Wait();
    return TakeError();
  }

  /// \brief Runs fn(i) for every i in [0, n) on a fresh pool of
  /// \p num_threads workers and blocks until all calls finish — the
  /// shared scaffold of the miners' per-root-job fan-out.
  template <typename Fn>
  static Status ParallelFor(size_t num_threads, size_t n, Fn&& fn) {
    ThreadPool pool(num_threads);
    return pool.ParallelFor(n, std::forward<Fn>(fn));
  }

  /// \brief ParallelFor on \p shared when it matches the requested worker
  /// count (an Engine session's cached pool), else on a fresh pool. The
  /// miners route every fan-out through this so a long-lived session
  /// amortizes thread spawns across requests.
  template <typename Fn>
  static Status ParallelForShared(ThreadPool* shared, size_t num_threads,
                                  size_t n, Fn&& fn) {
    if (shared != nullptr && shared->num_threads() == num_threads) {
      return shared->ParallelFor(n, std::forward<Fn>(fn));
    }
    return ParallelFor(num_threads, n, std::forward<Fn>(fn));
  }

 private:
  void WorkerLoop(size_t worker);
  bool TryPop(size_t worker, std::function<void()>* task);

  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> workers_;
  std::mutex mu_;                  // Guards queues_, pending_, shutdown_.
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  size_t pending_ = 0;             // Submitted but not yet finished.
  size_t next_queue_ = 0;          // Round-robin submission cursor.
  bool shutdown_ = false;
  Status error_ = Status::OK();    // First caught task exception.
};

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_THREAD_POOL_H_
