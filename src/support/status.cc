#include "src/support/status.h"

namespace specmine {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace specmine
