#include "src/support/thread_pool.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "src/support/fault_injection.h"

namespace specmine {

size_t ThreadPool::HardwareThreads() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  queues_.resize(n);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
  }
  work_cv_.notify_one();
}

bool ThreadPool::TryPop(size_t worker, std::function<void()>* task) {
  // Callers hold mu_. Own queue first (front), then steal (back).
  if (!queues_[worker].empty()) {
    *task = std::move(queues_[worker].front());
    queues_[worker].pop_front();
    return true;
  }
  for (size_t k = 1; k < queues_.size(); ++k) {
    auto& victim = queues_[(worker + k) % queues_.size()];
    if (!victim.empty()) {
      *task = std::move(victim.back());
      victim.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t worker) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return TryPop(worker, &task) || shutdown_; });
      if (!task) return;  // Shutdown with nothing left to run.
    }
    // An exception escaping a task body (a throwing user sink, a bad
    // allocation deep in a miner subtree) must not std::terminate the
    // process: record the first one as a kInternal Status for the owner
    // of the fan-out to pick up via TakeError().
    Status failed = Status::OK();
    try {
      Status injected = CheckFault("thread_pool.task");
      if (!injected.ok()) {
        failed = injected;
      } else {
        task();
      }
    } catch (const std::exception& e) {
      failed = Status::Internal(
          std::string("exception escaped a worker task: ") + e.what());
    } catch (...) {
      failed = Status::Internal(
          "non-standard exception escaped a worker task");
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!failed.ok() && error_.ok()) error_ = failed;
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return pending_ == 0; });
}

Status ThreadPool::TakeError() {
  std::lock_guard<std::mutex> lock(mu_);
  Status out = std::move(error_);
  error_ = Status::OK();
  return out;
}

}  // namespace specmine
