// Cooperative cancellation and deadlines.
//
// A CancelToken is an externally-owned stop signal the mining loops poll
// at subtree granularity. It is either cancelled explicitly (Cancel(),
// from any thread) or implicitly when an optional wall-clock deadline
// passes. Polling is cheap: the explicit flag is one relaxed atomic load,
// and the deadline clock is only consulted every kDeadlineStride polls so
// a tight DFS never pays a steady_clock read per node.
//
// The token reports *why* it fired (kCancelled vs kDeadlineExceeded) so
// the Engine can surface the right StatusCode through Result<RunReport>.
// All members are safe to call concurrently.

#ifndef SPECMINE_SUPPORT_CANCEL_H_
#define SPECMINE_SUPPORT_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/support/status.h"

namespace specmine {

/// \brief A cooperative stop signal with an optional deadline.
class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// \brief Arms a wall-clock deadline \p timeout from now. Call before
  /// handing the token to a miner; replaces any earlier deadline. A
  /// non-positive budget fires the token immediately (so an expired
  /// deadline stops the run even if the miner would finish before the
  /// poll strobe ever consults the clock).
  void SetDeadline(std::chrono::steady_clock::duration timeout) {
    deadline_ = std::chrono::steady_clock::now() + timeout;
    has_deadline_.store(true, std::memory_order_release);
    CheckDeadlineNow();
  }

  /// \brief Requests cancellation. Thread-safe, idempotent.
  void Cancel() { Fire(StatusCode::kCancelled); }

  /// \brief True once the token has fired (cancel or deadline). The fast
  /// path is one relaxed atomic load; the deadline is checked every
  /// kDeadlineStride calls (per thread) to keep polling cheap.
  bool ShouldStop() const {
    if (stopped_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_.load(std::memory_order_relaxed)) return false;
    thread_local uint32_t strobe = 0;
    if (++strobe % kDeadlineStride != 0) return false;
    return CheckDeadlineNow();
  }

  /// \brief Like ShouldStop() but always consults the deadline clock. Use
  /// at coarse boundaries (per shard, per premise) where an extra clock
  /// read is negligible.
  bool ShouldStopExact() const {
    if (stopped_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_.load(std::memory_order_relaxed)) return false;
    return CheckDeadlineNow();
  }

  /// \brief True once fired; never consults the clock.
  bool fired() const { return stopped_.load(std::memory_order_acquire); }

  /// \brief Why the token fired; kOk while it has not.
  StatusCode stop_code() const {
    return static_cast<StatusCode>(code_.load(std::memory_order_acquire));
  }

  /// \brief The Status a stopped run should return: Cancelled or
  /// DeadlineExceeded (OK while the token has not fired).
  Status StopStatus() const {
    switch (stop_code()) {
      case StatusCode::kCancelled:
        return Status::Cancelled("mining cancelled");
      case StatusCode::kDeadlineExceeded:
        return Status::DeadlineExceeded("mining deadline exceeded");
      default:
        return Status::OK();
    }
  }

 private:
  static constexpr uint32_t kDeadlineStride = 64;

  bool CheckDeadlineNow() const {
    if (std::chrono::steady_clock::now() < deadline_) return false;
    const_cast<CancelToken*>(this)->Fire(StatusCode::kDeadlineExceeded);
    return true;
  }

  void Fire(StatusCode why) {
    uint8_t expected = static_cast<uint8_t>(StatusCode::kOk);
    code_.compare_exchange_strong(expected, static_cast<uint8_t>(why),
                                  std::memory_order_acq_rel);
    stopped_.store(true, std::memory_order_release);
  }

  std::atomic<bool> stopped_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<uint8_t> code_{static_cast<uint8_t>(StatusCode::kOk)};
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_CANCEL_H_
