#include "src/support/json_reader.h"

#include <cmath>
#include <cstdlib>

namespace specmine {

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue value;
  value.type_ = Type::kBool;
  value.bool_ = v;
  return value;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue value;
  value.type_ = Type::kNumber;
  value.number_ = v;
  return value;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue value;
  value.type_ = Type::kString;
  value.string_ = std::move(v);
  return value;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> v) {
  JsonValue value;
  value.type_ = Type::kArray;
  value.array_ = std::move(v);
  return value;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> v) {
  JsonValue value;
  value.type_ = Type::kObject;
  value.object_ = std::move(v);
  return value;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

Status JsonValue::GetString(std::string_view key, std::string* out) const {
  const JsonValue* member = Find(key);
  if (member == nullptr) return Status::OK();
  if (!member->is_string()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a string");
  }
  *out = member->AsString();
  return Status::OK();
}

Status JsonValue::GetDouble(std::string_view key, double* out) const {
  const JsonValue* member = Find(key);
  if (member == nullptr) return Status::OK();
  if (!member->is_number()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a number");
  }
  *out = member->AsDouble();
  return Status::OK();
}

Status JsonValue::GetUint(std::string_view key, uint64_t* out) const {
  const JsonValue* member = Find(key);
  if (member == nullptr) return Status::OK();
  if (!member->is_number()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a non-negative integer");
  }
  const double v = member->AsDouble();
  // 2^53: beyond this a double no longer identifies one integer.
  if (v < 0 || v != std::floor(v) || v > 9007199254740992.0) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a non-negative integer");
  }
  *out = static_cast<uint64_t>(v);
  return Status::OK();
}

Status JsonValue::GetBool(std::string_view key, bool* out) const {
  const JsonValue* member = Find(key);
  if (member == nullptr) return Status::OK();
  if (!member->is_bool()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be true or false");
  }
  *out = member->AsBool();
  return Status::OK();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    JsonValue value;
    SPECMINE_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON document");
    }
    return value;
  }

 private:
  // Defense against "[[[[[..." stack exhaustion.
  static constexpr size_t kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::ParseError("JSON: " + what + " at byte " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("expected '" + std::string(literal) + "'");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxDepth) return Error("nesting deeper than 64 levels");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        SPECMINE_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::MakeString(std::move(s));
        return Status::OK();
      }
      case 't':
        SPECMINE_RETURN_NOT_OK(Expect("true"));
        *out = JsonValue::MakeBool(true);
        return Status::OK();
      case 'f':
        SPECMINE_RETURN_NOT_OK(Expect("false"));
        *out = JsonValue::MakeBool(false);
        return Status::OK();
      case 'n':
        SPECMINE_RETURN_NOT_OK(Expect("null"));
        *out = JsonValue::MakeNull();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected an object key");
      }
      std::string key;
      SPECMINE_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after an object key");
      JsonValue value;
      SPECMINE_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      members[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in an object");
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    ++pos_;  // '['
    std::vector<JsonValue> elements;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::MakeArray(std::move(elements));
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      SPECMINE_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      elements.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in an array");
    }
    *out = JsonValue::MakeArray(std::move(elements));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("raw control byte in a string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) break;
      switch (text_[pos_]) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          SPECMINE_RETURN_NOT_OK(ParseUnicodeEscape(out));
          continue;  // ParseUnicodeEscape advanced past the digits.
        }
        default:
          return Error("bad escape sequence");
      }
      ++pos_;
    }
    return Error("unterminated string");
  }

  // pos_ is at the 'u'. Decodes \uXXXX (and a following low surrogate when
  // needed) to UTF-8.
  Status ParseUnicodeEscape(std::string* out) {
    uint32_t code = 0;
    SPECMINE_RETURN_NOT_OK(ParseHex4(&code));
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        return Error("unpaired surrogate");
      }
      pos_ += 2;
      uint32_t low = 0;
      SPECMINE_RETURN_NOT_OK(ParseHex4(&low));
      if (low < 0xDC00 || low > 0xDFFF) return Error("unpaired surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      return Error("unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return Status::OK();
  }

  // pos_ is at the 'u'; advances past the four hex digits.
  Status ParseHex4(uint32_t* out) {
    ++pos_;  // 'u'
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (size_t i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
      // Sign only.
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("expected a value");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("expected digits after the decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("expected exponent digits");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    *out = JsonValue::MakeNumber(std::strtod(token.c_str(), nullptr));
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace specmine
