// Minimal Status / Result error model used across the specmine library.
//
// The library does not throw exceptions across its public API. Operations
// that can fail return a Status (or a Result<T> carrying a value on success).
// This mirrors the error-handling idiom of Arrow / RocksDB / LevelDB.

#ifndef SPECMINE_SUPPORT_STATUS_H_
#define SPECMINE_SUPPORT_STATUS_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace specmine {

/// \brief Machine-readable error category of a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kNotFound = 3,
  kParseError = 4,
  kOutOfRange = 5,
  kInternal = 6,
  kCancelled = 7,
  kDeadlineExceeded = 8,
};

/// \brief Returns a human-readable name for a status code ("OK", "IOError"...).
const char* StatusCodeName(StatusCode code);

/// \brief Result of an operation that can fail; cheap to copy when OK.
///
/// A Status is either OK (no payload) or an error code plus a message.
/// Use the static factory functions to construct errors:
///
///     Status s = Status::InvalidArgument("min_sup must be positive");
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }
  /// \brief Returns an InvalidArgument error with the given message.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// \brief Returns an IOError with the given message.
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// \brief Returns a NotFound error with the given message.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// \brief Returns a ParseError with the given message.
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  /// \brief Returns an OutOfRange error with the given message.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// \brief Returns an Internal error with the given message.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// \brief Returns a Cancelled error with the given message.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// \brief Returns a DeadlineExceeded error with the given message.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// \brief True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// \brief The status code.
  StatusCode code() const { return code_; }
  /// \brief The error message; empty for OK statuses.
  const std::string& message() const { return message_; }
  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief A Status with a value of type T attached on success.
///
/// Construct from a T (success) or from a non-OK Status (failure).
/// Access the value with ValueOrDie() / operator* only after checking ok().
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding \p value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a failed result from a non-OK \p status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// \brief True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// \brief The carried status (OK when a value is present).
  const Status& status() const { return status_; }

  /// \brief Returns the value; the result must be OK.
  const T& ValueOrDie() const {
    assert(ok());
    return *value_;
  }
  /// \brief Moves the value out; the result must be OK.
  T TakeValueOrDie() {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// \brief Propagates a non-OK status to the caller.
#define SPECMINE_RETURN_NOT_OK(expr)          \
  do {                                        \
    ::specmine::Status _st = (expr);          \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_STATUS_H_
