// Wall-clock stopwatch used by the benchmark harness.

#ifndef SPECMINE_SUPPORT_STOPWATCH_H_
#define SPECMINE_SUPPORT_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace specmine {

/// \brief Simple monotonic wall-clock stopwatch.
///
/// Starts running on construction; Elapsed* report time since construction
/// or the last Restart().
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// \brief Resets the start point to now.
  void Restart();
  /// \brief Elapsed time in seconds.
  double ElapsedSeconds() const;
  /// \brief Elapsed time in milliseconds.
  double ElapsedMillis() const;
  /// \brief Elapsed time in nanoseconds.
  int64_t ElapsedNanos() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_STOPWATCH_H_
