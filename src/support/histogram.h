// A fixed-bucket histogram safe for concurrent observation — the
// Prometheus client-library shape: cumulative bucket counts, a running
// sum, and a total count, all lock-free.
//
// Buckets are chosen at construction and never change, so Observe is a
// binary search plus one relaxed fetch_add; Snapshot is a consistent-
// enough read for scraping (Prometheus tolerates torn scrapes by design —
// counters are monotone, so a scrape can only under-report in-flight
// increments, never see garbage).

#ifndef SPECMINE_SUPPORT_HISTOGRAM_H_
#define SPECMINE_SUPPORT_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace specmine {

/// \brief Concurrent fixed-bucket histogram (Prometheus semantics).
class BucketHistogram {
 public:
  /// \brief \p upper_bounds must be strictly increasing; an implicit +Inf
  /// bucket is appended. The default set spans 100us..60s request
  /// latencies.
  explicit BucketHistogram(std::vector<double> upper_bounds);

  /// \brief The default latency bounds (seconds), 100us through 60s.
  static std::vector<double> DefaultLatencyBounds();

  /// \brief Records one observation. Thread-safe, lock-free.
  void Observe(double value);

  /// \brief A point-in-time copy for rendering.
  struct Snapshot {
    /// Upper bounds, excluding the trailing +Inf bucket.
    std::vector<double> upper_bounds;
    /// Per-bucket (non-cumulative) counts; one extra entry for +Inf.
    std::vector<uint64_t> bucket_counts;
    double sum = 0.0;
    uint64_t count = 0;
  };
  Snapshot Snap() const;

 private:
  std::vector<double> upper_bounds_;
  // unique_ptr array because std::atomic is not movable.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  // Sum as bit-cast double updated by CAS loop (no atomic<double> fetch_add
  // until C++20 libstdc++ catches up everywhere).
  std::atomic<uint64_t> sum_bits_{0};
};

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_HISTOGRAM_H_
