#include "src/support/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace specmine {

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int Rng::Poisson(double mean) {
  assert(mean > 0.0);
  if (mean > 64.0) {
    // Normal approximation; adequate for workload sizing.
    double u1 = NextDouble();
    double u2 = NextDouble();
    // Box-Muller; guard against log(0).
    if (u1 <= 0.0) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    double v = mean + std::sqrt(mean) * z;
    return v < 0.0 ? 0 : static_cast<int>(std::lround(v));
  }
  // Knuth's algorithm.
  const double limit = std::exp(-mean);
  double prod = 1.0;
  int n = -1;
  do {
    ++n;
    prod *= NextDouble();
  } while (prod > limit);
  return n;
}

int Rng::Geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = NextDouble();
  if (u <= 0.0) u = 1e-300;
  return static_cast<int>(std::floor(std::log(u) / std::log1p(-p)));
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n >= 1);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace specmine
