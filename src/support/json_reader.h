// A small recursive-descent JSON parser for the specmined request bodies.
//
// Parses one complete RFC 8259 document into a JsonValue tree. The parser
// is strict (no comments, no trailing commas, no bare NaN/Infinity) and
// every syntax error comes back as a kParseError Status naming the byte
// offset — malformed client input must map to an HTTP 400/422 envelope,
// never to UB or a partial parse silently treated as complete.
//
// Depth is capped so an adversarial "[[[[..." body cannot overflow the
// stack; documents past the cap fail cleanly.

#ifndef SPECMINE_SUPPORT_JSON_READER_H_
#define SPECMINE_SUPPORT_JSON_READER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.h"

namespace specmine {

/// \brief One parsed JSON value (tree-owning).
class JsonValue {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// \brief The boolean payload; value must be a bool.
  bool AsBool() const { return bool_; }
  /// \brief The numeric payload; value must be a number.
  double AsDouble() const { return number_; }
  /// \brief The string payload; value must be a string.
  const std::string& AsString() const { return string_; }
  /// \brief The elements; value must be an array.
  const std::vector<JsonValue>& AsArray() const { return array_; }
  /// \brief The members in key order; value must be an object.
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

  /// \brief Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // -------------------------------------------------------------------------
  // Checked option accessors — the shape the request decoders want: a
  // missing member yields the default, a present member of the wrong type
  // (or a non-integral / out-of-range number where an integer is needed)
  // is an InvalidArgument Status naming the field.

  Status GetString(std::string_view key, std::string* out) const;
  Status GetDouble(std::string_view key, double* out) const;
  Status GetUint(std::string_view key, uint64_t* out) const;
  Status GetBool(std::string_view key, bool* out) const;

  // Construction (used by the parser and by tests).
  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> v);
  static JsonValue MakeObject(std::map<std::string, JsonValue> v);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// \brief Parses exactly one JSON document (trailing whitespace allowed,
/// trailing garbage is an error).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_JSON_READER_H_
