// ExtensionAccumulator: dense per-event buckets with a touched-id list —
// the allocation-free replacement for the `std::map<EventId, vector>`
// grouping in the projection engines.
//
// Usage per pattern node:
//   acc.Reset(num_events);
//   ... acc.Bucket(ev).push_back(item) ...   // O(1), no hashing
//   acc.Drain(&out);                         // sorted by event id
//   ... consume out (may outlive further Reset/Bucket cycles) ...
//   acc.Recycle(std::move(out));             // return capacity to the pool
//
// Buckets are stamped with an epoch so Reset is O(1); drained vectors go
// back into a free pool when recycled, so steady-state mining performs no
// heap allocation at all. The touched list is sorted before draining,
// keeping iteration order byte-identical to the std::map implementation it
// replaces.

#ifndef SPECMINE_SUPPORT_EXTENSION_ACCUMULATOR_H_
#define SPECMINE_SUPPORT_EXTENSION_ACCUMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/support/flat_event_map.h"
#include "src/trace/event_dictionary.h"

namespace specmine {

/// \brief Groups items by event id without hashing or node allocation.
template <typename T>
class ExtensionAccumulator {
 public:
  using Bucket_t = std::vector<T>;
  using Map = EventMap<Bucket_t>;

  /// \brief Starts a new accumulation epoch over \p num_events ids.
  void Reset(size_t num_events) {
    if (stamp_.size() < num_events) {
      stamp_.resize(num_events, 0);
      buckets_.resize(num_events);
    }
    touched_.clear();
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  /// \brief The bucket for \p ev, cleared on first touch of the epoch.
  Bucket_t& Bucket(EventId ev) {
    Bucket_t& b = buckets_[ev];
    if (stamp_[ev] != epoch_) {
      stamp_[ev] = epoch_;
      touched_.push_back(ev);
      if (b.capacity() == 0 && !pool_.empty()) {
        b = std::move(pool_.back());  // Reuse a recycled vector's capacity.
        pool_.pop_back();
      }
      b.clear();
    }
    return b;
  }

  /// \brief Bucket touched this epoch, or nullptr.
  const Bucket_t* FindTouched(EventId ev) const {
    return ev < stamp_.size() && stamp_[ev] == epoch_ ? &buckets_[ev]
                                                      : nullptr;
  }

  /// \brief Event ids touched this epoch, in touch order (unsorted).
  const std::vector<EventId>& touched() const { return touched_; }

  /// \brief Moves the touched buckets into \p out, sorted by event id.
  /// Empty buckets are skipped. \p out is cleared first.
  void Drain(Map* out) {
    std::sort(touched_.begin(), touched_.end());
    out->clear();
    for (EventId ev : touched_) {
      if (buckets_[ev].empty()) continue;
      out->emplace_back(ev, std::move(buckets_[ev]));
    }
    touched_.clear();
  }

  /// \brief Takes one empty bucket, reusing pooled capacity — for callers
  /// that group without the dense stamp table (the bitmap projection's
  /// sort-based drain) but share this accumulator's recycle pool.
  Bucket_t AcquireBucket() {
    if (pool_.empty()) return Bucket_t();
    Bucket_t b = std::move(pool_.back());
    pool_.pop_back();
    b.clear();
    return b;
  }

  /// \brief Returns a consumed bucket's capacity to the free pool.
  void Recycle(Bucket_t&& b) {
    b.clear();
    if (b.capacity() != 0) pool_.push_back(std::move(b));
  }

  /// \brief Recycles every bucket of a drained map.
  void Recycle(Map&& m) {
    for (auto& [ev, bucket] : m) Recycle(std::move(bucket));
    m.clear();
  }

 private:
  std::vector<Bucket_t> buckets_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 1;
  std::vector<EventId> touched_;
  std::vector<Bucket_t> pool_;
};

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_EXTENSION_ACCUMULATOR_H_
