#include "src/support/stopwatch.h"

namespace specmine {

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

int64_t Stopwatch::ElapsedNanos() const {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
      .count();
}

double Stopwatch::ElapsedSeconds() const {
  return static_cast<double>(ElapsedNanos()) * 1e-9;
}

double Stopwatch::ElapsedMillis() const {
  return static_cast<double>(ElapsedNanos()) * 1e-6;
}

}  // namespace specmine
