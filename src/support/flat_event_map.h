// EventMap: a flat, event-id-sorted association list — the return type of
// the projection engine's extension queries.
//
// Replaces std::map in the miners' hot paths: one contiguous vector
// instead of a node allocation per key, with the same deterministic
// ascending-id iteration order. Lookups (count/at) are binary searches and
// exist for tests and spot checks; the miners only iterate.

#ifndef SPECMINE_SUPPORT_FLAT_EVENT_MAP_H_
#define SPECMINE_SUPPORT_FLAT_EVENT_MAP_H_

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "src/trace/event_dictionary.h"

namespace specmine {

/// \brief Flat (event id -> T) map sorted by event id.
template <typename T>
class EventMap {
 public:
  using value_type = std::pair<EventId, T>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// \brief Appends an entry; keys must arrive in ascending order.
  void emplace_back(EventId ev, T value) {
    assert(entries_.empty() || entries_.back().first < ev);
    entries_.emplace_back(ev, std::move(value));
  }

  /// \brief Pointer to the value for \p ev, or nullptr.
  const T* find(EventId ev) const {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), ev,
        [](const value_type& e, EventId key) { return e.first < key; });
    if (it == entries_.end() || it->first != ev) return nullptr;
    return &it->second;
  }

  /// \brief 1 iff \p ev is present (std::map-compatible spelling).
  size_t count(EventId ev) const { return find(ev) == nullptr ? 0 : 1; }

  /// \brief Value for \p ev; the key must be present.
  const T& at(EventId ev) const {
    const T* v = find(ev);
    assert(v != nullptr);
    return *v;
  }

  /// \brief Mutable access to the backing vector (drain/recycle paths).
  std::vector<value_type>& entries() { return entries_; }

 private:
  std::vector<value_type> entries_;
};

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_FLAT_EVENT_MAP_H_
