#include "src/support/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace specmine {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<size_t> Socket::Read(char* buffer, size_t capacity) const {
  while (true) {
    const ssize_t n = ::recv(fd_, buffer, capacity, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

void Socket::SetReadTimeout(unsigned seconds) const {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

Status Socket::WriteAll(std::string_view data) const {
  size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a fatal SIGPIPE.
    const ssize_t n = ::send(fd_, data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

void Socket::Shutdown() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Listener> Listener::Listen(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + host +
                                   "' (IPv4 dotted quad expected)");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, 128) != 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Errno("getsockname");
  }

  Listener listener;
  listener.socket_ = std::move(sock);
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<Socket> Listener::Accept() const {
  while (true) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad connect address '" + host + "'");
  }
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
         0) {
    if (errno == EINTR) continue;
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace specmine
