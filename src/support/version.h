// Compile-time build identification, for fleet debugging: `specmine
// --version`, the specmined /healthz envelope, and log preambles all
// report the same strings. The values are injected by CMake
// (SPECMINE_BUILD_VERSION / SPECMINE_BUILD_GIT_REVISION compile
// definitions, the latter from `git describe --always --dirty` at
// configure time) and fall back to "unknown" in builds outside a git
// checkout.

#ifndef SPECMINE_SUPPORT_VERSION_H_
#define SPECMINE_SUPPORT_VERSION_H_

#include <string>

namespace specmine {

/// \brief The release version ("0.7.0").
const char* VersionString();

/// \brief The git revision this binary was configured from ("1067dcb",
/// "476fe5b-dirty", or "unknown" outside a checkout).
const char* GitRevision();

/// \brief "specmine <version> (<revision>)" — the one-line form the CLI
/// prints and /healthz embeds.
std::string VersionLine();

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_VERSION_H_
