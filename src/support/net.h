// A thin RAII layer over POSIX TCP sockets — just enough for the
// specmined HTTP server and its tests: bind+listen (ephemeral ports
// supported, the bound port is reported back), accept, and blocking
// read/write with Status errors. No third-party dependencies.
//
// All operations translate errno into Status values; nothing here throws.
// Sockets are movable, non-copyable, and close on destruction. Shutdown()
// is safe to call from another thread, which is how the server unblocks a
// connection thread parked in Read() during shutdown.

#ifndef SPECMINE_SUPPORT_NET_H_
#define SPECMINE_SUPPORT_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/support/status.h"

namespace specmine {

/// \brief An owned socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// \brief Reads up to \p capacity bytes. Returns the count read; 0 means
  /// the peer closed the connection. Retries EINTR. With a read timeout
  /// armed, an idle wait past it fails with an IOError (EAGAIN).
  Result<size_t> Read(char* buffer, size_t capacity) const;

  /// \brief Arms SO_RCVTIMEO: a Read() blocked longer than \p seconds
  /// fails instead of waiting forever (how the server sheds idle
  /// keep-alive connections). 0 restores the blocking default.
  void SetReadTimeout(unsigned seconds) const;

  /// \brief Writes all of \p data (looping over partial writes).
  Status WriteAll(std::string_view data) const;

  /// \brief Half-closes both directions, unblocking any reader parked on
  /// the fd (the descriptor itself stays owned until destruction). Safe
  /// to call from another thread and more than once.
  void Shutdown() const;

  /// \brief Closes the descriptor now (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// \brief A listening TCP socket.
class Listener {
 public:
  /// \brief Binds \p host:\p port (port 0 = kernel-assigned ephemeral
  /// port) with SO_REUSEADDR and starts listening.
  static Result<Listener> Listen(const std::string& host, uint16_t port);

  /// \brief The actually bound port (resolves port-0 requests).
  uint16_t port() const { return port_; }

  /// \brief Accepts one connection (blocking). After Shutdown() the
  /// pending accept fails with an IOError, which a server loop treats as
  /// the stop signal.
  Result<Socket> Accept() const;

  /// \brief Unblocks a pending Accept (thread-safe).
  void Shutdown() const { socket_.Shutdown(); }

 private:
  Socket socket_;
  uint16_t port_ = 0;
};

/// \brief Connects to \p host:\p port (blocking); for tests and clients.
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_NET_H_
