#include "src/support/version.h"

#ifndef SPECMINE_BUILD_VERSION
#define SPECMINE_BUILD_VERSION "unknown"
#endif
#ifndef SPECMINE_BUILD_GIT_REVISION
#define SPECMINE_BUILD_GIT_REVISION "unknown"
#endif

namespace specmine {

const char* VersionString() { return SPECMINE_BUILD_VERSION; }

const char* GitRevision() { return SPECMINE_BUILD_GIT_REVISION; }

std::string VersionLine() {
  return std::string("specmine ") + VersionString() + " (" + GitRevision() +
         ")";
}

}  // namespace specmine
