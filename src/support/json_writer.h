// A minimal streaming JSON emitter with deterministic formatting.
//
// The writer exists so every JSON surface of the project — the specmined
// HTTP envelopes and the CLI's --json output — renders through one code
// path and therefore can never drift byte-for-byte (the server/CLI
// equivalence the end-to-end tests diff). Output is pretty-printed with
// two-space indentation and one key or element per line, which also makes
// it greppable: a test can strip a field by dropping its line.
//
// Formatting contract (part of the API, pinned by json_test):
//   * keys and elements are emitted in call order, never reordered;
//   * strings are escaped per RFC 8259 (", \, control bytes as \u00XX);
//   * doubles render via std::to_chars shortest round-trip form, so the
//     same value always produces the same bytes;
//   * integers are emitted as decimal, never in floating form.
//
// The writer is allocation-light (one level stack) and not thread-safe;
// build one per document.

#ifndef SPECMINE_SUPPORT_JSON_WRITER_H_
#define SPECMINE_SUPPORT_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace specmine {

/// \brief Escapes \p raw as the contents of a JSON string (no quotes).
std::string JsonEscape(std::string_view raw);

/// \brief Renders \p value in shortest round-trip decimal form ("0.5",
/// "1e-09"); non-finite values render as null per RFC 8259.
std::string JsonDouble(double value);

/// \brief Streaming pretty-printer for one JSON document.
class JsonWriter {
 public:
  /// \brief Appends output to \p out (not owned; must outlive the writer).
  explicit JsonWriter(std::string* out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // Containers. A document is exactly one top-level value; nested
  // containers open inside a Key (in objects) or as elements (in arrays).
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// \brief Emits the key of the next object member.
  JsonWriter& Key(std::string_view name);

  // Scalar values.
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// \brief Convenience: Key(name) + the value.
  JsonWriter& Field(std::string_view name, std::string_view value) {
    return Key(name).String(value);
  }
  JsonWriter& Field(std::string_view name, const char* value) {
    return Key(name).String(value);
  }
  JsonWriter& Field(std::string_view name, uint64_t value) {
    return Key(name).UInt(value);
  }
  JsonWriter& Field(std::string_view name, int64_t value) {
    return Key(name).Int(value);
  }
  JsonWriter& Field(std::string_view name, double value) {
    return Key(name).Double(value);
  }
  JsonWriter& Field(std::string_view name, bool value) {
    return Key(name).Bool(value);
  }

  /// \brief Finishes the document: appends the trailing newline every
  /// complete document carries (so documents concatenate line-cleanly).
  void Finish();

 private:
  enum class Frame : uint8_t { kObject, kArray };

  void BeforeValue();
  void Indent();

  std::string* out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_members_;
  bool pending_key_ = false;
  bool finished_ = false;
};

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_JSON_WRITER_H_
