// Small string helpers shared by the trace readers and report renderers.

#ifndef SPECMINE_SUPPORT_STRINGS_H_
#define SPECMINE_SUPPORT_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace specmine {

/// \brief Splits \p input on \p sep, dropping empty fields.
std::vector<std::string> SplitAndTrim(std::string_view input, char sep);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// \brief Joins \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// \brief True iff \p s starts with \p prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_STRINGS_H_
