// EventMarkSet: an epoch-stamped dense membership set over event ids.
//
// The miners' inner loops need "have I seen this event?" and "is this
// event in the pattern alphabet?" tests millions of times per run. A hash
// set pays for hashing and rehashes on every query; this is one array
// lookup. Clear() is O(1) (an epoch bump), so one mark set is reused
// across every instance of every pattern node with zero allocation after
// the first sizing.

#ifndef SPECMINE_SUPPORT_EVENT_MARKS_H_
#define SPECMINE_SUPPORT_EVENT_MARKS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/trace/event_dictionary.h"

namespace specmine {

/// \brief Dense O(1) set of event ids with O(1) clear via epoch stamping.
class EventMarkSet {
 public:
  /// \brief Grows the backing store to cover ids < \p num_events. Cheap
  /// when already large enough; never shrinks.
  void EnsureSize(size_t num_events) {
    if (stamp_.size() < num_events) stamp_.resize(num_events, 0);
  }

  /// \brief Empties the set in O(1).
  void Clear() {
    if (++epoch_ == 0) {  // Stamp wrap: reset lazily, once per ~4B clears.
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  /// \brief True iff \p ev is in the set.
  bool Test(EventId ev) const { return stamp_[ev] == epoch_; }

  /// \brief Inserts \p ev.
  void Set(EventId ev) { stamp_[ev] = epoch_; }

  /// \brief Inserts \p ev; true iff it was not yet present.
  bool TestAndSet(EventId ev) {
    if (stamp_[ev] == epoch_) return false;
    stamp_[ev] = epoch_;
    return true;
  }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 1;  // Stamps default to 0 == "not present".
};

/// \brief Dense per-event value slots with O(1) epoch reset and a
/// touched-id list — the scalar-payload sibling of ExtensionAccumulator
/// (which holds vector buckets). A slot is value-initialized on its first
/// touch of an epoch.
template <typename T>
class EpochSlots {
 public:
  /// \brief Starts a new epoch over \p num_events ids.
  void Reset(size_t num_events) {
    if (stamp_.size() < num_events) {
      stamp_.resize(num_events, 0);
      slots_.resize(num_events);
    }
    touched_.clear();
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  /// \brief The slot for \p ev, freshly value-initialized on first touch.
  T& Slot(EventId ev) {
    if (stamp_[ev] != epoch_) {
      stamp_[ev] = epoch_;
      touched_.push_back(ev);
      slots_[ev] = T{};
    }
    return slots_[ev];
  }

  /// \brief Read-only slot access; the id must have been touched.
  const T& At(EventId ev) const { return slots_[ev]; }

  /// \brief Ids touched this epoch, in touch order (mutable for sorting).
  std::vector<EventId>& touched() { return touched_; }

 private:
  std::vector<T> slots_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 1;
  std::vector<EventId> touched_;
};

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_EVENT_MARKS_H_
