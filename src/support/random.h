// Deterministic pseudo-random number generation and the samplers used by the
// synthetic data generators (uniform, Poisson, geometric, Zipf).
//
// All generators in specmine are seeded explicitly so that every dataset,
// test, and benchmark is reproducible bit-for-bit across runs and platforms.

#ifndef SPECMINE_SUPPORT_RANDOM_H_
#define SPECMINE_SUPPORT_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace specmine {

/// \brief SplitMix64: tiny, fast, high-quality 64-bit mixer.
///
/// Used both directly and to seed Xoshiro256**. Reference: Steele, Lea &
/// Flood, "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// \brief Returns the next 64-bit value.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// \brief Xoshiro256** 1.0 — the library's workhorse PRNG.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with <random> distributions, though specmine ships its own samplers for
/// cross-platform determinism.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator whose stream is fully determined by \p seed.
  explicit Rng(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// \brief Returns the next raw 64-bit value.
  uint64_t operator()() { return Next64(); }
  /// \brief Returns the next raw 64-bit value.
  uint64_t Next64();

  /// \brief Uniform integer in [0, bound); bound must be > 0.
  uint64_t Uniform(uint64_t bound);
  /// \brief Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);
  /// \brief Uniform double in [0, 1).
  double NextDouble();
  /// \brief True with probability \p p (clamped to [0,1]).
  bool Bernoulli(double p);
  /// \brief Poisson sample with the given mean (> 0); Knuth for small means,
  /// normal approximation (rounded, clamped at 0) for mean > 64.
  int Poisson(double mean);
  /// \brief Geometric sample (number of failures before first success),
  /// success probability \p p in (0, 1].
  int Geometric(double p);

  /// \brief Fisher-Yates shuffle of \p values.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// \brief Zipf(s) sampler over {0, 1, ..., n-1} via inverse-CDF binary search.
///
/// Rank 0 is the most probable element. Used to give synthetic event
/// alphabets the skewed usage profile of real API call distributions.
class ZipfSampler {
 public:
  /// Builds the CDF for \p n elements with exponent \p s (s >= 0; s == 0 is
  /// uniform). n must be >= 1.
  ZipfSampler(size_t n, double s);

  /// \brief Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// \brief Number of elements.
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace specmine

#endif  // SPECMINE_SUPPORT_RANDOM_H_
