#include "src/support/strings.h"

#include <cctype>

namespace specmine {

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitAndTrim(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= input.size()) {
    size_t pos = input.find(sep, start);
    std::string_view field =
        pos == std::string_view::npos
            ? input.substr(start)
            : input.substr(start, pos - start);
    field = StripWhitespace(field);
    if (!field.empty()) out.emplace_back(field);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace specmine
