#include "src/ltl/checker.h"

namespace specmine {

namespace {

// Generic finite-trace evaluation; AtomFn(name, position) -> bool,
// length = trace length.
template <typename AtomFn>
bool Eval(const LtlPtr& f, size_t position, size_t length,
          const AtomFn& atom_holds) {
  switch (f->op()) {
    case LtlOp::kAtom:
      return position < length && atom_holds(f->name(), position);
    case LtlOp::kAnd:
      return Eval(f->left(), position, length, atom_holds) &&
             Eval(f->right(), position, length, atom_holds);
    case LtlOp::kImplies:
      return !Eval(f->left(), position, length, atom_holds) ||
             Eval(f->right(), position, length, atom_holds);
    case LtlOp::kNext:
      // Strong next: there must be a successor position.
      return position + 1 < length &&
             Eval(f->left(), position + 1, length, atom_holds);
    case LtlOp::kWeakNext:
      // Weak next: vacuously true without a successor position.
      return position + 1 >= length ||
             Eval(f->left(), position + 1, length, atom_holds);
    case LtlOp::kFinally:
      for (size_t j = position; j < length; ++j) {
        if (Eval(f->left(), j, length, atom_holds)) return true;
      }
      return false;
    case LtlOp::kGlobally:
      for (size_t j = position; j < length; ++j) {
        if (!Eval(f->left(), j, length, atom_holds)) return false;
      }
      return true;
  }
  return false;
}

}  // namespace

bool EvaluateLtl(const LtlPtr& formula, const std::vector<std::string>& trace,
                 size_t position) {
  return Eval(formula, position, trace.size(),
              [&trace](const std::string& name, size_t pos) {
                return trace[pos] == name;
              });
}

bool EvaluateLtl(const LtlPtr& formula, const SequenceDatabase& db,
                 SeqId seq) {
  const EventSpan s = db[seq];
  const EventDictionary& dict = db.dictionary();
  return Eval(formula, 0, s.size(),
              [&s, &dict](const std::string& name, size_t pos) {
                EventId id = dict.Lookup(name);
                return id != kInvalidEvent && s[pos] == id;
              });
}

bool HoldsOnAll(const LtlPtr& formula, const SequenceDatabase& db) {
  for (SeqId s = 0; s < db.size(); ++s) {
    if (!EvaluateLtl(formula, db, s)) return false;
  }
  return true;
}

size_t CountHolding(const LtlPtr& formula, const SequenceDatabase& db) {
  size_t n = 0;
  for (SeqId s = 0; s < db.size(); ++s) {
    if (EvaluateLtl(formula, db, s)) ++n;
  }
  return n;
}

}  // namespace specmine
