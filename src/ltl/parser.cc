#include "src/ltl/parser.h"

#include <cctype>

namespace specmine {

namespace {

bool IsAtomChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '$' || c == '<' || c == '>' || c == ':';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<LtlPtr> Parse() {
    Result<LtlPtr> f = ParseImplies();
    if (!f.ok()) return f;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing input");
    }
    return f;
  }

 private:
  Status Err(const std::string& msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_) +
                              " in LTL formula");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(std::string_view token) {
    SkipSpace();
    return text_.substr(pos_, token.size()) == token;
  }

  bool Consume(std::string_view token) {
    if (!Peek(token)) return false;
    pos_ += token.size();
    return true;
  }

  Result<LtlPtr> ParseImplies() {
    Result<LtlPtr> left = ParseAnd();
    if (!left.ok()) return left;
    if (Consume("->")) {
      Result<LtlPtr> right = ParseImplies();
      if (!right.ok()) return right;
      return LtlPtr(LtlFormula::Implies(*left, *right));
    }
    return left;
  }

  Result<LtlPtr> ParseAnd() {
    Result<LtlPtr> left = ParseUnary();
    if (!left.ok()) return left;
    LtlPtr acc = *left;
    while (Consume("&&")) {
      Result<LtlPtr> right = ParseUnary();
      if (!right.ok()) return right;
      acc = LtlFormula::And(acc, *right);
    }
    return acc;
  }

  // True iff `pos` begins a unary operator application: G/F/X (or the
  // two-letter weak next WX) immediately followed by another operator or
  // '('. `len` receives the operator's length.
  bool AtUnaryOperator(size_t* len) {
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    size_t op_len = 1;
    if (c == 'W') {
      if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != 'X') return false;
      op_len = 2;
    } else if (c != 'G' && c != 'F' && c != 'X') {
      return false;
    }
    size_t next = pos_ + op_len;
    if (next >= text_.size()) return false;
    char n = text_[next];
    *len = op_len;
    if (n == '(' || n == 'G' || n == 'F' || n == 'X') return true;
    // "...W X(" — a WX chain following this operator.
    return n == 'W' && next + 1 < text_.size() && text_[next + 1] == 'X';
  }

  Result<LtlPtr> ParseUnary() {
    SkipSpace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    size_t op_len = 0;
    if (AtUnaryOperator(&op_len)) {
      char op = text_[pos_];
      pos_ += op_len;
      Result<LtlPtr> child = ParseUnary();
      if (!child.ok()) return child;
      switch (op) {
        case 'G':
          return LtlPtr(LtlFormula::Globally(*child));
        case 'F':
          return LtlPtr(LtlFormula::Finally(*child));
        case 'W':
          return LtlPtr(LtlFormula::WeakNext(*child));
        default:
          return LtlPtr(LtlFormula::Next(*child));
      }
    }
    if (Consume("(")) {
      Result<LtlPtr> inner = ParseImplies();
      if (!inner.ok()) return inner;
      if (!Consume(")")) return Err("expected ')'");
      return inner;
    }
    // Atom.
    size_t start = pos_;
    while (pos_ < text_.size() && IsAtomChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Err("expected atom, operator or '('");
    return LtlPtr(LtlFormula::Atom(std::string(text_.substr(
        start, pos_ - start))));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<LtlPtr> ParseLtl(std::string_view text) { return Parser(text).Parse(); }

}  // namespace specmine
