// Linear Temporal Logic formulas over event atoms — the fragment of
// Section 3.3 (operators G, X, F plus conjunction and implication).
//
// Atoms are event *names* (strings), so formulas are independent of any
// particular database's dictionary.

#ifndef SPECMINE_LTL_FORMULA_H_
#define SPECMINE_LTL_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

namespace specmine {

/// \brief Node kinds of the LTL fragment.
enum class LtlOp {
  kAtom,      ///< An event name; true at position i iff trace[i] == name.
  kAnd,       ///< left && right.
  kImplies,   ///< left -> right.
  kGlobally,  ///< G child: child holds at every position from here on.
  kFinally,   ///< F child: child holds now or at some later position.
  kNext,      ///< X child: child holds at the next position (strong next).
  kWeakNext,  ///< WX child: no next position, or child holds there. On
              ///< finite traces X and WX differ only at the last event;
              ///< the Table-2 translation uses WX for the XG recursion so
              ///< rules stay vacuously true at trace ends, matching the
              ///< temporal-point semantics (strong X stays correct for XF:
              ///< the consequent must occur strictly afterwards).
};

class LtlFormula;
using LtlPtr = std::shared_ptr<const LtlFormula>;

/// \brief An immutable LTL formula node.
class LtlFormula {
 public:
  /// \brief Atom node.
  static LtlPtr Atom(std::string name);
  /// \brief left && right.
  static LtlPtr And(LtlPtr left, LtlPtr right);
  /// \brief left -> right.
  static LtlPtr Implies(LtlPtr left, LtlPtr right);
  /// \brief G child.
  static LtlPtr Globally(LtlPtr child);
  /// \brief F child.
  static LtlPtr Finally(LtlPtr child);
  /// \brief X child.
  static LtlPtr Next(LtlPtr child);
  /// \brief WX child (weak next).
  static LtlPtr WeakNext(LtlPtr child);

  LtlOp op() const { return op_; }
  /// \brief Atom name; only for kAtom nodes.
  const std::string& name() const { return name_; }
  /// \brief Left child (or the only child of unary nodes).
  const LtlPtr& left() const { return left_; }
  /// \brief Right child of binary nodes.
  const LtlPtr& right() const { return right_; }

  /// \brief ASCII rendering, e.g. "G(a -> XF(b && XF(c)))". Consecutive
  /// unary operators are juxtaposed (XG, XF) as in the paper.
  std::string ToString() const;

  /// \brief Structural equality.
  static bool Equal(const LtlPtr& a, const LtlPtr& b);

 private:
  LtlFormula(LtlOp op, std::string name, LtlPtr left, LtlPtr right)
      : op_(op), name_(std::move(name)), left_(std::move(left)),
        right_(std::move(right)) {}

  void Render(std::string* out, bool parenthesize_binary) const;

  LtlOp op_;
  std::string name_;
  LtlPtr left_;
  LtlPtr right_;
};

}  // namespace specmine

#endif  // SPECMINE_LTL_FORMULA_H_
