// Finite-trace LTL evaluation — an implementation of rule semantics that is
// independent of the mining code, used for cross-validation: a rule with
// confidence 1.0 must have its Table-2 LTL formula hold on every trace.

#ifndef SPECMINE_LTL_CHECKER_H_
#define SPECMINE_LTL_CHECKER_H_

#include "src/ltl/formula.h"
#include "src/trace/sequence_database.h"

namespace specmine {

/// \brief Evaluates \p formula on \p trace (named events) at \p position
/// using finite-trace semantics:
///  * atom a       — position < length and trace[position] == a;
///  * X f          — strong next: position+1 < length and f holds there;
///  * F f          — f holds at some j >= position;
///  * G f          — f holds at every j >= position (vacuously true past
///                   the end).
bool EvaluateLtl(const LtlPtr& formula, const std::vector<std::string>& trace,
                 size_t position = 0);

/// \brief Evaluates \p formula on database sequence \p seq, resolving atoms
/// through the database dictionary.
bool EvaluateLtl(const LtlPtr& formula, const SequenceDatabase& db,
                 SeqId seq);

/// \brief True iff \p formula holds on every sequence of \p db.
bool HoldsOnAll(const LtlPtr& formula, const SequenceDatabase& db);

/// \brief Number of sequences of \p db on which \p formula holds.
size_t CountHolding(const LtlPtr& formula, const SequenceDatabase& db);

}  // namespace specmine

#endif  // SPECMINE_LTL_CHECKER_H_
