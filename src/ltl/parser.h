// Parser for the ASCII LTL rendering produced by LtlFormula::ToString.
//
// Grammar (precedence low to high):
//   implies := and ( "->" implies )?           (right associative)
//   and     := unary ( "&&" unary )*           (left associative)
//   unary   := ("G" | "F" | "X") unary | "(" implies ")" | atom
//   atom    := [A-Za-z0-9_.$<>]+ not equal to a unary operator letter
//
// Atoms may contain dots (method names like "TxManager.begin"). The single
// capital letters G, F, X act as operators only when followed by another
// unary operator or '('; otherwise they parse as atoms.

#ifndef SPECMINE_LTL_PARSER_H_
#define SPECMINE_LTL_PARSER_H_

#include <string_view>

#include "src/ltl/formula.h"
#include "src/support/status.h"

namespace specmine {

/// \brief Parses \p text into an LTL formula.
Result<LtlPtr> ParseLtl(std::string_view text);

}  // namespace specmine

#endif  // SPECMINE_LTL_PARSER_H_
