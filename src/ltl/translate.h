// Rule -> LTL translation (Table 2 of the paper) and the BNF of the
// minable fragment:
//
//   rules   := G(prepost)
//   prepost := event -> post | event -> XG(prepost)
//   post    := XF(event)     | XF(event && XF(post))
//
// Finite-trace note: the paper's XG recursion is rendered with *weak*
// next (WX) so a premise whose last event sits at the end of a trace
// leaves the rule vacuously true — exactly the temporal-point semantics
// of Definition 5.1. On infinite traces WX coincides with X, so the
// translation matches Table 2:
//   <a>    -> <b>      |  G(a -> XF(b))
//   <a,b>  -> <c>      |  G(a -> WXG(b -> XF(c)))
//   <a>    -> <b,c>    |  G(a -> XF(b && XF(c)))
//   <a,b>  -> <c,d>    |  G(a -> WXG(b -> XF(c && XF(d))))

#ifndef SPECMINE_LTL_TRANSLATE_H_
#define SPECMINE_LTL_TRANSLATE_H_

#include "src/ltl/formula.h"
#include "src/rulemine/rule.h"
#include "src/trace/event_dictionary.h"

namespace specmine {

/// \brief Translates a recurrent rule into its LTL expression (Table 2).
/// Both premise and consequent must be non-empty. Atoms are the event
/// names from \p dict.
LtlPtr RuleToLtl(const Rule& rule, const EventDictionary& dict);

/// \brief Variant taking raw premise / consequent patterns.
LtlPtr RuleToLtl(const Pattern& premise, const Pattern& consequent,
                 const EventDictionary& dict);

/// \brief True iff \p formula lies within the minable BNF fragment above.
bool InMinableFragment(const LtlPtr& formula);

}  // namespace specmine

#endif  // SPECMINE_LTL_TRANSLATE_H_
