#include "src/ltl/formula.h"

#include <cassert>

namespace specmine {

LtlPtr LtlFormula::Atom(std::string name) {
  return LtlPtr(
      new LtlFormula(LtlOp::kAtom, std::move(name), nullptr, nullptr));
}

LtlPtr LtlFormula::And(LtlPtr left, LtlPtr right) {
  assert(left && right);
  return LtlPtr(
      new LtlFormula(LtlOp::kAnd, "", std::move(left), std::move(right)));
}

LtlPtr LtlFormula::Implies(LtlPtr left, LtlPtr right) {
  assert(left && right);
  return LtlPtr(
      new LtlFormula(LtlOp::kImplies, "", std::move(left), std::move(right)));
}

LtlPtr LtlFormula::Globally(LtlPtr child) {
  assert(child);
  return LtlPtr(
      new LtlFormula(LtlOp::kGlobally, "", std::move(child), nullptr));
}

LtlPtr LtlFormula::Finally(LtlPtr child) {
  assert(child);
  return LtlPtr(
      new LtlFormula(LtlOp::kFinally, "", std::move(child), nullptr));
}

LtlPtr LtlFormula::Next(LtlPtr child) {
  assert(child);
  return LtlPtr(new LtlFormula(LtlOp::kNext, "", std::move(child), nullptr));
}

LtlPtr LtlFormula::WeakNext(LtlPtr child) {
  assert(child);
  return LtlPtr(
      new LtlFormula(LtlOp::kWeakNext, "", std::move(child), nullptr));
}

namespace {
bool IsUnary(LtlOp op) {
  return op == LtlOp::kGlobally || op == LtlOp::kFinally ||
         op == LtlOp::kNext || op == LtlOp::kWeakNext;
}
const char* UnaryToken(LtlOp op) {
  switch (op) {
    case LtlOp::kGlobally:
      return "G";
    case LtlOp::kFinally:
      return "F";
    case LtlOp::kNext:
      return "X";
    case LtlOp::kWeakNext:
      return "WX";
    default:
      return "?";
  }
}
}  // namespace

namespace {
// Precedence: implication (lowest, right associative) < conjunction
// (associative) < unary operators < atoms.
int Precedence(LtlOp op) {
  switch (op) {
    case LtlOp::kImplies:
      return 1;
    case LtlOp::kAnd:
      return 2;
    default:
      return 3;
  }
}
}  // namespace

void LtlFormula::Render(std::string* out, bool parenthesize_binary) const {
  switch (op_) {
    case LtlOp::kAtom:
      out->append(name_);
      return;
    case LtlOp::kAnd:
    case LtlOp::kImplies: {
      if (parenthesize_binary) out->push_back('(');
      // A left operand needs parentheses when its precedence is lower, or
      // equal for the non-associative implication ("(a -> b) -> c").
      const int prec = Precedence(op_);
      const int left_prec = Precedence(left_->op());
      bool paren_left = left_prec < prec ||
                        (left_prec == prec && op_ == LtlOp::kImplies &&
                         left_->op() == LtlOp::kImplies);
      left_->Render(out, paren_left);
      out->append(op_ == LtlOp::kAnd ? " && " : " -> ");
      // Right operands only need parentheses at lower precedence; chains
      // of the same operator reparse identically (-> is right associative,
      // && is associative).
      bool paren_right = Precedence(right_->op()) < prec;
      right_->Render(out, paren_right);
      if (parenthesize_binary) out->push_back(')');
      return;
    }
    case LtlOp::kGlobally:
    case LtlOp::kFinally:
    case LtlOp::kNext:
    case LtlOp::kWeakNext: {
      out->append(UnaryToken(op_));
      if (IsUnary(left_->op())) {
        // Juxtapose chains of unary operators: XG(...), XF(...).
        left_->Render(out, parenthesize_binary);
      } else {
        out->push_back('(');
        left_->Render(out, /*parenthesize_binary=*/false);
        out->push_back(')');
      }
      return;
    }
  }
}

std::string LtlFormula::ToString() const {
  std::string out;
  Render(&out, /*parenthesize_binary=*/false);
  return out;
}

bool LtlFormula::Equal(const LtlPtr& a, const LtlPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->op() != b->op()) return false;
  switch (a->op()) {
    case LtlOp::kAtom:
      return a->name() == b->name();
    case LtlOp::kAnd:
    case LtlOp::kImplies:
      return Equal(a->left(), b->left()) && Equal(a->right(), b->right());
    default:
      return Equal(a->left(), b->left());
  }
}

}  // namespace specmine
