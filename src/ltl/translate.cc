#include "src/ltl/translate.h"

#include <cassert>

namespace specmine {

namespace {

// post := XF(event) | XF(event && XF(post))
LtlPtr BuildPost(const Pattern& post, size_t i, const EventDictionary& dict) {
  LtlPtr atom = LtlFormula::Atom(dict.NameOrPlaceholder(post[i]));
  if (i + 1 == post.size()) {
    return LtlFormula::Next(LtlFormula::Finally(atom));
  }
  return LtlFormula::Next(LtlFormula::Finally(
      LtlFormula::And(atom, BuildPost(post, i + 1, dict))));
}

// prepost := event -> post | event -> XG(prepost)
LtlPtr BuildPrePost(const Pattern& pre, size_t i, const Pattern& post,
                    const EventDictionary& dict) {
  LtlPtr atom = LtlFormula::Atom(dict.NameOrPlaceholder(pre[i]));
  if (i + 1 == pre.size()) {
    return LtlFormula::Implies(atom, BuildPost(post, 0, dict));
  }
  return LtlFormula::Implies(
      atom, LtlFormula::WeakNext(LtlFormula::Globally(
                BuildPrePost(pre, i + 1, post, dict))));
}

// Recognizers for the BNF fragment.
bool IsPost(const LtlPtr& f) {
  // XF(event) | XF(event && XF(post))
  if (!f || f->op() != LtlOp::kNext) return false;
  const LtlPtr& fin = f->left();
  if (fin->op() != LtlOp::kFinally) return false;
  const LtlPtr& body = fin->left();
  if (body->op() == LtlOp::kAtom) return true;
  if (body->op() != LtlOp::kAnd) return false;
  return body->left()->op() == LtlOp::kAtom && IsPost(body->right());
}

bool IsPrePost(const LtlPtr& f) {
  // event -> post | event -> XG(prepost)
  if (!f || f->op() != LtlOp::kImplies) return false;
  if (f->left()->op() != LtlOp::kAtom) return false;
  const LtlPtr& rhs = f->right();
  if (IsPost(rhs)) return true;
  if (rhs->op() != LtlOp::kWeakNext) return false;
  const LtlPtr& glob = rhs->left();
  if (glob->op() != LtlOp::kGlobally) return false;
  return IsPrePost(glob->left());
}

}  // namespace

LtlPtr RuleToLtl(const Pattern& premise, const Pattern& consequent,
                 const EventDictionary& dict) {
  assert(!premise.empty() && !consequent.empty());
  return LtlFormula::Globally(BuildPrePost(premise, 0, consequent, dict));
}

LtlPtr RuleToLtl(const Rule& rule, const EventDictionary& dict) {
  return RuleToLtl(rule.premise, rule.consequent, dict);
}

bool InMinableFragment(const LtlPtr& formula) {
  if (!formula || formula->op() != LtlOp::kGlobally) return false;
  return IsPrePost(formula->left());
}

}  // namespace specmine
