#include "src/seqmine/occurrence_engine.h"

#include <cassert>

#include "src/itermine/bitmap_projection.h"
#include "src/itermine/merged_index.h"
#include "src/itermine/vertical_projection_impl.h"

namespace specmine {

Pos EarliestEmbeddingEnd(const Pattern& pattern, EventSpan seq,
                         Pos begin) {
  assert(!pattern.empty());
  size_t k = 0;
  for (Pos p = begin; p < seq.size(); ++p) {
    if (seq[p] == pattern[k]) {
      ++k;
      if (k == pattern.size()) return p;
    }
  }
  return kNoPos;
}

bool EmbedsAt(const Pattern& pattern, EventSpan seq, Pos begin) {
  if (pattern.empty()) return true;
  return EarliestEmbeddingEnd(pattern, seq, begin) != kNoPos;
}

std::vector<Pos> OccurrencePoints(const Pattern& pattern, EventSpan seq,
                                  Pos begin) {
  std::vector<Pos> points;
  if (pattern.empty()) return points;
  const EventId last = pattern.last();
  Pos from = begin;
  if (pattern.size() > 1) {
    // Earliest embedding of the prefix (all events but the last), matched
    // in place against pattern.events() — no temporary Pattern.
    const std::vector<EventId>& events = pattern.events();
    const size_t prefix_len = events.size() - 1;
    size_t k = 0;
    Pos prefix_end = kNoPos;
    for (Pos p = begin; p < seq.size(); ++p) {
      if (seq[p] == events[k]) {
        ++k;
        if (k == prefix_len) {
          prefix_end = p;
          break;
        }
      }
    }
    if (prefix_end == kNoPos) return points;
    from = prefix_end + 1;
  }
  for (Pos p = from; p < seq.size(); ++p) {
    if (seq[p] == last) points.push_back(p);
  }
  return points;
}

size_t CountOccurrences(const Pattern& pattern, const SequenceDatabase& db) {
  size_t n = 0;
  for (EventSpan seq : db) {
    n += OccurrencePoints(pattern, seq).size();
  }
  return n;
}

size_t CountOccurrences(const CountingBackend& backend,
                        const Pattern& pattern) {
  switch (backend.kind()) {
    case BackendKind::kBitmap:
      return CountOccurrencesBitmap(backend.bitmap(), pattern);
    case BackendKind::kHybrid:
      return internal::CountOccurrencesVertical(backend.hybrid(), pattern);
    case BackendKind::kMerged:
      return CountOccurrencesMerged(backend.merged(), pattern);
    default:
      return CountOccurrences(pattern, backend.db());
  }
}

Pos LatestEmbeddingStart(const Pattern& pattern, EventSpan seq,
                         Pos begin, Pos end_inclusive) {
  assert(!pattern.empty());
  if (end_inclusive == kNoPos || begin >= seq.size()) return kNoPos;
  if (end_inclusive >= seq.size()) end_inclusive = static_cast<Pos>(seq.size()) - 1;
  size_t k = pattern.size();
  for (Pos p = end_inclusive + 1; p-- > begin;) {
    if (seq[p] == pattern[k - 1]) {
      --k;
      if (k == 0) return p;
    }
    if (p == 0) break;
  }
  return kNoPos;
}

}  // namespace specmine
