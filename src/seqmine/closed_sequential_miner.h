// Closed sequential pattern mining in the style of BIDE (Wang & Han, ICDE
// 2004): BI-Directional Extension closure checking plus BackScan search
// space pruning, adapted to the unit-database abstraction.
//
// A frequent pattern P is closed iff no super-sequence has the same unit
// support. Because unit support is anti-monotone under the subsequence
// relation, it suffices to check single-event insertions:
//
//  * forward extension: some P++<e> has equal support;
//  * backward extension: for some slot i there is an event e present in the
//    i-th *maximum period* of every supporting unit, where the i-th maximum
//    period is the exclusive interval between the end of the earliest
//    embedding of p1..p(i-1) and the start of the latest embedding of
//    pi..pn.
//
// BackScan prunes a whole subtree when an event is present in some i-th
// *semi-maximum period* (between earliest embeddings only) of every unit:
// every descendant then has the same absorbing backward extension.

#ifndef SPECMINE_SEQMINE_CLOSED_SEQUENTIAL_MINER_H_
#define SPECMINE_SEQMINE_CLOSED_SEQUENTIAL_MINER_H_

#include "src/seqmine/prefixspan.h"

namespace specmine {

/// \brief Options for the closed sequential miner.
struct ClosedSeqMinerOptions {
  /// Minimum number of supporting units (absolute).
  uint64_t min_support = 1;
  /// Maximum pattern length; 0 means unbounded.
  size_t max_length = 0;
  /// Enable BackScan subtree pruning (sound; large speedups).
  bool backscan_pruning = true;
  /// Optional cooperative stop signal, polled per DFS subtree. Not owned;
  /// may be null.
  const CancelToken* cancel = nullptr;
};

/// \brief Mines the closed frequent sequential patterns over \p units.
PatternSet MineClosedSequential(const UnitDatabase& units,
                                const ClosedSeqMinerOptions& options,
                                SeqMinerStats* stats = nullptr);

}  // namespace specmine

#endif  // SPECMINE_SEQMINE_CLOSED_SEQUENTIAL_MINER_H_
