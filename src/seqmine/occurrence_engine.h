// Subsequence-embedding primitives shared by the sequential-pattern miners
// and the recurrent-rule miner.
//
// These implement the *plain subsequence* semantics of Section 3.1 / 5 of
// the paper (arbitrary gaps allowed), as opposed to the QRE instance
// semantics of iterative patterns (src/itermine/).

#ifndef SPECMINE_SEQMINE_OCCURRENCE_ENGINE_H_
#define SPECMINE_SEQMINE_OCCURRENCE_ENGINE_H_

#include <vector>

#include "src/itermine/counting_backend.h"
#include "src/patterns/pattern.h"
#include "src/trace/position_index.h"
#include "src/trace/sequence.h"

namespace specmine {

/// \brief End position of the earliest (greedy, leftmost) embedding of
/// \p pattern into \p seq restricted to positions >= \p begin.
///
/// Returns kNoPos when the pattern does not embed. An empty pattern embeds
/// trivially "before begin": the function returns \p begin - 1 semantics via
/// kNoPos-safe convention — callers pass empty patterns only through
/// OccurrencePoints, which handles them explicitly.
Pos EarliestEmbeddingEnd(const Pattern& pattern, EventSpan seq,
                         Pos begin = 0);

/// \brief True iff \p pattern is a subsequence of seq[begin..].
bool EmbedsAt(const Pattern& pattern, EventSpan seq, Pos begin = 0);

/// \brief The occurrence (temporal) points of \p pattern in \p seq
/// (Definition 5.1): all positions j >= \p begin with seq[j] == last(pattern)
/// such that pattern embeds into seq[begin..j] with its last event at j.
///
/// For the empty pattern this returns an empty vector (the rule miner never
/// asks for it). Positions are 0-based and sorted ascending.
std::vector<Pos> OccurrencePoints(const Pattern& pattern, EventSpan seq,
                                  Pos begin = 0);

/// \brief Number of occurrence points of \p pattern summed over all
/// sequences of \p db.
size_t CountOccurrences(const Pattern& pattern, const SequenceDatabase& db);

/// \brief Backend-accelerated occurrence count: identical to
/// CountOccurrences(pattern, backend.db()). The CSR arm IS that scalar
/// scan; the bitmap arm runs the greedy prefix chain word-wise and
/// popcounts the last event's tail (the rule miner's i-support hot path).
size_t CountOccurrences(const CountingBackend& backend,
                        const Pattern& pattern);

/// \brief Start position of the latest (rightmost) embedding of \p pattern
/// into seq[begin..end_inclusive]; kNoPos if it does not embed.
///
/// Used by the BIDE-style closure checks (maximum periods).
Pos LatestEmbeddingStart(const Pattern& pattern, EventSpan seq,
                         Pos begin, Pos end_inclusive);

}  // namespace specmine

#endif  // SPECMINE_SEQMINE_OCCURRENCE_ENGINE_H_
