#include "src/seqmine/prefixspan.h"

#include <algorithm>
#include <map>

namespace specmine {

UnitDatabase UnitDatabase::WholeSequences(const SequenceDatabase& db) {
  std::vector<Unit> units;
  units.reserve(db.size());
  for (SeqId s = 0; s < db.size(); ++s) units.push_back(Unit{s, 0});
  return UnitDatabase(db, std::move(units));
}

namespace {

// One live unit within the current projection: the unit index and the
// absolute position in its sequence just *after* which the next pattern
// event must be found. kNoPos at the root means "scan from unit.start".
struct Entry {
  uint32_t unit;
  Pos last_match;  // Position of the last matched event.
};

struct MinerContext {
  const UnitDatabase* units;
  const SeqMinerOptions* options;
  const std::function<bool(const Pattern&, uint64_t,
                           const std::vector<uint32_t>&)>* sink;
  SeqMinerStats* stats;
  bool stop = false;
};

// Collects, for every event e, the projected entries of P++<e>.
// std::map keeps the extension order deterministic (ascending event id).
void CollectExtensions(const MinerContext& ctx,
                       const std::vector<Entry>& projection, bool at_root,
                       std::map<EventId, std::vector<Entry>>* extensions) {
  const SequenceDatabase& db = ctx.units->db();
  for (const Entry& entry : projection) {
    const Unit& unit = ctx.units->units()[entry.unit];
    const Sequence& seq = db[unit.seq];
    Pos from = at_root ? unit.start : entry.last_match + 1;
    // Record only the first occurrence of each event in the suffix: one
    // projected entry per unit per extension event. Entries for a given
    // unit are appended consecutively, so checking the tail suffices.
    for (Pos p = from; p < seq.size(); ++p) {
      EventId ev = seq[p];
      std::vector<Entry>& proj = (*extensions)[ev];
      if (!proj.empty() && proj.back().unit == entry.unit) continue;
      proj.push_back(Entry{entry.unit, p});
    }
  }
}

void Grow(MinerContext* ctx, Pattern* prefix,
          const std::vector<Entry>& projection, bool at_root) {
  if (ctx->stop) return;
  ++ctx->stats->nodes_visited;
  std::map<EventId, std::vector<Entry>> extensions;
  CollectExtensions(*ctx, projection, at_root, &extensions);
  for (auto& [ev, proj] : extensions) {
    if (ctx->stop) return;
    uint64_t support = proj.size();
    if (support < ctx->options->min_support) continue;
    Pattern candidate = prefix->Extend(ev);
    std::vector<uint32_t> supporting;
    supporting.reserve(proj.size());
    for (const Entry& e : proj) supporting.push_back(e.unit);
    ++ctx->stats->patterns_emitted;
    bool grow_subtree = (*ctx->sink)(candidate, support, supporting);
    if (ctx->options->max_patterns != 0 &&
        ctx->stats->patterns_emitted >= ctx->options->max_patterns) {
      ctx->stats->truncated = true;
      ctx->stop = true;
      return;
    }
    if (!grow_subtree) continue;
    if (ctx->options->max_length != 0 &&
        candidate.size() >= ctx->options->max_length) {
      continue;
    }
    Grow(ctx, &candidate, proj, /*at_root=*/false);
  }
}

}  // namespace

void ScanFrequentSequential(
    const UnitDatabase& units, const SeqMinerOptions& options,
    const std::function<bool(const Pattern&, uint64_t,
                             const std::vector<uint32_t>&)>& sink,
    SeqMinerStats* stats) {
  SeqMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = SeqMinerStats{};
  MinerContext ctx{&units, &options, &sink, stats};
  std::vector<Entry> root;
  root.reserve(units.size());
  for (uint32_t u = 0; u < units.size(); ++u) root.push_back(Entry{u, 0});
  Pattern empty;
  Grow(&ctx, &empty, root, /*at_root=*/true);
}

PatternSet MineFrequentSequential(const UnitDatabase& units,
                                  const SeqMinerOptions& options,
                                  SeqMinerStats* stats) {
  PatternSet out;
  ScanFrequentSequential(
      units, options,
      [&out](const Pattern& p, uint64_t support,
             const std::vector<uint32_t>&) {
        out.Add(p, support);
        return true;
      },
      stats);
  return out;
}

}  // namespace specmine
