#include "src/seqmine/prefixspan.h"

#include <algorithm>

#include "src/support/cancel.h"
#include "src/support/extension_accumulator.h"
#include "src/support/flat_event_map.h"

namespace specmine {

UnitDatabase UnitDatabase::WholeSequences(const SequenceDatabase& db) {
  std::vector<Unit> units;
  units.reserve(db.size());
  for (SeqId s = 0; s < db.size(); ++s) units.push_back(Unit{s, 0});
  return UnitDatabase(db, std::move(units));
}

namespace {

// One live unit within the current projection: the unit index and the
// absolute position in its sequence just *after* which the next pattern
// event must be found. kNoPos at the root means "scan from unit.start".
struct Entry {
  uint32_t unit;
  Pos last_match;  // Position of the last matched event.
};

using ExtensionMap = EventMap<std::vector<Entry>>;

struct MinerContext {
  const UnitDatabase* units;
  const SeqMinerOptions* options;
  const std::function<bool(const Pattern&, uint64_t,
                           const std::vector<uint32_t>&)>* sink;
  SeqMinerStats* stats;
  // Dense reusable grouping buckets plus a shell pool: after warmup the
  // projection loop performs no heap allocation (README.md, "Index layout
  // & threading").
  ExtensionAccumulator<Entry> acc;
  std::vector<ExtensionMap> map_pool;
  std::vector<uint32_t> supporting;  // Reused sink argument buffer.
  bool stop = false;

  ExtensionMap AcquireMap() {
    if (map_pool.empty()) return ExtensionMap();
    ExtensionMap m = std::move(map_pool.back());
    map_pool.pop_back();
    return m;
  }
  void ReleaseMap(ExtensionMap&& m) {
    acc.Recycle(std::move(m));
    map_pool.push_back(std::move(m));
  }
};

// Collects, for every event e, the projected entries of P++<e>. Iteration
// over the drained map is in ascending event id, so extension order stays
// deterministic.
void CollectExtensions(MinerContext* ctx,
                       const std::vector<Entry>& projection, bool at_root,
                       ExtensionMap* extensions) {
  const SequenceDatabase& db = ctx->units->db();
  const size_t num_events = db.dictionary().size();
  ctx->acc.Reset(num_events);
  for (const Entry& entry : projection) {
    const Unit& unit = ctx->units->units()[entry.unit];
    const EventSpan seq = db[unit.seq];
    Pos from = at_root ? unit.start : entry.last_match + 1;
    // Record only the first occurrence of each event in the suffix: one
    // projected entry per unit per extension event. Entries for a given
    // unit are appended consecutively, so checking the tail suffices.
    for (Pos p = from; p < seq.size(); ++p) {
      EventId ev = seq[p];
      if (ev >= num_events) continue;  // Defensive; ids come from dict.
      std::vector<Entry>& proj = ctx->acc.Bucket(ev);
      if (!proj.empty() && proj.back().unit == entry.unit) continue;
      proj.push_back(Entry{entry.unit, p});
    }
  }
  ctx->acc.Drain(extensions);
}

void Grow(MinerContext* ctx, Pattern* prefix,
          const std::vector<Entry>& projection, bool at_root) {
  if (ctx->stop) return;
  const CancelToken* cancel = ctx->options->cancel;
  if (cancel != nullptr && cancel->ShouldStop()) {
    ctx->stats->stopped = cancel->stop_code();
    ctx->stop = true;
    return;
  }
  ++ctx->stats->nodes_visited;
  ExtensionMap extensions = ctx->AcquireMap();
  CollectExtensions(ctx, projection, at_root, &extensions);
  for (auto& [ev, proj] : extensions) {
    if (ctx->stop) break;
    uint64_t support = proj.size();
    if (support < ctx->options->min_support) continue;
    Pattern candidate = prefix->Extend(ev);
    ctx->supporting.clear();
    ctx->supporting.reserve(proj.size());
    for (const Entry& e : proj) ctx->supporting.push_back(e.unit);
    ++ctx->stats->patterns_emitted;
    bool grow_subtree = (*ctx->sink)(candidate, support, ctx->supporting);
    if (ctx->options->max_patterns != 0 &&
        ctx->stats->patterns_emitted >= ctx->options->max_patterns) {
      ctx->stats->truncated = true;
      ctx->stop = true;
      break;
    }
    if (!grow_subtree) continue;
    if (ctx->options->max_length != 0 &&
        candidate.size() >= ctx->options->max_length) {
      continue;
    }
    Grow(ctx, &candidate, proj, /*at_root=*/false);
  }
  ctx->ReleaseMap(std::move(extensions));
}

}  // namespace

void ScanFrequentSequential(
    const UnitDatabase& units, const SeqMinerOptions& options,
    const std::function<bool(const Pattern&, uint64_t,
                             const std::vector<uint32_t>&)>& sink,
    SeqMinerStats* stats) {
  SeqMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = SeqMinerStats{};
  MinerContext ctx;
  ctx.units = &units;
  ctx.options = &options;
  ctx.sink = &sink;
  ctx.stats = stats;
  std::vector<Entry> root;
  root.reserve(units.size());
  for (uint32_t u = 0; u < units.size(); ++u) root.push_back(Entry{u, 0});
  Pattern empty;
  Grow(&ctx, &empty, root, /*at_root=*/true);
}

PatternSet MineFrequentSequential(const UnitDatabase& units,
                                  const SeqMinerOptions& options,
                                  SeqMinerStats* stats) {
  PatternSet out;
  ScanFrequentSequential(
      units, options,
      [&out](const Pattern& p, uint64_t support,
             const std::vector<uint32_t>&) {
        out.Add(p, support);
        return true;
      },
      stats);
  return out;
}

}  // namespace specmine
