// Sequential *generator* mining: the minimal members of the support
// equivalence classes of frequent sequential patterns.
//
// A frequent pattern P is a generator iff no proper subsequence of P has the
// same unit support. Because unit support is anti-monotone under the
// subsequence relation, it suffices to check the |P| single-event deletions.
//
// The paper's future-work section proposes combining generators (minimal
// pre-conditions) with closed patterns (maximal post-conditions); the
// recurrent-rule miner uses the same minimality idea — via occurrence-point
// equivalence — to prune premise search (Section 5, Step 1).

#ifndef SPECMINE_SEQMINE_GENERATOR_MINER_H_
#define SPECMINE_SEQMINE_GENERATOR_MINER_H_

#include "src/seqmine/prefixspan.h"

namespace specmine {

/// \brief Options for the generator miner.
struct GeneratorMinerOptions {
  /// Minimum number of supporting units (absolute).
  uint64_t min_support = 1;
  /// Maximum pattern length; 0 means unbounded.
  size_t max_length = 0;
  /// Prune subtrees whose projected database coincides with that of a
  /// one-event deletion (sound: every descendant is then a non-generator).
  bool projection_pruning = true;
  /// Optional cooperative stop signal, forwarded to the underlying scan.
  /// Not owned; may be null.
  const CancelToken* cancel = nullptr;
};

/// \brief Mines the frequent sequential generators over \p units.
PatternSet MineSequentialGenerators(const UnitDatabase& units,
                                    const GeneratorMinerOptions& options,
                                    SeqMinerStats* stats = nullptr);

}  // namespace specmine

#endif  // SPECMINE_SEQMINE_GENERATOR_MINER_H_
