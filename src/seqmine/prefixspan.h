// PrefixSpan (Pei et al., ICDE 2001): full-set sequential pattern mining by
// prefix-projected pattern growth, over a database of *units*.
//
// A unit is a (sequence, start offset) pair denoting the suffix
// seq[start..]. With one unit per sequence at offset 0 this is classic
// sequential pattern mining with sequence-count support; the recurrent-rule
// miner instead builds one unit per temporal point to mine consequents with
// confidence-derived support (paper Section 5, Step 3).

#ifndef SPECMINE_SEQMINE_PREFIXSPAN_H_
#define SPECMINE_SEQMINE_PREFIXSPAN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/patterns/pattern_set.h"
#include "src/support/status.h"
#include "src/trace/position_index.h"
#include "src/trace/sequence_database.h"

namespace specmine {

class CancelToken;

/// \brief A suffix view seq[start..] of one database sequence.
struct Unit {
  SeqId seq = 0;
  Pos start = 0;
};

/// \brief The projection units a sequential miner runs over.
///
/// The referenced database must outlive the UnitDatabase.
class UnitDatabase {
 public:
  /// \brief One unit per sequence, at offset 0 (classic sequence support).
  static UnitDatabase WholeSequences(const SequenceDatabase& db);

  /// \brief Explicit unit list (e.g. one unit per temporal point).
  UnitDatabase(const SequenceDatabase& db, std::vector<Unit> units)
      : db_(&db), units_(std::move(units)) {}

  const SequenceDatabase& db() const { return *db_; }
  const std::vector<Unit>& units() const { return units_; }
  size_t size() const { return units_.size(); }

 private:
  const SequenceDatabase* db_;
  std::vector<Unit> units_;
};

/// \brief Options shared by the sequential miners.
struct SeqMinerOptions {
  /// Minimum number of supporting units (absolute).
  uint64_t min_support = 1;
  /// Maximum pattern length; 0 means unbounded.
  size_t max_length = 0;
  /// Safety valve: stop after emitting this many patterns (0 = unbounded).
  /// Full-set miners can explode at low thresholds; the benchmark harness
  /// sets a generous cap and reports when it is hit.
  size_t max_patterns = 0;
  /// Optional cooperative stop signal, polled at subtree granularity. A
  /// stopped run's output is a prefix of the full deterministic emission
  /// order; the reason lands in SeqMinerStats::stopped. Not owned.
  const CancelToken* cancel = nullptr;
};

/// \brief Statistics describing one miner run.
struct SeqMinerStats {
  size_t nodes_visited = 0;    ///< DFS nodes expanded.
  size_t patterns_emitted = 0; ///< Patterns written to the output set.
  bool truncated = false;      ///< True iff max_patterns stopped the run.
  /// kCancelled / kDeadlineExceeded when a CancelToken stopped the run.
  StatusCode stopped = StatusCode::kOk;
};

/// \brief Mines the full set of frequent sequential patterns over \p units.
///
/// Support of P = number of units whose suffix contains P as a subsequence.
/// Patterns of length >= 1 are emitted.
PatternSet MineFrequentSequential(const UnitDatabase& units,
                                  const SeqMinerOptions& options,
                                  SeqMinerStats* stats = nullptr);

/// \brief Callback-based variant used by the rule miner: \p sink is invoked
/// with (pattern, support, supporting-unit indexes). Return false from the
/// sink to skip growing that pattern's subtree (confidence-style pruning).
void ScanFrequentSequential(
    const UnitDatabase& units, const SeqMinerOptions& options,
    const std::function<bool(const Pattern&, uint64_t,
                             const std::vector<uint32_t>&)>& sink,
    SeqMinerStats* stats = nullptr);

}  // namespace specmine

#endif  // SPECMINE_SEQMINE_PREFIXSPAN_H_
