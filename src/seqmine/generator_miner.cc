#include "src/seqmine/generator_miner.h"

#include <optional>

#include "src/seqmine/occurrence_engine.h"

namespace specmine {

namespace {

// For each unit, the earliest embedding end of `pattern` in the unit's
// suffix, or kNoPos if the unit does not support it. Also reports the
// support count.
std::vector<Pos> EmbeddingEnds(const UnitDatabase& units,
                               const Pattern& pattern, uint64_t* support) {
  std::vector<Pos> ends(units.size(), kNoPos);
  uint64_t sup = 0;
  for (size_t u = 0; u < units.size(); ++u) {
    const Unit& unit = units.units()[u];
    const EventSpan seq = units.db()[unit.seq];
    Pos end = EarliestEmbeddingEnd(pattern, seq, unit.start);
    ends[u] = end;
    if (end != kNoPos) ++sup;
  }
  if (support != nullptr) *support = sup;
  return ends;
}

}  // namespace

PatternSet MineSequentialGenerators(const UnitDatabase& units,
                                    const GeneratorMinerOptions& options,
                                    SeqMinerStats* stats) {
  PatternSet out;
  SeqMinerOptions scan_options;
  scan_options.min_support = options.min_support;
  scan_options.max_length = options.max_length;
  scan_options.cancel = options.cancel;
  ScanFrequentSequential(
      units, scan_options,
      [&](const Pattern& p, uint64_t support, const std::vector<uint32_t>&) {
        // Check every one-event deletion.
        bool is_generator = true;
        bool prune_subtree = false;
        uint64_t full_sup = 0;
        std::optional<std::vector<Pos>> full_ends;
        for (size_t k = 0; k < p.size() && !prune_subtree; ++k) {
          Pattern deleted = p.Erase(k);
          if (deleted.empty()) {
            // The empty pattern "supports" every unit; equal support means
            // p (a single event) occurs in all units. The projected
            // databases can never coincide (the empty projection starts at
            // the unit start), so this case never prunes the subtree.
            if (support == units.size()) is_generator = false;
            continue;
          }
          uint64_t del_sup = 0;
          std::vector<Pos> del_ends =
              EmbeddingEnds(units, deleted, &del_sup);
          if (del_sup != support) continue;
          is_generator = false;
          if (options.projection_pruning) {
            if (!full_ends.has_value()) {
              full_ends = EmbeddingEnds(units, p, &full_sup);
            }
            // Identical projected databases: the deletion embeds in exactly
            // the same units at the same earliest ends, so every descendant
            // of p has an equivalent shorter counterpart.
            if (del_ends == *full_ends) prune_subtree = true;
          }
        }
        if (is_generator) out.Add(p, support);
        return !prune_subtree;
      },
      stats);
  return out;
}

}  // namespace specmine
