#include "src/seqmine/closed_sequential_miner.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

#include "src/seqmine/occurrence_engine.h"
#include "src/support/cancel.h"

namespace specmine {

namespace {

struct Entry {
  uint32_t unit;
  Pos last_match;
};

struct Ctx {
  const UnitDatabase* units;
  const ClosedSeqMinerOptions* options;
  PatternSet* out;
  SeqMinerStats* stats;
  bool stop = false;
};

// Greedy earliest embedding of `pattern` into seq[begin..]; fills ee[i] with
// the position matching pattern[i]. Returns false if not embeddable.
bool EarliestEmbedding(const Pattern& pattern, EventSpan seq, Pos begin,
                       std::vector<Pos>* ee) {
  ee->clear();
  size_t k = 0;
  for (Pos p = begin; p < seq.size() && k < pattern.size(); ++p) {
    if (seq[p] == pattern[k]) {
      ee->push_back(p);
      ++k;
    }
  }
  return k == pattern.size();
}

// Greedy latest embedding of `pattern` into seq[begin..]; fills ls[i] with
// the position matching pattern[i]. Returns false if not embeddable.
bool LatestEmbedding(const Pattern& pattern, EventSpan seq, Pos begin,
                     std::vector<Pos>* ls) {
  ls->assign(pattern.size(), kNoPos);
  size_t k = pattern.size();
  for (Pos p = static_cast<Pos>(seq.size()); p-- > begin && k > 0;) {
    if (seq[p] == pattern[k - 1]) {
      (*ls)[k - 1] = p;
      --k;
    }
    if (p == 0) break;
  }
  return k == 0;
}

// Returns true iff some event occurs inside (lo_exclusive, hi_exclusive) of
// every supporting unit. `periods` holds one (lo, hi) interval per unit, in
// the same order as `entries`. Implemented with stamp counting so the cost
// is the sum of interval lengths.
bool HasCommonPeriodEvent(const Ctx& ctx, const std::vector<Entry>& entries,
                          const std::vector<std::pair<Pos, Pos>>& periods) {
  std::unordered_map<EventId, uint32_t> stamp;
  const SequenceDatabase& db = ctx.units->db();
  for (uint32_t idx = 0; idx < entries.size(); ++idx) {
    const Unit& unit = ctx.units->units()[entries[idx].unit];
    const EventSpan seq = db[unit.seq];
    auto [lo, hi] = periods[idx];
    bool any = false;
    if (hi != kNoPos) {
      Pos from = (lo == kNoPos) ? unit.start : lo + 1;
      for (Pos p = from; p < hi && p < seq.size(); ++p) {
        EventId ev = seq[p];
        auto it = stamp.find(ev);
        if (idx == 0) {
          stamp.emplace(ev, 1);
          any = true;
        } else if (it != stamp.end() && it->second == idx) {
          it->second = idx + 1;
          any = true;
        }
      }
    }
    if (idx == 0 && stamp.empty()) return false;
    (void)any;
  }
  for (const auto& [ev, count] : stamp) {
    if (count == entries.size()) return true;
  }
  return false;
}

// True iff some slot i in [0, n) has an event common to the slot-i periods
// of all supporting units, where the slot-i period of a unit is
//  * maximum period      (ee[i-1], ls[i])  when semi == false (closure),
//  * semi-maximum period (ee[i-1], ee[i])  when semi == true  (BackScan).
// Embeddings are computed once per unit and reused across slots.
bool HasPeriodExtension(const Ctx& ctx, const Pattern& pattern,
                        const std::vector<Entry>& entries, bool semi) {
  const SequenceDatabase& db = ctx.units->db();
  const size_t n = pattern.size();
  // per-unit earliest / latest embedding position arrays.
  std::vector<std::vector<Pos>> ee(entries.size());
  std::vector<std::vector<Pos>> ls(entries.size());
  for (size_t idx = 0; idx < entries.size(); ++idx) {
    const Unit& unit = ctx.units->units()[entries[idx].unit];
    const EventSpan seq = db[unit.seq];
    if (!EarliestEmbedding(pattern, seq, unit.start, &ee[idx])) return false;
    if (!semi && !LatestEmbedding(pattern, seq, unit.start, &ls[idx])) {
      return false;
    }
  }
  std::vector<std::pair<Pos, Pos>> periods(entries.size());
  for (size_t slot = 0; slot < n; ++slot) {
    for (size_t idx = 0; idx < entries.size(); ++idx) {
      Pos lo = (slot == 0) ? kNoPos : ee[idx][slot - 1];
      Pos hi = semi ? ee[idx][slot] : ls[idx][slot];
      periods[idx] = {lo, hi};
    }
    if (HasCommonPeriodEvent(ctx, entries, periods)) return true;
  }
  return false;
}

// True iff `pattern` has a backward extension event common to all units
// (maximum periods) — i.e. it is NOT closed on the backward side.
bool HasBackwardExtension(const Ctx& ctx, const Pattern& pattern,
                          const std::vector<Entry>& entries) {
  return HasPeriodExtension(ctx, pattern, entries, /*semi=*/false);
}

// BackScan: true iff the subtree rooted at `pattern` can be pruned.
bool BackScanPrunable(const Ctx& ctx, const Pattern& pattern,
                      const std::vector<Entry>& entries) {
  return HasPeriodExtension(ctx, pattern, entries, /*semi=*/true);
}

void Grow(Ctx* ctx, const Pattern& prefix, const std::vector<Entry>& entries,
          bool at_root) {
  const CancelToken* cancel = ctx->options->cancel;
  if (cancel != nullptr && cancel->ShouldStop()) {
    ctx->stats->stopped = cancel->stop_code();
    ctx->stop = true;
    return;
  }
  ++ctx->stats->nodes_visited;
  const SequenceDatabase& db = ctx->units->db();
  std::map<EventId, std::vector<Entry>> extensions;
  for (const Entry& entry : entries) {
    const Unit& unit = ctx->units->units()[entry.unit];
    const EventSpan seq = db[unit.seq];
    Pos from = at_root ? unit.start : entry.last_match + 1;
    for (Pos p = from; p < seq.size(); ++p) {
      EventId ev = seq[p];
      std::vector<Entry>& proj = extensions[ev];
      if (!proj.empty() && proj.back().unit == entry.unit) continue;
      proj.push_back(Entry{entry.unit, p});
    }
  }

  // A pattern is closed on the forward side iff no extension has equal
  // support.
  bool forward_closed = true;
  if (!at_root) {
    for (const auto& [ev, proj] : extensions) {
      if (proj.size() == entries.size()) {
        forward_closed = false;
        break;
      }
    }
    if (forward_closed && !HasBackwardExtension(*ctx, prefix, entries)) {
      ctx->out->Add(prefix, entries.size());
      ++ctx->stats->patterns_emitted;
    }
  }

  for (const auto& [ev, proj] : extensions) {
    if (ctx->stop) break;
    if (proj.size() < ctx->options->min_support) continue;
    Pattern candidate = prefix.Extend(ev);
    if (ctx->options->max_length != 0 &&
        candidate.size() > ctx->options->max_length) {
      continue;
    }
    if (ctx->options->backscan_pruning &&
        BackScanPrunable(*ctx, candidate, proj)) {
      continue;
    }
    Grow(ctx, candidate, proj, /*at_root=*/false);
  }
}

}  // namespace

PatternSet MineClosedSequential(const UnitDatabase& units,
                                const ClosedSeqMinerOptions& options,
                                SeqMinerStats* stats) {
  SeqMinerStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = SeqMinerStats{};
  PatternSet out;
  Ctx ctx{&units, &options, &out, stats};
  std::vector<Entry> root;
  root.reserve(units.size());
  for (uint32_t u = 0; u < units.size(); ++u) root.push_back(Entry{u, 0});
  Pattern empty;
  Grow(&ctx, empty, root, /*at_root=*/true);
  return out;
}

}  // namespace specmine
