// Tests for the JSON layer the server and the CLI --json flag share: the
// deterministic pretty-printing writer (its formatting is an API contract
// — server/CLI byte-identity depends on it) and the strict reader the
// request decoder uses.

#include <gtest/gtest.h>

#include <string>

#include "src/support/json_reader.h"
#include "src/support/json_writer.h"

namespace specmine {
namespace {

// ---------------------------------------------------------------------------
// Writer.

TEST(JsonWriterTest, PrettyPrintsOneFieldPerLine) {
  std::string out;
  JsonWriter writer(&out);
  writer.BeginObject();
  writer.Field("name", "demo");
  writer.Field("count", uint64_t{3});
  writer.Key("tags").BeginArray();
  writer.String("a");
  writer.String("b");
  writer.EndArray();
  writer.EndObject();
  writer.Finish();
  EXPECT_EQ(out,
            "{\n"
            "  \"name\": \"demo\",\n"
            "  \"count\": 3,\n"
            "  \"tags\": [\n"
            "    \"a\",\n"
            "    \"b\"\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriterTest, EmptyContainersStayOnOneLine) {
  std::string out;
  JsonWriter writer(&out);
  writer.BeginObject();
  writer.Key("list").BeginArray().EndArray();
  writer.Key("map").BeginObject().EndObject();
  writer.EndObject();
  writer.Finish();
  EXPECT_EQ(out, "{\n  \"list\": [],\n  \"map\": {}\n}\n");
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, DoublesRenderShortestRoundTrip) {
  EXPECT_EQ(JsonDouble(0.5), "0.5");
  EXPECT_EQ(JsonDouble(3.0), "3");
  EXPECT_EQ(JsonDouble(0.1), "0.1");
  // Non-finite values have no JSON spelling; they render as null.
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::quiet_NaN()), "null");
}

// ---------------------------------------------------------------------------
// Reader.

TEST(JsonReaderTest, ParsesScalarsAndContainers) {
  Result<JsonValue> parsed = ParseJson(
      R"({"s": "x", "n": 2.5, "i": 7, "b": true, "z": null,
          "a": [1, 2], "o": {"k": "v"}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = *parsed;
  EXPECT_EQ(v.Find("s")->AsString(), "x");
  EXPECT_DOUBLE_EQ(v.Find("n")->AsDouble(), 2.5);
  EXPECT_TRUE(v.Find("b")->AsBool());
  EXPECT_TRUE(v.Find("z")->is_null());
  EXPECT_EQ(v.Find("a")->AsArray().size(), 2u);
  EXPECT_EQ(v.Find("o")->Find("k")->AsString(), "v");
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonReaderTest, RoundTripsWriterOutput) {
  std::string out;
  JsonWriter writer(&out);
  writer.BeginObject();
  writer.Field("pi", 3.141592653589793);
  writer.Field("quote", "she said \"hi\"\n");
  writer.Field("big", uint64_t{9007199254740992});
  writer.EndObject();
  writer.Finish();
  Result<JsonValue> parsed = ParseJson(out);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->Find("pi")->AsDouble(), 3.141592653589793);
  EXPECT_EQ(parsed->Find("quote")->AsString(), "she said \"hi\"\n");
  EXPECT_DOUBLE_EQ(parsed->Find("big")->AsDouble(), 9007199254740992.0);
}

TEST(JsonReaderTest, DecodesEscapesAndSurrogatePairs) {
  Result<JsonValue> parsed =
      ParseJson(R"(["Aé", "😀", "\\\"/\b\f\n\r\t"])");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->AsArray()[0].AsString(), "A\xc3\xa9");
  EXPECT_EQ(parsed->AsArray()[1].AsString(), "\xf0\x9f\x98\x80");
  EXPECT_EQ(parsed->AsArray()[2].AsString(), "\\\"/\b\f\n\r\t");
}

TEST(JsonReaderTest, SyntaxErrorsNameTheOffset) {
  for (const char* bad : {"{", "[1,]", "{\"a\": }", "tru", "\"unterminated",
                          "01", "1 garbage", "{\"a\":1,}", "[1 2]"}) {
    Result<JsonValue> parsed = ParseJson(bad);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << bad;
    EXPECT_NE(parsed.status().message().find("at byte"), std::string::npos)
        << parsed.status().ToString();
  }
}

TEST(JsonReaderTest, DepthBombFailsCleanly) {
  std::string bomb(1000, '[');
  Result<JsonValue> parsed = ParseJson(bomb);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(JsonReaderTest, CheckedAccessorsDefaultAndTypeCheck) {
  Result<JsonValue> parsed =
      ParseJson(R"({"f": 0.25, "u": 3, "s": "x", "b": true})");
  ASSERT_TRUE(parsed.ok());
  double f = 1.0;
  uint64_t u = 0;
  std::string s;
  bool b = false;
  EXPECT_TRUE(parsed->GetDouble("f", &f).ok());
  EXPECT_DOUBLE_EQ(f, 0.25);
  EXPECT_TRUE(parsed->GetUint("u", &u).ok());
  EXPECT_EQ(u, 3u);
  EXPECT_TRUE(parsed->GetString("s", &s).ok());
  EXPECT_TRUE(parsed->GetBool("b", &b).ok());
  EXPECT_TRUE(b);
  // Missing members keep the caller's default.
  double untouched = 42.0;
  EXPECT_TRUE(parsed->GetDouble("absent", &untouched).ok());
  EXPECT_DOUBLE_EQ(untouched, 42.0);
  // Wrong types are InvalidArgument naming the field.
  Status wrong = parsed->GetUint("s", &u);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(wrong.message().find("'s'"), std::string::npos);
}

TEST(JsonReaderTest, GetUintRejectsNegativeAndFractional) {
  Result<JsonValue> parsed = ParseJson(R"({"neg": -1, "frac": 1.5})");
  ASSERT_TRUE(parsed.ok());
  uint64_t u = 0;
  EXPECT_FALSE(parsed->GetUint("neg", &u).ok());
  EXPECT_FALSE(parsed->GetUint("frac", &u).ok());
}

}  // namespace
}  // namespace specmine
