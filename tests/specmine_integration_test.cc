// End-to-end integration tests: the SpecMiner facade recovers the planted
// Figure-4 pattern and Figure-5 rule from the simulated JBoss components,
// and the trace-file workflow round-trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/ltl/checker.h"
#include "src/ltl/parser.h"
#include "src/sim/test_suite.h"
#include "src/specmine/spec_miner.h"
#include "src/trace/trace_io.h"

namespace specmine {
namespace {

Pattern NamesToPattern(const SequenceDatabase& db,
                       const std::vector<std::string>& names) {
  Pattern p;
  for (const auto& n : names) {
    EventId id = db.dictionary().Lookup(n);
    EXPECT_NE(id, kInvalidEvent) << n;
    p = p.Extend(id);
  }
  return p;
}

TEST(SpecMinerIntegrationTest, AbsoluteSupportConversion) {
  SequenceDatabaseBuilder db;
  for (int i = 0; i < 100; ++i) db.AddTraceFromString("a b");
  SpecMiner miner(db.Build());
  EXPECT_EQ(miner.AbsoluteSupport(0.5), 50u);
  EXPECT_EQ(miner.AbsoluteSupport(0.001), 1u);   // Floors at 1.
  EXPECT_EQ(miner.AbsoluteSupport(0.0), 1u);
  EXPECT_EQ(miner.AbsoluteSupport(0.255), 26u);  // Ceil.
}

TEST(SpecMinerIntegrationTest, RecoversFigure4LongestPattern) {
  // The paper's transaction case study: the longest closed iterative
  // pattern over commit-only traces is the full Figure-4 protocol run.
  sim::TestSuiteOptions suite;
  suite.num_traces = 60;
  suite.min_runs_per_trace = 1;
  // At most 2 runs per trace: with more, two-run concatenations of the
  // protocol (64-event patterns spanning consecutive transactions) become
  // frequent too and legitimately outrank Figure 4 as "longest".
  suite.max_runs_per_trace = 2;
  suite.transaction.rollback_probability = 0.0;
  suite.transaction.noise_probability = 0.4;
  SequenceDatabase db = sim::GenerateTransactionTraces(suite);
  Pattern fig4 = NamesToPattern(db, sim::Figure4Pattern());

  SpecMiner miner(std::move(db));
  PatternMiningConfig config;
  config.min_support_fraction = 0.9;
  config.closed = true;
  PatternSet closed = miner.MinePatterns(config);
  ASSERT_FALSE(closed.empty());
  const MinedPattern& longest = closed.Longest();
  EXPECT_EQ(longest.pattern, fig4)
      << "longest = " << longest.pattern.ToString(miner.database().dictionary());
  EXPECT_TRUE(closed.Contains(fig4));
}

TEST(SpecMinerIntegrationTest, RollbackVariantAlsoMined) {
  sim::TestSuiteOptions suite;
  suite.num_traces = 80;
  suite.min_runs_per_trace = 2;
  suite.max_runs_per_trace = 4;
  suite.transaction.rollback_probability = 0.5;
  suite.transaction.noise_probability = 0.2;
  SequenceDatabase db = sim::GenerateTransactionTraces(suite);
  EventId begin = db.dictionary().Lookup("TxManager.begin");
  EventId rollback = db.dictionary().Lookup("TxManager.rollback");
  ASSERT_NE(begin, kInvalidEvent);
  ASSERT_NE(rollback, kInvalidEvent);

  SpecMiner miner(std::move(db));
  PatternMiningConfig config;
  config.min_support_fraction = 0.5;
  config.closed = true;
  PatternSet closed = miner.MinePatterns(config);
  // Some closed pattern embeds the JTA abort motif <begin, ..., rollback>.
  Pattern motif{begin, rollback};
  bool found = false;
  for (const auto& it : closed.items()) {
    if (motif.IsSubsequenceOf(it.pattern)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SpecMinerIntegrationTest, RecoversFigure5Rule) {
  sim::TestSuiteOptions suite;
  suite.num_traces = 60;
  suite.min_runs_per_trace = 1;
  suite.max_runs_per_trace = 3;
  suite.security.login_failure_probability = 0.0;
  // Config lookups that find no entry and direct AuthenInfo.getName reads
  // keep the Figure-5 two-event premise non-redundant (without them the
  // Definition-5.2 tie-break folds it into a shorter-premise rule).
  suite.security.missing_entry_probability = 0.1;
  suite.security.direct_name_lookup_probability = 0.1;
  suite.security.noise_probability = 0.4;
  SequenceDatabase db = sim::GenerateSecurityTraces(suite);
  Pattern premise = NamesToPattern(db, sim::Figure5Premise());
  Pattern consequent = NamesToPattern(db, sim::Figure5Consequent());

  SpecMiner miner(std::move(db));
  RuleMiningConfig config;
  config.min_s_support_fraction = 0.8;
  // Under subsequence semantics a direct AuthenInfo.getName read occurring
  // after an earlier config lookup in the same trace is also a temporal
  // point of the premise pair (and is not followed by a login), so the
  // rule's confidence sits below 1.0 — exactly the "imperfect traces"
  // regime the paper mines in.
  config.min_confidence = 0.8;
  config.non_redundant = true;
  RuleSet rules = miner.MineRules(config);
  const Rule* rule = rules.Find(premise, consequent);
  ASSERT_NE(rule, nullptr) << rules.ToString(miner.database().dictionary());
  EXPECT_GE(rule->confidence(), 0.8);
  EXPECT_GE(rule->s_support, 48u);
}

TEST(SpecMinerIntegrationTest, LoginFailuresLowerConfidence) {
  sim::TestSuiteOptions suite;
  suite.num_traces = 120;
  suite.min_runs_per_trace = 1;
  suite.max_runs_per_trace = 2;
  suite.security.login_failure_probability = 0.2;
  suite.security.noise_probability = 0.2;
  SequenceDatabase db = sim::GenerateSecurityTraces(suite);
  Pattern premise = NamesToPattern(db, sim::Figure5Premise());
  Pattern consequent = NamesToPattern(db, sim::Figure5Consequent());
  SpecMiner miner(std::move(db));
  RuleMiningConfig config;
  config.min_s_support_fraction = 0.5;
  config.min_confidence = 0.5;
  config.non_redundant = false;
  RuleSet rules = miner.MineRules(config);
  const Rule* rule = rules.Find(premise, consequent);
  ASSERT_NE(rule, nullptr);
  EXPECT_LT(rule->confidence(), 1.0);
  EXPECT_GT(rule->confidence(), 0.5);
}

TEST(SpecMinerIntegrationTest, FullReportIncludesLtlForms) {
  sim::TestSuiteOptions suite;
  suite.num_traces = 30;
  suite.security.login_failure_probability = 0.0;
  SequenceDatabase db = sim::GenerateSecurityTraces(suite);
  SpecMiner miner(std::move(db));
  PatternMiningConfig pattern_config;
  pattern_config.min_support_fraction = 0.9;
  RuleMiningConfig rule_config;
  rule_config.min_s_support_fraction = 0.9;
  rule_config.min_confidence = 0.9;
  SpecificationReport report = miner.Mine(pattern_config, rule_config);
  EXPECT_GT(report.patterns.size(), 0u);
  EXPECT_GT(report.rules.size(), 0u);
  ASSERT_EQ(report.ltl.size(), report.rules.size());
  // Every LTL string parses back and, for confidence-1 rules, holds on all
  // traces.
  for (size_t i = 0; i < report.rules.size(); ++i) {
    Result<LtlPtr> parsed = ParseLtl(report.ltl[i]);
    ASSERT_TRUE(parsed.ok()) << report.ltl[i];
    if (report.rules[i].confidence() >= 1.0) {
      EXPECT_TRUE(HoldsOnAll(*parsed, miner.database()));
    }
  }
  std::string text = report.ToText(miner.database().dictionary());
  EXPECT_NE(text.find("Iterative patterns"), std::string::npos);
  EXPECT_NE(text.find("Recurrent rules"), std::string::npos);
  EXPECT_NE(text.find("LTL:"), std::string::npos);
}

TEST(SpecMinerIntegrationTest, TraceFileWorkflow) {
  const char* path = "specmine_itest_traces.txt";
  {
    std::ofstream out(path);
    out << "# test traces\n";
    out << "lock use unlock\n";
    out << "lock unlock lock unlock\n";
    out << "lock x unlock\n";
  }
  Result<SpecMiner> miner = SpecMiner::FromTraceFile(path);
  ASSERT_TRUE(miner.ok()) << miner.status().ToString();
  EXPECT_EQ(miner->database().size(), 3u);
  RuleMiningConfig config;
  config.min_s_support_fraction = 1.0;
  config.min_confidence = 1.0;
  RuleSet rules = miner->MineRules(config);
  EventId lock = miner->database().dictionary().Lookup("lock");
  EventId unlock = miner->database().dictionary().Lookup("unlock");
  EXPECT_NE(rules.Find(Pattern{lock}, Pattern{unlock}), nullptr);
  std::remove(path);
}

TEST(SpecMinerIntegrationTest, MissingTraceFileIsError) {
  Result<SpecMiner> miner = SpecMiner::FromTraceFile("/no/such/file");
  EXPECT_FALSE(miner.ok());
}

TEST(SpecMinerIntegrationTest, FullVsClosedPatternCounts) {
  sim::TestSuiteOptions suite;
  suite.num_traces = 20;
  suite.transaction.rollback_probability = 0.0;
  SequenceDatabase db = sim::GenerateTransactionTraces(suite);
  SpecMiner miner(std::move(db));
  PatternMiningConfig closed_config;
  closed_config.min_support_fraction = 0.9;
  closed_config.closed = true;
  PatternMiningConfig full_config = closed_config;
  full_config.closed = false;
  full_config.max_length = 6;  // Bound the explosion.
  closed_config.max_length = 6;
  size_t closed_count = miner.MinePatterns(closed_config).size();
  size_t full_count = miner.MinePatterns(full_config).size();
  EXPECT_LT(closed_count, full_count);
}

}  // namespace
}  // namespace specmine
