// Tests for the specmine::Engine session façade: one cached index across
// a multi-task session, byte-identical outputs versus the legacy free
// functions, Status error paths, and the composable sink layer.

#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/episode/winepi.h"
#include "src/itermine/closed_miner.h"
#include "src/itermine/full_miner.h"
#include "src/itermine/generators.h"
#include "src/rulemine/rule_miner.h"
#include "src/seqmine/closed_sequential_miner.h"
#include "src/specmine/spec_miner.h"
#include "src/twoevent/perracotta.h"

namespace specmine {
namespace {

SequenceDatabase SmallDb() {
  SequenceDatabaseBuilder db;
  db.AddTraceFromString("lock read write unlock lock write unlock");
  db.AddTraceFromString("open read close lock unlock");
  db.AddTraceFromString("lock read unlock open read read close");
  db.AddTraceFromString("open write close open read close");
  db.AddTraceFromString("lock unlock lock read write unlock");
  return db.Build();
}

// ---------------------------------------------------------------------------
// Session caching: the index is built exactly once per Engine.

TEST(EngineTest, IndexBuiltOnceAcrossFullClosedRulesSession) {
  Engine engine(SmallDb());
  EXPECT_EQ(engine.index_builds(), 0u);

  FullPatternsTask full;
  full.options.min_support = 3;
  CollectingPatternSink full_sink;
  Result<RunReport> full_run = engine.Mine(full, full_sink);
  ASSERT_TRUE(full_run.ok());
  EXPECT_EQ(engine.index_builds(), 1u);

  ClosedTask closed;
  closed.options.min_support = 3;
  CollectingPatternSink closed_sink;
  Result<RunReport> closed_run = engine.Mine(closed, closed_sink);
  ASSERT_TRUE(closed_run.ok());
  // Cached reuse: no rebuild, and the report says so.
  EXPECT_EQ(engine.index_builds(), 1u);
  EXPECT_EQ(closed_run->index_build_seconds, 0.0);

  RulesTask rules;
  rules.options.min_s_support = 3;
  rules.options.min_confidence = 0.9;
  CollectingRuleSink rule_sink;
  Result<RunReport> rules_run = engine.Mine(rules, rule_sink);
  ASSERT_TRUE(rules_run.ok());
  EXPECT_EQ(engine.index_builds(), 1u);
  EXPECT_EQ(rules_run->index_build_seconds, 0.0);

  GeneratorsTask generators;
  generators.options.min_support = 3;
  CollectingPatternSink gen_sink;
  Result<RunReport> gen_run = engine.Mine(generators, gen_sink);
  ASSERT_TRUE(gen_run.ok());
  EXPECT_EQ(engine.index_builds(), 1u);
  EXPECT_EQ(gen_run->index_build_seconds, 0.0);

  EXPECT_FALSE(full_sink.set().empty());
  EXPECT_FALSE(closed_sink.set().empty());
  EXPECT_FALSE(rule_sink.set().empty());
}

TEST(EngineTest, SpecMinerReportSharesOneIndexAcrossPatternsAndRules) {
  SpecMiner miner(SmallDb());
  PatternMiningConfig pattern_config;
  pattern_config.min_support_fraction = 0.6;
  RuleMiningConfig rule_config;
  rule_config.min_s_support_fraction = 0.6;
  rule_config.min_confidence = 1.0;
  SpecificationReport report = miner.Mine(pattern_config, rule_config);
  EXPECT_FALSE(report.patterns.empty());
  EXPECT_EQ(miner.engine().index_builds(), 1u);
}

// ---------------------------------------------------------------------------
// Byte-identical outputs versus the legacy free functions.

TEST(EngineTest, FullPatternsMatchLegacyByteForByte) {
  SequenceDatabase db = SmallDb();
  Engine engine(SmallDb());
  IterMinerOptions options;
  options.min_support = 2;
  PatternSet legacy = MineFrequentIterative(db, options);

  FullPatternsTask task;
  task.options = options;
  Result<PatternSet> mined = engine.CollectPatterns(task);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined->ToString(engine.database().dictionary()),
            legacy.ToString(db.dictionary()));
}

TEST(EngineTest, ClosedPatternsMatchLegacyByteForByte) {
  SequenceDatabase db = SmallDb();
  Engine engine(SmallDb());
  ClosedIterMinerOptions options;
  options.min_support = 2;
  PatternSet legacy = MineClosedIterative(db, options);

  ClosedTask task;
  task.options = options;
  Result<PatternSet> mined = engine.CollectPatterns(task);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined->ToString(engine.database().dictionary()),
            legacy.ToString(db.dictionary()));
}

TEST(EngineTest, GeneratorsMatchLegacyByteForByte) {
  SequenceDatabase db = SmallDb();
  Engine engine(SmallDb());
  IterGeneratorMinerOptions options;
  options.min_support = 2;
  PatternSet legacy = MineIterativeGenerators(db, options);

  GeneratorsTask task;
  task.options = options;
  Result<PatternSet> mined = engine.CollectPatterns(task);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined->ToString(engine.database().dictionary()),
            legacy.ToString(db.dictionary()));
}

TEST(EngineTest, RulesMatchLegacyByteForByte) {
  SequenceDatabase db = SmallDb();
  Engine engine(SmallDb());
  RuleMinerOptions options;
  options.min_s_support = 3;
  options.min_confidence = 0.9;
  RuleSet legacy = MineRecurrentRules(db, options);

  RulesTask task;
  task.options = options;
  Result<RuleSet> mined = engine.CollectRules(task);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined->ToString(engine.database().dictionary()),
            legacy.ToString(db.dictionary()));
}

TEST(EngineTest, SessionReusedIndexStillMatchesLegacyOnEveryTask) {
  // The acceptance-criteria shape: one session runs full, closed, and
  // rules back-to-back (index built once), each byte-identical to a
  // fresh legacy call.
  SequenceDatabase db = SmallDb();
  Engine engine(SmallDb());

  FullPatternsTask full;
  full.options.min_support = 2;
  ClosedTask closed;
  closed.options.min_support = 2;
  RulesTask rules;
  rules.options.min_s_support = 3;
  rules.options.min_confidence = 0.9;

  Result<PatternSet> full_mined = engine.CollectPatterns(full);
  Result<PatternSet> closed_mined = engine.CollectPatterns(closed);
  Result<RuleSet> rules_mined = engine.CollectRules(rules);
  ASSERT_TRUE(full_mined.ok());
  ASSERT_TRUE(closed_mined.ok());
  ASSERT_TRUE(rules_mined.ok());
  EXPECT_EQ(engine.index_builds(), 1u);

  IterMinerOptions full_options;
  full_options.min_support = 2;
  ClosedIterMinerOptions closed_options;
  closed_options.min_support = 2;
  RuleMinerOptions rule_options;
  rule_options.min_s_support = 3;
  rule_options.min_confidence = 0.9;
  const EventDictionary& dict = engine.database().dictionary();
  EXPECT_EQ(full_mined->ToString(dict),
            MineFrequentIterative(db, full_options).ToString(db.dictionary()));
  EXPECT_EQ(closed_mined->ToString(dict),
            MineClosedIterative(db, closed_options).ToString(db.dictionary()));
  EXPECT_EQ(rules_mined->ToString(dict),
            MineRecurrentRules(db, rule_options).ToString(db.dictionary()));
}

TEST(EngineTest, SharedPoolParallelMiningMatchesSequential) {
  Engine engine(SmallDb());
  ClosedTask sequential;
  sequential.options.min_support = 2;
  sequential.options.num_threads = 1;
  ClosedTask parallel;
  parallel.options.min_support = 2;
  parallel.options.num_threads = 4;

  Result<PatternSet> seq = engine.CollectPatterns(sequential);
  Result<PatternSet> par1 = engine.CollectPatterns(parallel);
  Result<PatternSet> par2 = engine.CollectPatterns(parallel);  // Pool reused.
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par1.ok());
  ASSERT_TRUE(par2.ok());
  const EventDictionary& dict = engine.database().dictionary();
  EXPECT_EQ(seq->ToString(dict), par1->ToString(dict));
  EXPECT_EQ(seq->ToString(dict), par2->ToString(dict));
}

TEST(EngineTest, ClosedSequentialAndEpisodesAndPairsRun) {
  SequenceDatabase db = SmallDb();
  Engine engine(SmallDb());
  const EventDictionary& dict = engine.database().dictionary();

  ClosedSequentialTask seq_task;
  seq_task.options.min_support = 3;
  Result<PatternSet> seq = engine.CollectPatterns(seq_task);
  ASSERT_TRUE(seq.ok());
  ClosedSeqMinerOptions seq_options;
  seq_options.min_support = 3;
  UnitDatabase units = UnitDatabase::WholeSequences(db);
  EXPECT_EQ(seq->ToString(dict),
            MineClosedSequential(units, seq_options).ToString(db.dictionary()));

  EpisodeTask episode_task;
  episode_task.winepi.window_width = 4;
  episode_task.winepi.min_window_count = 5;
  Result<PatternSet> episodes = engine.CollectPatterns(episode_task);
  ASSERT_TRUE(episodes.ok());
  WinepiOptions winepi_options;
  winepi_options.window_width = 4;
  winepi_options.min_window_count = 5;
  EXPECT_EQ(episodes->ToString(dict),
            MineWinepi(db, winepi_options).ToString(db.dictionary()));

  TwoEventTask pairs_task;
  pairs_task.options.min_satisfaction = 0.8;
  CollectingTwoEventSink pairs;
  Result<RunReport> pairs_run = engine.Mine(pairs_task, pairs);
  ASSERT_TRUE(pairs_run.ok());
  PerracottaOptions pairs_options;
  pairs_options.min_satisfaction = 0.8;
  EXPECT_EQ(pairs.rules().size(), MinePerracotta(db, pairs_options).size());
}

// ---------------------------------------------------------------------------
// Error paths: failures are values, not aborts.

TEST(EngineTest, EmptyDatabaseIsInvalidArgument) {
  Engine engine((SequenceDatabase()));
  ClosedTask task;
  task.options.min_support = 1;
  CollectingPatternSink sink;
  Result<RunReport> run = engine.Mine(task, sink);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run.status().message().find("empty"), std::string::npos);
}

TEST(EngineTest, ZeroMinSupportIsInvalidArgument) {
  Engine engine(SmallDb());
  FullPatternsTask task;
  task.options.min_support = 0;
  CollectingPatternSink sink;
  Result<RunReport> run = engine.Mine(task, sink);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run.status().message().find("min_support"), std::string::npos);
  // The failed task must not have paid for an index build.
  EXPECT_EQ(engine.index_builds(), 0u);
}

TEST(EngineTest, OutOfRangeConfidenceIsInvalidArgument) {
  Engine engine(SmallDb());
  RulesTask task;
  task.options.min_s_support = 1;
  task.options.min_confidence = 1.5;
  CollectingRuleSink sink;
  Result<RunReport> run = engine.Mine(task, sink);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run.status().message().find("min_confidence"), std::string::npos);
}

TEST(EngineTest, ZeroWindowWidthIsInvalidArgument) {
  Engine engine(SmallDb());
  EpisodeTask task;
  task.winepi.window_width = 0;
  CollectingPatternSink sink;
  Result<RunReport> run = engine.Mine(task, sink);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, BadSatisfactionIsInvalidArgument) {
  Engine engine(SmallDb());
  TwoEventTask task;
  task.options.min_satisfaction = -0.25;
  CollectingTwoEventSink sink;
  Result<RunReport> run = engine.Mine(task, sink);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, MissingTraceFileIsIOError) {
  Result<Engine> engine = Engine::FromTextTraceFile("/no/such/file");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kIOError);
}

TEST(EngineTest, MalformedCsvReportsLineNumberThroughFactory) {
  std::string path = ::testing::TempDir() + "engine_test_bad.csv";
  {
    std::ofstream out(path);
    out << "t1,lock\n";
    out << "t1,unlock\n";
    out << "only-one-column\n";
  }
  Result<Engine> engine = Engine::FromCsvTraceFile(path, CsvTraceOptions{});
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kParseError);
  EXPECT_NE(engine.status().message().find("line 3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EngineTest, SpecMinerCheckedSurfacesBadOptions) {
  SpecMiner miner(SmallDb());
  RuleMiningConfig config;
  config.min_confidence = 2.0;  // Out of [0, 1].
  Result<RuleSet> checked = miner.MineRulesChecked(config);
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().code(), StatusCode::kInvalidArgument);
  // The legacy shape degrades to an empty set rather than mining garbage.
  EXPECT_TRUE(miner.MineRules(config).empty());
}

TEST(EngineTest, CheckIndexableAcceptsSmallDatabases) {
  SequenceDatabase db = SmallDb();
  EXPECT_TRUE(CheckIndexable(db).ok());
}

// ---------------------------------------------------------------------------
// Sinks.

TEST(EngineTest, CountingSinkMatchesCollectingSink) {
  Engine engine(SmallDb());
  ClosedTask task;
  task.options.min_support = 2;
  CollectingPatternSink collected;
  CountingPatternSink counted;
  ASSERT_TRUE(engine.Mine(task, collected).ok());
  ASSERT_TRUE(engine.Mine(task, counted).ok());
  EXPECT_EQ(counted.count(), collected.set().size());
  EXPECT_GT(counted.max_support(), 0u);
}

TEST(EngineTest, TopKSinkKeepsTheKBestPatterns) {
  Engine engine(SmallDb());
  ClosedTask task;
  task.options.min_support = 2;
  CollectingPatternSink all;
  TopKPatternSink top(3);
  TeePatternSink tee(all, top);
  ASSERT_TRUE(engine.Mine(task, tee).ok());

  PatternSet full = all.TakeSet();
  full.SortBySupport();
  PatternSet best = top.TakeSorted();
  ASSERT_EQ(best.size(), 3u);
  const EventDictionary& dict = engine.database().dictionary();
  for (size_t i = 0; i < best.size(); ++i) {
    EXPECT_EQ(best[i].pattern.ToString(dict), full[i].pattern.ToString(dict));
    EXPECT_EQ(best[i].support, full[i].support);
  }
}

TEST(EngineTest, WriterSinkStreamsTheCanonicalLineFormat) {
  Engine engine(SmallDb());
  ClosedTask task;
  task.options.min_support = 2;
  CollectingPatternSink collected;
  std::ostringstream os;
  WriterPatternSink writer(os, engine.database().dictionary());
  TeePatternSink tee(collected, writer);
  ASSERT_TRUE(engine.Mine(task, tee).ok());
  EXPECT_EQ(os.str(), collected.set().ToString(engine.database().dictionary()));
}

TEST(EngineTest, SinkStopTruncatesDelivery) {
  Engine engine(SmallDb());
  ClosedTask task;
  task.options.min_support = 2;

  class StopAfterOne : public PatternSink {
   public:
    bool Consume(const Pattern&, uint64_t) override { return ++seen_ < 2; }
    size_t seen() const { return seen_; }

   private:
    size_t seen_ = 0;
  } sink;

  Result<RunReport> run = engine.Mine(task, sink);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->truncated);
  EXPECT_EQ(run->patterns_emitted, 2u);
  EXPECT_EQ(sink.seen(), 2u);
}

TEST(EngineTest, TopKRuleSinkMatchesQualityOrder) {
  Engine engine(SmallDb());
  RulesTask task;
  task.options.min_s_support = 2;
  task.options.min_confidence = 0.5;
  CollectingRuleSink all;
  TopKRuleSink top(2);
  TeeRuleSink tee(all, top);
  ASSERT_TRUE(engine.Mine(task, tee).ok());

  RuleSet full = all.TakeSet();
  full.SortByQuality();
  ASSERT_GE(full.size(), 2u);
  RuleSet best = top.TakeSorted();
  ASSERT_EQ(best.size(), 2u);
  const EventDictionary& dict = engine.database().dictionary();
  EXPECT_EQ(best[0].ToString(dict), full[0].ToString(dict));
  EXPECT_EQ(best[1].ToString(dict), full[1].ToString(dict));
}

}  // namespace
}  // namespace specmine
