// End-to-end tests for the specmined server: real sockets on an
// ephemeral port, raw HTTP/1.1 on the wire, and the server/CLI JSON
// equivalence contract — a mine route's response body must be byte-
// identical to `specmine mine-* --json` for the same corpus and options,
// timing fields aside.
//
// The final test launches the actual specmined binary (when present in
// the working directory, as under ctest), scrapes its ephemeral port from
// stdout, drives one request, and asserts SIGTERM exits 0 — the same
// lifecycle the CI smoke step checks with curl.

#include "src/server/server.h"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/specmine/cli.h"
#include "src/support/net.h"
#include "src/trace/shard_set.h"

namespace specmine {
namespace {

// Blocking round trip: one request, read to connection close.
std::string RoundTrip(uint16_t port, const std::string& raw) {
  Result<Socket> socket = ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(socket.ok()) << socket.status().ToString();
  if (!socket.ok()) return "";
  EXPECT_TRUE(socket->WriteAll(raw).ok());
  std::string response;
  char buffer[4096];
  while (true) {
    Result<size_t> n = socket->Read(buffer, sizeof(buffer));
    if (!n.ok() || *n == 0) break;
    response.append(buffer, *n);
  }
  return response;
}

std::string PostJson(uint16_t port, const std::string& path,
                     const std::string& body) {
  return RoundTrip(port, "POST " + path + " HTTP/1.1\r\nConnection: close\r\n"
                             "Content-Length: " +
                             std::to_string(body.size()) + "\r\n\r\n" + body);
}

std::string Get(uint16_t port, const std::string& path) {
  return RoundTrip(port,
                   "GET " + path + " HTTP/1.1\r\nConnection: close\r\n\r\n");
}

int StatusOf(const std::string& response) {
  return response.size() > 12 ? std::atoi(response.c_str() + 9) : -1;
}

std::string BodyOf(const std::string& response) {
  size_t blank = response.find("\r\n\r\n");
  return blank == std::string::npos ? "" : response.substr(blank + 4);
}

// Drops the run-varying report lines (index_build_seconds, mine_seconds)
// so equal runs compare equal.
std::string StripTimings(const std::string& text) {
  std::istringstream in(text);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("_seconds") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    traces_path_ = ::testing::TempDir() + "server_test_traces.txt";
    std::ofstream out(traces_path_);
    out << "lock use unlock\n";
    out << "lock unlock lock unlock\n";
    out << "x lock y unlock\n";
    out.close();
    ASSERT_TRUE(registry_
                    .Register("demo", traces_path_, CorpusOpenOptions())
                    .ok());
    ServerOptions options;
    options.port = 0;  // Ephemeral.
    server_ = std::make_unique<Server>(&registry_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_->Stop();
    std::remove(traces_path_.c_str());
  }

  // The CLI's --json output for \p args (which must include --json).
  std::string CliJson(std::vector<std::string> args) {
    std::ostringstream out, err;
    EXPECT_EQ(RunCli(args, out, err), 0) << err.str();
    return out.str();
  }

  uint16_t port() const { return server_->port(); }

  std::string traces_path_;
  CorpusRegistry registry_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, HealthzReportsOkAndBuildInfo) {
  std::string response = Get(port(), "/healthz");
  EXPECT_EQ(StatusOf(response), 200);
  EXPECT_NE(BodyOf(response).find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(BodyOf(response).find("\"version\""), std::string::npos);
  EXPECT_NE(BodyOf(response).find("\"revision\""), std::string::npos);
}

// The tentpole equivalence: each mine route's 200 body is byte-identical
// to the CLI's --json output, modulo the *_seconds report fields.
TEST_F(ServerTest, MinePatternsMatchesCliJson) {
  std::string response =
      PostJson(port(), "/mine/patterns", R"({"corpus": "demo"})");
  ASSERT_EQ(StatusOf(response), 200);
  EXPECT_EQ(StripTimings(BodyOf(response)),
            StripTimings(CliJson({"mine-patterns", traces_path_, "--json"})));
}

TEST_F(ServerTest, MineFullPatternsMatchesCliJson) {
  std::string response = PostJson(
      port(), "/mine/patterns",
      R"({"corpus": "demo", "full": true, "min_sup": 0.3, "max_len": 3})");
  ASSERT_EQ(StatusOf(response), 200);
  EXPECT_EQ(StripTimings(BodyOf(response)),
            StripTimings(CliJson({"mine-patterns", traces_path_, "--json",
                                  "--full", "--min-sup", "0.3", "--max-len",
                                  "3"})));
}

TEST_F(ServerTest, MineRulesMatchesCliJson) {
  std::string response = PostJson(
      port(), "/mine/rules",
      R"({"corpus": "demo", "min_ssup": 0.3, "min_conf": 0.5})");
  ASSERT_EQ(StatusOf(response), 200);
  EXPECT_EQ(StripTimings(BodyOf(response)),
            StripTimings(CliJson({"mine-rules", traces_path_, "--json",
                                  "--min-ssup", "0.3", "--min-conf", "0.5"})));
}

TEST_F(ServerTest, MineSeqMatchesCliJson) {
  std::string response = PostJson(
      port(), "/mine/seq", R"({"corpus": "demo", "closed": true})");
  ASSERT_EQ(StatusOf(response), 200);
  EXPECT_EQ(
      StripTimings(BodyOf(response)),
      StripTimings(CliJson({"mine-seq", traces_path_, "--json", "--closed"})));
}

TEST_F(ServerTest, MineEpisodesMatchesCliJson) {
  std::string response = PostJson(
      port(), "/mine/episodes", R"({"corpus": "demo", "window": 5})");
  ASSERT_EQ(StatusOf(response), 200);
  EXPECT_EQ(StripTimings(BodyOf(response)),
            StripTimings(CliJson({"mine-episodes", traces_path_, "--json",
                                  "--window", "5"})));
}

TEST_F(ServerTest, MinePairsMatchesCliJson) {
  std::string response = PostJson(
      port(), "/mine/pairs", R"({"corpus": "demo", "min_sat": 0.5})");
  ASSERT_EQ(StatusOf(response), 200);
  EXPECT_EQ(StripTimings(BodyOf(response)),
            StripTimings(CliJson({"mine-pairs", traces_path_, "--json",
                                  "--min-sat", "0.5"})));
}

TEST_F(ServerTest, ErrorEnvelopesUseTheStatusMapping) {
  // Unknown corpus -> NotFound -> 404.
  EXPECT_EQ(StatusOf(PostJson(port(), "/mine/patterns",
                              R"({"corpus": "missing"})")),
            404);
  // Malformed body JSON -> ParseError -> 422.
  EXPECT_EQ(StatusOf(PostJson(port(), "/mine/patterns", "{oops")), 422);
  // Bad field value -> InvalidArgument -> 400.
  EXPECT_EQ(StatusOf(PostJson(port(), "/mine/patterns",
                              R"({"corpus": "demo", "backend": "frob"})")),
            400);
  // Unrouted path -> 404; wrong method -> 405.
  EXPECT_EQ(StatusOf(Get(port(), "/nope")), 404);
  EXPECT_EQ(StatusOf(Get(port(), "/mine/patterns")), 405);
  // (kDeadlineExceeded -> 504 is pinned in the exhaustive StatusToHttp
  // test; a live expired-deadline request would race the miner on a tiny
  // corpus.)
}

TEST_F(ServerTest, AdmissionOverflowIs429WithRetryAfter) {
  // One slot, no queue: holding the slot from outside makes the shed
  // path deterministic (no timing games with slow requests).
  ServerOptions options;
  options.port = 0;
  options.admission.max_concurrent = 1;
  options.admission.max_queued = 0;
  Server throttled(&registry_, options);
  ASSERT_TRUE(throttled.Start().ok());
  ASSERT_TRUE(throttled.admission().Acquire());
  std::string response =
      PostJson(throttled.port(), "/mine/patterns", R"({"corpus": "demo"})");
  EXPECT_EQ(StatusOf(response), 429);
  EXPECT_NE(response.find("Retry-After:"), std::string::npos);
  throttled.admission().Release();
  // Capacity restored: the same request mines fine again.
  EXPECT_EQ(StatusOf(PostJson(throttled.port(), "/mine/patterns",
                              R"({"corpus": "demo"})")),
            200);
  throttled.Stop();
}

TEST_F(ServerTest, MetricsScrapeCarriesTheCatalog) {
  // Generate some traffic first.
  (void)PostJson(port(), "/mine/patterns", R"({"corpus": "demo"})");
  (void)PostJson(port(), "/mine/patterns", R"({"corpus": "demo"})");
  std::string response = Get(port(), "/metrics");
  ASSERT_EQ(StatusOf(response), 200);
  const std::string body = BodyOf(response);
  for (const char* series :
       {"specmined_requests_total{route=\"/mine/patterns\",code=\"200\"} 2",
        "specmined_request_duration_seconds_bucket",
        "specmined_requests_in_flight", "specmined_mine_queue_depth",
        "specmined_admission_rejected_total",
        "specmined_index_cache_misses_total 1",
        "specmined_index_cache_hits_total 1",
        "specmined_mine_backend_total", "specmined_patterns_emitted_total",
        "specmined_corpora 1", "specmined_quarantined_shards 0"}) {
    EXPECT_NE(body.find(series), std::string::npos) << series;
  }
}

TEST_F(ServerTest, KeepAlivePipeliningServesBothRequests) {
  Result<Socket> socket = ConnectTcp("127.0.0.1", port());
  ASSERT_TRUE(socket.ok());
  // Two requests written back to back in one segment; the second closes.
  ASSERT_TRUE(socket
                  ->WriteAll(
                      "GET /healthz HTTP/1.1\r\n\r\n"
                      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
                  .ok());
  std::string response;
  char buffer[4096];
  while (true) {
    Result<size_t> n = socket->Read(buffer, sizeof(buffer));
    if (!n.ok() || *n == 0) break;
    response.append(buffer, *n);
  }
  // Both responses arrive on the one connection, in order.
  EXPECT_EQ(response.find("HTTP/1.1 200 OK"), 0u);
  EXPECT_NE(response.find("HTTP/1.1 200 OK", 10), std::string::npos);
  EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
}

TEST_F(ServerTest, RegisterCorpusAtRuntimeThenMineIt) {
  const std::string path = ::testing::TempDir() + "server_test_second.txt";
  {
    std::ofstream out(path);
    out << "a b a b\nb a b\n";
  }
  std::string response = PostJson(
      port(), "/corpora",
      R"({"name": "second", "path": ")" + path + R"("})");
  EXPECT_EQ(StatusOf(response), 201);
  EXPECT_EQ(StatusOf(PostJson(port(), "/mine/patterns",
                              R"({"corpus": "second"})")),
            200);
  // Duplicate names are rejected.
  EXPECT_EQ(StatusOf(PostJson(
                port(), "/corpora",
                R"({"name": "second", "path": ")" + path + R"("})")),
            400);
  std::string list = Get(port(), "/corpora");
  EXPECT_NE(BodyOf(list).find("\"second\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ServerTest, AppendRouteCommitsAndBumpsTheGeneration) {
  // A sharded corpus to append to (the route is .smdbset-only).
  const std::string path = ::testing::TempDir() + "server_test_append.smdbset";
  {
    SequenceDatabaseBuilder builder;
    builder.AddTraceFromString("lock use unlock");
    builder.AddTraceFromString("lock unlock");
    ASSERT_TRUE(WriteShardedDatabase(builder.Build(), path).ok());
  }
  ASSERT_EQ(StatusOf(PostJson(
                port(), "/corpora",
                R"({"name": "shards", "path": ")" + path + R"("})")),
            201);

  std::string response =
      PostJson(port(), "/corpora/shards/append",
               R"({"traces": ["lock use use unlock", "use unlock"]})");
  EXPECT_EQ(StatusOf(response), 200);
  const std::string body = BodyOf(response);
  EXPECT_NE(body.find("\"appended\": 2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"generation\": 1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"sequences\": 4"), std::string::npos) << body;

  // The registry swapped the new generation in: mines see 4 traces.
  std::string mined = PostJson(port(), "/mine/patterns",
                               R"({"corpus": "shards", "min_support": 4})");
  EXPECT_EQ(StatusOf(mined), 200);
  EXPECT_NE(BodyOf(mined).find("\"unlock\""), std::string::npos);

  // Appends are observable: counters plus the per-corpus generation.
  const std::string metrics = BodyOf(Get(port(), "/metrics"));
  for (const char* series :
       {"specmined_corpus_appends_total 1",
        "specmined_corpus_appended_traces_total 2",
        "specmined_corpus_generation{corpus=\"shards\"} 1"}) {
    EXPECT_NE(metrics.find(series), std::string::npos) << series;
  }

  // Error contract: unsharded corpus, unknown corpus, wrong method.
  EXPECT_EQ(StatusOf(PostJson(port(), "/corpora/demo/append",
                              R"({"traces": ["a b"]})")),
            400);
  EXPECT_EQ(StatusOf(PostJson(port(), "/corpora/nope/append",
                              R"({"traces": ["a b"]})")),
            404);
  EXPECT_EQ(StatusOf(Get(port(), "/corpora/shards/append")), 405);
  std::remove(path.c_str());
  std::remove((path + ".p1c").c_str());
  for (const char* shard : {".0000.smdb", ".0001.smdb"}) {
    std::remove((::testing::TempDir() + "server_test_append" + shard).c_str());
  }
}

TEST_F(ServerTest, ConnectionsPastTheCapAreShedWith503) {
  ServerOptions options;
  options.port = 0;
  options.max_connections = 1;
  Server capped(&registry_, options);
  ASSERT_TRUE(capped.Start().ok());
  // Occupy the single slot with a live keep-alive connection; its served
  // response proves the connection thread is registered.
  Result<Socket> held = ConnectTcp("127.0.0.1", capped.port());
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(held->WriteAll("GET /healthz HTTP/1.1\r\n\r\n").ok());
  char buffer[4096];
  Result<size_t> first = held->Read(buffer, sizeof(buffer));
  ASSERT_TRUE(first.ok());
  ASSERT_GT(*first, 0u);
  // The next connection is shed by the acceptor before any request.
  Result<Socket> shed = ConnectTcp("127.0.0.1", capped.port());
  ASSERT_TRUE(shed.ok());
  std::string response;
  while (true) {
    Result<size_t> n = shed->Read(buffer, sizeof(buffer));
    if (!n.ok() || *n == 0) break;
    response.append(buffer, *n);
  }
  EXPECT_EQ(StatusOf(response), 503);
  capped.Stop();
}

TEST_F(ServerTest, FinishedConnectionThreadsAreReaped) {
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(StatusOf(Get(port(), "/healthz")), 200);
  }
  // Each accept joins the connections that finished before it; keep
  // poking the server until the tracked-thread count collapses (the
  // closed connections above must not linger until Stop()).
  size_t tracked = server_->connection_threads();
  for (int i = 0; i < 200 && tracked > 2; ++i) {
    (void)Get(port(), "/healthz");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    tracked = server_->connection_threads();
  }
  EXPECT_LE(tracked, 2u);
}

TEST_F(ServerTest, IdleConnectionsAreClosedAfterTheTimeout) {
  ServerOptions options;
  options.port = 0;
  options.idle_timeout_seconds = 1;
  Server impatient(&registry_, options);
  ASSERT_TRUE(impatient.Start().ok());
  Result<Socket> socket = ConnectTcp("127.0.0.1", impatient.port());
  ASSERT_TRUE(socket.ok());
  // Send nothing: the server must hang up on its own, so this read ends
  // with EOF (or a reset) instead of blocking forever.
  char buffer[64];
  Result<size_t> n = socket->Read(buffer, sizeof(buffer));
  EXPECT_TRUE(!n.ok() || *n == 0);
  impatient.Stop();
}

TEST_F(ServerTest, StopCancelsAnInFlightMineWithoutADeadline) {
  // A pathological corpus — two long sequences of distinct events make
  // full-pattern mining combinatorial (every subsequence is frequent at
  // min_sup 0.5), so the mine cannot finish on its own here; Stop() must
  // cancel it through the registered token rather than wait.
  const std::string path = ::testing::TempDir() + "server_test_explosive.txt";
  {
    std::ofstream out(path);
    for (int i = 0; i < 2; ++i) {
      for (char e = 'a'; e <= 'z'; ++e) out << e << ' ';
      out << '\n';
    }
  }
  CorpusRegistry registry;
  ASSERT_TRUE(registry.Register("explosive", path, CorpusOpenOptions()).ok());
  ServerOptions options;
  options.port = 0;
  Server server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  Result<Socket> socket = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(socket.ok());
  const std::string body =
      R"({"corpus": "explosive", "full": true, "min_sup": 0.5})";
  ASSERT_TRUE(socket
                  ->WriteAll("POST /mine/patterns HTTP/1.1\r\n"
                             "Content-Length: " +
                             std::to_string(body.size()) + "\r\n\r\n" + body)
                  .ok());
  // Give the mine time to get properly underway, then shut down.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const auto started = std::chrono::steady_clock::now();
  server.Stop();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  EXPECT_LT(seconds, 30.0);
  std::remove(path.c_str());
}

TEST_F(ServerTest, ConcurrentColdMinesReportOneMissAndOneHit) {
  // Two requests race into a cold corpus: exactly one pays the index
  // build (a miss) and the other observes the published cache (a hit) —
  // the per-call index_build_seconds signal cannot misattribute the
  // concurrent build the way a global-counter diff could.
  const std::string path = ::testing::TempDir() + "server_test_cold.txt";
  {
    std::ofstream out(path);
    out << "a b c a b c\nc a b a\n";
  }
  CorpusRegistry registry;
  ASSERT_TRUE(registry.Register("cold", path, CorpusOpenOptions()).ok());
  ServerOptions options;
  options.port = 0;
  Server cold(&registry, options);
  ASSERT_TRUE(cold.Start().ok());
  std::thread first([&] {
    EXPECT_EQ(StatusOf(PostJson(cold.port(), "/mine/patterns",
                                R"({"corpus": "cold"})")),
              200);
  });
  std::thread second([&] {
    EXPECT_EQ(StatusOf(PostJson(cold.port(), "/mine/patterns",
                                R"({"corpus": "cold"})")),
              200);
  });
  first.join();
  second.join();
  const std::string body = BodyOf(Get(cold.port(), "/metrics"));
  EXPECT_NE(body.find("specmined_index_cache_misses_total 1"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("specmined_index_cache_hits_total 1"),
            std::string::npos)
      << body;
  cold.Stop();
  std::remove(path.c_str());
}

TEST_F(ServerTest, OversizedBodyIs413) {
  ServerOptions options;
  options.port = 0;
  options.limits.max_body_bytes = 64;
  Server small(&registry_, options);
  ASSERT_TRUE(small.Start().ok());
  std::string big(65, 'x');
  std::string response = PostJson(small.port(), "/mine/patterns", big);
  EXPECT_EQ(StatusOf(response), 413);
  small.Stop();
}

// Launches the real binary (as CI's smoke step does), scrapes the
// ephemeral port, drives one request, and asserts SIGTERM -> exit 0.
TEST(SpecminedBinaryTest, ServesAndExitsZeroOnSigterm) {
  if (access("./specmined", X_OK) != 0) {
    GTEST_SKIP() << "specmined binary not in working directory";
  }
  const std::string traces = ::testing::TempDir() + "specmined_smoke.txt";
  {
    std::ofstream out(traces);
    out << "a b c\na b\n";
  }
  int out_pipe[2];
  ASSERT_EQ(pipe(out_pipe), 0);
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    dup2(out_pipe[1], STDOUT_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    std::string corpus = "demo=" + traces;
    execl("./specmined", "specmined", "--port", "0", "--corpus",
          corpus.c_str(), "--quiet", static_cast<char*>(nullptr));
    _exit(127);
  }
  close(out_pipe[1]);
  // First stdout line: "listening on http://127.0.0.1:PORT".
  std::string banner;
  char c;
  while (read(out_pipe[0], &c, 1) == 1 && c != '\n') banner.push_back(c);
  close(out_pipe[0]);
  size_t colon = banner.rfind(':');
  ASSERT_NE(colon, std::string::npos) << "banner: " << banner;
  const uint16_t port =
      static_cast<uint16_t>(std::atoi(banner.c_str() + colon + 1));
  ASSERT_GT(port, 0) << "banner: " << banner;

  EXPECT_EQ(StatusOf(Get(port, "/healthz")), 200);
  EXPECT_EQ(StatusOf(PostJson(port, "/mine/patterns",
                              R"({"corpus": "demo"})")),
            200);

  kill(pid, SIGTERM);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  std::remove(traces.c_str());
}

}  // namespace
}  // namespace specmine
