// Tests for the streaming specification monitor, including the exactness
// cross-check against the rule miner's statistics.

#include <gtest/gtest.h>

#include "src/rulemine/rule_miner.h"
#include "src/sim/test_suite.h"
#include "src/specmine/monitor.h"
#include "src/support/strings.h"

namespace specmine {
namespace {

SequenceDatabase MakeDb(const std::vector<std::string>& traces) {
  SequenceDatabaseBuilder db;
  for (const auto& t : traces) db.AddTraceFromString(t);
  return db.Build();
}

Pattern P(const SequenceDatabase& db, const std::string& names) {
  Pattern p;
  for (const auto& tok : SplitAndTrim(names, ' ')) {
    EventId id = db.dictionary().Lookup(tok);
    EXPECT_NE(id, kInvalidEvent) << tok;
    p = p.Extend(id);
  }
  return p;
}

Rule MakeRule(const SequenceDatabase& db, const std::string& pre,
              const std::string& post) {
  Rule r;
  r.premise = P(db, pre);
  r.consequent = P(db, post);
  return r;
}

void Feed(SpecificationMonitor* monitor, const SequenceDatabase& db) {
  for (EventSpan seq : db) {
    monitor->BeginTrace();
    for (EventId ev : seq) monitor->OnEvent(ev);
    monitor->EndTrace();
  }
}

TEST(MonitorTest, PointsAndDischargesLockUnlock) {
  SequenceDatabase db = MakeDb({"lock use unlock lock unlock", "lock use"});
  SpecificationMonitor monitor(db.dictionary());
  monitor.AddRule(MakeRule(db, "lock", "unlock"));
  Feed(&monitor, db);
  const MonitorRuleStats& st = monitor.stats(0);
  EXPECT_EQ(st.points, 3u);
  EXPECT_EQ(st.discharged, 2u);
  EXPECT_EQ(st.violations, 1u);
  EXPECT_EQ(st.violating_traces, 1u);
}

TEST(MonitorTest, MultiEventPremiseNeedsStemBeforePoint) {
  // Premise <a, b>: a b alone gives one point at b; "b a b" gives one.
  SequenceDatabase db = MakeDb({"a b c", "b a b c", "b c"});
  SpecificationMonitor monitor(db.dictionary());
  monitor.AddRule(MakeRule(db, "a b", "c"));
  Feed(&monitor, db);
  EXPECT_EQ(monitor.stats(0).points, 2u);
  EXPECT_EQ(monitor.stats(0).discharged, 2u);
  EXPECT_EQ(monitor.stats(0).violations, 0u);
}

TEST(MonitorTest, StemCompletionEventIsNotAPoint) {
  // Premise <a, a>: the first a is the stem, only later a's are points.
  SequenceDatabase db = MakeDb({"a a a b"});
  SpecificationMonitor monitor(db.dictionary());
  monitor.AddRule(MakeRule(db, "a a", "b"));
  Feed(&monitor, db);
  EXPECT_EQ(monitor.stats(0).points, 2u);
  EXPECT_EQ(monitor.stats(0).discharged, 2u);
}

TEST(MonitorTest, MultiEventConsequentInOrder) {
  SequenceDatabase db = MakeDb({"a c b", "a b c"});
  SpecificationMonitor monitor(db.dictionary());
  monitor.AddRule(MakeRule(db, "a", "b c"));
  Feed(&monitor, db);
  // Trace 0: b then nothing -> violation (c before b does not count).
  EXPECT_EQ(monitor.stats(0).points, 2u);
  EXPECT_EQ(monitor.stats(0).discharged, 1u);
  EXPECT_EQ(monitor.stats(0).violations, 1u);
}

TEST(MonitorTest, ObligationNotFedByItsOwnPointEvent) {
  // Rule <a> -> <a>: a single a must NOT discharge itself.
  SequenceDatabase db = MakeDb({"a", "a a"});
  SpecificationMonitor monitor(db.dictionary());
  monitor.AddRule(MakeRule(db, "a", "a"));
  Feed(&monitor, db);
  // Trace 0: 1 point, violated. Trace 1: 2 points, first discharged by
  // the second a, second violated.
  EXPECT_EQ(monitor.stats(0).points, 3u);
  EXPECT_EQ(monitor.stats(0).discharged, 1u);
  EXPECT_EQ(monitor.stats(0).violations, 2u);
}

TEST(MonitorTest, UnknownEventNamesAreInert) {
  SequenceDatabase db = MakeDb({"lock unlock"});
  SpecificationMonitor monitor(db.dictionary());
  monitor.AddRule(MakeRule(db, "lock", "unlock"));
  monitor.BeginTrace();
  monitor.OnEventName("lock");
  monitor.OnEventName("never.seen.before");
  monitor.OnEventName("unlock");
  monitor.EndTrace();
  EXPECT_EQ(monitor.stats(0).points, 1u);
  EXPECT_EQ(monitor.stats(0).discharged, 1u);
}

TEST(MonitorTest, StatsMatchMinerOnSimulatedTraces) {
  // The monitor's streaming counts must reproduce the miner's statistics.
  sim::TestSuiteOptions suite;
  suite.num_traces = 40;
  suite.security.login_failure_probability = 0.1;
  suite.security.missing_entry_probability = 0.1;
  suite.security.noise_probability = 0.3;
  SequenceDatabase db = sim::GenerateSecurityTraces(suite);
  RuleMinerOptions options;
  options.min_s_support = static_cast<uint64_t>(0.5 * db.size());
  options.min_confidence = 0.5;
  options.non_redundant = true;
  RuleSet rules = MineRecurrentRules(db, options);
  ASSERT_GT(rules.size(), 0u);

  SpecificationMonitor monitor(db.dictionary());
  for (const Rule& r : rules.rules()) monitor.AddRule(r);
  Feed(&monitor, db);
  for (size_t i = 0; i < rules.size(); ++i) {
    const MonitorRuleStats& st = monitor.stats(i);
    EXPECT_EQ(st.points, rules[i].premise_points)
        << rules[i].ToString(db.dictionary());
    EXPECT_EQ(st.discharged, rules[i].satisfied_points)
        << rules[i].ToString(db.dictionary());
    EXPECT_EQ(st.points - st.discharged, st.violations);
  }
}

TEST(MonitorTest, BeginTraceResetsState) {
  SequenceDatabase db = MakeDb({"lock unlock"});
  SpecificationMonitor monitor(db.dictionary());
  monitor.AddRule(MakeRule(db, "lock", "unlock"));
  monitor.BeginTrace();
  monitor.OnEventName("lock");
  // Implicit end via BeginTrace: the open obligation becomes a violation.
  monitor.BeginTrace();
  monitor.OnEventName("unlock");  // Must not discharge across traces.
  monitor.EndTrace();
  EXPECT_EQ(monitor.stats(0).points, 1u);
  EXPECT_EQ(monitor.stats(0).discharged, 0u);
  EXPECT_EQ(monitor.stats(0).violations, 1u);
}

}  // namespace
}  // namespace specmine
