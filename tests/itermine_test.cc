// Unit tests for src/itermine: QRE semantics, the projection engine, and
// the full / closed miners on hand-computed examples.

#include <gtest/gtest.h>

#include <map>

#include "src/itermine/brute_force.h"
#include "src/itermine/closed_miner.h"
#include "src/itermine/full_miner.h"
#include "src/itermine/projection.h"
#include "src/itermine/qre_verifier.h"
#include "src/support/strings.h"

namespace specmine {
namespace {

SequenceDatabase MakeDb(const std::vector<std::string>& traces) {
  SequenceDatabaseBuilder db;
  for (const auto& t : traces) db.AddTraceFromString(t);
  return db.Build();
}

Pattern P(const SequenceDatabase& db, const std::string& names) {
  Pattern p;
  for (const auto& tok : SplitAndTrim(names, ' ')) {
    EventId id = db.dictionary().Lookup(tok);
    EXPECT_NE(id, kInvalidEvent) << tok;
    p = p.Extend(id);
  }
  return p;
}

std::map<Pattern, uint64_t> ToMap(const PatternSet& set) {
  std::map<Pattern, uint64_t> out;
  for (const auto& it : set.items()) out[it.pattern] = it.support;
  return out;
}

// ---------------------------------------------------------------------------
// QRE verifier (Definition 4.1).

TEST(QreVerifierTest, IsInstanceBasicAcceptance) {
  SequenceDatabase db = MakeDb({"a x b"});
  // <a, b>: the x in the gap is outside the alphabet -> instance.
  EXPECT_TRUE(IsQreInstance(P(db, "a b"), db[0], 0, 2));
  // Substring must start/end exactly on the pattern events.
  EXPECT_FALSE(IsQreInstance(P(db, "a b"), db[0], 0, 1));
  EXPECT_FALSE(IsQreInstance(P(db, "a b"), db[0], 1, 2));
}

TEST(QreVerifierTest, IsInstanceRejectsAlphabetEventInGap) {
  SequenceDatabase db = MakeDb({"a b b", "a a b"});
  // <a, b> over "a b b" [0..2]: second b is an alphabet event inside.
  EXPECT_FALSE(IsQreInstance(P(db, "a b"), db[0], 0, 2));
  EXPECT_TRUE(IsQreInstance(P(db, "a b"), db[0], 0, 1));
  // "a a b" [0..2]: the second a breaks the chain.
  EXPECT_FALSE(IsQreInstance(P(db, "a b"), db[1], 0, 2));
  EXPECT_TRUE(IsQreInstance(P(db, "a b"), db[1], 1, 2));
}

TEST(QreVerifierTest, IsInstanceWithRepeatedPatternEvents) {
  SequenceDatabase db = MakeDb({"a x a y b"});
  EXPECT_TRUE(IsQreInstance(P(db, "a a b"), db[0], 0, 4));
  EXPECT_FALSE(IsQreInstance(P(db, "a b"), db[0], 0, 4));
}

TEST(QreVerifierTest, FindInstancesTelephoneExample) {
  // The paper's MSC conformance examples (Section 3.2): out-of-order and
  // duplicated events do not form instances.
  SequenceDatabase db = MakeDb({
      "off_hook seizure ring answer ring connection",
      "off_hook seizure ring answer answer connection",
      "off_hook seizure ring answer connection",
  });
  Pattern protocol = P(db, "off_hook seizure ring answer connection");
  EXPECT_TRUE(FindInstances(protocol, db[0], 0).empty());
  EXPECT_TRUE(FindInstances(protocol, db[1], 1).empty());
  InstanceList ok = FindInstances(protocol, db[2], 2);
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(ok[0].start, 0u);
  EXPECT_EQ(ok[0].end, 4u);
}

TEST(QreVerifierTest, FindInstancesRepetitionWithinSequence) {
  SequenceDatabase db = MakeDb({"lock use unlock lock unlock x"});
  InstanceList insts = FindInstances(P(db, "lock unlock"), db[0], 0);
  ASSERT_EQ(insts.size(), 2u);
  EXPECT_EQ(insts[0], (IterInstance{0, 0, 2}));
  EXPECT_EQ(insts[1], (IterInstance{0, 3, 4}));
}

TEST(QreVerifierTest, SelfOverlappingPattern) {
  SequenceDatabase db = MakeDb({"a a a"});
  InstanceList insts = FindInstances(P(db, "a a"), db[0], 0);
  ASSERT_EQ(insts.size(), 2u);
  EXPECT_EQ(insts[0], (IterInstance{0, 0, 1}));
  EXPECT_EQ(insts[1], (IterInstance{0, 1, 2}));
}

TEST(QreVerifierTest, CountInstancesAcrossSequences) {
  SequenceDatabase db = MakeDb({"a b a b", "a b", "b a"});
  EXPECT_EQ(CountInstances(P(db, "a b"), db), 3u);
}

// ---------------------------------------------------------------------------
// Projection engine.

TEST(ProjectionTest, SingleEventInstances) {
  SequenceDatabase db = MakeDb({"a b a", "b a"});
  PositionIndex index(db);
  InstanceList insts = SingleEventInstances(index, db.dictionary().Lookup("a"));
  ASSERT_EQ(insts.size(), 3u);
  EXPECT_EQ(insts[0], (IterInstance{0, 0, 0}));
  EXPECT_EQ(insts[1], (IterInstance{0, 2, 2}));
  EXPECT_EQ(insts[2], (IterInstance{1, 1, 1}));
}

TEST(ProjectionTest, ForwardExtensionsMatchVerifier) {
  SequenceDatabase db = MakeDb({"a x b a b c", "a c b"});
  PositionIndex index(db);
  Pattern a = P(db, "a");
  auto ext = ForwardExtensions(index, a, FindAllInstances(a, db));
  for (const auto& [ev, instances] : ext) {
    Pattern q = a.Extend(ev);
    EXPECT_EQ(instances, FindAllInstances(q, db)) << q.ToString();
  }
}

TEST(ProjectionTest, ForwardExtensionGapCheck) {
  // Extending <a, c> by 'x': x occurs inside the a..c gap in trace 0, so
  // only trace 1 extends.
  SequenceDatabase db = MakeDb({"a x c x", "a c x"});
  PositionIndex index(db);
  Pattern ac = P(db, "a c");
  InstanceList insts = FindAllInstances(ac, db);
  ASSERT_EQ(insts.size(), 2u);
  auto ext = ForwardExtensions(index, ac, insts);
  EventId x = db.dictionary().Lookup("x");
  ASSERT_EQ(ext.count(x), 1u);
  EXPECT_EQ(ext.at(x), FindAllInstances(P(db, "a c x"), db));
  EXPECT_EQ(ext.at(x).size(), 1u);
  EXPECT_EQ(ext.at(x)[0].seq, 1u);
}

TEST(ProjectionTest, ForwardExtensionStopsAtAlphabetEvent) {
  SequenceDatabase db = MakeDb({"a b c"});
  PositionIndex index(db);
  Pattern ab = P(db, "a b");
  auto ext = ForwardExtensions(index, ab, FindAllInstances(ab, db));
  // After the instance, c extends; beyond it nothing else (no alphabet
  // event stops the scan here — c is first).
  EXPECT_EQ(ext.count(db.dictionary().Lookup("c")), 1u);
  // Extending by 'a' (alphabet event): next a after end does not exist.
  EXPECT_EQ(ext.count(db.dictionary().Lookup("a")), 0u);
}

TEST(ProjectionTest, ForwardExtensionByAlphabetEvent) {
  SequenceDatabase db = MakeDb({"a b a b"});
  PositionIndex index(db);
  Pattern ab = P(db, "a b");
  auto ext = ForwardExtensions(index, ab, FindAllInstances(ab, db));
  EventId a = db.dictionary().Lookup("a");
  ASSERT_EQ(ext.count(a), 1u);
  // <a, b, a>: one instance (0..2), from the first <a, b> instance.
  EXPECT_EQ(ext.at(a), FindAllInstances(P(db, "a b a"), db));
}

TEST(ProjectionTest, BackwardExtensionsSupportsAndAdjacency) {
  SequenceDatabase db = MakeDb({"x a b", "y x a b"});
  PositionIndex index(db);
  Pattern ab = P(db, "a b");
  auto back = BackwardExtensions(index, ab, FindAllInstances(ab, db));
  EventId x = db.dictionary().Lookup("x");
  EventId y = db.dictionary().Lookup("y");
  ASSERT_EQ(back.count(x), 1u);
  EXPECT_EQ(back.at(x).support, 2u);
  EXPECT_TRUE(back.at(x).all_adjacent);
  // y is behind x; scanning back collects it as a first-seen non-alphabet
  // candidate in trace 1 only, not adjacent.
  ASSERT_EQ(back.count(y), 1u);
  EXPECT_EQ(back.at(y).support, 1u);
  EXPECT_FALSE(back.at(y).all_adjacent);
}

TEST(ProjectionTest, BackwardExtensionGapCheck) {
  // <a, b> instance with x inside the gap cannot extend backward by x.
  SequenceDatabase db = MakeDb({"x a x b"});
  PositionIndex index(db);
  Pattern ab = P(db, "a b");
  auto back = BackwardExtensions(index, ab, FindAllInstances(ab, db));
  EXPECT_EQ(back.count(db.dictionary().Lookup("x")), 0u);
}

TEST(ProjectionTest, BackwardExtensionStopsAtAlphabetEvent) {
  SequenceDatabase db = MakeDb({"b y a b"});
  PositionIndex index(db);
  Pattern ab = P(db, "a b");
  auto back = BackwardExtensions(index, ab, FindAllInstances(ab, db));
  EventId b = db.dictionary().Lookup("b");
  EventId y = db.dictionary().Lookup("y");
  // Scanning back from a: y first (candidate), then b (alphabet, stop).
  ASSERT_EQ(back.count(y), 1u);
  ASSERT_EQ(back.count(b), 1u);
  EXPECT_EQ(back.at(b).support, 1u);
  EXPECT_FALSE(back.at(b).all_adjacent);
}

TEST(ProjectionTest, UniformInfixAbsorberDetected) {
  // Every <a, b> instance has exactly one c in the gap.
  SequenceDatabase db = MakeDb({"a c b", "a x c b"});
  PositionIndex index(db);
  Pattern ab = P(db, "a b");
  EXPECT_TRUE(HasUniformInfixAbsorber(db, ab, FindAllInstances(ab, db)));
}

TEST(ProjectionTest, UniformInfixAbsorberRepeatedEvent) {
  // Gap always contains c twice: <a, c, b> has support 0, but <a, c, c, b>
  // absorbs <a, b> — the generalized profile check catches it.
  SequenceDatabase db = MakeDb({"a c c b", "a c x c b"});
  PositionIndex index(db);
  Pattern ab = P(db, "a b");
  EXPECT_TRUE(HasUniformInfixAbsorber(db, ab, FindAllInstances(ab, db)));
  EXPECT_EQ(CountInstances(P(db, "a c b"), db), 0u);
  EXPECT_EQ(CountInstances(P(db, "a c c b"), db), 2u);
}

TEST(ProjectionTest, NonUniformProfilesNotAbsorbing) {
  SequenceDatabase db = MakeDb({"a c b", "a b"});
  PositionIndex index(db);
  Pattern ab = P(db, "a b");
  EXPECT_FALSE(HasUniformInfixAbsorber(db, ab, FindAllInstances(ab, db)));
}

TEST(ProjectionTest, ProfilePositionMatters) {
  // c once in gap 1 vs once in gap 2: profiles differ.
  SequenceDatabase db = MakeDb({"a c b d", "a b c d"});
  PositionIndex index(db);
  Pattern abd = P(db, "a b d");
  ASSERT_EQ(FindAllInstances(abd, db).size(), 2u);
  EXPECT_FALSE(HasUniformInfixAbsorber(db, abd, FindAllInstances(abd, db)));
}

// ---------------------------------------------------------------------------
// Full miner.

TEST(FullIterMinerTest, LockUnlockExample) {
  SequenceDatabase db = MakeDb({
      "lock use unlock lock unlock",
      "lock unlock x lock use use unlock",
  });
  IterMinerOptions options;
  options.min_support = 4;
  auto m = ToMap(MineFrequentIterative(db, options));
  EXPECT_EQ(m.at(P(db, "lock")), 4u);
  EXPECT_EQ(m.at(P(db, "unlock")), 4u);
  EXPECT_EQ(m.at(P(db, "lock unlock")), 4u);
  EXPECT_EQ(m.count(P(db, "use")), 0u);  // Support 3 < 4.
}

TEST(FullIterMinerTest, SupportsCountInstancesWithinAndAcross) {
  SequenceDatabase db = MakeDb({"a b a b", "a b"});
  IterMinerOptions options;
  options.min_support = 1;
  auto m = ToMap(MineFrequentIterative(db, options));
  EXPECT_EQ(m.at(P(db, "a b")), 3u);
  EXPECT_EQ(m.at(P(db, "a b a")), 1u);
  EXPECT_EQ(m.at(P(db, "a b a b")), 1u);
}

TEST(FullIterMinerTest, MatchesBruteForce) {
  SequenceDatabase db = MakeDb({"a b c a b", "b a c b a c", "c c a b"});
  for (uint64_t min_sup : {1u, 2u, 3u}) {
    IterMinerOptions options;
    options.min_support = min_sup;
    auto got = ToMap(MineFrequentIterative(db, options));
    auto want = ToMap(BruteForceFrequentIterative(db, min_sup));
    EXPECT_EQ(got, want) << "min_sup=" << min_sup;
  }
}

TEST(FullIterMinerTest, MaxLengthRespected) {
  SequenceDatabase db = MakeDb({"a b c d"});
  IterMinerOptions options;
  options.min_support = 1;
  options.max_length = 2;
  PatternSet out = MineFrequentIterative(db, options);
  for (const auto& it : out.items()) EXPECT_LE(it.pattern.size(), 2u);
}

TEST(FullIterMinerTest, TruncationReported) {
  SequenceDatabase db = MakeDb({"a b c d e"});
  IterMinerOptions options;
  options.min_support = 1;
  options.max_patterns = 3;
  IterMinerStats stats;
  PatternSet out = MineFrequentIterative(db, options, &stats);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(stats.truncated);
}

// ---------------------------------------------------------------------------
// Closed miner.

TEST(ClosedIterMinerTest, AbsorbedPatternsDropped) {
  // Every a is followed by b with nothing between; <a> and <b> are
  // absorbed by <a, b>.
  SequenceDatabase db = MakeDb({"a b x a b", "y a b"});
  ClosedIterMinerOptions options;
  options.min_support = 2;
  auto m = ToMap(MineClosedIterative(db, options));
  EXPECT_EQ(m.count(P(db, "a")), 0u);
  EXPECT_EQ(m.count(P(db, "b")), 0u);
  EXPECT_EQ(m.at(P(db, "a b")), 3u);
}

TEST(ClosedIterMinerTest, MatchesBruteForceDefinitionLevel) {
  std::vector<std::vector<std::string>> dbs = {
      {"a b c a b", "b a c b a c", "c c a b"},
      {"lock use unlock lock unlock", "lock unlock use"},
      {"a c b", "a x c b"},          // Uniform infix.
      {"a c c b", "a c x c b"},      // Repeated-event infix.
      {"a b a b a b", "b a b a"},    // Heavy overlap.
  };
  for (size_t i = 0; i < dbs.size(); ++i) {
    SequenceDatabase db = MakeDb(dbs[i]);
    for (uint64_t min_sup : {1u, 2u}) {
      ClosedIterMinerOptions options;
      options.min_support = min_sup;
      auto got = ToMap(MineClosedIterative(db, options));
      auto want = ToMap(BruteForceClosedIterative(db, min_sup));
      EXPECT_EQ(got, want) << "db=" << i << " min_sup=" << min_sup;
    }
  }
}

TEST(ClosedIterMinerTest, ClosedSetIsSubsetOfFullWithEqualSupports) {
  SequenceDatabase db = MakeDb({"a b c a b c", "c a b", "b c a"});
  IterMinerOptions full_options;
  full_options.min_support = 2;
  auto full = ToMap(MineFrequentIterative(db, full_options));
  ClosedIterMinerOptions closed_options;
  closed_options.min_support = 2;
  auto closed = ToMap(MineClosedIterative(db, closed_options));
  EXPECT_LE(closed.size(), full.size());
  for (const auto& [p, sup] : closed) {
    ASSERT_EQ(full.count(p), 1u) << p.ToString();
    EXPECT_EQ(full.at(p), sup);
  }
}

TEST(ClosedIterMinerTest, PrunesSubtrees) {
  // Repetitive looping data triggers the P1 adjacency prune.
  SequenceDatabase db = MakeDb({
      "a b c a b c a b c a b c",
      "a b c a b c a b c",
  });
  ClosedIterMinerOptions with;
  with.min_support = 2;
  IterMinerStats stats_with;
  auto closed = ToMap(MineClosedIterative(db, with, &stats_with));
  ClosedIterMinerOptions without = with;
  without.prefix_prune = false;
  without.aggressive_prefix_prune = false;
  IterMinerStats stats_without;
  auto closed_unpruned = ToMap(MineClosedIterative(db, without, &stats_without));
  EXPECT_EQ(closed, closed_unpruned);
  EXPECT_GT(stats_with.subtrees_pruned, 0u);
  EXPECT_LT(stats_with.nodes_visited, stats_without.nodes_visited);
}

TEST(ClosedIterMinerTest, InstanceCorrespondenceOracleHelpers) {
  SequenceDatabase db = MakeDb({"a b", "a b", "a x b"});
  // <a> corresponds totally to <a, b> (same number of instances, each
  // contained).
  EXPECT_TRUE(
      HasTotalInstanceCorrespondence(db, P(db, "a"), P(db, "a b")));
  SequenceDatabase db2 = MakeDb({"a b", "a"});
  // Second a has no containing <a, b> instance.
  EXPECT_FALSE(
      HasTotalInstanceCorrespondence(db2, P(db2, "a"), P(db2, "a b")));
}

}  // namespace
}  // namespace specmine
