// Unit tests for src/synth: QUEST-style generator and planted-pattern
// generator.

#include <gtest/gtest.h>

#include "src/itermine/full_miner.h"
#include "src/itermine/qre_verifier.h"
#include "src/synth/planted_generator.h"
#include "src/synth/quest_generator.h"
#include "src/trace/database_stats.h"

namespace specmine {
namespace {

TEST(QuestParamsTest, LabelMatchesPaperNotation) {
  EXPECT_EQ(QuestParams::D5C20N10S20().Label(), "D5C20N10S20");
  QuestParams p;
  p.d_sequences_thousands = 0.5;
  p.c_avg_sequence_length = 15;
  p.n_events_thousands = 1;
  p.s_avg_pattern_length = 8;
  EXPECT_EQ(p.Label(), "D0.5C15N1S8");
}

TEST(QuestGeneratorTest, RejectsBadParameters) {
  QuestParams p;
  p.d_sequences_thousands = 0;
  EXPECT_FALSE(GenerateQuest(p).ok());
  p = QuestParams();
  p.n_events_thousands = -1;
  EXPECT_FALSE(GenerateQuest(p).ok());
  p = QuestParams();
  p.num_seed_patterns = 0;
  EXPECT_FALSE(GenerateQuest(p).ok());
}

QuestParams SmallParams() {
  QuestParams p;
  p.d_sequences_thousands = 0.2;  // 200 sequences.
  p.c_avg_sequence_length = 12;
  p.n_events_thousands = 0.05;  // 50 events.
  p.s_avg_pattern_length = 4;
  p.num_seed_patterns = 20;
  return p;
}

TEST(QuestGeneratorTest, HonoursShapeParameters) {
  Result<SequenceDatabase> db = GenerateQuest(SmallParams());
  ASSERT_TRUE(db.ok());
  DatabaseStats st = ComputeStats(*db);
  EXPECT_EQ(st.num_sequences, 200u);
  EXPECT_EQ(st.num_distinct_events, 50u);
  // Average length should be near C (within 50% tolerance: pattern
  // embedding may overshoot the Poisson target slightly).
  EXPECT_GT(st.avg_length, 6.0);
  EXPECT_LT(st.avg_length, 24.0);
}

TEST(QuestGeneratorTest, DeterministicForSeed) {
  Result<SequenceDatabase> a = GenerateQuest(SmallParams());
  Result<SequenceDatabase> b = GenerateQuest(SmallParams());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (SeqId s = 0; s < a->size(); ++s) EXPECT_EQ((*a)[s], (*b)[s]);
  QuestParams other = SmallParams();
  other.seed += 1;
  Result<SequenceDatabase> c = GenerateQuest(other);
  ASSERT_TRUE(c.ok());
  bool any_diff = c->size() != a->size();
  for (SeqId s = 0; !any_diff && s < a->size(); ++s) {
    any_diff = !((*a)[s] == (*c)[s]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(QuestGeneratorTest, PlantsRepeatedPatterns) {
  // The modification the paper describes: patterns repeat within and
  // across sequences, so frequent iterative patterns of length >= 2 must
  // exist at a support well above what independent noise would produce.
  Result<SequenceDatabase> db = GenerateQuest(SmallParams());
  ASSERT_TRUE(db.ok());
  IterMinerOptions options;
  options.min_support = 20;
  options.max_length = 3;
  PatternSet mined = MineFrequentIterative(*db, options);
  bool found_multi = false;
  for (const auto& it : mined.items()) {
    if (it.pattern.size() >= 2) found_multi = true;
  }
  EXPECT_TRUE(found_multi);
}

TEST(PlantedGeneratorTest, RejectsBadParameters) {
  PlantedParams p;
  p.num_sequences = 0;
  EXPECT_FALSE(GeneratePlanted(p).ok());
  p = PlantedParams();
  p.patterns.push_back(PlantedPattern{{}, 1, 1.0});
  EXPECT_FALSE(GeneratePlanted(p).ok());
  p = PlantedParams();
  p.patterns.push_back(PlantedPattern{{"a"}, 1, 1.5});
  EXPECT_FALSE(GeneratePlanted(p).ok());
  p = PlantedParams();
  p.patterns.push_back(PlantedPattern{{"a"}, 0, 1.0});
  EXPECT_FALSE(GeneratePlanted(p).ok());
}

TEST(PlantedGeneratorTest, ExpectedSupportsMatchMiner) {
  PlantedParams params;
  params.num_sequences = 40;
  params.seed = 123;
  params.patterns.push_back(PlantedPattern{{"lock", "unlock"}, 2, 1.0});
  params.patterns.push_back(PlantedPattern{{"open", "read", "close"}, 1, 0.5});
  Result<PlantedDatabase> planted = GeneratePlanted(params);
  ASSERT_TRUE(planted.ok());
  const SequenceDatabase& db = planted->db;
  // Disjoint alphabets: planted events never collide with noise, so each
  // planting is visible; two plantings per sequence in all 40 sequences.
  EXPECT_GE(planted->expected_instances[0], 80u);
  EXPECT_EQ(planted->expected_sequences[0], 40u);
  EXPECT_EQ(planted->expected_sequences[1], 20u);
  // The production miner must reproduce the verifier-derived counts.
  IterMinerOptions options;
  options.min_support = 10;
  options.max_length = 3;
  PatternSet mined = MineFrequentIterative(db, options);
  Pattern lock_unlock{db.dictionary().Lookup("lock"),
                      db.dictionary().Lookup("unlock")};
  EXPECT_EQ(mined.SupportOf(lock_unlock), planted->expected_instances[0]);
  Pattern orc{db.dictionary().Lookup("open"), db.dictionary().Lookup("read"),
              db.dictionary().Lookup("close")};
  EXPECT_EQ(mined.SupportOf(orc), planted->expected_instances[1]);
}

TEST(PlantedGeneratorTest, FractionSelectsPrefixOfSequences) {
  PlantedParams params;
  params.num_sequences = 10;
  params.max_noise_run = 0;
  params.patterns.push_back(PlantedPattern{{"a", "b"}, 1, 0.3});
  Result<PlantedDatabase> planted = GeneratePlanted(params);
  ASSERT_TRUE(planted.ok());
  EXPECT_EQ(planted->expected_sequences[0], 3u);
  // With no noise, receiving traces are exactly "a b".
  EXPECT_EQ(planted->db[0].size(), 2u);
  EXPECT_TRUE(planted->db[9].empty());
}

TEST(PlantedGeneratorTest, DeterministicForSeed) {
  PlantedParams params;
  params.num_sequences = 15;
  params.patterns.push_back(PlantedPattern{{"x", "y", "z"}, 1, 1.0});
  Result<PlantedDatabase> a = GeneratePlanted(params);
  Result<PlantedDatabase> b = GeneratePlanted(params);
  ASSERT_TRUE(a.ok() && b.ok());
  for (SeqId s = 0; s < a->db.size(); ++s) {
    EXPECT_EQ(a->db[s], b->db[s]);
  }
}

TEST(PlantedGeneratorTest, SelfOverlapCountedByVerifier) {
  // <a, a> planted twice per sequence: straddling instances make the true
  // count exceed 2 per sequence; the generator must report the verifier
  // truth, not the naive 2.
  PlantedParams params;
  params.num_sequences = 5;
  params.max_noise_run = 0;
  params.patterns.push_back(PlantedPattern{{"a", "a"}, 2, 1.0});
  Result<PlantedDatabase> planted = GeneratePlanted(params);
  ASSERT_TRUE(planted.ok());
  // Each trace is "a a a a": instances (0,1), (1,2), (2,3) -> 3 each.
  EXPECT_EQ(planted->expected_instances[0], 15u);
}

}  // namespace
}  // namespace specmine
