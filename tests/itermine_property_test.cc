// Property-based tests for iterative pattern mining, parameterized over
// seeded random databases: projection-vs-verifier agreement, apriori
// anti-monotonicity, full/closed cross-checks against the brute-force
// Definition-4.2 oracle, prune soundness, and coverage of the full set by
// the closed set.

#include <gtest/gtest.h>

#include <map>

#include "src/itermine/brute_force.h"
#include "src/itermine/closed_miner.h"
#include "src/itermine/full_miner.h"
#include "src/itermine/projection.h"
#include "src/itermine/qre_verifier.h"
#include "src/support/random.h"

namespace specmine {
namespace {

struct RandomDbParams {
  uint64_t seed;
  size_t num_seqs;
  size_t max_len;
  size_t alphabet;
};

SequenceDatabase RandomDb(const RandomDbParams& p) {
  Rng rng(p.seed);
  SequenceDatabaseBuilder db;
  for (size_t i = 0; i < p.alphabet; ++i) {
    db.mutable_dictionary()->Intern("e" + std::to_string(i));
  }
  for (size_t s = 0; s < p.num_seqs; ++s) {
    Sequence seq;
    size_t len = 1 + rng.Uniform(p.max_len);
    for (size_t k = 0; k < len; ++k) {
      seq.Append(static_cast<EventId>(rng.Uniform(p.alphabet)));
    }
    db.AddSequence(seq);
  }
  return db.Build();
}

std::map<Pattern, uint64_t> ToMap(const PatternSet& set) {
  std::map<Pattern, uint64_t> out;
  for (const auto& it : set.items()) out[it.pattern] = it.support;
  return out;
}

class IterMinePropertyTest : public ::testing::TestWithParam<RandomDbParams> {
};

TEST_P(IterMinePropertyTest, FullMinerMatchesBruteForce) {
  SequenceDatabase db = RandomDb(GetParam());
  for (uint64_t min_sup : {1u, 2u, 3u}) {
    IterMinerOptions options;
    options.min_support = min_sup;
    auto got = ToMap(MineFrequentIterative(db, options));
    auto want = ToMap(BruteForceFrequentIterative(db, min_sup));
    ASSERT_EQ(got, want) << "min_sup=" << min_sup;
  }
}

TEST_P(IterMinePropertyTest, SupportsAgreeWithIndependentVerifier) {
  SequenceDatabase db = RandomDb(GetParam());
  IterMinerOptions options;
  options.min_support = 2;
  PatternSet mined = MineFrequentIterative(db, options);
  for (const auto& it : mined.items()) {
    ASSERT_EQ(it.support, CountInstances(it.pattern, db))
        << it.pattern.ToString();
  }
}

TEST_P(IterMinePropertyTest, AprioriAntiMonotone) {
  // Theorem 1: sup(P ++ e) <= sup(P) and sup(e ++ P) <= sup(P).
  SequenceDatabase db = RandomDb(GetParam());
  IterMinerOptions options;
  options.min_support = 1;
  options.max_length = 3;
  PatternSet mined = MineFrequentIterative(db, options);
  for (const auto& it : mined.items()) {
    for (EventId ev = 0; ev < db.dictionary().size(); ++ev) {
      ASSERT_LE(CountInstances(it.pattern.Extend(ev), db), it.support);
      ASSERT_LE(CountInstances(it.pattern.Prepend(ev), db), it.support);
    }
  }
}

TEST_P(IterMinePropertyTest, InstancesAreValidQreMatchesAndKeyedByStart) {
  SequenceDatabase db = RandomDb(GetParam());
  IterMinerOptions options;
  options.min_support = 2;
  options.max_length = 4;
  PatternSet mined = MineFrequentIterative(db, options);
  for (const auto& it : mined.items()) {
    InstanceList insts = FindAllInstances(it.pattern, db);
    for (size_t i = 0; i < insts.size(); ++i) {
      ASSERT_TRUE(IsQreInstance(it.pattern, db[insts[i].seq], insts[i].start,
                                insts[i].end));
      if (i > 0 && insts[i].seq == insts[i - 1].seq) {
        // Unique per start position.
        ASSERT_GT(insts[i].start, insts[i - 1].start);
      }
    }
  }
}

TEST_P(IterMinePropertyTest, ClosedMinerMatchesDefinitionOracle) {
  SequenceDatabase db = RandomDb(GetParam());
  for (uint64_t min_sup : {1u, 2u, 3u}) {
    ClosedIterMinerOptions options;
    options.min_support = min_sup;
    auto got = ToMap(MineClosedIterative(db, options));
    auto want = ToMap(BruteForceClosedIterative(db, min_sup));
    ASSERT_EQ(got, want) << "min_sup=" << min_sup;
  }
}

TEST_P(IterMinePropertyTest, PrunesPreserveOutput) {
  SequenceDatabase db = RandomDb(GetParam());
  ClosedIterMinerOptions baseline;
  baseline.min_support = 2;
  baseline.prefix_prune = false;
  baseline.aggressive_prefix_prune = false;
  auto want = ToMap(MineClosedIterative(db, baseline));

  ClosedIterMinerOptions p1_only = baseline;
  p1_only.prefix_prune = true;
  ASSERT_EQ(ToMap(MineClosedIterative(db, p1_only)), want) << "P1 diverged";

  ClosedIterMinerOptions p1_p2 = p1_only;
  p1_p2.aggressive_prefix_prune = true;
  ASSERT_EQ(ToMap(MineClosedIterative(db, p1_p2)), want) << "P2 diverged";
}

TEST_P(IterMinePropertyTest, EveryFrequentPatternAbsorbedByClosedOne) {
  // Completeness of the closed representation: every frequent pattern has
  // a closed super-sequence (or equal) with the same support and total
  // instance correspondence.
  SequenceDatabase db = RandomDb(GetParam());
  const uint64_t min_sup = 2;
  auto full = BruteForceFrequentIterative(db, min_sup);
  ClosedIterMinerOptions options;
  options.min_support = min_sup;
  PatternSet closed = MineClosedIterative(db, options);
  for (const auto& fp : full.items()) {
    bool covered = false;
    for (const auto& cp : closed.items()) {
      if (cp.support != fp.support) continue;
      if (!fp.pattern.IsSubsequenceOf(cp.pattern)) continue;
      if (HasTotalInstanceCorrespondence(db, fp.pattern, cp.pattern)) {
        covered = true;
        break;
      }
    }
    ASSERT_TRUE(covered) << fp.pattern.ToString();
  }
}

TEST_P(IterMinePropertyTest, ClosedCountNeverExceedsFullCount) {
  SequenceDatabase db = RandomDb(GetParam());
  for (uint64_t min_sup : {1u, 2u}) {
    IterMinerOptions fo;
    fo.min_support = min_sup;
    ClosedIterMinerOptions co;
    co.min_support = min_sup;
    EXPECT_LE(MineClosedIterative(db, co).size(),
              MineFrequentIterative(db, fo).size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatabases, IterMinePropertyTest,
    ::testing::Values(
        // Small alphabets force heavy event repetition (worst case for QRE
        // chaining); larger ones exercise sparse projections.
        RandomDbParams{11, 4, 6, 2}, RandomDbParams{12, 4, 6, 3},
        RandomDbParams{13, 5, 8, 3}, RandomDbParams{14, 5, 8, 4},
        RandomDbParams{15, 6, 7, 5}, RandomDbParams{16, 3, 10, 3},
        RandomDbParams{17, 8, 5, 4}, RandomDbParams{18, 6, 9, 2},
        RandomDbParams{19, 7, 6, 6}, RandomDbParams{20, 5, 12, 4}),
    [](const ::testing::TestParamInfo<RandomDbParams>& info) {
      const RandomDbParams& p = info.param;
      return "seed" + std::to_string(p.seed) + "n" +
             std::to_string(p.num_seqs) + "len" + std::to_string(p.max_len) +
             "a" + std::to_string(p.alphabet);
    });

}  // namespace
}  // namespace specmine
