// Tests for the specmine CLI (driven through RunCli with captured
// streams; files go through a per-test temp directory).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/specmine/cli.h"

namespace specmine {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "cli_test_traces.txt";
    std::ofstream out(path_);
    out << "lock use unlock\n";
    out << "lock unlock lock unlock\n";
    out << "x lock y unlock\n";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  int Run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return RunCli(args, out_, err_);
  }

  std::string path_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, NoArgsPrintsUsageAndFails) {
  EXPECT_EQ(Run({}), 2);
  EXPECT_NE(out_.str().find("usage:"), std::string::npos);
}

TEST_F(CliTest, HelpSucceeds) {
  EXPECT_EQ(Run({"help"}), 0);
  EXPECT_NE(out_.str().find("mine-rules"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_EQ(Run({"frobnicate"}), 2);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, StatsPrintsShape) {
  EXPECT_EQ(Run({"stats", path_}), 0);
  EXPECT_NE(out_.str().find("3 sequences"), std::string::npos);
}

TEST_F(CliTest, StatsMissingFileFails) {
  EXPECT_EQ(Run({"stats", "/no/such/file"}), 5);
  EXPECT_NE(err_.str().find("IOError"), std::string::npos);
}

TEST_F(CliTest, StatsTracePrintsOneTrace) {
  EXPECT_EQ(Run({"stats", path_, "--trace", "0"}), 0);
  EXPECT_NE(out_.str().find("trace 0: lock use unlock"), std::string::npos);
}

TEST_F(CliTest, StatsTraceOutOfRangeIsAnErrorNotACrash) {
  EXPECT_EQ(Run({"stats", path_, "--trace", "17"}), 3);
  EXPECT_NE(err_.str().find("OutOfRange"), std::string::npos);
  EXPECT_NE(err_.str().find("17"), std::string::npos);
}

TEST_F(CliTest, PackThenMineFromSmdbMatchesTextOutput) {
  const std::string packed = ::testing::TempDir() + "cli_test_traces.smdb";
  EXPECT_EQ(Run({"pack", path_, packed}), 0);
  EXPECT_NE(out_.str().find("packed"), std::string::npos);

  EXPECT_EQ(Run({"mine-patterns", path_, "--min-sup", "0.6"}), 0);
  const std::string from_text = out_.str();
  EXPECT_EQ(Run({"mine-patterns", packed, "--min-sup", "0.6"}), 0);
  const std::string from_smdb = out_.str();
  // Identical output except the timing line (wall-clock differs).
  auto strip_timing = [](std::string s) {
    const size_t pos = s.find("timing:");
    const size_t end = s.find('\n', pos);
    return s.substr(0, pos) + s.substr(end + 1);
  };
  EXPECT_EQ(strip_timing(from_text), strip_timing(from_smdb));

  EXPECT_EQ(Run({"stats", packed}), 0);
  EXPECT_NE(out_.str().find("3 sequences"), std::string::npos);
  std::remove(packed.c_str());
}

TEST_F(CliTest, PackOntoItselfDoesNotDestroyTheInput) {
  const std::string packed = ::testing::TempDir() + "cli_test_selfpack.smdb";
  ASSERT_EQ(Run({"pack", path_, packed}), 0);
  // Repacking a mapped database onto its own path must neither crash nor
  // corrupt it (the writer goes through a temp file + rename).
  EXPECT_EQ(Run({"pack", packed, packed}), 0);
  EXPECT_EQ(Run({"stats", packed}), 0);
  EXPECT_NE(out_.str().find("3 sequences"), std::string::npos);
  std::remove(packed.c_str());
}

TEST_F(CliTest, PackShardedThenMineMatchesSmdbOutput) {
  const std::string packed = ::testing::TempDir() + "cli_test_set.smdb";
  const std::string sharded = ::testing::TempDir() + "cli_test_set.smdbset";
  ASSERT_EQ(Run({"pack", path_, packed}), 0);
  // Tiny bound: several shards with remapped local dictionaries.
  ASSERT_EQ(Run({"pack", path_, sharded, "--shard-bytes", "200"}), 0);
  EXPECT_NE(out_.str().find("shards"), std::string::npos);

  EXPECT_EQ(Run({"stats", sharded}), 0);
  EXPECT_NE(out_.str().find("3 sequences"), std::string::npos);
  EXPECT_NE(out_.str().find("shards:"), std::string::npos);

  auto strip_timing = [](std::string s) {
    const size_t pos = s.find("timing:");
    if (pos == std::string::npos) return s;
    const size_t end = s.find('\n', pos);
    return s.substr(0, pos) + s.substr(end + 1);
  };
  // Closed (merged path) and --full (per-shard parallel path) both match
  // the single-file output — the sharded-equivalence contract at the CLI.
  EXPECT_EQ(Run({"mine-patterns", packed, "--min-sup", "0.6"}), 0);
  const std::string closed_smdb = out_.str();
  EXPECT_EQ(Run({"mine-patterns", sharded, "--min-sup", "0.6"}), 0);
  EXPECT_EQ(strip_timing(closed_smdb), strip_timing(out_.str()));

  EXPECT_EQ(Run({"mine-patterns", packed, "--full", "--min-sup", "0.6"}), 0);
  const std::string full_smdb = out_.str();
  EXPECT_EQ(Run({"mine-patterns", sharded, "--full", "--min-sup", "0.6"}),
            0);
  EXPECT_EQ(strip_timing(full_smdb), strip_timing(out_.str()));

  EXPECT_EQ(Run({"mine-rules", packed}), 0);
  const std::string rules_smdb = out_.str();
  EXPECT_EQ(Run({"mine-rules", sharded}), 0);
  EXPECT_EQ(rules_smdb, out_.str());
  std::remove(packed.c_str());
  std::remove(sharded.c_str());
}

TEST_F(CliTest, PackShardBytesRequiresSmdbSetOutput) {
  const std::string packed = ::testing::TempDir() + "cli_test_req.smdb";
  EXPECT_EQ(Run({"pack", path_, packed, "--shard-bytes", "200"}), 2);
  EXPECT_NE(err_.str().find(".smdbset"), std::string::npos);
}

TEST_F(CliTest, MineFromMissingShardSetFailsCleanly) {
  EXPECT_EQ(Run({"mine-rules", "/no/such/corpus.smdbset"}), 5);
  EXPECT_NE(err_.str().find("IOError"), std::string::npos);
}

TEST_F(CliTest, StatsTraceHugeIdReportsTheRequestedId) {
  EXPECT_EQ(Run({"stats", path_, "--trace", "5000000000"}), 3);
  EXPECT_NE(err_.str().find("5000000000"), std::string::npos);
}

TEST_F(CliTest, PackMissingOutputPathFails) {
  EXPECT_EQ(Run({"pack", path_}), 2);
  EXPECT_NE(err_.str().find("usage"), std::string::npos);
}

TEST_F(CliTest, MineFromCorruptSmdbFailsCleanly) {
  const std::string bogus = ::testing::TempDir() + "cli_test_bogus.smdb";
  std::ofstream(bogus) << "this is not a binary database";
  EXPECT_EQ(Run({"mine-rules", bogus}), 4);
  EXPECT_NE(err_.str().find("ParseError"), std::string::npos);
  std::remove(bogus.c_str());
}

TEST_F(CliTest, MinePatternsClosed) {
  EXPECT_EQ(Run({"mine-patterns", path_, "--min-sup", "0.9"}), 0);
  EXPECT_NE(out_.str().find("<lock, unlock>"), std::string::npos);
}

TEST_F(CliTest, MinePatternsGenerators) {
  EXPECT_EQ(Run({"mine-patterns", path_, "--min-sup", "0.9",
                 "--generators"}),
            0);
  // Singletons are generators; the absorbed pair is not reported as one
  // unless its support drops.
  EXPECT_NE(out_.str().find("<lock>"), std::string::npos);
}

TEST_F(CliTest, MineRulesWithLtl) {
  EXPECT_EQ(Run({"mine-rules", path_, "--min-ssup", "0.9", "--min-conf",
                 "0.9"}),
            0);
  EXPECT_NE(out_.str().find("<lock> -> <unlock>"), std::string::npos);
  EXPECT_NE(out_.str().find("G(lock -> XF(unlock))"), std::string::npos);
}

TEST_F(CliTest, MineRulesBackward) {
  EXPECT_EQ(Run({"mine-rules", path_, "--min-ssup", "0.9", "--min-conf",
                 "0.9", "--backward"}),
            0);
  EXPECT_NE(out_.str().find("previously"), std::string::npos);
}

TEST_F(CliTest, MineRulesRanked) {
  EXPECT_EQ(Run({"mine-rules", path_, "--min-ssup", "0.9", "--min-conf",
                 "0.9", "--rank"}),
            0);
  EXPECT_NE(out_.str().find("lift="), std::string::npos);
}

TEST_F(CliTest, CheckHoldsReturnsZero) {
  EXPECT_EQ(Run({"check", path_, "--ltl", "G(lock -> XF(unlock))"}), 0);
  EXPECT_NE(out_.str().find("3 / 3"), std::string::npos);
}

TEST_F(CliTest, CheckViolationReturnsOne) {
  EXPECT_EQ(Run({"check", path_, "--ltl", "G(lock -> XF(use))"}), 1);
  EXPECT_NE(out_.str().find("VIOLATED"), std::string::npos);
}

TEST_F(CliTest, CheckBadFormulaFails) {
  EXPECT_EQ(Run({"check", path_, "--ltl", "G(lock -> "}), 4);
  EXPECT_NE(err_.str().find("ParseError"), std::string::npos);
}

TEST_F(CliTest, GenQuestWritesDataset) {
  std::string out_path = ::testing::TempDir() + "cli_test_quest.txt";
  EXPECT_EQ(Run({"gen-quest", out_path, "--d", "0.05", "--c", "10", "--n",
                 "0.05", "--s", "4"}),
            0);
  EXPECT_NE(out_.str().find("wrote D0.05C10N0.05S4"), std::string::npos);
  EXPECT_EQ(Run({"stats", out_path}), 0);
  EXPECT_NE(out_.str().find("50 sequences"), std::string::npos);
  std::remove(out_path.c_str());
}

TEST_F(CliTest, MalformedCsvFailsWithLineNumber) {
  std::string csv_path = ::testing::TempDir() + "cli_test_bad_traces.csv";
  {
    std::ofstream out(csv_path);
    out << "t1,lock\nt1,unlock\nbroken-row\n";
  }
  EXPECT_EQ(Run({"stats", csv_path, "--csv"}), 4);
  EXPECT_NE(err_.str().find("ParseError"), std::string::npos);
  EXPECT_NE(err_.str().find("line 3"), std::string::npos);
  std::remove(csv_path.c_str());
}

TEST_F(CliTest, OutOfRangeConfidenceFails) {
  EXPECT_EQ(Run({"mine-rules", path_, "--min-ssup", "0.9", "--min-conf",
                 "1.5"}),
            3);
  EXPECT_NE(err_.str().find("InvalidArgument"), std::string::npos);
  EXPECT_NE(err_.str().find("min_confidence"), std::string::npos);
}

TEST_F(CliTest, MineSeqClosed) {
  EXPECT_EQ(Run({"mine-seq", path_, "--min-sup", "0.9", "--closed"}), 0);
  EXPECT_NE(out_.str().find("closed-sequential"), std::string::npos);
  EXPECT_NE(out_.str().find("<lock, unlock>"), std::string::npos);
}

TEST_F(CliTest, MineEpisodes) {
  EXPECT_EQ(Run({"mine-episodes", path_, "--window", "3", "--min-count",
                 "4"}),
            0);
  EXPECT_NE(out_.str().find("episodes (episodes-winepi)"), std::string::npos);
}

TEST_F(CliTest, MineEpisodesZeroWindowFails) {
  EXPECT_EQ(Run({"mine-episodes", path_, "--window", "0"}), 3);
  EXPECT_NE(err_.str().find("window_width"), std::string::npos);
}

TEST_F(CliTest, MinePairs) {
  EXPECT_EQ(Run({"mine-pairs", path_, "--min-sat", "1.0"}), 0);
  EXPECT_NE(out_.str().find("two-event rules"), std::string::npos);
  EXPECT_NE(out_.str().find("lock"), std::string::npos);
}

TEST_F(CliTest, VerifyWithoutArgsIsUsageError) {
  EXPECT_EQ(Run({"verify"}), 2);
  EXPECT_NE(err_.str().find("usage"), std::string::npos);
}

TEST_F(CliTest, VerifyGoodSmdbPasses) {
  const std::string packed = ::testing::TempDir() + "cli_test_verify.smdb";
  ASSERT_EQ(Run({"pack", path_, packed}), 0);
  EXPECT_EQ(Run({"verify", packed}), 0);
  EXPECT_NE(out_.str().find("OK"), std::string::npos);
  EXPECT_NE(out_.str().find("format v2"), std::string::npos);
  std::remove(packed.c_str());
}

TEST_F(CliTest, VerifyCorruptSmdbFailsWithCorruptionExitCode) {
  const std::string packed = ::testing::TempDir() + "cli_test_verify2.smdb";
  ASSERT_EQ(Run({"pack", path_, packed}), 0);
  {
    std::fstream f(packed, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24);  // Inside the counts block: caught by the header digest.
    char b = 0;
    f.read(&b, 1);
    f.seekp(24);
    b ^= 0x01;
    f.write(&b, 1);
  }
  EXPECT_EQ(Run({"verify", packed}), 4);
  EXPECT_NE(err_.str().find("checksum"), std::string::npos);
  std::remove(packed.c_str());
}

TEST_F(CliTest, VerifyQuarantineReportsBadShardsAndFailsNonZero) {
  const std::string sharded = ::testing::TempDir() + "cli_test_vq.smdbset";
  const std::string shard0 = ::testing::TempDir() + "cli_test_vq.0000.smdb";
  ASSERT_EQ(Run({"pack", path_, sharded, "--shard-bytes", "200"}), 0);
  {
    std::ofstream f(shard0, std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  // kFail (default): hard error on the bad shard.
  EXPECT_NE(Run({"verify", sharded}), 0);
  // kQuarantine: the report names the shard; exit is still non-zero so
  // scripts can use verify as a health probe.
  EXPECT_EQ(Run({"verify", sharded, "--quarantine"}), 4);
  EXPECT_NE(out_.str().find("QUARANTINED shard 0"), std::string::npos);
  for (int i = 0; i < 8; ++i) {
    std::string shard = ::testing::TempDir() + "cli_test_vq.000" +
                        std::to_string(i) + ".smdb";
    std::remove(shard.c_str());
  }
  std::remove(sharded.c_str());
}

TEST_F(CliTest, QuarantineMinesTheHealthySubset) {
  const std::string sharded = ::testing::TempDir() + "cli_test_dq.smdbset";
  const std::string shard0 = ::testing::TempDir() + "cli_test_dq.0000.smdb";
  ASSERT_EQ(Run({"pack", path_, sharded, "--shard-bytes", "200"}), 0);
  {
    std::ofstream f(shard0, std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  // Without --quarantine the corrupt shard fails the whole run.
  EXPECT_EQ(Run({"mine-patterns", sharded, "--min-sup", "0.9"}), 4);
  // Degraded mode: the healthy subset still mines.
  EXPECT_EQ(
      Run({"mine-patterns", sharded, "--min-sup", "0.9", "--quarantine"}),
      0);
  EXPECT_NE(out_.str().find("patterns"), std::string::npos);
  for (int i = 0; i < 8; ++i) {
    std::string shard = ::testing::TempDir() + "cli_test_dq.000" +
                        std::to_string(i) + ".smdb";
    std::remove(shard.c_str());
  }
  std::remove(sharded.c_str());
}

TEST_F(CliTest, BadIntegrityFlagIsAnInvalidArgument) {
  EXPECT_EQ(Run({"stats", path_, "--integrity", "paranoid"}), 3);
  EXPECT_NE(err_.str().find("--integrity"), std::string::npos);
}

TEST_F(CliTest, ExpiredTimeoutCancelsMiningWithExitSix) {
  // A zero budget has already passed when mining starts, so the run stops
  // at the first cancellation point — deterministic, corpus-independent.
  EXPECT_EQ(Run({"mine-patterns", path_, "--min-sup", "0.9", "--timeout-ms",
                 "0"}),
            6);
  EXPECT_NE(err_.str().find("deadline"), std::string::npos);
}

TEST_F(CliTest, ExpiredTimeoutOnEveryMineCommand) {
  for (const char* cmd :
       {"mine-rules", "mine-seq", "mine-episodes", "mine-pairs"}) {
    EXPECT_EQ(Run({cmd, path_, "--timeout-ms", "0"}), 6) << cmd;
    EXPECT_NE(err_.str().find("deadline"), std::string::npos) << cmd;
  }
}

TEST_F(CliTest, CsvInput) {
  std::string csv_path = ::testing::TempDir() + "cli_test_traces.csv";
  {
    std::ofstream out(csv_path);
    out << "t1,lock\nt1,unlock\nt2,lock\nt2,unlock\n";
  }
  EXPECT_EQ(Run({"stats", csv_path, "--csv"}), 0);
  EXPECT_NE(out_.str().find("2 sequences"), std::string::npos);
  std::remove(csv_path.c_str());
}

}  // namespace
}  // namespace specmine
