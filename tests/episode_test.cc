// Unit tests for src/episode: WINEPI window counting, MINEPI minimal
// occurrences, gap-constrained episodes — plus the contrast with iterative
// patterns the paper draws (windowed methods miss far-apart constraints).

#include <gtest/gtest.h>

#include "src/episode/episode_rules.h"
#include "src/episode/gap_episodes.h"
#include "src/episode/minepi.h"
#include "src/episode/winepi.h"
#include "src/itermine/qre_verifier.h"
#include "src/support/strings.h"

namespace specmine {
namespace {

SequenceDatabase MakeDb(const std::vector<std::string>& traces) {
  SequenceDatabaseBuilder db;
  for (const auto& t : traces) db.AddTraceFromString(t);
  return db.Build();
}

Pattern P(const SequenceDatabase& db, const std::string& names) {
  Pattern p;
  for (const auto& tok : SplitAndTrim(names, ' ')) {
    EventId id = db.dictionary().Lookup(tok);
    EXPECT_NE(id, kInvalidEvent) << tok;
    p = p.Extend(id);
  }
  return p;
}

// Oracle: count windows [t, t+w) containing the episode by direct check.
uint64_t OracleWindows(const Pattern& episode, const SequenceDatabase& db,
                       size_t w) {
  uint64_t count = 0;
  for (EventSpan seq : db) {
    int64_t len = static_cast<int64_t>(seq.size());
    for (int64_t t = -(static_cast<int64_t>(w) - 1); t <= len - 1; ++t) {
      int64_t lo = std::max<int64_t>(0, t);
      int64_t hi = std::min<int64_t>(len - 1, t + static_cast<int64_t>(w) - 1);
      size_t k = 0;
      for (int64_t i = lo; i <= hi && k < episode.size(); ++i) {
        if (seq[static_cast<size_t>(i)] == episode[k]) ++k;
      }
      if (k == episode.size()) ++count;
    }
  }
  return count;
}

TEST(WinepiTest, WindowCountHandExample) {
  // "a b" with w=2 over "a b a b": windows containing <a,b> are exactly
  // [0,1] and [2,3].
  SequenceDatabase db = MakeDb({"a b a b"});
  EXPECT_EQ(CountSupportingWindows(P(db, "a b"), db, 2), 2u);
  // w=4: starts -3..3; windows [0..3],[ -1..2]->[0,2], etc.
  EXPECT_EQ(CountSupportingWindows(P(db, "a b"), db, 4),
            OracleWindows(P(db, "a b"), db, 4));
}

TEST(WinepiTest, MatchesOracleOnManyPatterns) {
  SequenceDatabase db = MakeDb({"a b c a b", "b a a c", "c c c"});
  for (const char* pat : {"a", "b", "a b", "b a", "a b c", "c c", "a a"}) {
    for (size_t w : {1u, 2u, 3u, 5u, 10u}) {
      EXPECT_EQ(CountSupportingWindows(P(db, pat), db, w),
                OracleWindows(P(db, pat), db, w))
          << pat << " w=" << w;
    }
  }
}

TEST(WinepiTest, SingleEventWindowCount) {
  // One occurrence, width w -> w windows cover it (clipped at edges
  // contribute too since partial windows count).
  SequenceDatabase db = MakeDb({"x a x"});
  EXPECT_EQ(CountSupportingWindows(P(db, "a"), db, 1), 1u);
  EXPECT_EQ(CountSupportingWindows(P(db, "a"), db, 2), 2u);
  EXPECT_EQ(CountSupportingWindows(P(db, "a"), db, 3), 3u);
}

TEST(WinepiTest, MineFindsFrequentEpisodes) {
  SequenceDatabase db = MakeDb({"a b x a b", "a b y"});
  WinepiOptions options;
  options.window_width = 2;
  options.min_window_count = 3;
  PatternSet out = MineWinepi(db, options);
  EXPECT_TRUE(out.Contains(P(db, "a b")));
  EXPECT_EQ(out.SupportOf(P(db, "a b")), 3u);
}

TEST(WinepiTest, WindowedMiningMissesFarApartPairs) {
  // The paper's core argument (Sections 1-2): lock .. unlock separated by
  // more than the window is invisible to WINEPI but trivial for iterative
  // patterns.
  SequenceDatabase db = MakeDb({
      "lock u1 u2 u3 u4 u5 u6 u7 unlock",
      "lock v1 v2 v3 v4 v5 v6 v7 unlock",
  });
  WinepiOptions options;
  options.window_width = 4;
  options.min_window_count = 1;
  PatternSet episodes = MineWinepi(db, options);
  EXPECT_FALSE(episodes.Contains(P(db, "lock unlock")));
  // Iterative pattern support sees both.
  EXPECT_EQ(CountInstances(P(db, "lock unlock"), db), 2u);
}

TEST(MinepiTest, MinimalOccurrencesSingleEvent) {
  SequenceDatabase db = MakeDb({"a x a"});
  auto mos = FindMinimalOccurrences(P(db, "a"), db);
  ASSERT_EQ(mos.size(), 2u);
  EXPECT_EQ(mos[0], (MinimalOccurrence{0, 0, 0}));
  EXPECT_EQ(mos[1], (MinimalOccurrence{0, 2, 2}));
}

TEST(MinepiTest, MinimalOccurrencesDropNonMinimalWindows) {
  // "a a b": [1,2] is minimal for <a, b>; [0,2] contains it.
  SequenceDatabase db = MakeDb({"a a b"});
  auto mos = FindMinimalOccurrences(P(db, "a b"), db);
  ASSERT_EQ(mos.size(), 1u);
  EXPECT_EQ(mos[0], (MinimalOccurrence{0, 1, 2}));
}

TEST(MinepiTest, MinimalOccurrencesMultiple) {
  SequenceDatabase db = MakeDb({"a b a b"});
  auto mos = FindMinimalOccurrences(P(db, "a b"), db);
  ASSERT_EQ(mos.size(), 2u);
  EXPECT_EQ(mos[0], (MinimalOccurrence{0, 0, 1}));
  EXPECT_EQ(mos[1], (MinimalOccurrence{0, 2, 3}));
}

TEST(MinepiTest, WindowBoundFiltersWideOccurrences) {
  SequenceDatabase db = MakeDb({"a x x x b a b"});
  MinepiOptions options;
  options.max_window = 2;
  options.min_support = 1;
  options.max_length = 2;
  PatternSet out = MineMinepi(db, options);
  // Only the tight <a, b> at [5, 6] fits in a width-2 window.
  EXPECT_EQ(out.SupportOf(P(db, "a b")), 1u);
}

TEST(MinepiTest, MiningRespectsMaxLength) {
  SequenceDatabase db = MakeDb({"a b c a b c"});
  MinepiOptions options;
  options.max_window = 3;
  options.min_support = 1;
  options.max_length = 2;
  PatternSet out = MineMinepi(db, options);
  for (const auto& it : out.items()) EXPECT_LE(it.pattern.size(), 2u);
  EXPECT_TRUE(out.Contains(P(db, "a b")));
  EXPECT_EQ(out.SupportOf(P(db, "a b")), 2u);
}

TEST(GapEpisodesTest, CountRespectsGapConstraint) {
  SequenceDatabase db = MakeDb({"a x x b", "a b"});
  // Gap 1: a..b three apart fails in trace 0.
  EXPECT_EQ(CountGapOccurrences(P(db, "a b"), db, 1), 1u);
  EXPECT_EQ(CountGapOccurrences(P(db, "a b"), db, 3), 2u);
}

TEST(GapEpisodesTest, GreedyIncompletenessHandled) {
  // Naive greedy takes b@1 and strands c (5 - 1 > 3); the DP must route
  // through b@2: a@0 -> b@2 -> c@5, all gaps <= 3.
  SequenceDatabase db = MakeDb({"a b b x x c"});
  EXPECT_EQ(CountGapOccurrences(P(db, "a b c"), db, 3), 1u);
  // And when no routing helps, zero.
  SequenceDatabase db2 = MakeDb({"a b x x c"});
  EXPECT_EQ(CountGapOccurrences(P(db2, "a b c"), db2, 2), 0u);
}

TEST(GapEpisodesTest, NonOverlappingCounting) {
  SequenceDatabase db = MakeDb({"a b a b a b"});
  EXPECT_EQ(CountGapOccurrences(P(db, "a b"), db, 1), 3u);
  // <a, b, a, b> occupies [0..3]; next starts at 4 -> only one complete.
  EXPECT_EQ(CountGapOccurrences(P(db, "a b a b"), db, 1), 1u);
}

TEST(GapEpisodesTest, MineFindsGapRespectingEpisodes) {
  SequenceDatabase db = MakeDb({"a b c", "a b x c", "a x b c"});
  GapEpisodeOptions options;
  options.max_gap = 2;
  options.min_support = 3;
  options.max_length = 3;
  PatternSet out = MineGapEpisodes(db, options);
  EXPECT_TRUE(out.Contains(P(db, "a b")));
  EXPECT_TRUE(out.Contains(P(db, "a b c")));
  EXPECT_EQ(out.SupportOf(P(db, "a b c")), 3u);
}

TEST(GapEpisodesTest, SupportAntiMonotoneUnderExtension) {
  SequenceDatabase db = MakeDb({"a b c a b", "b c a b c a"});
  for (size_t gap : {1u, 2u, 4u}) {
    uint64_t ab = CountGapOccurrences(P(db, "a b"), db, gap);
    uint64_t abc = CountGapOccurrences(P(db, "a b c"), db, gap);
    EXPECT_LE(abc, ab) << "gap=" << gap;
    uint64_t a = CountGapOccurrences(P(db, "a"), db, gap);
    EXPECT_LE(ab, a) << "gap=" << gap;
  }
}

TEST(EpisodeRulesTest, HandComputedConfidence) {
  // w=2 over "a b a c": windows with <a>: a@0 covered by 2 windows, a@2 by
  // 2 -> fr(<a>)=4; <a, b>: window [0,1] only -> fr=1.
  SequenceDatabase db = MakeDb({"a b a c"});
  EpisodeRuleOptions options;
  options.window_width = 2;
  options.min_window_count = 1;
  options.min_confidence = 0.2;
  auto rules = MineEpisodeRules(db, options);
  bool found = false;
  for (const EpisodeRule& r : rules) {
    if (r.antecedent == P(db, "a") && r.consequent == P(db, "b")) {
      found = true;
      EXPECT_EQ(r.antecedent_windows, 4u);
      EXPECT_EQ(r.full_windows, 1u);
      EXPECT_DOUBLE_EQ(r.confidence(), 0.25);
    }
  }
  EXPECT_TRUE(found);
}

TEST(EpisodeRulesTest, ConfidenceThresholdFilters) {
  SequenceDatabase db = MakeDb({"a b", "a b", "a c"});
  EpisodeRuleOptions options;
  options.window_width = 2;
  options.min_confidence = 0.9;
  auto rules = MineEpisodeRules(db, options);
  for (const EpisodeRule& r : rules) {
    EXPECT_GE(r.confidence(), 0.9) << r.ToString(db.dictionary());
  }
}

TEST(EpisodeRulesTest, WindowBoundMissesFarApartRules) {
  // The Section-2 contrast at rule level: lock => unlock is invisible to
  // windowed episode rules when the pair exceeds the window.
  SequenceDatabase db = MakeDb({
      "lock u1 u2 u3 u4 u5 u6 u7 unlock",
      "lock v1 v2 v3 v4 v5 v6 v7 unlock",
  });
  EpisodeRuleOptions options;
  options.window_width = 4;
  options.min_window_count = 1;
  options.min_confidence = 0.01;
  auto rules = MineEpisodeRules(db, options);
  for (const EpisodeRule& r : rules) {
    EXPECT_FALSE(r.antecedent == P(db, "lock") &&
                 r.consequent == P(db, "unlock"));
  }
}

TEST(EpisodeRulesTest, RuleStringRendersParts) {
  SequenceDatabase db = MakeDb({"a b"});
  EpisodeRule r;
  r.antecedent = P(db, "a");
  r.consequent = P(db, "b");
  r.antecedent_windows = 4;
  r.full_windows = 2;
  std::string s = r.ToString(db.dictionary());
  EXPECT_NE(s.find("<a> => <b>"), std::string::npos);
  EXPECT_NE(s.find("conf=0.5"), std::string::npos);
}

}  // namespace
}  // namespace specmine
